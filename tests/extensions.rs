//! Tests for the extension features: live streaming append (the
//! `streaming` flag) and the `KEYFRAMESELECT` homomorphic operator
//! (the paper's stated future work).

use lightdb::exec::{Executor, PhysicalPlan, QueryOutput};
use lightdb::ingest::{append_frames, IngestConfig};
use lightdb::prelude::*;
use lightdb_datasets::{frame, install, Dataset, DatasetSpec};
use std::sync::Arc;

fn tiny() -> DatasetSpec {
    DatasetSpec { width: 128, height: 64, fps: 4, seconds: 2, qp: 24 }
}

fn temp_db(tag: &str) -> LightDb {
    let root = std::env::temp_dir().join(format!("lightdb-ext-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    LightDb::open(root).unwrap()
}

fn cleanup(db: &LightDb) {
    let _ = std::fs::remove_dir_all(db.catalog().root());
}

#[test]
fn streaming_append_extends_ending_time() {
    let db = temp_db("append");
    let spec = tiny();
    let cfg = IngestConfig {
        fps: spec.fps,
        gop_length: spec.fps as usize,
        qp: spec.qp,
        ..Default::default()
    };
    let second = |s: usize| -> Vec<Frame> {
        (0..spec.fps as usize)
            .map(|i| frame(Dataset::Venice, &spec, s * spec.fps as usize + i))
            .collect()
    };
    // Live ingest, one second at a time.
    append_frames(&db, "live", &second(0), &cfg).unwrap();
    let v1 = db.catalog().read("live", None).unwrap();
    assert!(v1.metadata.tlf.streaming, "live TLFs carry the streaming flag");
    assert!((v1.metadata.tlf.volume.t().hi() - 1.0).abs() < 1e-9);

    append_frames(&db, "live", &second(1), &cfg).unwrap();
    append_frames(&db, "live", &second(2), &cfg).unwrap();
    let v3 = db.catalog().read("live", None).unwrap();
    assert!((v3.metadata.tlf.volume.t().hi() - 3.0).abs() < 1e-9, "ending time must advance");

    // The full appended stream decodes contiguously.
    let out = db.execute(&scan("live")).unwrap();
    assert_eq!(out.frame_count(), 12);
    // And a GOP-aligned selection over the appended tail stays
    // homomorphic.
    let q = scan("live") >> Select::along(Dimension::T, 2.0, 3.0);
    assert!(db.explain(&q).unwrap().contains("GOPSELECT"));
    assert_eq!(db.execute(&q).unwrap().frame_count(), 4);
    cleanup(&db);
}

#[test]
fn append_content_matches_original_frames() {
    let db = temp_db("appendcontent");
    let spec = tiny();
    let cfg = IngestConfig {
        fps: spec.fps,
        gop_length: spec.fps as usize,
        qp: 10,
        ..Default::default()
    };
    let all: Vec<Frame> = (0..8).map(|i| frame(Dataset::Timelapse, &spec, i)).collect();
    append_frames(&db, "live", &all[..4], &cfg).unwrap();
    append_frames(&db, "live", &all[4..], &cfg).unwrap();
    let parts = db.execute(&scan("live")).unwrap().into_frame_parts().unwrap();
    assert_eq!(parts[0].len(), 8);
    for (src, got) in all.iter().zip(parts[0].iter()) {
        let psnr = lightdb::frame::stats::luma_psnr(src, got);
        assert!(psnr > 32.0, "appended content degraded: {psnr} dB");
    }
    cleanup(&db);
}

#[test]
fn keyframe_select_extracts_one_frame_per_gop_without_decoding() {
    let db = temp_db("keyframes");
    install(&db, Dataset::Coaster, &tiny()).unwrap();
    let exec = Executor::new(Arc::clone(db.catalog()), Arc::clone(db.pool()));
    let plan = PhysicalPlan::KeyframeSelect {
        input: Box::new(PhysicalPlan::ScanTlf {
            name: "coaster".into(),
            version: None,
            t_frames: None,
            spatial: None,
        }),
    };
    let QueryOutput::Encoded(streams) = exec.run(&plan).unwrap() else { panic!() };
    // 2 seconds at 1-second GOPs → 2 keyframes.
    assert_eq!(streams[0].frame_count(), 2);
    assert_eq!(exec.metrics.count("DECODE"), 0, "keyframe selection must not decode");
    assert_eq!(exec.metrics.count("KEYFRAMESELECT"), 2);
    // The extracted keyframes decode to the GOP-initial frames.
    let thumbs = lightdb::codec::Decoder::new().decode(&streams[0]).unwrap();
    let full = db.execute(&scan("coaster")).unwrap().into_frame_parts().unwrap();
    for (i, t) in thumbs.iter().enumerate() {
        assert_eq!(
            t,
            &full[0][i * 4],
            "keyframe {i} must be byte-identical to the decoded GOP start"
        );
    }
    cleanup(&db);
}

#[test]
fn keyframe_select_rejects_decoded_input() {
    let db = temp_db("kfreject");
    install(&db, Dataset::Venice, &tiny()).unwrap();
    let exec = Executor::new(Arc::clone(db.catalog()), Arc::clone(db.pool()));
    let plan = PhysicalPlan::KeyframeSelect {
        input: Box::new(PhysicalPlan::ToFrames {
            input: Box::new(PhysicalPlan::ScanTlf {
                name: "venice".into(),
                version: None,
                t_frames: None,
                spatial: None,
            }),
            device: lightdb::exec::Device::Cpu,
        }),
    };
    assert!(exec.run(&plan).is_err());
    cleanup(&db);
}
