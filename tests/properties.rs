//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary (bounded) inputs across the codec / container / engine
//! stack.

use lightdb_codec::{Decoder, Encoder, EncoderConfig, TileGrid, VideoStream};
use lightdb_container::{MetadataFile, TlfDescriptor, Track};
use lightdb_frame::stats::luma_psnr;
use lightdb_frame::{Frame, Yuv};
use lightdb_geom::{Interval, Point3};
use proptest::prelude::*;

/// Deterministic pseudo-random frames from a seed.
fn frames_from_seed(seed: u64, n: usize, w: usize, h: usize) -> Vec<Frame> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let base = (next() % 200) as u8;
            let mut f = Frame::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    let v = base
                        .wrapping_add(((x * 3 + y * 5) % 64) as u8)
                        .wrapping_add((next() % 8) as u8);
                    f.set(x, y, Yuv::new(v, 128, 128));
                }
            }
            f
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Encode → serialize → parse → decode is stable: the parsed
    /// stream decodes to exactly the same frames as the in-memory one.
    #[test]
    fn codec_serialization_is_transparent(
        seed in any::<u64>(),
        n in 1usize..8,
        qp in 4u8..48,
    ) {
        let frames = frames_from_seed(seed, n, 32, 32);
        let enc = Encoder::new(EncoderConfig { qp, gop_length: 3, fps: 3, ..Default::default() })
            .unwrap();
        let stream = enc.encode(&frames).unwrap();
        let parsed = VideoStream::from_bytes(&stream.to_bytes()).unwrap();
        let a = Decoder::new().decode(&stream).unwrap();
        let b = Decoder::new().decode(&parsed).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Decoding individual tiles and stitching the pixels equals
    /// decoding the whole frame — tile independence.
    #[test]
    fn tiles_decode_independently(seed in any::<u64>(), qp in 8u8..40) {
        let frames = frames_from_seed(seed, 4, 64, 32);
        let enc = Encoder::new(EncoderConfig {
            qp,
            gop_length: 4,
            fps: 4,
            grid: TileGrid::new(2, 1),
            ..Default::default()
        })
        .unwrap();
        let stream = enc.encode(&frames).unwrap();
        let whole = Decoder::new().decode(&stream).unwrap();
        for t in 0..2 {
            let tiles = Decoder::new()
                .decode_gop_tile(&stream.header, &stream.gops[0], t)
                .unwrap();
            for (tf, wf) in tiles.iter().zip(whole.iter()) {
                prop_assert_eq!(tf, &wf.crop(t * 32, 0, 32, 32));
            }
        }
    }

    /// Reconstruction quality is monotone in QP (lower QP is never
    /// worse, within a tolerance window for quantiser rounding).
    #[test]
    fn quality_monotone_in_qp(seed in any::<u64>()) {
        let frames = frames_from_seed(seed, 1, 32, 32);
        let psnr_at = |qp: u8| {
            let enc = Encoder::new(EncoderConfig { qp, gop_length: 1, fps: 1, ..Default::default() })
                .unwrap();
            let s = enc.encode(&frames).unwrap();
            let d = Decoder::new().decode(&s).unwrap();
            luma_psnr(&frames[0], &d[0])
        };
        let hi = psnr_at(6);
        let lo = psnr_at(42);
        prop_assert!(hi + 0.5 >= lo, "QP 6 ({hi:.1} dB) must beat QP 42 ({lo:.1} dB)");
    }

    /// Container metadata roundtrips for arbitrary GOP index shapes.
    #[test]
    fn metadata_roundtrips(
        offsets in proptest::collection::vec((0u64..1_000_000, 1u64..500, 1u64..100_000), 1..20),
        version in 1u64..1000,
    ) {
        let mut start = 0u64;
        let gop_index: Vec<lightdb_container::GopIndexEntry> = offsets
            .iter()
            .map(|&(off, fc, len)| {
                let e = lightdb_container::GopIndexEntry {
                    start_frame: start,
                    frame_count: fc,
                    byte_offset: off,
                    byte_len: len,
                    crc32: 0,
                };
                start += fc;
                e
            })
            .collect();
        let track = Track {
            role: lightdb_container::TrackRole::Video,
            codec: lightdb_codec::CodecKind::HevcSim,
            projection: lightdb_geom::projection::ProjectionKind::Equirectangular,
            media_path: "stream0.lvc".into(),
            gop_index,
        };
        let tlf = TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, 1.0), 0);
        let file = MetadataFile::new(version, vec![track], tlf).unwrap();
        prop_assert_eq!(MetadataFile::from_bytes(&file.to_bytes()).unwrap(), file);
    }

    /// GOP byte ranges always identify exactly the serialised GOPs.
    #[test]
    fn gop_ranges_are_exact(seed in any::<u64>(), gops in 1usize..5) {
        let frames = frames_from_seed(seed, gops * 2, 32, 32);
        let enc = Encoder::new(EncoderConfig { qp: 30, gop_length: 2, fps: 2, ..Default::default() })
            .unwrap();
        let stream = enc.encode(&frames).unwrap();
        let bytes = stream.to_bytes();
        for (i, (off, len)) in stream.gop_byte_ranges().into_iter().enumerate() {
            let gop = lightdb_codec::gop::EncodedGop::from_bytes(&bytes[off..off + len]).unwrap();
            prop_assert_eq!(&gop, &stream.gops[i]);
        }
    }

    /// Truncating an encoded stream anywhere never panics the parser.
    #[test]
    fn truncation_never_panics(seed in any::<u64>(), cut_frac in 0.0f64..1.0) {
        let frames = frames_from_seed(seed, 3, 32, 32);
        let enc = Encoder::new(EncoderConfig { qp: 30, gop_length: 3, fps: 3, ..Default::default() })
            .unwrap();
        let bytes = enc.encode(&frames).unwrap().to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // Must return (Ok or Err), not panic.
        let _ = VideoStream::from_bytes(&bytes[..cut]);
    }

    /// Bit-flipping the payload never panics the decoder.
    #[test]
    fn bitflips_never_panic_decode(seed in any::<u64>(), flip_at in 0.1f64..0.95) {
        let frames = frames_from_seed(seed, 2, 32, 32);
        let enc = Encoder::new(EncoderConfig { qp: 24, gop_length: 2, fps: 2, ..Default::default() })
            .unwrap();
        let stream = enc.encode(&frames).unwrap();
        let mut bytes = stream.to_bytes();
        let idx = ((bytes.len() as f64) * flip_at) as usize;
        bytes[idx] ^= 0x5a;
        if let Ok(parsed) = VideoStream::from_bytes(&bytes) {
            let _ = Decoder::new().decode(&parsed); // Ok or Err, no panic
        }
    }
}
