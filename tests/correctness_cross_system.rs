//! Cross-system correctness: identical logical operations through
//! LightDB and through each baseline's imperative pipeline must
//! produce equivalent pictures (the systems share one codec, so only
//! architecture may differ — not answers).

use lightdb::prelude::*;
use lightdb_baselines::ffmpeg::{FfmpegDecoder, FfmpegEncoder, FfmpegEncoderSettings};
use lightdb_baselines::opencv::{VideoCapture, VideoWriter};
use lightdb_baselines::scanner::ScannerPipeline;
use lightdb_codec::Decoder;
use lightdb_datasets::{encode_dataset, install, Dataset, DatasetSpec};
use lightdb_frame::stats::luma_psnr;

fn tiny() -> DatasetSpec {
    DatasetSpec { width: 128, height: 64, fps: 4, seconds: 2, qp: 18 }
}

fn temp_db(tag: &str) -> LightDb {
    let root = std::env::temp_dir().join(format!("lightdb-xsys-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let db = LightDb::open(root).unwrap();
    install(&db, Dataset::Venice, &tiny()).unwrap();
    db
}

fn cleanup(db: &LightDb) {
    let _ = std::fs::remove_dir_all(db.catalog().root());
}

#[test]
fn grayscale_matches_across_all_five_systems() {
    let db = temp_db("gray");
    let input = encode_dataset(Dataset::Venice, &tiny());

    // LightDB (decoded output, no extra encode generation).
    let ldb = db
        .execute(&(scan("venice") >> Map::builtin(BuiltinMap::Grayscale)))
        .unwrap()
        .into_frame_parts()
        .unwrap();

    // FFmpeg.
    let mut enc = FfmpegEncoder::new(FfmpegEncoderSettings {
        qp: 8,
        fps: 4,
        gop_length: 4,
        ..Default::default()
    });
    for f in FfmpegDecoder::new(&input) {
        enc.push(&lightdb::frame::kernels::grayscale(&f.unwrap())).unwrap();
    }
    let ff = Decoder::new().decode(&enc.finish().unwrap()).unwrap();

    // OpenCV.
    let mut cap = VideoCapture::open(&input);
    let mut w = VideoWriter::open(4, 8);
    while let Some(m) = cap.read() {
        w.write(&m.unwrap().to_gray()).unwrap();
    }
    let ocv = Decoder::new().decode(&w.release().unwrap()).unwrap();

    // Scanner.
    let sc = ScannerPipeline::ingest(&input)
        .unwrap()
        .map(lightdb::frame::kernels::grayscale);

    for i in [0usize, 5] {
        assert!(luma_psnr(&ldb[0][i], &ff[i]) > 30.0, "ffmpeg frame {i}");
        assert!(luma_psnr(&ldb[0][i], &ocv[i]) > 28.0, "opencv frame {i}");
        assert!(luma_psnr(&ldb[0][i], &sc.frames()[i]) > 30.0, "scanner frame {i}");
        // Chroma must be neutral everywhere in every system's output.
        for f in [&ldb[0][i], &ff[i], &ocv[i], sc.frames().get(i).unwrap()] {
            let c = f.get(30, 30);
            assert!((c.u as i32 - 128).abs() < 10 && (c.v as i32 - 128).abs() < 10);
        }
    }
    cleanup(&db);
}

#[test]
fn temporal_select_matches_ffmpeg_trim() {
    let db = temp_db("trim");
    let input = encode_dataset(Dataset::Venice, &tiny());
    let ldb = db
        .execute(&(scan("venice") >> Select::along(Dimension::T, 1.0, 2.0)))
        .unwrap()
        .into_frame_parts()
        .unwrap();
    let trimmed = lightdb_baselines::ffmpeg::trim(
        &input,
        1.0,
        2.0,
        FfmpegEncoderSettings { qp: 8, fps: 4, gop_length: 4, ..Default::default() },
    )
    .unwrap();
    let ff = Decoder::new().decode(&trimmed).unwrap();
    assert_eq!(ldb[0].len(), ff.len());
    for (a, b) in ldb[0].iter().zip(ff.iter()) {
        assert!(luma_psnr(a, b) > 30.0);
    }
    cleanup(&db);
}

#[test]
fn angular_crop_matches_mat_roi() {
    let db = temp_db("crop");
    let input = encode_dataset(Dataset::Venice, &tiny());
    use std::f64::consts::PI;
    // θ ∈ [0, π] is the left half of the equirect frame.
    let ldb = db
        .execute(&(scan("venice") >> Select::along(Dimension::Theta, 0.0, PI)))
        .unwrap()
        .into_frame_parts()
        .unwrap();
    let mut cap = VideoCapture::open(&input);
    let first = cap.read().unwrap().unwrap();
    let roi = first.crop(0, 0, 64, 64);
    assert_eq!(
        (ldb[0][0].width(), ldb[0][0].height()),
        (roi.frame.width(), roi.frame.height())
    );
    assert!(luma_psnr(&ldb[0][0], &roi.frame) > 35.0);
    cleanup(&db);
}
