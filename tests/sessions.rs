//! Multi-session server front-end integration tests: per-session knob
//! isolation, byte-identical outputs under concurrency, the shared
//! plan cache (hit/miss/eviction counters and version safety), shared
//! scans decoding each GOP exactly once, per-session admission
//! accounting, session budgets, and a seeded concurrent-session chaos
//! soak.
//!
//! Runs honour `LIGHTDB_THREADS` (CI soaks both 1 and 8) and
//! `LIGHTDB_CHAOS_SEEDS` for the soak round count.

use lightdb::prelude::*;
use lightdb_exec::metrics::counters;
use lightdb_testsuite::chaos::Scenario;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

fn temp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lightdb-sess-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn seed_tlf(db: &LightDb, name: &str, gops: usize, gop_length: usize) {
    let frames: Vec<Frame> = (0..gops * gop_length)
        .map(|i| {
            let mut f = Frame::new(64, 32);
            for y in 0..32 {
                for x in 0..64 {
                    f.set(x, y, Yuv::new(((x * 7 + y * 3 + i * 13) % 256) as u8, 110, 150));
                }
            }
            f
        })
        .collect();
    lightdb::ingest::store_frames(
        db,
        name,
        &frames,
        &lightdb::ingest::IngestConfig { fps: gop_length as u32, gop_length, ..Default::default() },
    )
    .unwrap();
}

/// Knobs set on one session never show through another session or the
/// parent handle's defaults.
#[test]
fn session_knobs_do_not_leak_across_sessions() {
    let root = temp_root("knobs");
    let db = LightDb::open(&root).unwrap();
    let default_threads = db.parallelism().threads();
    let mut a = db.session();
    let b = db.session();
    assert_ne!(a.id(), b.id(), "sessions must have distinct ids");
    a.set_parallelism(Parallelism::SERIAL);
    a.set_admit_policy(AdmitPolicy::FailFast);
    let mut opts = a.options();
    opts.use_indexes = !opts.use_indexes;
    a.set_options(opts);
    // B and the handle's defaults are untouched.
    assert_eq!(b.config().parallelism.threads(), default_threads);
    assert!(!b.config().parallelism.is_serial() || default_threads == 1);
    assert_eq!(db.parallelism().threads(), default_threads);
    assert_ne!(
        a.options().use_indexes,
        b.options().use_indexes,
        "options must be per-session"
    );
    let _ = fs::remove_dir_all(&root);
}

/// Two sessions with divergent parallelism and planner options, each
/// running a mixed statement stream concurrently, produce outputs
/// byte-identical to a serial reference run.
#[test]
fn concurrent_divergent_sessions_match_serial_reference() {
    let root = temp_root("divergent");
    let db = LightDb::open(&root).unwrap();
    seed_tlf(&db, "vid", 4, 4);
    let queries: Vec<VrqlExpr> = vec![
        scan("vid") >> Map::builtin(BuiltinMap::Grayscale),
        scan("vid") >> Select::along(Dimension::T, 0.0, 2.0) >> Map::builtin(BuiltinMap::Blur),
        scan("vid") >> Map::builtin(BuiltinMap::Sharpen),
    ];
    // Serial reference through a dedicated session.
    let mut reference_session = db.session();
    reference_session.set_parallelism(Parallelism::SERIAL);
    let reference: Vec<_> = queries
        .iter()
        .map(|q| reference_session.execute(q).unwrap().into_frame_parts().unwrap())
        .collect();

    let mut fast = db.session();
    fast.set_parallelism(Parallelism::new(8));
    let mut slow = db.session();
    slow.set_parallelism(Parallelism::SERIAL);
    // A divergent read policy is output-neutral on clean data.
    slow.set_read_policy(ReadPolicy::SkipCorruptGops { max_skipped: 2 });

    let queries = Arc::new(queries);
    let reference = Arc::new(reference);
    std::thread::scope(|s| {
        for session in [fast, slow] {
            let queries = queries.clone();
            let reference = reference.clone();
            s.spawn(move || {
                for round in 0..3 {
                    for (i, q) in queries.iter().enumerate() {
                        let got = session.execute(q).unwrap().into_frame_parts().unwrap();
                        assert_eq!(
                            got, reference[i],
                            "round {round}, query {i}: output diverged from serial"
                        );
                    }
                }
            });
        }
    });
    let _ = fs::remove_dir_all(&root);
}

/// Repeat executions of a prepared statement hit the engine plan
/// cache, counter-verified on the session's metrics.
#[test]
fn prepared_statements_hit_the_plan_cache() {
    let root = temp_root("plancache");
    let db = LightDb::open(&root).unwrap();
    seed_tlf(&db, "vid", 2, 2);
    let session = db.session();
    let stmt =
        session.prepare(&(scan("vid") >> Map::builtin(BuiltinMap::Grayscale))).unwrap();

    session.execute_prepared(&stmt).unwrap();
    let misses_after_first = session.metrics().counter(counters::PLAN_CACHE_MISSES);
    assert!(misses_after_first >= 1, "first execution must miss the plan cache");
    assert_eq!(session.metrics().counter(counters::PLAN_CACHE_HITS), 0);
    assert!(db.plan_cache_len() >= 1, "the plan must be cached");

    session.execute_prepared(&stmt).unwrap();
    assert!(
        session.metrics().counter(counters::PLAN_CACHE_HITS) >= 1,
        "repeat execution must hit the plan cache"
    );
    assert_eq!(
        session.metrics().counter(counters::PLAN_CACHE_MISSES),
        misses_after_first,
        "repeat execution must not miss again"
    );
    let _ = fs::remove_dir_all(&root);
}

/// The plan cache is shared across sessions, keys on planner options,
/// and a STORE bumping the scanned version orphans old entries instead
/// of serving stale plans.
#[test]
fn plan_cache_is_shared_and_version_safe() {
    let root = temp_root("cachever");
    let db = LightDb::open(&root).unwrap();
    seed_tlf(&db, "vid", 2, 2);
    let q = scan("vid") >> Map::builtin(BuiltinMap::Grayscale);

    let a = db.session();
    let b = db.session();
    a.execute(&q).unwrap();
    b.execute(&q).unwrap();
    assert!(
        b.metrics().counter(counters::PLAN_CACHE_HITS) >= 1,
        "a second session running the same statement must hit the shared cache"
    );

    // Divergent options occupy a different cache entry (no false hit).
    let mut c = db.session();
    let mut opts = c.options();
    opts.use_indexes = !opts.use_indexes;
    c.set_options(opts);
    c.execute(&q).unwrap();
    assert_eq!(
        c.metrics().counter(counters::PLAN_CACHE_HITS),
        0,
        "divergent options must not share a cache entry"
    );
    assert!(c.metrics().counter(counters::PLAN_CACHE_MISSES) >= 1);

    // A new version of the scanned TLF changes the resolved plan shape
    // (the key pins scan versions), so the next execution misses and
    // observes the new content.
    let before = a.execute(&q).unwrap().into_frame_parts().unwrap();
    let brighter: Vec<Frame> = (0..4).map(|_| Frame::filled(64, 32, Yuv::new(250, 110, 150))).collect();
    lightdb::ingest::store_frames(
        &db,
        "vid",
        &brighter,
        &lightdb::ingest::IngestConfig { fps: 2, gop_length: 2, ..Default::default() },
    )
    .unwrap();
    let misses0 = a.metrics().counter(counters::PLAN_CACHE_MISSES);
    let after = a.execute(&q).unwrap().into_frame_parts().unwrap();
    assert!(
        a.metrics().counter(counters::PLAN_CACHE_MISSES) > misses0,
        "a version bump must change the cache key"
    );
    assert_ne!(before, after, "stale plan served after STORE");
    let _ = fs::remove_dir_all(&root);
}

/// N sessions scanning the same TLF concurrently decode each GOP
/// exactly once through the shared-decode cache: the decode counters
/// summed across sessions equal the GOP count, everything else is hits.
#[test]
fn shared_scans_decode_each_gop_exactly_once() {
    let root = temp_root("sharedscan");
    let db = LightDb::open(&root).unwrap();
    const GOPS: usize = 6;
    seed_tlf(&db, "vid", GOPS, 2);
    const SESSIONS: usize = 4;
    let barrier = Arc::new(Barrier::new(SESSIONS));
    let q = scan("vid") >> Map::builtin(BuiltinMap::Grayscale);
    let sessions: Vec<_> = (0..SESSIONS).map(|_| db.session()).collect();
    let reference = std::thread::scope(|s| {
        let handles: Vec<_> = sessions
            .iter()
            .map(|session| {
                let barrier = barrier.clone();
                let q = q.clone();
                s.spawn(move || {
                    barrier.wait();
                    session.execute(&q).unwrap().into_frame_parts().unwrap()
                })
            })
            .collect();
        let mut outputs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let reference = outputs.pop().unwrap();
        for out in &outputs {
            assert_eq!(out, &reference, "shared-scan hit diverged from a fresh decode");
        }
        reference
    });
    assert_eq!(reference.iter().map(Vec::len).sum::<usize>(), GOPS * 2);
    let decodes: u64 =
        sessions.iter().map(|s| s.metrics().counter(counters::SHARED_SCAN_DECODES)).sum();
    let hits: u64 =
        sessions.iter().map(|s| s.metrics().counter(counters::SHARED_SCAN_HITS)).sum();
    assert_eq!(decodes, GOPS as u64, "each GOP must be decoded exactly once");
    assert_eq!(
        hits,
        ((SESSIONS - 1) * GOPS) as u64,
        "every other access must be served from the shared cache"
    );
    let _ = fs::remove_dir_all(&root);
}

/// A session's default budget applies to statements that carry no
/// explicit limits: deadlines classify as DeadlineExceeded, declared
/// working sets pass through admission, and admissions release fully.
#[test]
fn session_budget_applies_and_admissions_release() {
    let root = temp_root("budget");
    let db = LightDb::open(&root).unwrap();
    seed_tlf(&db, "vid", 2, 2);

    let mut strict = db.session();
    strict.set_budget(SessionBudget {
        deadline: Some(std::time::Duration::ZERO),
        mem_estimate: None,
    });
    match strict.execute(&scan("vid")).unwrap_err() {
        lightdb::Error::Exec(e) => {
            assert!(matches!(e, lightdb_exec::ExecError::DeadlineExceeded), "{e}")
        }
        other => panic!("unexpected error: {other}"),
    }

    db.set_admission_limit(1 << 20);
    let mut greedy = db.session();
    greedy.set_admit_policy(AdmitPolicy::FailFast);
    greedy.set_budget(SessionBudget { deadline: None, mem_estimate: Some(8 << 20) });
    match greedy.execute(&scan("vid")).unwrap_err() {
        lightdb::Error::Exec(e) => {
            assert!(matches!(e, lightdb_exec::ExecError::Overloaded(_)), "{e}")
        }
        other => panic!("unexpected error: {other}"),
    }

    let mut fitting = db.session();
    fitting.set_budget(SessionBudget { deadline: None, mem_estimate: Some(64 << 10) });
    fitting.execute(&scan("vid")).unwrap();
    assert_eq!(fitting.admitted_bytes(), 0, "session admission must release fully");
    assert_eq!(db.pool().admitted(), 0);
    let _ = fs::remove_dir_all(&root);
}

/// The concurrent-session chaos soak: each round arms one seeded fault
/// scenario while several sessions execute simultaneously; every
/// outcome must be well-formed output or a classified error, and
/// nothing may leak.
#[test]
fn concurrent_session_chaos_soak() {
    let root = temp_root("soak");
    let db = LightDb::open(&root).unwrap();
    seed_tlf(&db, "vid", 8, 2);
    let q = scan("vid") >> Map::builtin(BuiltinMap::Grayscale);
    const SESSIONS: usize = 3;
    let rounds = lightdb_core::envknob::read_u64("LIGHTDB_CHAOS_SEEDS").unwrap_or(100).min(60);
    for seed in 0..rounds {
        let sc = Scenario::from_seed(seed);
        let mut sessions: Vec<_> = (0..SESSIONS).map(|_| db.session()).collect();
        for session in &mut sessions {
            session.set_read_policy(sc.read_policy);
        }
        let barrier = Arc::new(Barrier::new(SESSIONS));
        sc.arm();
        std::thread::scope(|s| {
            for session in &sessions {
                let barrier = barrier.clone();
                let q = q.clone();
                let sc = &sc;
                s.spawn(move || {
                    let mut ctx = QueryCtx::unbounded();
                    if let Some(budget) = sc.deadline {
                        ctx = ctx.with_deadline(budget);
                    }
                    if let Some(bytes) = sc.mem_estimate {
                        ctx = ctx.with_mem_estimate(bytes);
                    }
                    barrier.wait();
                    match session.execute_with_ctx(&q, ctx) {
                        Ok(out) => {
                            let frames = out.into_frame_parts().unwrap();
                            let total: usize = frames.iter().map(Vec::len).sum();
                            assert!(total <= 16, "seed {seed}: more output than input");
                            for part in &frames {
                                for f in part {
                                    assert_eq!(
                                        (f.width(), f.height()),
                                        (64, 32),
                                        "seed {seed}: malformed degraded frame"
                                    );
                                }
                            }
                        }
                        Err(err) => {
                            // Every failure must carry a classification.
                            match &err {
                                lightdb::Error::Exec(e) => {
                                    let _ = e.classify();
                                }
                                lightdb::Error::Storage(e) => {
                                    let _ = e.classify();
                                }
                                other => {
                                    panic!("seed {seed}: unclassifiable error family: {other}")
                                }
                            }
                        }
                    }
                });
            }
        });
        Scenario::disarm();
        // No-leak invariants after every round, per session and global.
        for session in &sessions {
            assert_eq!(session.admitted_bytes(), 0, "seed {seed}: session admission leaked");
        }
        assert_eq!(db.pool().admitted(), 0, "seed {seed}: global admission leaked");
    }
    // The clean path still works after the whole soak.
    let out = db.session().execute(&q).unwrap();
    assert_eq!(out.frame_count(), 16);
    let _ = fs::remove_dir_all(&root);
}
