//! The exhaustive crash-point sweep (see
//! `lightdb_testsuite::crashpoints`): a trace pass enumerates every
//! `(failpoint, nth hit)` a seeded ingest workload reaches, then each
//! point gets its own run that is fail-stopped exactly there and
//! audited against the durability contract — acked mutations fully
//! visible and readable, unacked ones all-or-nothing, recovery
//! idempotent, no debris.
//!
//! The simulated crash poisons process-global state, so the whole
//! sweep runs inside a single `#[test]` (its own binary) instead of
//! one test per site.

use lightdb_testsuite::crashpoints;

#[test]
fn every_crash_point_recovers_to_the_durability_contract() {
    let mut total = 0;
    // Two seeds double the op-interleaving coverage; each enumerates
    // its own crash points (the workloads differ).
    for seed in [0xC0FFEE_u64, 0xB0A7] {
        let report = crashpoints::run_all_crash_points(seed);
        eprintln!(
            "seed {seed:#x}: {} crash points over {} sites, all recovered",
            report.points, report.sites
        );
        assert!(
            report.sites >= 10,
            "seed {seed:#x}: only {} distinct sites reached",
            report.sites
        );
        total += report.points;
    }
    assert!(
        total >= 100,
        "crash-point enumeration shrank: only {total} points exercised"
    );
}
