//! Integration tests for the Section 3.5 applications on LightDB and
//! each baseline: the workloads must run, produce full-length output,
//! and produce *equivalent content* across systems.

use lightdb::prelude::*;
use lightdb_apps::depth::{depth_map, install_stereo, DepthVariant};
use lightdb_apps::workloads::{ffmpeg_q, lightdb_q, opencv_q, scanner_q, scidb_q};
use lightdb_baselines::scidb::SciDb;
use lightdb_codec::Decoder;
use lightdb_datasets::{encode_dataset, install, Dataset, DatasetSpec};

fn tiny() -> DatasetSpec {
    DatasetSpec { width: 128, height: 64, fps: 4, seconds: 2, qp: 22 }
}

fn temp_db(tag: &str) -> LightDb {
    let root = std::env::temp_dir().join(format!("lightdb-app-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    LightDb::open(root).unwrap()
}

fn cleanup(db: &LightDb) {
    let _ = std::fs::remove_dir_all(db.catalog().root());
}

#[test]
fn tiling_outputs_agree_across_systems() {
    let db = temp_db("tiling-agree");
    install(&db, Dataset::Venice, &tiny()).unwrap();
    let input = encode_dataset(Dataset::Venice, &tiny());

    // LightDB.
    lightdb_q::tiling(&db, "venice", "venice_tiled", 2, 2).unwrap();
    let lightdb_frames =
        db.execute(&scan("venice_tiled")).unwrap().into_frame_parts().unwrap();

    // FFmpeg.
    let (ff_stream, _) = ffmpeg_q::tiling(&input, 2, 2).unwrap();
    let ff_frames = Decoder::new().decode(&ff_stream).unwrap();

    assert_eq!(lightdb_frames[0].len(), ff_frames.len());
    // The two adaptive outputs should resemble each other: both keep
    // the hot tile crisp and degrade the rest. Compare frame 0.
    let psnr = lightdb::frame::stats::luma_psnr(&lightdb_frames[0][0], &ff_frames[0]);
    assert!(psnr > 22.0, "tiled outputs diverged: {psnr} dB");
    cleanup(&db);
}

#[test]
fn tiling_quality_is_adaptive_in_lightdb_output() {
    let db = temp_db("tiling-quality");
    install(&db, Dataset::Coaster, &tiny()).unwrap();
    lightdb_q::tiling(&db, "coaster", "coaster_tiled", 2, 2).unwrap();
    let tiled = db.execute(&scan("coaster_tiled")).unwrap().into_frame_parts().unwrap();
    let orig = db.execute(&scan("coaster")).unwrap().into_frame_parts().unwrap();
    // Second 0's hot tile is tile 0 (top-left). Its quality must beat
    // the other tiles' (compare PSNR against the source).
    let f_t = &tiled[0][1];
    let f_o = &orig[0][1];
    let (w, h) = (f_o.width(), f_o.height());
    let hot = lightdb::frame::stats::luma_psnr(
        &f_o.crop(0, 0, w / 2, h / 2),
        &f_t.crop(0, 0, w / 2, h / 2),
    );
    let cold = lightdb::frame::stats::luma_psnr(
        &f_o.crop(w / 2, h / 2, w / 2, h / 2),
        &f_t.crop(w / 2, h / 2, w / 2, h / 2),
    );
    assert!(
        hot > cold + 3.0,
        "hot tile should be visibly better: hot {hot:.1} dB vs cold {cold:.1} dB"
    );
    cleanup(&db);
}

#[test]
fn ar_overlay_marks_detections_in_all_systems() {
    let db = temp_db("ar-all");
    install(&db, Dataset::Venice, &tiny()).unwrap();
    let input = encode_dataset(Dataset::Venice, &tiny());
    let red_v = lightdb::frame::Rgb::RED.to_yuv().v;

    let count_red = |f: &lightdb::frame::Frame| {
        let mut n = 0;
        for y in 0..f.height() {
            for x in 0..f.width() {
                let c = f.get(x, y);
                if (c.v as i32 - red_v as i32).abs() < 30 && c.u < 110 {
                    n += 1;
                }
            }
        }
        n
    };

    lightdb_q::ar(&db, "venice", "venice_ar", 64).unwrap();
    let ldb = db.execute(&scan("venice_ar")).unwrap().into_frame_parts().unwrap();
    assert!(count_red(&ldb[0][4]) > 10, "lightdb output lacks boxes");

    let (ff, _) = ffmpeg_q::ar(&input, 64).unwrap();
    let ff = Decoder::new().decode(&ff).unwrap();
    assert!(count_red(&ff[4]) > 10, "ffmpeg output lacks boxes");

    let (ocv, _) = opencv_q::ar(&input, 64).unwrap();
    let ocv = Decoder::new().decode(&ocv).unwrap();
    assert!(count_red(&ocv[4]) > 10, "opencv output lacks boxes");

    let (sc, _) = scanner_q::ar(&input, 64).unwrap();
    let sc = Decoder::new().decode(&sc).unwrap();
    assert!(count_red(&sc[4]) > 10, "scanner output lacks boxes");

    let store = SciDb::open(
        std::env::temp_dir().join(format!("lightdb-app-scidb-{}", std::process::id())),
    )
    .unwrap();
    scidb_q::setup(&store, "v", &input).unwrap();
    let (sd, _) = scidb_q::ar(&store, "v", 64, 0).unwrap();
    let sd = Decoder::new().decode(&sd).unwrap();
    assert!(count_red(&sd[4]) > 10, "scidb output lacks boxes");
    cleanup(&db);
}

#[test]
fn depth_variants_agree_on_output_content() {
    let mut db = temp_db("depth-agree");
    let spec = DatasetSpec { width: 128, height: 64, fps: 2, seconds: 1, qp: 18 };
    let stereo = install_stereo(&db, Dataset::Venice, &spec).unwrap();
    depth_map(&mut db, &stereo, "d_cpu", DepthVariant::Cpu).unwrap();
    depth_map(&mut db, &stereo, "d_fpga", DepthVariant::Fpga).unwrap();
    let cpu = db.execute(&scan("d_cpu")).unwrap().into_frame_parts().unwrap();
    let fpga = db.execute(&scan("d_fpga")).unwrap().into_frame_parts().unwrap();
    // The two physical implementations estimate the same scene: their
    // maps should agree on most blocks.
    let a = &cpu[0][0];
    let b = &fpga[0][0];
    let mut agree = 0;
    let mut total = 0;
    for y in (0..a.height()).step_by(8) {
        for x in (0..a.width()).step_by(8) {
            total += 1;
            if (a.luma_at(x, y) as i32 - b.luma_at(x, y) as i32).abs() <= 32 {
                agree += 1;
            }
        }
    }
    assert!(
        agree * 10 >= total * 7,
        "depth maps disagree on {} of {total} blocks",
        total - agree
    );
    cleanup(&db);
}

#[test]
fn scanner_oom_is_reported_not_silent() {
    let input = encode_dataset(Dataset::Venice, &tiny());
    std::env::set_var("LIGHTDB_SCANNER_BUDGET", "10000");
    let r = scanner_q::tiling(&input, 2, 2);
    std::env::remove_var("LIGHTDB_SCANNER_BUDGET");
    match r {
        Err(e) => assert!(e.to_string().contains("out of memory"), "{e}"),
        Ok(_) => panic!("scanner should exhaust a 10 kB budget"),
    }
}
