//! Headset-fleet tile-serving integration tests: exactly-once
//! extraction under barriered concurrent sessions, byte-identity of
//! served tiles against direct zero-decode extraction, tile-cache
//! version safety across re-ingest, byte-budget enforcement under
//! fleet load, a seeded 3-viewer chaos soak reusing the tri-state
//! error contract, and the CI fleet smoke.
//!
//! Runs honour `LIGHTDB_THREADS` (CI smokes both 1 and 8),
//! `LIGHTDB_FLEET_SECONDS` for the smoke's trace length, and
//! `LIGHTDB_CHAOS_SEEDS` for the soak round count.

use lightdb::codec::{EncodedGop, TileGrid};
use lightdb::container::TrackRole;
use lightdb::core::Quality;
use lightdb::prelude::*;
use lightdb_apps::fleet::{generate_trace, install_tiled_pair, run_fleet, FleetConfig, TraceKind};
use lightdb_testsuite::chaos::Scenario;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

fn temp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lightdb-fleet-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

const GRID: TileGrid = TileGrid { cols: 4, rows: 4 };

/// Direct zero-decode extraction of `(second, tile)` from the stored
/// stream — the ground truth every served tile must equal.
fn direct_tile(db: &LightDb, name: &str, second: usize, tile: usize) -> Vec<u8> {
    let stored = db.catalog().read(name, None).unwrap();
    let media = stored.media();
    let track = stored
        .metadata
        .tracks
        .iter()
        .find(|t| t.role == TrackRole::Video)
        .unwrap();
    let entry = &track.gop_index[second.min(track.gop_index.len() - 1)];
    let gop =
        EncodedGop::from_bytes(&media.read_gop_bytes(&track.media_path, entry).unwrap()).unwrap();
    gop.extract_tile(tile).unwrap().to_bytes()
}

/// N barriered sessions, each with its own `TileServer`, all serving
/// the *same* hot tile at the same instant: the engine-wide cache +
/// single-flight must run `extract_tile` exactly once.
#[test]
fn hot_tile_extracted_exactly_once_across_sessions() {
    let root = temp_root("once");
    let db = LightDb::open(&root).unwrap();
    install_tiled_pair(&db, "clip", 2, GRID).unwrap();
    const SESSIONS: usize = 8;
    let cache = db.tile_cache().expect("tile cache on by default");
    let before = cache.stats();
    let barrier = Arc::new(Barrier::new(SESSIONS));
    let orientation = Orientation::tile_center(5, GRID);
    let servers: Vec<_> = (0..SESSIONS)
        .map(|_| {
            db.session()
                .tile_server(
                    "clip",
                    None,
                    TileServerConfig {
                        neighbor_ring: 0,
                        ..TileServerConfig::default()
                    },
                )
                .unwrap()
        })
        .collect();
    std::thread::scope(|s| {
        for (i, server) in servers.iter().enumerate() {
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                let view = server.serve(i as u64, 0, orientation).unwrap();
                assert_eq!(view.focus, 5);
                assert!(!view.primary.bytes.is_empty());
            });
        }
    });
    let delta = cache.stats().since(&before);
    assert_eq!(
        delta.misses, 1,
        "one extraction for one hot tile, got {delta:?}"
    );
    assert_eq!(
        delta.hits + delta.coalesced,
        SESSIONS as u64 - 1,
        "everyone else reuses it: {delta:?}"
    );
    let _ = fs::remove_dir_all(&root);
}

/// Every tile a server hands out — HQ focus and LQ ring, cache on and
/// off — is byte-identical to a direct `extract_tile` of the stored
/// stream.
#[test]
fn served_tiles_are_byte_identical_to_direct_extraction() {
    let root = temp_root("bytes");
    let db = LightDb::open(&root).unwrap();
    install_tiled_pair(&db, "clip", 2, GRID).unwrap();
    let session = db.session();
    for use_cache in [true, false] {
        let server = session
            .tile_server(
                "clip",
                Some("clip_lq"),
                TileServerConfig {
                    use_cache,
                    ..TileServerConfig::default()
                },
            )
            .unwrap();
        for second in 0..2usize {
            for tile in 0..GRID.tile_count() {
                let view = server
                    .serve(0, second as u64, Orientation::tile_center(tile, GRID))
                    .unwrap();
                assert_eq!(view.focus, tile);
                assert_eq!(
                    *view.primary.bytes,
                    direct_tile(&db, "clip", second, tile),
                    "HQ tile {tile} second {second} cache={use_cache}"
                );
                for n in &view.neighbors {
                    assert_eq!(n.quality, Quality::Low);
                    assert_eq!(
                        *n.bytes,
                        direct_tile(&db, "clip_lq", second, n.tile),
                        "LQ tile {} second {second} cache={use_cache}",
                        n.tile
                    );
                }
            }
        }
    }
    let _ = fs::remove_dir_all(&root);
}

/// Re-ingesting a TLF under the same name must never let cached tiles
/// of the old version leak into servers opened on the new one — the
/// cache key pins the catalog version, and open servers keep serving
/// the version they resolved.
#[test]
fn tile_cache_is_version_safe_across_reingest() {
    let root = temp_root("version");
    let db = LightDb::open(&root).unwrap();
    install_tiled_pair(&db, "clip", 2, GRID).unwrap();
    let session = db.session();
    let cfg = TileServerConfig {
        neighbor_ring: 0,
        ..TileServerConfig::default()
    };
    let server_v1 = session.tile_server("clip", None, cfg).unwrap();
    let o = Orientation::tile_center(3, GRID);
    let v1_bytes = server_v1.serve(0, 0, o).unwrap().primary.bytes.clone();
    let v1_direct = direct_tile(&db, "clip", 0, 3);
    assert_eq!(*v1_bytes, v1_direct);

    // Re-ingest the same frames at a different quality: same name and
    // shape, different encoded bytes.
    let spec = lightdb_datasets::DatasetSpec {
        width: 256,
        height: 128,
        fps: 4,
        seconds: 2,
        qp: 22,
    };
    let frames: Vec<_> = (0..spec.frame_count())
        .map(|i| lightdb_datasets::frame(lightdb_datasets::Dataset::Venice, &spec, i))
        .collect();
    lightdb::ingest::store_frames(
        &db,
        "clip",
        &frames,
        &lightdb::ingest::IngestConfig {
            qp: Quality::Medium.qp(),
            fps: 4,
            gop_length: 4,
            grid: GRID,
            ..Default::default()
        },
    )
    .unwrap();

    let server_v2 = session.tile_server("clip", None, cfg).unwrap();
    assert!(
        server_v2.version() > server_v1.version(),
        "re-ingest bumps the pinned version"
    );
    let v2_bytes = server_v2.serve(0, 0, o).unwrap().primary.bytes.clone();
    assert_eq!(
        *v2_bytes,
        direct_tile(&db, "clip", 0, 3),
        "new server serves the new version"
    );
    assert_ne!(*v2_bytes, v1_direct, "the two versions really differ");
    // The old server still serves its pinned version, cache warm.
    assert_eq!(*server_v1.serve(0, 0, o).unwrap().primary.bytes, v1_direct);
    let _ = fs::remove_dir_all(&root);
}

/// A fleet big enough to touch every tile of both tiers keeps the
/// engine-wide cache within its byte budget (evictions do their job)
/// while serving correctly.
#[test]
fn fleet_load_respects_cache_byte_budget() {
    let root = temp_root("budget");
    let db = LightDb::open(&root).unwrap();
    install_tiled_pair(&db, "clip", 4, GRID).unwrap();
    let session = db.session();
    let server = session
        .tile_server("clip", Some("clip_lq"), TileServerConfig::default())
        .unwrap();
    let report = run_fleet(
        &server,
        &FleetConfig {
            viewers: 32,
            seconds: 16,
            kind: TraceKind::RandomWalk,
            workers: 4,
            ..FleetConfig::default()
        },
    );
    assert_eq!(report.errors, 0, "{:?}", report.error_classes);
    assert_eq!(report.invariant_violations, 0);
    let cache = db.tile_cache().unwrap();
    assert!(
        cache.resident_bytes() <= cache.budget_bytes(),
        "cache over budget: {} > {}",
        cache.resident_bytes(),
        cache.budget_bytes()
    );
    assert!(!cache.is_empty(), "fleet load should populate the cache");
    let _ = fs::remove_dir_all(&root);
}

/// Trace generation is a pure function of the config — the property
/// the whole benchmark's reproducibility rests on.
#[test]
fn fleet_traces_replay_identically() {
    for kind in [TraceKind::Raster, TraceKind::RandomWalk, TraceKind::HotSpot] {
        let cfg = FleetConfig {
            viewers: 16,
            seconds: 32,
            kind,
            ..FleetConfig::default()
        };
        assert_eq!(
            generate_trace(&cfg, 4, 4),
            generate_trace(&cfg, 4, 4),
            "{kind:?}"
        );
    }
}

/// Seeded 3-viewer chaos soak: serving under injected storage faults
/// must uphold the tri-state contract — correct bytes, or a
/// classified error, and a failed extraction must never poison the
/// cache (the same request succeeds with correct bytes once the
/// fault clears).
#[test]
fn fleet_serving_chaos_soak() {
    let root = temp_root("chaos");
    let db = LightDb::open(&root).unwrap();
    install_tiled_pair(&db, "clip", 2, GRID).unwrap();
    let session = db.session();
    let server = session
        .tile_server("clip", Some("clip_lq"), TileServerConfig::default())
        .unwrap();
    const VIEWERS: u64 = 3;
    let rounds = lightdb_core::envknob::read_u64("LIGHTDB_CHAOS_SEEDS")
        .unwrap_or(100)
        .min(60);
    for seed in 0..rounds {
        let sc = Scenario::from_seed(seed);
        let barrier = Arc::new(Barrier::new(VIEWERS as usize));
        sc.arm();
        std::thread::scope(|s| {
            for viewer in 0..VIEWERS {
                let barrier = barrier.clone();
                let server = &server;
                s.spawn(move || {
                    let tile = (seed as usize + viewer as usize) % GRID.tile_count();
                    let o = Orientation::tile_center(tile, GRID);
                    barrier.wait();
                    match server.serve(viewer, seed % 2, o) {
                        Ok(view) => {
                            assert_eq!(view.focus, tile, "seed {seed}");
                            assert!(!view.primary.bytes.is_empty(), "seed {seed}");
                        }
                        Err(err) => match &err {
                            lightdb::Error::Exec(e) => {
                                let _ = e.classify();
                            }
                            lightdb::Error::Storage(e) => {
                                let _ = e.classify();
                            }
                            other => panic!("seed {seed}: unclassifiable error family: {other}"),
                        },
                    }
                });
            }
        });
        Scenario::disarm();
        // Post-fault: the exact keys just attempted serve correct
        // bytes — failures were not published into the cache.
        for viewer in 0..VIEWERS {
            let tile = (seed as usize + viewer as usize) % GRID.tile_count();
            let view = server
                .serve(viewer, seed % 2, Orientation::tile_center(tile, GRID))
                .unwrap();
            assert_eq!(
                *view.primary.bytes,
                direct_tile(&db, "clip", (seed % 2) as usize, tile),
                "seed {seed}: cache served stale/corrupt bytes after fault cleared"
            );
        }
    }
    let _ = fs::remove_dir_all(&root);
}

/// The CI smoke: a scaled-down fleet (64 viewers) with prefetch on
/// must finish with zero errors, zero contract violations, real
/// cross-user reuse, and a cache within budget.
#[test]
fn fleet_smoke() {
    let root = temp_root("smoke");
    let db = LightDb::open(&root).unwrap();
    install_tiled_pair(&db, "clip", 4, GRID).unwrap();
    let session = db.session();
    let server = session
        .tile_server("clip", Some("clip_lq"), TileServerConfig::default())
        .unwrap();
    let seconds = lightdb_core::envknob::read_u64("LIGHTDB_FLEET_SECONDS")
        .unwrap_or(10)
        .clamp(1, 120);
    let workers = lightdb_core::envknob::read_u64("LIGHTDB_THREADS")
        .unwrap_or(4)
        .clamp(1, 64) as usize;
    let report = run_fleet(
        &server,
        &FleetConfig {
            viewers: 64,
            seconds,
            kind: TraceKind::HotSpot,
            workers,
            prefetch: true,
            ..FleetConfig::default()
        },
    );
    assert_eq!(
        report.errors, 0,
        "classified errors in smoke: {:?}",
        report.error_classes
    );
    assert_eq!(report.invariant_violations, 0, "serving contract violated");
    assert_eq!(report.serves, 64 * seconds);
    assert_eq!(report.latency.count(), report.serves);
    let stats = db.tile_cache().unwrap().stats();
    assert!(stats.avoided() > 0, "no cross-user reuse: {stats:?}");
    let cache = db.tile_cache().unwrap();
    assert!(cache.resident_bytes() <= cache.budget_bytes());
    // Prefetch actually warmed tiles (counter lives on the session).
    assert!(
        session.metrics().counter("tile_server.prefetched_tiles") > 0,
        "prefetch warmed nothing"
    );
    let _ = fs::remove_dir_all(&root);
}
