//! Durability and storage-manager integration: restart recovery,
//! no-overwrite sharing, corruption detection.

use lightdb::prelude::*;
use lightdb_datasets::{install, Dataset, DatasetSpec};
use std::path::PathBuf;

fn tiny() -> DatasetSpec {
    DatasetSpec { width: 64, height: 32, fps: 2, seconds: 2, qp: 28 }
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("lightdb-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
fn database_survives_reopen() {
    let root = temp_root("reopen");
    {
        let db = LightDb::open(&root).unwrap();
        install(&db, Dataset::Timelapse, &tiny()).unwrap();
        db.execute(&(scan("timelapse") >> Map::builtin(BuiltinMap::Blur) >> Store::named("b")))
            .unwrap();
    }
    // Fresh process-equivalent: new handle over the same directory.
    let db = LightDb::open(&root).unwrap();
    assert!(db.catalog().exists("timelapse"));
    assert!(db.catalog().exists("b"));
    let out = db.execute(&scan("b")).unwrap();
    assert_eq!(out.frame_count(), 4);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn versions_accumulate_without_rewriting_media() {
    let root = temp_root("versions");
    let db = LightDb::open(&root).unwrap();
    install(&db, Dataset::Timelapse, &tiny()).unwrap();
    // Three stores into the same TLF → three versions.
    for _ in 0..3 {
        db.execute(&(scan("timelapse") >> Store::named("copies"))).unwrap();
    }
    let versions = db.catalog().all_versions("copies").unwrap();
    assert_eq!(versions, vec![1, 2, 3]);
    // All versions remain readable.
    for v in versions {
        let out = db.execute(&scan_version("copies", v)).unwrap();
        assert_eq!(out.frame_count(), 4, "version {v}");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_metadata_is_detected_on_read() {
    let root = temp_root("corrupt");
    let db = LightDb::open(&root).unwrap();
    install(&db, Dataset::Timelapse, &tiny()).unwrap();
    // Checkpoint first so the WAL no longer holds the metadata — a
    // reopen must detect the damage rather than silently repair it
    // from the log.
    db.checkpoint().unwrap();
    // Truncate the metadata file behind the catalog's back.
    let meta = root.join("timelapse").join("metadata1.mp4");
    let bytes = std::fs::read(&meta).unwrap();
    std::fs::write(&meta, &bytes[..bytes.len() / 2]).unwrap();
    let db2 = LightDb::open(&root).unwrap();
    assert!(db2.execute(&scan("timelapse")).is_err(), "corruption must surface as an error");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_media_is_detected_on_decode() {
    let root = temp_root("corruptmedia");
    let db = LightDb::open(&root).unwrap();
    install(&db, Dataset::Timelapse, &tiny()).unwrap();
    // Flip bytes in the middle of the media file (inside GOP data).
    let dir = root.join("timelapse");
    let media = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().map(|e| e == "lvc").unwrap_or(false))
        .unwrap();
    let mut bytes = std::fs::read(&media).unwrap();
    let mid = bytes.len() / 2;
    let end = (mid + 64).min(bytes.len());
    for b in &mut bytes[mid..end] {
        *b = !*b;
    }
    std::fs::write(&media, &bytes).unwrap();
    let db2 = LightDb::open(&root).unwrap();
    // Either an error or degraded output is acceptable; a panic is not.
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = db2.execute(&(scan("timelapse") >> Map::builtin(BuiltinMap::Blur)));
    }));
    assert!(r.is_ok(), "decoding corrupt media must not panic");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_media_is_caught_by_gop_checksum() {
    let root = temp_root("crc");
    let db = LightDb::open(&root).unwrap();
    install(&db, Dataset::Timelapse, &tiny()).unwrap();
    // Flip a single byte inside the first GOP's indexed byte range —
    // subtle damage that container parsing alone may not notice.
    let stored = db.catalog().read("timelapse", None).unwrap();
    let track = &stored.metadata.tracks[0];
    let entry = &track.gop_index[0];
    let media = root.join("timelapse").join(&track.media_path);
    let mut bytes = std::fs::read(&media).unwrap();
    bytes[(entry.byte_offset + entry.byte_len / 2) as usize] ^= 0x80;
    std::fs::write(&media, &bytes).unwrap();
    // Default policy: the checksum mismatch fails the query.
    let db2 = LightDb::open(&root).unwrap();
    let err = db2.execute(&scan("timelapse")).unwrap_err();
    assert!(format!("{err}").contains("checksum"), "unexpected error: {err}");
    // SkipCorruptGops: the query degrades instead of failing, and the
    // skip is observable in the metrics.
    let mut db3 = LightDb::open(&root).unwrap();
    db3.set_read_policy(ReadPolicy::SkipCorruptGops { max_skipped: 8 });
    let out = db3.execute(&scan("timelapse")).unwrap();
    assert!(out.frame_count() < 4, "damaged GOP must be dropped from output");
    assert!(db3.metrics().counter(lightdb::exec::metrics::counters::SKIPPED_GOPS) >= 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crash_between_media_write_and_metadata_publish_is_recovered() {
    use lightdb_storage::faults::{self, sites, Fault};
    faults::reset();
    let root = temp_root("crashpub");
    {
        let db = LightDb::open(&root).unwrap();
        install(&db, Dataset::Timelapse, &tiny()).unwrap();
        // The copy's media file lands on disk, but the process "dies"
        // before the WAL record that would commit it is appended.
        db.execute(&(scan("timelapse") >> Store::named("copy"))).unwrap();
        faults::arm_n(sites::WAL_APPEND_WRITE, Fault::Error(std::io::ErrorKind::Other), 1);
        assert!(db.execute(&(scan("timelapse") >> Store::named("copy"))).is_err());
        faults::reset();
    }
    // Restart: only the committed version survives, no temp debris.
    let db = LightDb::open(&root).unwrap();
    assert_eq!(db.catalog().all_versions("copy").unwrap(), vec![1]);
    let debris: Vec<_> = std::fs::read_dir(root.join("copy"))
        .unwrap()
        .filter(|e| {
            e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".tmp")
        })
        .collect();
    assert!(debris.is_empty(), "recovery must sweep temp files: {debris:?}");
    assert_eq!(db.execute(&scan("copy")).unwrap().frame_count(), 4);
    // The interrupted store can simply be retried.
    db.execute(&(scan("timelapse") >> Store::named("copy"))).unwrap();
    assert_eq!(db.catalog().all_versions("copy").unwrap(), vec![1, 2]);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn recovery_is_idempotent_under_leftover_artifacts() {
    let root = temp_root("idem");
    {
        let db = LightDb::open(&root).unwrap();
        install(&db, Dataset::Timelapse, &tiny()).unwrap();
        db.execute(&(scan("timelapse") >> Store::named("copy"))).unwrap();
        // Materialise the metadata files the fabrication below reads.
        db.checkpoint().unwrap();
    }
    // Fabricate every class of leftover a crash can strand: an
    // orphaned temp file, a temp file whose rename target was already
    // published, and a torn metadata file for an uncommitted version.
    let dir = root.join("copy");
    let meta1 = std::fs::read(dir.join("metadata1.mp4")).unwrap();
    std::fs::write(dir.join(".metadata9.mp4.tmp"), b"orphan").unwrap();
    std::fs::write(dir.join(".metadata1.mp4.tmp"), &meta1).unwrap();
    std::fs::write(dir.join("metadata2.mp4"), &meta1[..meta1.len() / 3]).unwrap();

    let state_of = |db: &LightDb| {
        let mut names = db.catalog().names();
        names.sort();
        names
            .into_iter()
            .map(|n| (n.clone(), db.catalog().all_versions(&n).unwrap()))
            .collect::<Vec<_>>()
    };
    let db1 = LightDb::open(&root).unwrap();
    let s1 = state_of(&db1);
    drop(db1);
    // Opening again must reach the exact same state (idempotence) and
    // leave no debris behind.
    let db2 = LightDb::open(&root).unwrap();
    assert_eq!(state_of(&db2), s1);
    assert_eq!(db2.catalog().all_versions("copy").unwrap(), vec![1]);
    for e in std::fs::read_dir(&dir).unwrap() {
        let name = e.unwrap().file_name().to_string_lossy().to_string();
        assert!(!name.ends_with(".tmp"), "debris survived recovery: {name}");
    }
    assert_eq!(db2.execute(&scan("copy")).unwrap().frame_count(), 4);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn drop_removes_content_from_disk() {
    let root = temp_root("drop");
    let db = LightDb::open(&root).unwrap();
    install(&db, Dataset::Timelapse, &tiny()).unwrap();
    assert!(root.join("timelapse").exists());
    db.execute(&drop_tlf("timelapse")).unwrap();
    assert!(!root.join("timelapse").exists());
    let _ = std::fs::remove_dir_all(&root);
}
