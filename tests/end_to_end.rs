//! End-to-end integration: ingest → declarative queries → storage →
//! read-back, across the whole stack.

use lightdb::ingest::{store_frames, IngestConfig};
use lightdb::prelude::*;
use lightdb_datasets::{install, Dataset, DatasetSpec};

fn temp_db(tag: &str) -> LightDb {
    let root = std::env::temp_dir().join(format!("lightdb-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    LightDb::open(root).unwrap()
}

fn cleanup(db: &LightDb) {
    let _ = std::fs::remove_dir_all(db.catalog().root());
}

fn tiny() -> DatasetSpec {
    DatasetSpec { width: 128, height: 64, fps: 4, seconds: 2, qp: 24 }
}

#[test]
fn figure7_pipeline_runs_end_to_end() {
    // The paper's running example: union a watermark onto an ingested
    // stream, sharpen, partition into 2-second fragments, encode.
    let db = temp_db("fig7");
    install(&db, Dataset::Venice, &tiny()).unwrap();
    lightdb_datasets::install_watermark(&db, &tiny()).unwrap();
    let q = union(
        vec![scan("venice"), scan("watermark")],
        MergeFunction::Last,
    ) >> Map::builtin(BuiltinMap::Sharpen)
        >> Partition::along(Dimension::T, 2.0)
        >> Encode::with(CodecKind::H264Sim);
    let out = db.execute(&q).unwrap();
    let QueryOutput::Encoded(streams) = out else { panic!("expected encoded output") };
    assert_eq!(streams.iter().map(|s| s.frame_count()).sum::<usize>(), 8);
    assert!(streams.iter().all(|s| s.header.codec == CodecKind::H264Sim));
    cleanup(&db);
}

#[test]
fn stored_results_decode_to_watermarked_frames() {
    let db = temp_db("wmk");
    install(&db, Dataset::Timelapse, &tiny()).unwrap();
    lightdb_datasets::install_watermark(&db, &tiny()).unwrap();
    let q = union(vec![scan("timelapse"), scan("watermark")], MergeFunction::Last)
        >> Store::named("marked");
    db.execute(&q).unwrap();
    let parts = db.execute(&scan("marked")).unwrap().into_frame_parts().unwrap();
    let frame = &parts[0][0];
    // The watermark's ink (bright, near-neutral chroma) must appear in
    // the top-left cell of the frame.
    let mut bright = 0;
    for y in 0..frame.height() / 4 {
        for x in 0..frame.width() / 4 {
            if frame.get(x, y).y > 200 {
                bright += 1;
            }
        }
    }
    assert!(bright > 16, "watermark ink missing ({bright} bright pixels)");
    cleanup(&db);
}

#[test]
fn snapshot_isolation_across_queries() {
    let db = temp_db("si");
    let frames = |luma: u8| {
        vec![lightdb::frame::Frame::filled(64, 32, lightdb::frame::Yuv::new(luma, 128, 128)); 2]
    };
    let cfg = IngestConfig { fps: 2, gop_length: 2, qp: 8, ..Default::default() };
    store_frames(&db, "v", &frames(60), &cfg).unwrap();
    store_frames(&db, "v", &frames(200), &cfg).unwrap();
    // Version pins resolve to the right content.
    let check = |version: u64, expect: u8| {
        let parts = db
            .execute(&scan_version("v", version))
            .unwrap()
            .into_frame_parts()
            .unwrap();
        let y = parts[0][0].get(10, 10).y;
        assert!(
            (y as i32 - expect as i32).abs() < 12,
            "v{version}: luma {y}, expected ≈{expect}"
        );
    };
    check(1, 60);
    check(2, 200);
    cleanup(&db);
}

#[test]
fn transcode_changes_codec_and_preserves_content() {
    let db = temp_db("transcode");
    install(&db, Dataset::Coaster, &tiny()).unwrap();
    let q = scan("coaster") >> Transcode(CodecKind::H264Sim);
    let QueryOutput::Encoded(streams) = db.execute(&q).unwrap() else { panic!() };
    assert_eq!(streams[0].header.codec, CodecKind::H264Sim);
    assert_eq!(streams[0].frame_count(), 8);
    cleanup(&db);
}

#[test]
fn create_index_then_point_scan_uses_it() {
    let db = temp_db("index");
    install(&db, Dataset::Venice, &tiny()).unwrap();
    db.execute(&create_index("venice", vec![Dimension::X, Dimension::Y, Dimension::Z]))
        .unwrap();
    // Point select at the sphere's position returns content; at a
    // distant point, nothing.
    let hit = db.execute(&(scan("venice") >> Select::at_point(0.0, 0.0, 0.0))).unwrap();
    assert_eq!(hit.frame_count(), 8);
    let miss = db.execute(&(scan("venice") >> Select::at_point(9.0, 9.0, 9.0))).unwrap();
    assert_eq!(miss.frame_count(), 0);
    cleanup(&db);
}

#[test]
fn rotation_roundtrip_content_check() {
    let db = temp_db("rotate");
    install(&db, Dataset::Venice, &tiny()).unwrap();
    use std::f64::consts::PI;
    let q = scan("venice") >> Rotate::new(PI, 0.0) >> Rotate::new(PI, 0.0);
    let parts = db.execute(&q).unwrap().into_frame_parts().unwrap();
    let orig = db.execute(&scan("venice")).unwrap().into_frame_parts().unwrap();
    // Two half turns land back on the original (exact pixel roll).
    let psnr = lightdb::frame::stats::luma_psnr(&orig[0][0], &parts[0][0]);
    assert!(psnr > 45.0, "rotation roundtrip lost content: {psnr} dB");
    cleanup(&db);
}

#[test]
fn discretize_changes_output_resolution() {
    let db = temp_db("disc");
    install(&db, Dataset::Timelapse, &tiny()).unwrap();
    let q = scan("timelapse") >> Discretize::angular(32, 16);
    let parts = db.execute(&q).unwrap().into_frame_parts().unwrap();
    assert_eq!((parts[0][0].width(), parts[0][0].height()), (32, 16));
    cleanup(&db);
}

#[test]
fn flatten_after_partition_restores_single_part() {
    let db = temp_db("flatten");
    install(&db, Dataset::Venice, &tiny()).unwrap();
    use std::f64::consts::PI;
    let q = scan("venice")
        >> Partition::along(Dimension::Theta, PI).and(Dimension::Phi, PI / 2.0)
        >> Flatten;
    let parts = db.execute(&q).unwrap().into_frame_parts().unwrap();
    assert_eq!(parts.len(), 1, "flatten must recombine the tiles");
    assert_eq!(parts[0][0].width(), 128);
    cleanup(&db);
}

#[test]
fn streaming_shorthand_and_nested_form_agree_at_runtime() {
    let db = temp_db("shorthand");
    install(&db, Dataset::Timelapse, &tiny()).unwrap();
    let shorthand = scan("timelapse") >> Map::builtin(BuiltinMap::Grayscale);
    let nested = VrqlExpr::from_plan(lightdb::core::algebra::LogicalPlan::unary(
        lightdb::core::algebra::LogicalOp::Map {
            f: lightdb::core::udf::MapFunction::Builtin(BuiltinMap::Grayscale),
            stencil: None,
        },
        scan("timelapse").into_plan(),
    ));
    let a = db.execute(&shorthand).unwrap().into_frame_parts().unwrap();
    let b = db.execute(&nested).unwrap().into_frame_parts().unwrap();
    assert_eq!(a, b);
    cleanup(&db);
}

#[test]
fn flatten_is_noop_on_single_part_encoded_stream() {
    let db = temp_db("flatnoop");
    install(&db, Dataset::Timelapse, &tiny()).unwrap();
    // Flatten over an untiled scan: the stream stays encoded and the
    // content is untouched.
    let q = scan("timelapse") >> Flatten;
    let out = db.execute(&q).unwrap();
    assert_eq!(out.frame_count(), 8);
    assert_eq!(db.metrics().count("DECODE"), 0, "single-part flatten must stay encoded");
    cleanup(&db);
}

#[test]
fn subquery_identity_roundtrips_partitions() {
    let db = temp_db("sqident");
    install(&db, Dataset::Venice, &tiny()).unwrap();
    use std::f64::consts::PI;
    // A subquery that re-encodes every partition at one quality is a
    // (lossy) identity: the output still covers the full panorama.
    let q = scan("venice")
        >> Partition::along(Dimension::T, 1.0)
            .and(Dimension::Theta, PI)
            .and(Dimension::Phi, PI / 2.0)
        >> Subquery::new("reencode", |_vol, part| {
            part >> Encode::quality(CodecKind::HevcSim, Quality::Medium)
        })
        >> Store::named("sq_out");
    db.execute(&q).unwrap();
    let parts = db.execute(&scan("sq_out")).unwrap().into_frame_parts().unwrap();
    assert_eq!(parts.len(), 1);
    assert_eq!(parts[0].len(), 8);
    assert_eq!(parts[0][0].width(), 128);
    let orig = db.execute(&scan("venice")).unwrap().into_frame_parts().unwrap();
    let psnr = lightdb::frame::stats::luma_psnr(&orig[0][0], &parts[0][0]);
    assert!(psnr > 28.0, "re-encoded partitions diverged: {psnr} dB");
    cleanup(&db);
}
