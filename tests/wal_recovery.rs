//! WAL framing and recovery: property-tested encode/decode
//! round-trips, torn-tail healing at *every* byte offset of the final
//! record, reopen idempotence, and the torn-tail / mid-log-corruption
//! distinction.

use lightdb_storage::wal::{decode_record, encode_record, RecordParse, Wal, WalOp, WalOptions};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lightdb-walrec-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn opts() -> WalOptions {
    WalOptions::default()
}

/// The file name `Wal` gives its first segment (start sequence 1).
const FIRST_SEGMENT: &str = "wal-00000000000000000001.log";

const NAMES: [&str; 3] = ["alpha", "beta", "long-ish-tlf-name"];

fn op_from(pick: usize, version: u64, meta: Vec<u8>) -> WalOp {
    if pick % 4 == 3 {
        WalOp::Drop { name: NAMES[pick % NAMES.len()].to_string() }
    } else {
        WalOp::Publish { name: NAMES[pick % NAMES.len()].to_string(), version, meta }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity, and every strict byte prefix
    /// of a record parses as `Incomplete` (a torn tail), never as a
    /// different valid record.
    #[test]
    fn record_round_trip_and_prefix_safety(
        seq in any::<u64>(),
        pick in 0usize..8,
        version in any::<u64>(),
        meta in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let op = op_from(pick, version, meta);
        let frame = encode_record(seq, &op);
        match decode_record(&frame) {
            RecordParse::Complete { seq: s, op: o, frame_len } => {
                prop_assert_eq!(s, seq);
                prop_assert_eq!(o, op);
                prop_assert_eq!(frame_len, frame.len());
            }
            other => prop_assert!(false, "round trip failed: {:?}", other),
        }
        for cut in 0..frame.len() {
            prop_assert!(
                matches!(decode_record(&frame[..cut]), RecordParse::Incomplete),
                "prefix of len {} must parse Incomplete", cut
            );
        }
    }

    /// A single flipped byte anywhere in a record is rejected — the
    /// CRC covers sequence number and payload alike. (Flips inside
    /// the magic or the length prefix may instead parse as Incomplete;
    /// they must never yield a *different* complete record.)
    #[test]
    fn flipped_byte_never_decodes_complete(
        seq in any::<u64>(),
        version in any::<u64>(),
        meta in proptest::collection::vec(any::<u8>(), 1..100),
        at_raw in any::<u64>(),
        bit in 0u32..8,
    ) {
        let op = WalOp::Publish { name: "alpha".into(), version, meta };
        let mut frame = encode_record(seq, &op);
        let at = (at_raw as usize) % frame.len();
        frame[at] ^= 1 << bit;
        if let RecordParse::Complete { seq: s, op: o, .. } = decode_record(&frame) {
            prop_assert!(
                s == seq && o == op,
                "corrupted frame decoded to a different record"
            );
            // Only possible if the flip landed in ignored padding —
            // there is none, so reaching here at all is a failure.
            prop_assert!(false, "flipped byte at {} went undetected", at);
        }
    }
}

/// Truncating the log inside its final record — at every single byte
/// offset — must heal to the longest committed prefix, and a second
/// open of the healed log must replay identically.
#[test]
fn torn_tail_heals_at_every_byte_offset() {
    // Build a reference log of three records through the real API.
    let reference = temp_dir("torn-ref");
    {
        let (wal, replay) = Wal::open(&reference, opts()).unwrap();
        assert!(replay.is_empty());
        for v in 1..=3u64 {
            wal.commit(&WalOp::Publish {
                name: "alpha".into(),
                version: v,
                meta: vec![v as u8; 40 + v as usize],
            })
            .unwrap();
        }
    }
    let full = fs::read(reference.join(FIRST_SEGMENT)).unwrap();
    // Locate the start of the third record by re-encoding the first two.
    let rec3_start: usize = [1u64, 2]
        .iter()
        .map(|&v| {
            encode_record(v, &WalOp::Publish {
                name: "alpha".into(),
                version: v,
                meta: vec![v as u8; 40 + v as usize],
            })
            .len()
        })
        .sum();
    assert!(rec3_start < full.len(), "log must hold three records");

    for cut in rec3_start..=full.len() {
        let root = temp_dir("torn-cut");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join(FIRST_SEGMENT), &full[..cut]).unwrap();
        let expect = if cut == full.len() { 3 } else { 2 };
        let (wal, replay) = Wal::open(&root, opts())
            .unwrap_or_else(|e| panic!("cut at {cut}: torn tail must heal, got {e}"));
        assert_eq!(replay.len(), expect, "cut at {cut}");
        assert_eq!(wal.written_seq(), expect as u64, "cut at {cut}");
        drop(wal);
        // Idempotence: the healed log replays identically on reopen.
        let (wal, again) = Wal::open(&root, opts()).unwrap();
        assert_eq!(again.len(), expect, "cut at {cut}: reopen diverged");
        // And the sequence chain continues where the heal left off.
        let seq = wal.commit(&WalOp::Drop { name: "alpha".into() }).unwrap();
        assert_eq!(seq, expect as u64 + 1, "cut at {cut}");
        let _ = fs::remove_dir_all(&root);
    }
    let _ = fs::remove_dir_all(&reference);
}

/// Damage *before* the last record is not a torn tail: a later intact
/// record proves the log was once longer, so recovery must refuse
/// (classified `Corrupt`) rather than silently drop committed data.
#[test]
fn mid_log_corruption_is_refused_not_healed() {
    let root = temp_dir("midlog");
    {
        let (wal, _) = Wal::open(&root, opts()).unwrap();
        for v in 1..=3u64 {
            wal.commit(&WalOp::Publish { name: "beta".into(), version: v, meta: vec![7; 64] })
                .unwrap();
        }
    }
    let seg = root.join(FIRST_SEGMENT);
    let mut bytes = fs::read(&seg).unwrap();
    // Flip one payload byte of the first record.
    bytes[24] ^= 0x40;
    fs::write(&seg, &bytes).unwrap();
    match Wal::open(&root, opts()) {
        Err(e) => {
            assert_eq!(e.classify(), lightdb_core::ErrorClass::Corrupt, "{e}");
        }
        Ok(_) => panic!("mid-log corruption must not be healed away"),
    }
    let _ = fs::remove_dir_all(&root);
}

/// Group commit under contention: concurrent committers all get
/// acknowledged, sequence numbers are dense, and a reopen replays
/// every acknowledged record.
#[test]
fn concurrent_commits_are_all_recovered() {
    let root = temp_dir("group");
    {
        let (wal, _) = Wal::open(
            &root,
            WalOptions { group_window: std::time::Duration::from_millis(1), ..opts() },
        )
        .unwrap();
        let wal = std::sync::Arc::new(wal);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let w = std::sync::Arc::clone(&wal);
            handles.push(std::thread::spawn(move || {
                for i in 0..8u64 {
                    w.commit(&WalOp::Publish {
                        name: "gamma".into(),
                        version: t * 100 + i,
                        meta: vec![t as u8; 16],
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wal.written_seq(), 32);
    }
    let (_, replay) = Wal::open(&root, opts()).unwrap();
    assert_eq!(replay.len(), 32, "every acknowledged commit must replay");
    let _ = fs::remove_dir_all(&root);
}
