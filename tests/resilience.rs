//! Resilient-execution integration tests: cancellation latency,
//! deadline expiry, admission control backpressure, degraded reads,
//! and metrics accounting under aborts.
//!
//! Several tests arm **process-global** failpoints (executor sites
//! fire on scatter worker threads, which thread-local faults cannot
//! reach), so those tests serialize on [`GLOBAL_FAULTS`].

use lightdb::prelude::*;
use lightdb_core::ErrorClass;
use lightdb_exec::metrics::counters;
use lightdb_exec::ExecError;
use lightdb_storage::faults::{self, sites, Fault};
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes tests that arm the process-global fault registry.
static GLOBAL_FAULTS: Mutex<()> = Mutex::new(());

fn lock_faults() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL_FAULTS.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("lightdb-resilience-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

/// 16 frames (8 two-frame GOPs) of 32×32 video stored as `vid`.
fn seeded_db(tag: &str) -> LightDb {
    let db = LightDb::open(temp_root(tag)).unwrap();
    let frames: Vec<Frame> =
        (0..16).map(|i| Frame::filled(32, 32, Yuv::new((i * 15) as u8, 100, 160))).collect();
    lightdb::ingest::store_frames(
        &db,
        "vid",
        &frames,
        &lightdb::ingest::IngestConfig { fps: 2, gop_length: 2, ..Default::default() },
    )
    .unwrap();
    db
}

fn cleanup(db: LightDb) {
    let root = db.catalog().root().to_path_buf();
    drop(db);
    let _ = fs::remove_dir_all(root);
}

fn exec_err(err: lightdb::Error) -> ExecError {
    match err {
        lightdb::Error::Exec(e) => e,
        other => panic!("expected an exec error, got: {other}"),
    }
}

/// A decode-forcing query over the fixture (a bare `SCAN` stays
/// encoded end-to-end and never reaches the decode failpoints).
fn decoding_query() -> VrqlExpr {
    scan("vid") >> Map::builtin(BuiltinMap::Grayscale)
}

/// A cancel landing mid-query is observed within roughly one chunk of
/// work: every GOP decode is stalled 150 ms, so the query runs at
/// least 150 ms at any parallelism (8 chunks × 150 ms serially), the
/// 50 ms cancel always lands mid-flight, and the query returns
/// `Cancelled` within about one stalled chunk of the cancel — far
/// sooner than it could have finished.
#[test]
fn cancel_mid_query_returns_promptly_with_cancelled() {
    let _guard = lock_faults();
    let db = seeded_db("cancel");
    faults::reset_global();
    faults::arm_global(sites::EXEC_DECODE_GOP, Fault::Delay { ms: 150 });
    let ctx = QueryCtx::unbounded();
    let token = ctx.cancel_token();
    let cancelled_at: std::sync::Arc<Mutex<Option<Instant>>> =
        std::sync::Arc::new(Mutex::new(None));
    let cancelled_at2 = cancelled_at.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        token.cancel();
        *cancelled_at2.lock().unwrap() = Some(Instant::now());
    });
    let result = db.execute_with_ctx(&decoding_query(), ctx);
    let returned_at = Instant::now();
    canceller.join().unwrap();
    faults::reset_global();
    let err = exec_err(result.unwrap_err());
    assert!(matches!(err, ExecError::Cancelled), "{err}");
    let cancel_instant = cancelled_at.lock().unwrap().expect("canceller ran");
    let latency = returned_at.saturating_duration_since(cancel_instant);
    // In-flight chunks finish their 150 ms stall, then the abort is
    // observed at the next chunk boundary. Serially, ~1.1 s of
    // remaining stalls were skipped.
    assert!(latency < Duration::from_millis(700), "cancel→return took {latency:?}");
    assert_eq!(db.pool().admitted(), 0);
    assert_eq!(db.metrics().open_spans(), 0);
    cleanup(db);
}

/// An expired deadline fails with `DeadlineExceeded` and the query's
/// admission reservation is released on the way out.
#[test]
fn deadline_expiry_releases_admission() {
    let _guard = lock_faults();
    let db = seeded_db("deadline");
    faults::reset_global();
    // Every decode stalls 150 ms, so the query cannot finish inside a
    // 60 ms budget at any parallelism.
    faults::arm_global(sites::EXEC_DECODE_GOP, Fault::Delay { ms: 150 });
    let ctx = QueryCtx::unbounded()
        .with_deadline(Duration::from_millis(60))
        .with_mem_estimate(1 << 20);
    let err = exec_err(db.execute_with_ctx(&decoding_query(), ctx).unwrap_err());
    faults::reset_global();
    assert!(matches!(err, ExecError::DeadlineExceeded), "{err}");
    assert_eq!(err.classify(), ErrorClass::DeadlineExceeded);
    assert_eq!(db.pool().admitted(), 0, "deadline abort leaked its admission");
    assert_eq!(db.metrics().open_spans(), 0);
    cleanup(db);
}

/// Block-policy admission applies backpressure: a query that does not
/// fit waits, runs once capacity frees up, and times out `Overloaded`
/// when it never does.
#[test]
fn blocked_admission_waits_then_runs_or_times_out() {
    let mut db = seeded_db("admission");
    db.set_admission_limit(1 << 20);
    // A rival thread occupies the whole admission budget for 600 ms.
    let pool = db.pool().clone();
    let (admitted_tx, admitted_rx) = std::sync::mpsc::channel();
    let rival = std::thread::spawn(move || {
        let reservation = pool.admit(1 << 20, AdmitPolicy::FailFast, &|| false).unwrap();
        admitted_tx.send(()).unwrap();
        std::thread::sleep(Duration::from_millis(600));
        let released_at = Instant::now();
        drop(reservation);
        released_at
    });
    admitted_rx.recv().unwrap();
    // Short timeout → the blocked query times out, classified.
    db.set_admit_policy(AdmitPolicy::Block { timeout: Duration::from_millis(80) });
    let ctx = QueryCtx::unbounded().with_mem_estimate(1 << 20);
    let err = exec_err(db.execute_with_ctx(&scan("vid"), ctx).unwrap_err());
    assert!(matches!(err, ExecError::Overloaded(_)), "{err}");
    assert_eq!(err.classify(), ErrorClass::Overloaded);
    // Generous timeout → backpressure: the query waits out the rival,
    // is admitted the moment capacity frees, and completes.
    db.set_admit_policy(AdmitPolicy::Block { timeout: Duration::from_secs(10) });
    let ctx = QueryCtx::unbounded().with_mem_estimate(1 << 20);
    let out = db.execute_with_ctx(&scan("vid"), ctx).unwrap();
    let done = Instant::now();
    let released_at = rival.join().unwrap();
    assert!(done >= released_at, "query ran before capacity freed");
    assert_eq!(out.frame_count(), 16);
    assert_eq!(db.pool().admitted(), 0);
    cleanup(db);
}

/// `ReadPolicy::Degrade` turns a corrupt GOP into a well-formed
/// substitute instead of failing or shrinking the output, and counts
/// it in `scan.degraded_gops`.
#[test]
fn degrade_policy_preserves_output_shape_over_corruption() {
    let db = seeded_db("degrade");
    let root = db.catalog().root().to_path_buf();
    let baseline = db.execute(&scan("vid")).unwrap().into_frame_parts().unwrap();
    // Flip a byte in the third GOP's media range.
    {
        let stored = db.catalog().read("vid", None).unwrap();
        let track = &stored.metadata.tracks[0];
        let entry = &track.gop_index[2];
        let media = root.join("vid").join(&track.media_path);
        let mut bytes = fs::read(&media).unwrap();
        bytes[(entry.byte_offset + entry.byte_len / 2) as usize] ^= 0x01;
        fs::write(&media, &bytes).unwrap();
    }
    // Reopen: a fresh buffer pool, so the corruption is actually read.
    drop(db);
    let mut db = LightDb::open(&root).unwrap();
    db.set_read_policy(ReadPolicy::Degrade { max_degraded: 1 });
    let out = db.execute(&scan("vid")).unwrap().into_frame_parts().unwrap();
    assert_eq!(db.metrics().counter(counters::DEGRADED_GOPS), 1);
    assert_eq!(db.metrics().counter(counters::SKIPPED_GOPS), 0);
    // Same shape as the clean baseline; undamaged GOPs byte-identical.
    assert_eq!(out.len(), baseline.len());
    let (got, want) = (&out[0], &baseline[0]);
    assert_eq!(got.len(), want.len(), "degrade must not drop frames");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!((g.width(), g.height()), (w.width(), w.height()), "frame {i}");
        if !(4..6).contains(&i) {
            assert_eq!(g, w, "undamaged frame {i} must be byte-identical");
        }
    }
    cleanup(db);
}

/// Aborts at every stage leave the span ledger balanced: no
/// `open_spans` leak, so wall/busy stay meaningful across failures.
#[test]
fn aborted_queries_leave_no_open_metrics_spans() {
    let _guard = lock_faults();
    let mut db = seeded_db("spans");
    // The reassembly failpoint only exists on the scatter path; force
    // it even on a single-core machine.
    db.set_parallelism(Parallelism::new(2));
    for site in [sites::EXEC_DECODE_GOP, sites::EXEC_CHUNK_MAP, sites::EXEC_REASSEMBLE] {
        faults::reset_global();
        faults::arm_global(site, Fault::Error(std::io::ErrorKind::Other));
        let result = db.execute(&decoding_query());
        faults::reset_global();
        assert!(result.is_err(), "fault at {site} must surface");
        assert_eq!(db.metrics().open_spans(), 0, "span leaked after abort at {site}");
        assert_eq!(db.pool().admitted(), 0);
    }
    // The database still works after all that.
    assert_eq!(db.execute(&scan("vid")).unwrap().frame_count(), 16);
    cleanup(db);
}

/// `LIGHTDB_DEADLINE_MS`-style contexts built from explicit values:
/// a pre-expired deadline never starts chunk work, and an unbounded
/// context never aborts.
#[test]
fn deadline_zero_fails_before_any_decode() {
    let db = seeded_db("predeadline");
    let decode_before = db.metrics().count("DECODE");
    let ctx = QueryCtx::unbounded().with_deadline(Duration::ZERO);
    let err = exec_err(db.execute_with_ctx(&scan("vid"), ctx).unwrap_err());
    assert!(matches!(err, ExecError::DeadlineExceeded), "{err}");
    assert_eq!(db.metrics().count("DECODE"), decode_before, "no decode may start");
    cleanup(db);
}
