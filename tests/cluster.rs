//! Cluster-wide fault tolerance: wire-protocol hardening (framing
//! proptests, torn/truncated/oversized/corrupt-frame rejection
//! mirroring `tests/wal_recovery.rs`), end-to-end coordinator/worker
//! execution over in-process workers (byte-identical reassembly,
//! replica failover, degraded fragment loss, cancellation,
//! deadlines), and the seeded cluster chaos soak asserting the
//! tri-state contract with no leaked admission bytes or open spans
//! on either side of the wire.
//!
//! Runs honour `LIGHTDB_THREADS` (CI soaks both 1 and 8) and
//! `LIGHTDB_CLUSTER_SEEDS` (default 60).

use lightdb::prelude::*;
use lightdb_cluster::net::{decode_frame, encode_frame, FrameParse, MAX_PAYLOAD};
use lightdb_cluster::{fixture, worker, Coordinator, CoordinatorConfig, Fragment};
use lightdb_core::algebra::{LogicalOp, LogicalPlan};
use lightdb_core::ErrorClass;
use lightdb_exec::metrics::counters;
use lightdb_storage::faults::{self, sites, Fault};
use lightdb_testsuite::clusterchaos::ClusterScenario;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------
// Wire framing: the same torn/corrupt reasoning as the WAL, for
// bytes in flight.
// ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any (id, payload) round-trips through a frame, and every
    /// strict prefix reads as Incomplete — never Complete, never
    /// Invalid — so a reader always knows to keep waiting.
    #[test]
    fn frame_round_trip_and_prefix_safety(
        id in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let frame = encode_frame(id, &payload);
        match decode_frame(&frame) {
            FrameParse::Complete { id: rid, payload: rp, frame_len } => {
                prop_assert_eq!(rid, id);
                prop_assert_eq!(rp, payload);
                prop_assert_eq!(frame_len, frame.len());
            }
            other => prop_assert!(false, "whole frame parsed as {:?}", other),
        }
        for cut in 1..frame.len() {
            prop_assert_eq!(
                decode_frame(&frame[..cut]),
                FrameParse::Incomplete,
                "torn frame at byte {} must read as Incomplete", cut
            );
        }
    }

    /// Flipping any single byte of a frame never yields a Complete
    /// parse: damage is detected, not misread (CRC over id+payload,
    /// magic/length checks over the header).
    #[test]
    fn flipped_byte_never_decodes_complete(
        id in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        flip in any::<usize>(),
    ) {
        let mut frame = encode_frame(id, &payload);
        let at = flip % frame.len();
        frame[at] ^= 0x01;
        if let FrameParse::Complete { id: rid, payload: rp, .. } = decode_frame(&frame) {
            // The only byte whose flip may still parse is inside the
            // length field making the frame *shorter* — and then the
            // CRC over the shorter range must still fail. Reaching
            // here at all is a contract violation.
            prop_assert!(false, "corrupt frame decoded: id {} payload {:?}", rid, rp);
        }
    }
}

#[test]
fn oversized_declared_length_is_invalid_not_an_allocation() {
    let mut frame = encode_frame(3, b"tiny");
    frame[4..8].copy_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
    assert_eq!(decode_frame(&frame), FrameParse::Invalid);
}

#[test]
fn per_byte_corruption_sweep_over_a_real_frame() {
    // Exhaustive single-byte sweep (wal_recovery idiom): every
    // position either Invalid or Incomplete, never Complete.
    let frame = encode_frame(9, b"cluster frame corruption sweep payload");
    for at in 0..frame.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut dam = frame.clone();
            dam[at] ^= bit;
            assert!(
                !matches!(decode_frame(&dam), FrameParse::Complete { .. }),
                "flip of byte {at} (mask {bit:#x}) decoded Complete"
            );
        }
    }
}

// ---------------------------------------------------------------
// End-to-end cluster fixtures.
// ---------------------------------------------------------------

const FRAMES: usize = 24;
const FRAGMENTS: usize = 3;
const WORKERS: usize = 3;

fn temp_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("lightdb-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn template() -> LogicalPlan {
    LogicalPlan::unary(
        LogicalOp::Encode {
            codec: CodecKind::H264Sim,
            quality: None,
        },
        LogicalPlan::leaf(LogicalOp::Scan {
            name: "vid".to_string(),
            version: None,
        }),
    )
}

/// One disposable cluster: per-worker data dirs (ingested once),
/// fresh in-process workers, and a coordinator over them.
struct Cluster {
    handles: Vec<Arc<Mutex<worker::WorkerHandle>>>,
    coord: Coordinator,
}

fn fast_config() -> CoordinatorConfig {
    CoordinatorConfig {
        rpc_timeout: Duration::from_millis(750),
        heartbeat_interval: Duration::from_millis(50),
        retry: lightdb_core::RetryPolicy::rpc_default(),
    }
}

fn spawn_cluster(worker_dirs: &[PathBuf], fragments: Vec<Fragment>) -> Cluster {
    let mut handles = Vec::with_capacity(worker_dirs.len());
    let mut addrs = Vec::with_capacity(worker_dirs.len());
    for dir in worker_dirs {
        let handle = worker::spawn(dir).expect("worker spawn");
        addrs.push(handle.addr());
        handles.push(Arc::new(Mutex::new(handle)));
    }
    let coord = Coordinator::new(addrs, fragments, fast_config());
    Cluster { handles, coord }
}

impl Cluster {
    fn kill_worker(&self, idx: usize) {
        self.handles[idx]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .kill();
    }
}

fn ingest(root: &Path, replication: usize) -> (Vec<PathBuf>, Vec<Fragment>, Vec<u8>) {
    let worker_dirs: Vec<PathBuf> = (0..WORKERS).map(|i| root.join(format!("w{i}"))).collect();
    let fragments =
        fixture::ingest_cluster(&worker_dirs, "vid", FRAMES, FRAGMENTS, replication)
            .expect("cluster ingest");
    let baseline_dir = root.join("baseline");
    fixture::ingest_baseline(&baseline_dir, "vid", FRAMES).expect("baseline ingest");
    let db = LightDb::open(&baseline_dir).expect("baseline open");
    let baseline = match db
        .execute_plan_with_ctx(&template(), QueryCtx::unbounded())
        .expect("baseline query")
    {
        QueryOutput::Encoded(streams) => {
            assert_eq!(streams.len(), 1);
            streams[0].to_bytes()
        }
        other => panic!("baseline produced {other:?}"),
    };
    (worker_dirs, fragments, baseline)
}

fn encoded_bytes(out: QueryOutput) -> Vec<u8> {
    match out {
        QueryOutput::Encoded(streams) => {
            assert_eq!(streams.len(), 1, "cluster queries produce one part");
            streams[0].to_bytes()
        }
        other => panic!("expected encoded output, got {other:?}"),
    }
}

// ---------------------------------------------------------------
// End-to-end: reassembly, failover, degraded loss, cancel, deadline.
// ---------------------------------------------------------------

#[test]
fn distributed_execution_matches_single_node_bytes() {
    let root = temp_root("bytes");
    let (dirs, fragments, baseline) = ingest(&root, 2);
    let cluster = spawn_cluster(&dirs, fragments);
    let out = cluster
        .coord
        .execute(&template(), ReadPolicy::Fail, &QueryCtx::unbounded())
        .expect("healthy cluster query");
    assert_eq!(encoded_bytes(out), baseline, "GOPUNION reassembly must be byte-identical");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn killed_worker_fails_over_to_replica_byte_identically() {
    let root = temp_root("failover");
    let (dirs, fragments, baseline) = ingest(&root, 2);
    let cluster = spawn_cluster(&dirs, fragments);
    cluster.kill_worker(0);
    let out = cluster
        .coord
        .execute(&template(), ReadPolicy::Fail, &QueryCtx::unbounded())
        .expect("query must survive a killed worker via replicas");
    assert_eq!(encoded_bytes(out), baseline);
    // Either the query itself failed over mid-flight, or the
    // heartbeat beat it to the diagnosis and placement routed around
    // the corpse — both count as detecting the death.
    assert!(
        cluster.coord.metrics().counter(counters::CLUSTER_FAILOVERS) > 0
            || !cluster.coord.worker_healthy(0),
        "the killed worker's death went entirely unnoticed"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unreplicated_fragment_fails_classified_unavailable() {
    let root = temp_root("unavail");
    let (dirs, fragments, _baseline) = ingest(&root, 1);
    let cluster = spawn_cluster(&dirs, fragments);
    cluster.kill_worker(0);
    let err = cluster
        .coord
        .execute(&template(), ReadPolicy::Fail, &QueryCtx::unbounded())
        .expect_err("an unreplicated fragment on a dead worker cannot succeed under Fail");
    assert_eq!(err.classify(), ErrorClass::Unavailable, "{err}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unreplicated_fragment_under_degrade_drops_whole_gops() {
    let root = temp_root("degrade");
    let (dirs, fragments, baseline) = ingest(&root, 1);
    let baseline_stream = lightdb_codec::VideoStream::from_bytes(&baseline).expect("baseline");
    let cluster = spawn_cluster(&dirs, fragments);
    cluster.kill_worker(0);
    let out = cluster
        .coord
        .execute(
            &template(),
            ReadPolicy::Degrade { max_degraded: 8 },
            &QueryCtx::unbounded(),
        )
        .expect("Degrade policy must deliver the surviving fragments");
    let stream = match out {
        QueryOutput::Encoded(streams) => streams.into_iter().next().expect("one part"),
        other => panic!("expected encoded output, got {other:?}"),
    };
    // Well-formed: it reparses, and the loss is exactly whole
    // fragments (GOP-aligned), counted by the coordinator.
    let reparsed =
        lightdb_codec::VideoStream::from_bytes(&stream.to_bytes()).expect("degraded stream");
    assert!(reparsed.frame_count() < baseline_stream.frame_count());
    assert_eq!(reparsed.frame_count() % fixture::GOP_LENGTH, 0);
    let lost = cluster.coord.metrics().counter(counters::CLUSTER_LOST_FRAGMENTS);
    assert!(lost > 0, "lost fragments must be counted");
    assert_eq!(
        reparsed.frame_count(),
        baseline_stream.frame_count() - lost as usize * (FRAMES / FRAGMENTS),
        "loss must be whole fragments"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn pre_cancelled_query_classifies_cancelled_without_dispatch() {
    let root = temp_root("cancel");
    let (dirs, fragments, _baseline) = ingest(&root, 2);
    let cluster = spawn_cluster(&dirs, fragments);
    let ctx = QueryCtx::unbounded();
    ctx.cancel_token().cancel();
    let err = cluster
        .coord
        .execute(&template(), ReadPolicy::Fail, &ctx)
        .expect_err("cancelled before dispatch");
    assert_eq!(err.classify(), ErrorClass::Cancelled, "{err}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn mid_query_cancel_interrupts_the_rpc_wait() {
    let root = temp_root("midcancel");
    let (dirs, fragments, _baseline) = ingest(&root, 2);
    let cluster = spawn_cluster(&dirs, fragments);
    // Slow every worker down well past the canceller's fuse.
    faults::reset_global();
    for w in 0..WORKERS {
        faults::arm_global_n(
            &format!("{}.w{w}", sites::CLUSTER_SEND),
            Fault::Delay { ms: 150 },
            100,
        );
    }
    let ctx = QueryCtx::unbounded();
    let token = ctx.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        token.cancel();
    });
    let err = cluster
        .coord
        .execute(&template(), ReadPolicy::Fail, &ctx)
        .expect_err("cancel must win against delayed RPCs");
    faults::reset_global();
    canceller.join().expect("canceller");
    assert_eq!(err.classify(), ErrorClass::Cancelled, "{err}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn expired_deadline_classifies_deadline_exceeded() {
    let root = temp_root("deadline");
    let (dirs, fragments, _baseline) = ingest(&root, 2);
    let cluster = spawn_cluster(&dirs, fragments);
    let ctx = QueryCtx::unbounded().with_deadline(Duration::from_millis(1));
    std::thread::sleep(Duration::from_millis(5));
    let err = cluster
        .coord
        .execute(&template(), ReadPolicy::Fail, &ctx)
        .expect_err("expired deadline");
    assert_eq!(err.classify(), ErrorClass::DeadlineExceeded, "{err}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn transient_link_faults_are_retried_with_backoff_and_recovered() {
    let root = temp_root("transient");
    let (dirs, fragments, baseline) = ingest(&root, 2);
    let cluster = spawn_cluster(&dirs, fragments);
    faults::reset_global();
    faults::arm_global_n(
        &format!("{}.w0", sites::CLUSTER_CONNECT),
        Fault::Transient(std::io::ErrorKind::Interrupted),
        2,
    );
    let out = cluster
        .coord
        .execute(&template(), ReadPolicy::Fail, &QueryCtx::unbounded())
        .expect("transient connect faults must be retried through");
    faults::reset_global();
    assert_eq!(encoded_bytes(out), baseline);
    assert!(
        cluster.coord.metrics().counter(counters::CLUSTER_RPC_RETRIES) > 0,
        "retries must be counted"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn partitioned_worker_fails_over_byte_identically() {
    let root = temp_root("partition");
    let (dirs, fragments, baseline) = ingest(&root, 2);
    let cluster = spawn_cluster(&dirs, fragments);
    faults::reset_global();
    // Every connect to w1 is refused for the whole run.
    faults::arm_global_n(
        &format!("{}.w1", sites::CLUSTER_CONNECT),
        Fault::Partition,
        1_000,
    );
    let out = cluster
        .coord
        .execute(&template(), ReadPolicy::Fail, &QueryCtx::unbounded())
        .expect("partitioned worker must fail over to replicas");
    faults::reset_global();
    assert_eq!(encoded_bytes(out), baseline);
    assert!(cluster.coord.metrics().counter(counters::CLUSTER_FAILOVERS) > 0);
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------
// The seeded cluster chaos soak.
// ---------------------------------------------------------------

fn seeds() -> u64 {
    lightdb_core::envknob::read_u64("LIGHTDB_CLUSTER_SEEDS").unwrap_or(60)
}

#[test]
fn seeded_cluster_soak_holds_tri_state_and_leaks_nothing() {
    let root = temp_root("soak");
    let (dirs, fragments, baseline) = ingest(&root, 2);
    let baseline_stream =
        lightdb_codec::VideoStream::from_bytes(&baseline).expect("baseline stream");
    let fragment_frames = FRAMES / FRAGMENTS;

    let mut identical = 0u64;
    let mut failed = 0u64;
    let mut degraded_runs = 0u64;
    for seed in 0..seeds() {
        let sc = ClusterScenario::from_seed(seed, WORKERS);
        faults::reset_global();
        let cluster = spawn_cluster(&dirs, fragments.clone());
        if let Some((site, fault, hits)) = &sc.fault {
            faults::arm_global_n(site, fault.clone(), *hits);
        }
        let killer = sc.kill_worker.map(|victim| {
            let handle = cluster.handles[victim].clone();
            let delay = sc.kill_after;
            std::thread::spawn(move || {
                std::thread::sleep(delay);
                handle.lock().unwrap_or_else(|e| e.into_inner()).kill();
            })
        });
        let mut ctx = QueryCtx::unbounded();
        if let Some(budget) = sc.deadline {
            ctx = ctx.with_deadline(budget);
        }
        let token = ctx.cancel_token();
        let canceller = sc.cancel_after.map(|after| {
            std::thread::spawn(move || {
                std::thread::sleep(after);
                token.cancel();
            })
        });

        let lost0 = cluster.coord.metrics().counter(counters::CLUSTER_LOST_FRAGMENTS);
        let result = cluster.coord.execute(&template(), sc.read_policy, &ctx);
        faults::reset_global();
        if let Some(handle) = killer {
            handle.join().expect("killer thread");
        }
        if let Some(handle) = canceller {
            handle.join().expect("canceller thread");
        }
        let lost =
            cluster.coord.metrics().counter(counters::CLUSTER_LOST_FRAGMENTS) - lost0;

        match result {
            Ok(out) => {
                let bytes = encoded_bytes(out);
                if bytes == baseline {
                    identical += 1;
                    assert_eq!(lost, 0, "seed {seed}: identical output cannot lose fragments");
                } else {
                    degraded_runs += 1;
                    assert!(
                        !matches!(sc.read_policy, ReadPolicy::Fail),
                        "seed {seed}: Fail policy must never return degraded bytes"
                    );
                    let stream = lightdb_codec::VideoStream::from_bytes(&bytes)
                        .expect("degraded output must stay well-formed");
                    assert!(lost > 0, "seed {seed}: divergent bytes with nothing lost");
                    assert_eq!(
                        stream.frame_count(),
                        baseline_stream.frame_count() - lost as usize * fragment_frames,
                        "seed {seed}: degradation must be whole lost fragments"
                    );
                }
            }
            Err(err) => {
                failed += 1;
                let class = err.classify();
                // A cancel-only schedule that failed must say so.
                if sc.fault.is_none()
                    && sc.kill_worker.is_none()
                    && sc.deadline.is_none()
                    && sc.cancel_after.is_some()
                {
                    assert_eq!(class, ErrorClass::Cancelled, "seed {seed}: {err}");
                }
                // A quiet schedule must not fail at all.
                assert!(
                    sc.fault.is_some()
                        || sc.kill_worker.is_some()
                        || sc.deadline.is_some()
                        || sc.cancel_after.is_some(),
                    "seed {seed}: fault-free schedule failed: {err} ({class})"
                );
            }
        }

        // No-leak invariants on both sides of the wire, after EVERY
        // run: the coordinator's spans and every surviving worker's
        // admission/span counters (probed over the live Stats RPC).
        assert_eq!(
            cluster.coord.metrics().open_spans(),
            0,
            "seed {seed}: coordinator leaked an open span"
        );
        for w in 0..WORKERS {
            if Some(w) == sc.kill_worker {
                continue;
            }
            let (admitted, open_spans) = cluster
                .coord
                .worker_stats(w)
                .unwrap_or_else(|e| panic!("seed {seed}: stats probe of worker {w}: {e}"));
            assert_eq!(admitted, 0, "seed {seed}: worker {w} leaked admission bytes");
            assert_eq!(open_spans, 0, "seed {seed}: worker {w} leaked open spans");
        }
    }

    // The seed mix must exercise all three contract arms.
    assert!(identical > 0, "no soak run was byte-identical");
    assert!(failed > 0, "no soak run failed — schedules too gentle");
    assert!(
        degraded_runs > 0,
        "no soak run degraded — fragment loss under lossy policies never engaged"
    );
    let _ = std::fs::remove_dir_all(&root);
}
