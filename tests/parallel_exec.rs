//! Parallel-execution integration tests: determinism across thread
//! counts, the engine-level knob, wall-vs-busy metrics under overlap,
//! and buffer-pool accounting invariants under concurrent scans.

use lightdb::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lightdb-par-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn seed(db: &LightDb, name: &str, gops: usize, gop_length: usize) {
    let frames: Vec<Frame> = (0..gops * gop_length)
        .map(|i| {
            let mut f = Frame::new(64, 32);
            for y in 0..32 {
                for x in 0..64 {
                    f.set(x, y, Yuv::new(((x * 5 + y * 3 + i * 11) % 256) as u8, 128, 128));
                }
            }
            f
        })
        .collect();
    lightdb::ingest::store_frames(
        db,
        name,
        &frames,
        &lightdb::ingest::IngestConfig {
            fps: gop_length as u32,
            gop_length,
            ..Default::default()
        },
    )
    .unwrap();
}

/// The same plan, executed at 1/2/4/8 threads, produces byte-identical
/// encoded output — the parallel layer's ordering guarantee.
#[test]
fn query_output_is_identical_across_thread_counts() {
    let root = temp_root("determinism");
    let mut db = LightDb::open(&root).unwrap();
    seed(&db, "vid", 6, 4);
    let q = scan("vid") >> Map::builtin(BuiltinMap::Sharpen) >> Encode::with(CodecKind::HevcSim);
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for threads in [1usize, 2, 4, 8] {
        db.set_parallelism(Parallelism::new(threads));
        let QueryOutput::Encoded(streams) = db.execute(&q).unwrap() else { panic!() };
        let bytes: Vec<Vec<u8>> = streams.iter().map(|s| s.to_bytes()).collect();
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(r, &bytes, "{threads}-thread output diverged from serial"),
        }
    }
    let _ = fs::remove_dir_all(&root);
}

/// Decoded (frame) outputs are identical too, including multi-part
/// plans that go through PARTITION.
#[test]
fn decoded_output_is_identical_across_thread_counts() {
    let root = temp_root("decdet");
    let mut db = LightDb::open(&root).unwrap();
    seed(&db, "vid", 4, 4);
    let q = scan("vid") >> Map::builtin(BuiltinMap::Blur);
    db.set_parallelism(Parallelism::SERIAL);
    let QueryOutput::Frames(serial) = db.execute(&q).unwrap() else { panic!() };
    db.set_parallelism(Parallelism::new(8));
    let QueryOutput::Frames(parallel) = db.execute(&q).unwrap() else { panic!() };
    assert_eq!(serial.len(), parallel.len());
    for ((va, fa), (vb, fb)) in serial.iter().zip(parallel.iter()) {
        assert_eq!(va, vb);
        assert_eq!(fa, fb);
    }
    let _ = fs::remove_dir_all(&root);
}

/// The engine surfaces the knob and honours `LIGHTDB_THREADS` as the
/// default; an explicit setter wins.
#[test]
fn engine_parallelism_knob_roundtrips() {
    let root = temp_root("knob");
    let mut db = LightDb::open(&root).unwrap();
    assert_eq!(db.parallelism().threads(), Parallelism::from_env().threads());
    db.set_parallelism(Parallelism::new(3));
    assert_eq!(db.parallelism().threads(), 3);
    db.set_parallelism(Parallelism::SERIAL);
    assert!(db.parallelism().is_serial());
    let _ = fs::remove_dir_all(&root);
}

/// STORE through the parallel auto-encode path: the stored TLF decodes
/// to the same frames regardless of thread count.
#[test]
fn parallel_store_matches_serial_store() {
    let root = temp_root("store");
    let mut db = LightDb::open(&root).unwrap();
    seed(&db, "src", 4, 4);
    db.set_parallelism(Parallelism::SERIAL);
    db.execute(&(scan("src") >> Map::builtin(BuiltinMap::Grayscale) >> Store::named("s1")))
        .unwrap();
    db.set_parallelism(Parallelism::new(8));
    db.execute(&(scan("src") >> Map::builtin(BuiltinMap::Grayscale) >> Store::named("s2")))
        .unwrap();
    let a = db.execute(&scan("s1")).unwrap().into_frame_parts().unwrap();
    let b = db.execute(&scan("s2")).unwrap().into_frame_parts().unwrap();
    assert_eq!(a, b, "parallel auto-encode at STORE changed the stored bytes");
    let _ = fs::remove_dir_all(&root);
}

/// Under parallel execution, per-operator wall time is bounded by busy
/// time (spans overlap, they don't sum) and both are recorded.
#[test]
fn metrics_distinguish_wall_from_busy() {
    let root = temp_root("walls");
    let mut db = LightDb::open(&root).unwrap();
    seed(&db, "vid", 8, 4);
    db.set_parallelism(Parallelism::new(8));
    let q = scan("vid") >> Map::builtin(BuiltinMap::Blur) >> Encode::with(CodecKind::HevcSim);
    db.execute(&q).unwrap();
    let m = db.metrics();
    for op in ["DECODE", "ENCODE", "MAP"] {
        let (busy, wall) = (m.total(op), m.wall(op));
        assert!(m.count(op) >= 8, "{op} ran once per GOP");
        assert!(busy > std::time::Duration::ZERO);
        assert!(wall > std::time::Duration::ZERO);
        // The union of spans can never exceed the sum of spans (allow
        // a tiny epsilon for the instants straddling the lock).
        assert!(
            wall <= busy + std::time::Duration::from_millis(5),
            "{op}: wall {wall:?} exceeds busy {busy:?}"
        );
    }
    let _ = fs::remove_dir_all(&root);
}

/// Concurrent scans through one shared buffer pool keep the
/// byte-accounting invariant: `stats.bytes` equals the sum of resident
/// entry lengths and stays within capacity.
#[test]
fn pool_accounting_invariant_under_concurrent_scans() {
    let root = temp_root("poolinv");
    let db = Arc::new({
        let db = LightDb::open(&root).unwrap();
        seed(&db, "vid", 6, 2);
        db
    });
    std::thread::scope(|s| {
        for _ in 0..4 {
            let db = db.clone();
            s.spawn(move || {
                for _ in 0..5 {
                    let out = db.execute(&scan("vid")).unwrap();
                    assert_eq!(out.frame_count(), 12);
                }
            });
        }
    });
    let stats = db.pool().stats();
    assert_eq!(
        stats.bytes,
        db.pool().resident_bytes(),
        "pool byte accounting diverged from residency under concurrency"
    );
    assert!(stats.hits + stats.misses >= 6 * 4 * 5_u64);
    assert!(stats.loads <= stats.misses, "single-flight: loads never exceed misses");
    let _ = fs::remove_dir_all(&root);
}
