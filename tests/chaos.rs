//! The randomized chaos soak: many seeded schedules of faults,
//! deadlines, cancels, admission pressure, and corrupt sources, each
//! asserting the tri-state resilience contract (byte-identical /
//! classified error / well-formed degraded) plus the no-leak
//! invariants after every run. Seeds are deterministic, so a failure
//! reproduces from its printed seed alone.
//!
//! Runs honour `LIGHTDB_THREADS` (CI soaks both 1 and 8) and
//! `LIGHTDB_CHAOS_SEEDS` (default 100).

use lightdb::prelude::*;
use lightdb_core::ErrorClass;
use lightdb_exec::metrics::counters;
use lightdb_testsuite::chaos::Scenario;
use std::fs;
use std::path::PathBuf;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("lightdb-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn seeds() -> u64 {
    lightdb_core::envknob::read_u64("LIGHTDB_CHAOS_SEEDS").unwrap_or(100)
}

fn demo_frames() -> Vec<Frame> {
    (0..16).map(|i| Frame::filled(32, 32, Yuv::new((i * 15) as u8, 100, 160))).collect()
}

fn store_fixture(db: &LightDb, name: &str) {
    lightdb::ingest::store_frames(
        db,
        name,
        &demo_frames(),
        &lightdb::ingest::IngestConfig { fps: 2, gop_length: 2, ..Default::default() },
    )
    .unwrap();
}

/// Flips one byte in the middle of `name`'s third GOP on disk.
fn corrupt_one_gop(db: &LightDb, name: &str) {
    let stored = db.catalog().read(name, None).unwrap();
    let track = &stored.metadata.tracks[0];
    let entry = &track.gop_index[2];
    let media = db.catalog().root().join(name).join(&track.media_path);
    let mut bytes = fs::read(&media).unwrap();
    bytes[(entry.byte_offset + entry.byte_len / 2) as usize] ^= 0x01;
    fs::write(&media, &bytes).unwrap();
}

#[test]
fn seeded_soak_holds_tri_state_contract_and_leaks_nothing() {
    let root = temp_root("soak");
    let mut db = LightDb::open(&root).unwrap();
    store_fixture(&db, "vid");
    store_fixture(&db, "vid_damaged");
    corrupt_one_gop(&db, "vid_damaged");
    // Decode-forcing query: a bare `SCAN` stays encoded end-to-end and
    // would never reach the decode/map failpoints.
    let query = |damaged: bool| {
        scan(if damaged { "vid_damaged" } else { "vid" }) >> Map::builtin(BuiltinMap::Grayscale)
    };
    // Fault-free baseline for the clean source.
    let baseline = db.execute(&query(false)).unwrap().into_frame_parts().unwrap();
    assert_eq!(baseline.iter().map(Vec::len).sum::<usize>(), 16);

    let mut completed = 0u64;
    let mut degraded_runs = 0u64;
    let mut failed = 0u64;
    for seed in 0..seeds() {
        let sc = Scenario::from_seed(seed);
        db.set_read_policy(sc.read_policy);
        let skipped0 = db.metrics().counter(counters::SKIPPED_GOPS);
        let degraded0 = db.metrics().counter(counters::DEGRADED_GOPS);
        let mut ctx = QueryCtx::unbounded();
        if let Some(budget) = sc.deadline {
            ctx = ctx.with_deadline(budget);
        }
        if let Some(bytes) = sc.mem_estimate {
            ctx = ctx.with_mem_estimate(bytes);
        }
        let token = ctx.cancel_token();
        let canceller = sc.cancel_after.map(|after| {
            std::thread::spawn(move || {
                std::thread::sleep(after);
                token.cancel();
            })
        });
        sc.arm();
        let result = db.execute_with_ctx(&query(sc.corrupt_source), ctx);
        Scenario::disarm();
        if let Some(handle) = canceller {
            handle.join().unwrap();
        }
        let skipped = db.metrics().counter(counters::SKIPPED_GOPS) - skipped0;
        let degraded = db.metrics().counter(counters::DEGRADED_GOPS) - degraded0;
        match result {
            Ok(out) => {
                completed += 1;
                let frames = out.into_frame_parts().unwrap();
                if skipped == 0 && degraded == 0 {
                    assert!(
                        !sc.corrupt_source,
                        "seed {seed}: a damaged GOP completed without skip/degrade"
                    );
                    assert_eq!(
                        frames, baseline,
                        "seed {seed}: clean completion must be byte-identical"
                    );
                } else {
                    degraded_runs += 1;
                    // Well-formed degraded output: every frame has the
                    // fixture geometry, and skips shrink the output by
                    // exactly whole GOPs.
                    for part in &frames {
                        for f in part {
                            assert_eq!((f.width(), f.height()), (32, 32), "seed {seed}");
                        }
                    }
                    let total: usize = frames.iter().map(Vec::len).sum();
                    assert_eq!(
                        total,
                        16 - 2 * skipped as usize,
                        "seed {seed}: degraded output shape"
                    );
                }
            }
            Err(err) => {
                failed += 1;
                // Every failure must carry a classification.
                let class = match &err {
                    lightdb::Error::Exec(e) => e.classify(),
                    lightdb::Error::Storage(e) => e.classify(),
                    other => panic!("seed {seed}: unclassifiable error family: {other}"),
                };
                // A cancel-only schedule must be classified as such.
                if sc.fault.is_none()
                    && sc.deadline.is_none()
                    && sc.cancel_after.is_some()
                    && !sc.corrupt_source
                {
                    assert_eq!(class, ErrorClass::Cancelled, "seed {seed}: {err}");
                }
            }
        }
        // The no-leak invariants, after EVERY run, whatever happened:
        assert_eq!(db.pool().admitted(), 0, "seed {seed}: leaked admission bytes");
        assert_eq!(db.metrics().open_spans(), 0, "seed {seed}: leaked metrics span");
        assert!(
            db.pool().stats().bytes <= lightdb::DEFAULT_POOL_BYTES,
            "seed {seed}: pool over capacity"
        );
    }
    // The seed mix must actually exercise all three contract arms.
    assert!(completed > 0, "no chaos run completed");
    assert!(failed > 0, "no chaos run failed — schedules too gentle");
    assert!(degraded_runs > 0, "no chaos run degraded — Degrade policy never engaged");
    let _ = fs::remove_dir_all(&root);
}
