//! Integration tests verifying that the optimizer's substitutions
//! change *plans and costs* without changing *answers*.

use lightdb::prelude::*;
use lightdb_datasets::{install, Dataset, DatasetSpec};

fn tiny() -> DatasetSpec {
    DatasetSpec { width: 128, height: 64, fps: 4, seconds: 2, qp: 24 }
}

fn temp_db(tag: &str, options: PlannerOptions) -> LightDb {
    let root = std::env::temp_dir().join(format!("lightdb-opt-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let db = LightDb::with_options(root, options).unwrap();
    install(&db, Dataset::Venice, &tiny()).unwrap();
    db
}

fn cleanup(db: &LightDb) {
    let _ = std::fs::remove_dir_all(db.catalog().root());
}

/// Runs the same query under two option sets and asserts identical
/// decoded output.
fn same_answer(q: &VrqlExpr, tag: &str) {
    let optimized = temp_db(&format!("{tag}-opt"), PlannerOptions::default());
    let naive = temp_db(&format!("{tag}-naive"), PlannerOptions::naive());
    let a = optimized.execute(q).unwrap().into_frame_parts().unwrap();
    let b = naive.execute(q).unwrap().into_frame_parts().unwrap();
    assert_eq!(a.len(), b.len(), "part count differs");
    for (pa, pb) in a.iter().zip(b.iter()) {
        assert_eq!(pa.len(), pb.len(), "frame count differs");
        for (fa, fb) in pa.iter().zip(pb.iter()) {
            // Optimized plans may skip a decode/encode generation, so
            // compare with a quality bound rather than bit equality.
            let psnr = lightdb::frame::stats::luma_psnr(fa, fb);
            assert!(psnr > 30.0, "optimized and naive outputs diverge: {psnr} dB");
        }
    }
    cleanup(&optimized);
    cleanup(&naive);
}

#[test]
fn gop_aligned_select_same_answer_with_and_without_hops() {
    same_answer(&(scan("venice") >> Select::along(Dimension::T, 1.0, 2.0)), "gopsel");
}

#[test]
fn map_fusion_same_answer() {
    same_answer(
        &(scan("venice")
            >> Map::builtin(BuiltinMap::Blur)
            >> Map::builtin(BuiltinMap::Grayscale)),
        "fusion",
    );
}

#[test]
fn self_union_same_answer() {
    same_answer(
        &union(vec![scan("venice"), scan("venice")], MergeFunction::Last),
        "selfunion",
    );
}

#[test]
fn hops_actually_skip_decode() {
    let db = temp_db("skipdecode", PlannerOptions::default());
    let q = scan("venice") >> Select::along(Dimension::T, 0.0, 1.0);
    db.execute(&q).unwrap();
    assert_eq!(db.metrics().count("DECODE"), 0, "GOPSELECT plan must not decode");
    assert!(db.metrics().count("GOPSELECT") > 0);
    cleanup(&db);
}

#[test]
fn naive_plans_do_decode() {
    let db = temp_db("dodecode", PlannerOptions::naive());
    let q = scan("venice") >> Select::along(Dimension::T, 0.0, 1.0);
    db.execute(&q).unwrap();
    assert!(db.metrics().count("DECODE") > 0, "naive plan must decode");
    assert_eq!(db.metrics().count("GOPSELECT"), 0);
    cleanup(&db);
}

#[test]
fn gpu_and_cpu_map_plans_agree_bit_exactly() {
    let gpu = temp_db("gpu", PlannerOptions::default());
    let cpu = temp_db(
        "cpu",
        PlannerOptions { use_gpu: false, ..PlannerOptions::default() },
    );
    let q = scan("venice") >> Map::builtin(BuiltinMap::Sharpen);
    let a = gpu.execute(&q).unwrap().into_frame_parts().unwrap();
    let b = cpu.execute(&q).unwrap().into_frame_parts().unwrap();
    assert_eq!(a, b, "device placement must not change MAP results");
    cleanup(&gpu);
    cleanup(&cpu);
}

#[test]
fn explain_reflects_option_changes() {
    let db = temp_db("explain", PlannerOptions::default());
    let q = scan("venice") >> Select::along(Dimension::T, 0.0, 1.0);
    assert!(db.explain(&q).unwrap().contains("GOPSELECT"));
    let mut db2 = temp_db("explain2", PlannerOptions::naive());
    let plan = db2.explain(&q).unwrap();
    assert!(!plan.contains("GOPSELECT"), "{plan}");
    assert!(plan.contains("DECODE"), "{plan}");
    let mut opts = db2.options();
    opts.use_hops = true;
    opts.use_indexes = true;
    db2.set_options(opts);
    assert!(db2.explain(&q).unwrap().contains("GOPSELECT"));
    cleanup(&db);
    cleanup(&db2);
}

#[test]
fn covering_tile_pushdown_decodes_fewer_tiles() {
    // A misaligned angular selection over a tiled TLF should decode
    // only the covering tiles when indexes are on.
    let root = std::env::temp_dir().join(format!("lightdb-opt-cover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let db = LightDb::open(&root).unwrap();
    // Store a 2×1-tiled stream.
    let spec = tiny();
    let frames: Vec<Frame> =
        (0..8).map(|i| lightdb_datasets::frame(lightdb_datasets::Dataset::Venice, &spec, i)).collect();
    lightdb::ingest::store_frames(
        &db,
        "tiled",
        &frames,
        &lightdb::ingest::IngestConfig {
            fps: 4,
            gop_length: 4,
            grid: lightdb::codec::TileGrid::new(2, 1),
            ..Default::default()
        },
    )
    .unwrap();
    // θ ∈ [0, 2] is inside the left tile (θ < π) but not tile-aligned.
    let q = scan("tiled") >> Select::along(Dimension::Theta, 0.0, 2.0);
    let plan = db.explain(&q).unwrap();
    assert!(plan.contains("TILESELECT([0])"), "covering-tile pushdown expected: {plan}");
    let parts = db.execute(&q).unwrap().into_frame_parts().unwrap();
    // 2 rad of 2π over 128 px ≈ 40 px wide, 2-aligned.
    assert!(parts[0][0].width() < 64, "residual crop expected");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn redundant_select_double_filter_same_result() {
    let db = temp_db("redsel", PlannerOptions::default());
    let narrow = scan("venice") >> Select::along(Dimension::T, 0.0, 1.0);
    let nested = scan("venice")
        >> Select::along(Dimension::T, 0.0, 2.0)
        >> Select::along(Dimension::T, 0.0, 1.0);
    let a = db.execute(&narrow).unwrap().into_frame_parts().unwrap();
    let b = db.execute(&nested).unwrap().into_frame_parts().unwrap();
    assert_eq!(a, b, "redundant-select elimination changed the answer");
    cleanup(&db);
}
