//! Fault-injection integration tests: deterministic kill-points
//! through the `STORE` publish protocol, checksum-detected
//! corruption under both read policies, and retrying reads.
//!
//! Faults armed through `lightdb_storage::faults` are thread-local,
//! so every test arms and executes on its own test thread without
//! interfering with the others.

use lightdb::prelude::*;
use lightdb_codec::{Encoder, EncoderConfig, VideoStream};
use lightdb_container::{TlfDescriptor, TrackRole};
use lightdb_exec::metrics::counters;
use lightdb_geom::projection::ProjectionKind;
use lightdb_storage::catalog::TrackWrite;
use lightdb_storage::faults::{self, sites, Fault};
use lightdb_storage::Catalog;
use std::fs;
use std::path::{Path, PathBuf};

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("lightdb-fault-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    root
}

fn tiny_stream() -> VideoStream {
    let frames: Vec<Frame> =
        (0..4).map(|i| Frame::filled(32, 32, Yuv::new((i * 50) as u8, 128, 128))).collect();
    Encoder::new(EncoderConfig { gop_length: 2, fps: 2, qp: 30, ..Default::default() })
        .unwrap()
        .encode(&frames)
        .unwrap()
}

fn new_track() -> TrackWrite {
    TrackWrite::New {
        role: TrackRole::Video,
        projection: ProjectionKind::Equirectangular,
        stream: tiny_stream(),
    }
}

fn sphere_tlfd() -> TlfDescriptor {
    TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, 2.0), 0)
}

fn tmp_debris(dir: &Path) -> Vec<String> {
    match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n.ends_with(".tmp"))
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// The core crash-consistency invariant: killing a `STORE` at *every*
/// step of the publish protocol leaves the catalog at either the old
/// version or the new version — never a half-published state.
#[test]
fn store_kill_points_leave_old_version_or_new_never_partial() {
    for (i, &site) in sites::PUBLISH_SEQUENCE.iter().enumerate() {
        faults::reset();
        let root = temp_root(&format!("kill{i}"));
        // Establish version 1, fault-free.
        {
            let cat = Catalog::open(&root).unwrap();
            cat.store("demo", vec![new_track()], sphere_tlfd()).unwrap();
        }
        // Kill the next store at `site`.
        let cat = Catalog::open(&root).unwrap();
        faults::arm_n(site, Fault::Error(std::io::ErrorKind::Other), 1);
        let stored = cat.store("demo", vec![new_track()], sphere_tlfd());
        faults::reset();
        // Every step up to and including the WAL fsync (the commit
        // point) precedes the acknowledgement, so each must fail the
        // store.
        assert!(stored.is_err(), "kill at {site} must fail the store");
        // "Process restart": recover from disk alone.
        let cat = Catalog::open(&root).unwrap();
        let versions = cat.all_versions("demo").unwrap();
        assert!(
            versions == vec![1] || versions == vec![1, 2],
            "kill at {site}: recovered versions {versions:?} are neither old nor old+new"
        );
        // Whatever is listed must be fully readable — metadata parses
        // and every GOP passes its checksum.
        for &v in &versions {
            let stored = cat.read("demo", Some(v)).unwrap();
            let media = stored.media();
            for t in &stored.metadata.tracks {
                for e in &t.gop_index {
                    media
                        .read_gop_bytes(&t.media_path, e)
                        .unwrap_or_else(|err| panic!("kill at {site}: v{v} unreadable: {err}"));
                }
            }
        }
        // The recovery sweep leaves no temp debris behind.
        assert_eq!(tmp_debris(&root.join("demo")), Vec::<String>::new(), "kill at {site}");
        // And the catalog accepts a subsequent fault-free store.
        let v = cat.store("demo", vec![new_track()], sphere_tlfd()).unwrap();
        assert_eq!(v, *versions.last().unwrap() + 1, "kill at {site}");
        let _ = fs::remove_dir_all(&root);
    }
}

/// A crash between writing media and publishing metadata must leave
/// the old version intact; the orphaned media file is harmless and
/// the next store reuses its version slot.
#[test]
fn crash_between_media_write_and_metadata_publish_recovers() {
    faults::reset();
    let root = temp_root("mediameta");
    {
        let cat = Catalog::open(&root).unwrap();
        cat.store("demo", vec![new_track()], sphere_tlfd()).unwrap();
        // Fail at the WAL append: media for v2 is already on disk,
        // but the version never commits.
        faults::arm_n(sites::WAL_APPEND_WRITE, Fault::Enospc, 1);
        assert!(cat.store("demo", vec![new_track()], sphere_tlfd()).is_err());
        faults::reset();
        // The orphan media file exists but no metadata references it.
        assert!(root.join("demo").join("stream2_0.lvc").exists());
    }
    let cat = Catalog::open(&root).unwrap();
    assert_eq!(cat.all_versions("demo").unwrap(), vec![1]);
    // Retrying the store commits version 2 over the orphan.
    assert_eq!(cat.store("demo", vec![new_track()], sphere_tlfd()).unwrap(), 2);
    assert_eq!(cat.read("demo", Some(2)).unwrap().version, 2);
    let _ = fs::remove_dir_all(&root);
}

/// ENOSPC during the media write fails the store cleanly: no temp
/// files, no partial version, old data still queryable end-to-end.
#[test]
fn enospc_mid_store_preserves_queryable_old_state() {
    faults::reset();
    let root = temp_root("enospc");
    let db = LightDb::open(&root).unwrap();
    lightdb::ingest::store_frames(
        &db,
        "src",
        &(0..4).map(|i| Frame::filled(32, 32, Yuv::new((i * 60) as u8, 128, 128))).collect::<Vec<_>>(),
        &lightdb::ingest::IngestConfig { fps: 2, gop_length: 2, ..Default::default() },
    )
    .unwrap();
    faults::arm_n(sites::MEDIA_TMP_WRITE, Fault::Enospc, 1);
    let r = db.execute(&(scan("src") >> Store::named("dst")));
    faults::reset();
    assert!(r.is_err(), "store must surface the ENOSPC");
    assert!(!db.catalog().exists("dst"));
    assert_eq!(tmp_debris(&root.join("dst")), Vec::<String>::new());
    // The source TLF still scans.
    assert_eq!(db.execute(&scan("src")).unwrap().frame_count(), 4);
    let _ = fs::remove_dir_all(&root);
}

/// A flipped byte in stored media is caught by the per-GOP checksum:
/// the default policy fails the query, while `SkipCorruptGops`
/// degrades output and reports the skip through exec metrics.
#[test]
fn flipped_byte_detected_under_both_read_policies() {
    faults::reset();
    let root = temp_root("flip");
    {
        let db = LightDb::open(&root).unwrap();
        lightdb::ingest::store_frames(
            &db,
            "vid",
            &(0..4).map(|i| Frame::filled(32, 32, Yuv::new((i * 60) as u8, 128, 128))).collect::<Vec<_>>(),
            &lightdb::ingest::IngestConfig { fps: 2, gop_length: 2, ..Default::default() },
        )
        .unwrap();
        // Flip one byte in the middle of the first GOP's byte range.
        let stored = db.catalog().read("vid", None).unwrap();
        let track = &stored.metadata.tracks[0];
        let entry = &track.gop_index[0];
        let media = root.join("vid").join(&track.media_path);
        let mut bytes = fs::read(&media).unwrap();
        bytes[(entry.byte_offset + entry.byte_len / 2) as usize] ^= 0x01;
        fs::write(&media, &bytes).unwrap();
    }
    // Default policy: the corruption fails the query.
    let db = LightDb::open(&root).unwrap();
    let err = db.execute(&scan("vid")).unwrap_err();
    assert!(format!("{err}").contains("checksum"), "unexpected error: {err}");
    // Skip policy: the query degrades instead, and the skip is counted.
    let mut db = LightDb::open(&root).unwrap();
    db.set_read_policy(ReadPolicy::SkipCorruptGops { max_skipped: 4 });
    let out = db.execute(&scan("vid")).unwrap();
    assert_eq!(out.frame_count(), 2, "one 2-frame GOP should have been skipped");
    assert_eq!(db.metrics().counter(counters::SKIPPED_GOPS), 1);
    // A zero budget behaves like Fail.
    let mut db = LightDb::open(&root).unwrap();
    db.set_read_policy(ReadPolicy::SkipCorruptGops { max_skipped: 0 });
    assert!(db.execute(&scan("vid")).is_err());
    let _ = fs::remove_dir_all(&root);
}

/// Transient I/O errors (EINTR-style) on the media read path are
/// retried and the query succeeds.
#[test]
fn transient_read_errors_are_invisible_to_queries() {
    faults::reset();
    let root = temp_root("transient");
    let db = LightDb::open(&root).unwrap();
    lightdb::ingest::store_frames(
        &db,
        "vid",
        &(0..4).map(|i| Frame::filled(32, 32, Yuv::new((i * 60) as u8, 128, 128))).collect::<Vec<_>>(),
        &lightdb::ingest::IngestConfig { fps: 2, gop_length: 2, ..Default::default() },
    )
    .unwrap();
    faults::arm_n(sites::MEDIA_READ, Fault::Transient(std::io::ErrorKind::Interrupted), 2);
    let out = db.execute(&scan("vid")).unwrap();
    faults::reset();
    assert_eq!(out.frame_count(), 4);
    let _ = fs::remove_dir_all(&root);
}

/// Torn writes injected below the publish layer are caught at read
/// time by the checksum even though the store itself "succeeded".
#[test]
fn torn_media_write_is_caught_on_first_scan() {
    faults::reset();
    let root = temp_root("torn");
    let cat = Catalog::open(&root).unwrap();
    let full_len = tiny_stream().to_bytes().len();
    faults::arm_n(sites::MEDIA_WRITE_BYTES, Fault::TruncateWrite { keep: full_len / 2 }, 1);
    // The store publishes — the corruption is silent at write time.
    let stored = cat.store("demo", vec![new_track()], sphere_tlfd());
    faults::reset();
    if stored.is_err() {
        // Acceptable: the torn stream may already fail validation
        // during the store itself.
        let _ = fs::remove_dir_all(&root);
        return;
    }
    let tlf = cat.read("demo", None).unwrap();
    let media = tlf.media();
    let damaged = tlf.metadata.tracks.iter().any(|t| {
        t.gop_index.iter().any(|e| media.read_gop_bytes(&t.media_path, e).is_err())
    });
    assert!(damaged, "a torn media write must be detected on read");
    let _ = fs::remove_dir_all(&root);
}
