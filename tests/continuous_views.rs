//! Integration tests for partially materialised continuous TLFs
//! (Section 4.1): a `STORE` whose input ends in `INTERPOLATE`
//! materialises only the discrete prefix and records the remaining
//! operator subgraph; a later `SCAN` transparently re-applies it.

use lightdb::exec::fpga::DepthMapFpga;
use lightdb::prelude::*;
use lightdb_datasets::{install, Dataset, DatasetSpec};
use std::sync::Arc;

fn tiny() -> DatasetSpec {
    DatasetSpec { width: 128, height: 64, fps: 4, seconds: 2, qp: 22 }
}

fn temp_db(tag: &str) -> LightDb {
    let root = std::env::temp_dir().join(format!("lightdb-cv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut db = LightDb::open(root).unwrap();
    let mut options = db.options();
    options.defer_continuous = true; // partially materialised views on
    db.set_options(options);
    install(&db, Dataset::Venice, &tiny()).unwrap();
    db
}

fn cleanup(db: &LightDb) {
    let _ = std::fs::remove_dir_all(db.catalog().root());
}

#[test]
fn builtin_interpolate_store_records_view_subgraph() {
    let db = temp_db("builtin");
    let q = scan("venice")
        >> Interpolate::builtin(BuiltinInterp::NearestNeighbor)
        >> Store::named("cont");
    db.execute(&q).unwrap();
    let stored = db.catalog().read("cont", None).unwrap();
    assert!(
        stored.metadata.tlf.view_subgraph.is_some(),
        "a continuous store must carry its view subgraph"
    );
    // Scanning the continuous TLF re-applies the interpolation and
    // still yields the full content.
    let out = db.execute(&scan("cont")).unwrap();
    assert_eq!(out.frame_count(), 8);
    cleanup(&db);
}

#[test]
fn discrete_store_has_no_view_subgraph() {
    let db = temp_db("discrete");
    db.execute(&(scan("venice") >> Map::builtin(BuiltinMap::Blur) >> Store::named("d")))
        .unwrap();
    let stored = db.catalog().read("d", None).unwrap();
    assert!(stored.metadata.tlf.view_subgraph.is_none());
    cleanup(&db);
}

#[test]
fn operators_above_interpolate_are_deferred_not_materialized() {
    let db = temp_db("defer");
    // Interpolate, then grayscale: both belong to the view subgraph;
    // the materialised prefix is the raw scan.
    let q = scan("venice")
        >> Interpolate::builtin(BuiltinInterp::Linear)
        >> Map::builtin(BuiltinMap::Grayscale)
        >> Store::named("cont2");
    db.execute(&q).unwrap();
    // The stored media is NOT grayscale (the map is deferred)…
    let stored = db.catalog().read("cont2", None).unwrap();
    assert!(stored.metadata.tlf.view_subgraph.is_some());
    let raw = stored
        .media()
        .read_stream(&stored.metadata.tracks[0].media_path)
        .unwrap();
    let raw_frames = lightdb::codec::Decoder::new().decode(&raw).unwrap();
    let c = raw_frames[0].get(30, 50);
    assert!(
        (c.u as i32 - 128).abs() > 8 || (c.v as i32 - 128).abs() > 8,
        "materialised prefix should retain colour"
    );
    // …but scanning applies it, so query results are grayscale.
    let parts = db.execute(&scan("cont2")).unwrap().into_frame_parts().unwrap();
    let c = parts[0][0].get(30, 50);
    assert!(
        (c.u as i32 - 128).abs() <= 8 && (c.v as i32 - 128).abs() <= 8,
        "scan must re-apply the deferred grayscale, got {c:?}"
    );
    cleanup(&db);
}

#[test]
fn custom_udf_views_resolve_through_the_registry() {
    let mut db = temp_db("customudf");
    db.register_interp_udf(Arc::new(DepthMapFpga));
    // A stereo-ish union + custom depth interpolation, stored
    // continuously.
    let spec = tiny();
    let stereo =
        lightdb_apps::depth::install_stereo(&db, Dataset::Venice, &spec).unwrap();
    let q = union(
        vec![
            scan(&stereo) >> Select::at(Dimension::X, 0.032),
            scan(&stereo) >> Select::at(Dimension::X, -0.032),
        ],
        MergeFunction::Last,
    ) >> Interpolate::udf(Arc::new(DepthMapFpga))
        >> Store::named("depth_view");
    db.execute(&q).unwrap();
    let stored = db.catalog().read("depth_view", None).unwrap();
    assert!(stored.metadata.tlf.view_subgraph.is_some());
    // The materialised prefix holds the two eye streams…
    assert_eq!(stored.metadata.tracks.len(), 2, "both union parts materialise");
    // …and scanning synthesises the depth map through the registry.
    let parts = db.execute(&scan("depth_view")).unwrap().into_frame_parts().unwrap();
    assert_eq!(parts.len(), 1, "interpolation collapses the stereo pair");
    assert_eq!(parts[0].len(), 8);
    cleanup(&db);
}

#[test]
fn unregistered_custom_udf_is_a_clean_error() {
    let db = {
        let mut db = temp_db("unregistered");
        db.register_interp_udf(Arc::new(DepthMapFpga));
        let spec = tiny();
        let stereo =
            lightdb_apps::depth::install_stereo(&db, Dataset::Venice, &spec).unwrap();
        let q = union(
            vec![
                scan(&stereo) >> Select::at(Dimension::X, 0.032),
                scan(&stereo) >> Select::at(Dimension::X, -0.032),
            ],
            MergeFunction::Last,
        ) >> Interpolate::udf(Arc::new(DepthMapFpga))
            >> Store::named("depth_view");
        db.execute(&q).unwrap();
        db
    };
    // Re-open without registering the UDF: scanning must error, not
    // panic or silently skip the view. (Deferral setting is
    // irrelevant for reads: the stored subgraph always applies.)
    let fresh = LightDb::open(db.catalog().root()).unwrap();
    let r = fresh.execute(&scan("depth_view"));
    assert!(r.is_err(), "scan of a view with an unregistered UDF must fail cleanly");
    cleanup(&db);
}
