//! Predictive 360° tiling (Section 3.5): encode the predicted
//! viewport at high quality and everything else at low quality,
//! recombining the tiles homomorphically.
//!
//! ```sh
//! cargo run --release --example predictive_tiling
//! ```

use lightdb::prelude::*;
use lightdb_apps::workloads::lightdb_q;
use lightdb_datasets::{install, Dataset, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("lightdb-tiling-example");
    let _ = std::fs::remove_dir_all(&root);
    let db = LightDb::open(&root)?;

    let spec = DatasetSpec { width: 256, height: 128, fps: 10, seconds: 4, qp: 22 };
    install(&db, Dataset::Coaster, &spec)?;

    let (cols, rows) = (4, 4);
    let stats = lightdb_q::tiling(&db, "coaster", "coaster_tiled", cols, rows)?;
    println!(
        "tiled {} frames into a {cols}×{rows} grid: {} B → {} B ({:.0}% smaller)",
        stats.frames,
        stats.bytes_in,
        stats.bytes_out,
        stats.reduction() * 100.0
    );

    // The interesting part: the stitch happened in the encoded
    // domain. TILEUNION ran; no second decode/encode cycle.
    println!("\noperator breakdown:");
    for (op, dur, n) in db.metrics().report() {
        println!("  {op:<12} {:>8.1} ms  ×{n}", dur.as_secs_f64() * 1e3);
    }
    assert!(db.metrics().count("TILEUNION") > 0, "homomorphic stitch expected");

    // Decode the adaptive output and confirm it is a full panorama.
    let parts = db.execute(&scan("coaster_tiled"))?.into_frame_parts()?;
    println!(
        "\nadaptive stream decodes to {}×{} frames",
        parts[0][0].width(),
        parts[0][0].height()
    );
    Ok(())
}
