//! Light-slab tour: ingest a light slab (the "Cats" dataset) and run
//! the Figure 14 operations against it — monoscopic and stereoscopic
//! point selections, temporal ranges, and light-field maps.
//!
//! ```sh
//! cargo run --release --example light_slab_tour
//! ```

use lightdb::prelude::*;
use lightdb_datasets::install_cats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("lightdb-slab-example");
    let _ = std::fs::remove_dir_all(&root);
    let db = LightDb::open(&root)?;

    // An 8×8 uv sampling with 64×64 st-images, 3 time steps.
    install_cats(&db, 64, 8, 8, 3)?;
    println!("installed light slab 'cats' (8×8 uv, 3 time steps)");

    // Monoscopic selection: one viewpoint.
    let mono = scan("cats") >> Select::at(Dimension::X, 0.3).and(Dimension::Y, 0.5, 0.5);
    let parts = db.execute(&mono)?.into_frame_parts()?;
    println!("monoscopic view: {} frames at one uv sample", parts[0].len());

    // Stereoscopic selection: two nearby viewpoints (the eyes).
    let ipd = 0.064;
    let stereo = union(
        vec![
            scan("cats") >> Select::at(Dimension::X, 0.5 - ipd / 2.0).and(Dimension::Y, 0.5, 0.5),
            scan("cats") >> Select::at(Dimension::X, 0.5 + ipd / 2.0).and(Dimension::Y, 0.5, 0.5),
        ],
        MergeFunction::Last,
    );
    let parts = db.execute(&stereo)?.into_frame_parts()?;
    println!("stereoscopic view: {} part(s)", parts.len());

    // Temporal range selection over the slab (GOP index at work).
    let trange = scan("cats") >> Select::along(Dimension::T, 1.0, 2.0);
    let out = db.execute(&trange)?;
    println!("t ∈ [1, 2] selects {} frames", out.frame_count());

    // Light-field maps: refocus ("FOCUS") and grayscale over every
    // uv sample.
    for m in [BuiltinMap::Focus, BuiltinMap::Grayscale] {
        let q = scan("cats") >> Map::builtin(m);
        let out = db.execute(&q)?;
        println!("{:<10} processed {} st-images", format!("{m:?}"), out.frame_count());
    }

    println!("\noperator breakdown:");
    for (op, dur, n) in db.metrics().report() {
        println!("  {op:<12} {:>8.1} ms  ×{n}", dur.as_secs_f64() * 1e3);
    }
    Ok(())
}
