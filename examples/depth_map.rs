//! Depth-map generation (Section 3.5 / Figure 12): sample a stereo
//! pair at `p ± i/2` and synthesise a depth map, on three physical
//! configurations (CPU, FPGA, hybrid).
//!
//! ```sh
//! cargo run --release --example depth_map
//! ```

use lightdb::prelude::*;
use lightdb_apps::depth::{depth_map, install_stereo, DepthVariant};
use lightdb_datasets::{Dataset, DatasetSpec};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("lightdb-depth-example");
    let _ = std::fs::remove_dir_all(&root);
    let mut db = LightDb::open(&root)?;

    let spec = DatasetSpec { width: 256, height: 128, fps: 10, seconds: 2, qp: 22 };
    let stereo = install_stereo(&db, Dataset::Timelapse, &spec)?;
    println!("installed stereoscopic TLF '{stereo}' (two spheres, ±{}m)", 0.032);

    for variant in DepthVariant::ALL {
        let started = Instant::now();
        let out = format!("depth_{}", variant.name().to_lowercase());
        let stats = depth_map(&mut db, &stereo, &out, variant)?;
        println!(
            "{:<7} {} frames in {:>7.1} ms",
            variant.name(),
            stats.frames,
            started.elapsed().as_secs_f64() * 1e3
        );
    }

    // Sanity: the depth output has bright (near) and dark (far)
    // regions rather than a flat field.
    let parts = db.execute(&scan("depth_hybrid"))?.into_frame_parts()?;
    let f = &parts[0][0];
    let variance = lightdb::frame::stats::luma_variance(f);
    println!("depth map luma variance: {variance:.1}");
    Ok(())
}
