//! Quickstart: open a database, ingest a 360° video, run declarative
//! VRQL queries against it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lightdb::prelude::*;
use lightdb_datasets::{install, Dataset, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("lightdb-quickstart");
    let _ = std::fs::remove_dir_all(&root);
    let db = LightDb::open(&root)?;

    // 1. Ingest: generate and store a 4-second 360° panorama.
    let spec = DatasetSpec { width: 256, height: 128, fps: 10, seconds: 4, qp: 24 };
    install(&db, Dataset::Venice, &spec)?;
    println!("ingested 'venice': {} frames", spec.frame_count());

    // 2. A declarative query: grayscale the middle two seconds and
    //    store the result (Table 1 examples, combined).
    let q = scan("venice")
        >> Select::along(Dimension::T, 1.0, 3.0)
        >> Map::builtin(BuiltinMap::Grayscale)
        >> Store::named("venice_gray");
    println!("\nEXPLAIN:\n{}", db.explain(&q)?);
    let out = db.execute(&q)?;
    println!("executed: {out:?}");

    // 3. Read it back.
    let parts = db.execute(&scan("venice_gray"))?.into_frame_parts()?;
    println!("\nread back {} frames", parts[0].len());

    // 4. A GOP-aligned temporal selection is answered homomorphically
    //    (no video decode at all — check the plan).
    let q = scan("venice") >> Select::along(Dimension::T, 2.0, 3.0);
    println!("\nEXPLAIN (homomorphic):\n{}", db.explain(&q)?);
    let out = db.execute(&q)?;
    println!("selected {} frames without decoding", out.frame_count());

    // 5. Per-operator metrics collected across the session.
    println!("\noperator breakdown:");
    for (op, dur, n) in db.metrics().report() {
        println!("  {op:<12} {:>8.1} ms  ×{n}", dur.as_secs_f64() * 1e3);
    }
    Ok(())
}
