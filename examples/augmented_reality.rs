//! Augmented reality (Section 3.5): run an object detector over a
//! downsampled stream and union the detection boxes back onto the
//! original.
//!
//! ```sh
//! cargo run --release --example augmented_reality
//! ```

use lightdb::prelude::*;
use lightdb_apps::detect::detect_boxes;
use lightdb_apps::workloads::lightdb_q;
use lightdb_datasets::{install, Dataset, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("lightdb-ar-example");
    let _ = std::fs::remove_dir_all(&root);
    let db = LightDb::open(&root)?;

    // Venice has gondolas the detector locks onto.
    let spec = DatasetSpec { width: 256, height: 128, fps: 10, seconds: 3, qp: 22 };
    install(&db, Dataset::Venice, &spec)?;

    let stats = lightdb_q::ar(&db, "venice", "venice_ar", 128)?;
    println!("annotated {} frames ({} B output)", stats.frames, stats.bytes_out);

    // Inspect one output frame: count red-ish pixels (drawn boxes).
    let parts = db
        .execute(&(scan("venice_ar") >> Select::along(Dimension::T, 0.0, 0.2)))?
        .into_frame_parts()?;
    let frame = &parts[0][0];
    let red = lightdb::frame::Rgb::RED.to_yuv();
    let mut marked = 0usize;
    for y in 0..frame.height() {
        for x in 0..frame.width() {
            let c = frame.get(x, y);
            if (c.v as i32 - red.v as i32).abs() < 30 && c.u < 110 {
                marked += 1;
            }
        }
    }
    println!("first frame carries ~{marked} annotated pixels");

    // And the raw detector, standalone:
    let sample = lightdb_datasets::venice_frame(256, 128, 5, 10);
    for b in detect_boxes(&sample.resize(128, 128)) {
        println!("detection at ({}, {}) size {}×{}", b.x, b.y, b.w, b.h);
    }
    Ok(())
}
