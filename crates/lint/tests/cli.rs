//! End-to-end tests for the `lint` binary: exit codes over a seeded
//! bad workspace, the real (repaired) workspace, and the interleaving
//! harness subcommand.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lint"))
}

/// Builds a throwaway mini-workspace seeded with one violation per
/// rule, so the binary's non-zero exit covers all of R1–R8 (the
/// storage `bad.rs` fires R3 and R6 on the same untimed wait).
fn seeded_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("lint-cli-{tag}-{}", std::process::id()));
    match fs::remove_dir_all(&root) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => panic!("failed to clear {}: {e}", root.display()),
    }
    let write = |rel: &str, content: &str| {
        let p = root.join(rel);
        fs::create_dir_all(p.parent().expect("rel path has a parent")).expect("mkdir");
        fs::write(p, content).expect("write fixture");
    };
    write("Cargo.toml", "[workspace]\nmembers = []\n");
    write(
        "crates/codec/src/bad.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
         // lint: hot-loop — seeded\n\
         pub fn g() -> Vec<u8> { vec![0u8; 4] }\n\
         // lint: end-hot-loop\n\
         pub unsafe fn h(p: *const u8) -> u8 { *p }\n",
    );
    write(
        "crates/storage/src/bad.rs",
        "pub fn w(pool: &Pool, flight: &Flight) {\n\
             let inner = pool.inner.lock();\n\
             let done = flight.cv.wait(flight.done.lock());\n\
             drop(done);\n\
             drop(inner);\n\
         }\n\
         pub fn r(a: &std::path::Path, b: &std::path::Path) {\n\
             std::fs::rename(a, b).expect(\"seeded\");\n\
         }\n\
         pub fn s(f: &std::fs::File) {\n\
             f.sync_all().expect(\"seeded\");\n\
         }\n",
    );
    write(
        "crates/cluster/src/bad.rs",
        "pub fn dial(a: &str) -> std::io::Result<std::net::TcpStream> {\n\
             std::net::TcpStream::connect(a)\n\
         }\n",
    );
    root
}

fn run_on(root: &Path) -> (i32, String) {
    let out = bin().arg("--root").arg(root).output().expect("spawn lint");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("exit code"), text)
}

#[test]
fn nonzero_on_seeded_violations_with_file_line_output() {
    let root = seeded_workspace("seeded");
    let (code, text) = run_on(&root);
    assert_eq!(code, 1, "expected violations exit:\n{text}");
    for needle in [
        "crates/codec/src/bad.rs:1: R1:",
        "crates/codec/src/bad.rs:3: R2:",
        "crates/storage/src/bad.rs:3: R3:",
        "crates/codec/src/bad.rs:5: R4:",
        "crates/storage/src/bad.rs:8: R5:",
        "crates/storage/src/bad.rs:3: R6:",
        "crates/storage/src/bad.rs:11: R7:",
        "crates/cluster/src/bad.rs:2: R8:",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn zero_on_the_repaired_workspace() {
    // The test runs with CWD = crates/lint; the binary discovers the
    // enclosing workspace root on its own.
    let out = bin().output().expect("spawn lint");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(out.status.code(), Some(0), "workspace must be lint-clean:\n{text}");
    assert!(text.contains("0 violations"), "{text}");
}

#[test]
fn usage_error_exits_2() {
    let out = bin().arg("--no-such-flag").output().expect("spawn lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn interleave_subcommand_reports_schedules() {
    let out = bin().arg("interleave").output().expect("spawn lint");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(out.status.code(), Some(0), "{text}");
    assert!(text.contains("schedules"), "{text}");
}
