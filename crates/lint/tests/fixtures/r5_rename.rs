// R5 fixture: `fs::rename` anywhere but storage::durable must fire —
// publishing bytes without the tmp-write/fsync/rename protocol breaks
// crash consistency.
pub fn sneaky_publish(a: &std::path::Path, b: &std::path::Path) -> std::io::Result<()> {
    std::fs::rename(a, b) // line 5
}
