// R8 fixture: raw socket construction anywhere but cluster::net must
// fire — bytes that bypass the framed Conn also bypass its CRC
// checks, timeouts, and fault injection sites.
pub fn sneaky_dial(addr: &str) -> std::io::Result<std::net::TcpStream> {
    std::net::TcpStream::connect(addr) // line 5
}

pub fn sneaky_listen(addr: &str) -> std::io::Result<std::net::TcpListener> {
    std::net::TcpListener::bind(addr) // line 9
}

// Type positions are not constructions: holding or borrowing an
// already-made socket is fine, only making one is flagged.
pub fn hold(stream: std::net::TcpStream) -> std::net::TcpStream {
    stream
}
