// R6 fixture: an untimed condvar wait parks a cancelled query
// forever. Only the timed helper in storage::bufferpool may wait.
pub fn parks_forever(state: &Shared) {
    let guard = state.done.lock();
    let guard = state.cv.wait(guard); // line 5: untimed wait
    drop(guard);
}

pub fn polls_with_timeout(state: &Shared) {
    let mut guard = state.done.lock();
    // Timed waits are a different ident and never match.
    state.cv.wait_timeout(&mut guard, core::time::Duration::from_millis(2));
    drop(guard);
}
