// R4 fixture: an undocumented `unsafe` fires; one with the required
// justification comment (same line or up to three lines above) does not.
pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p } // line 4: no justification comment
}

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: fixture — caller guarantees `p` is valid and aligned.
    unsafe { *p }
}
