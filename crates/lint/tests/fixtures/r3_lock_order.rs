// R3 fixture (classified as storage source): blocking on a flight
// condvar while the pool guard is live, and re-acquiring the pool
// lock inside a flight critical section, must both fire.
pub fn wait_under_pool_lock(pool: &Pool, flight: &Flight) {
    let inner = pool.inner.lock();
    let done = flight.done.lock();
    let done = flight.cv.wait(done); // line 7: wait while `inner` live
    drop(done);
    drop(inner);
}

pub fn pool_inside_flight(pool: &Pool, flight: &Flight) {
    let done = flight.done.lock();
    let inner = pool.inner.lock(); // line 14: pool after flight
    drop(inner);
    drop(done);
}

pub fn correct_order(pool: &Pool, flight: &Flight) {
    let inner = pool.inner.lock();
    drop(inner);
    let done = flight.done.lock();
    let done = flight.cv.wait(done); // fine: pool guard dropped first
    drop(done);
}
