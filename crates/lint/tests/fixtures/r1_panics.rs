// R1 fixture: each panic-family construct below must be reported at
// the annotated line when classified as library-tier code.
pub fn by_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // line 4
}
pub fn by_expect(x: Option<u32>) -> u32 {
    x.expect("boom") // line 7
}
pub fn by_panic() {
    panic!("no") // line 10
}
pub fn by_todo() {
    todo!() // line 13
}
pub fn by_unimplemented() {
    unimplemented!() // line 16
}
