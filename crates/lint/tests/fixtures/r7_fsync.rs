// R7 fixture: a sync call anywhere but storage::durable / storage::wal
// must fire — ad-hoc fsyncs bypass the durability boundary (publish
// protocol, WAL group commit) and imply an uncovered acknowledgement.
pub fn sneaky_sync(f: &std::fs::File) -> std::io::Result<()> {
    f.sync_all() // line 5
}

pub fn sneaky_sync_data(f: &std::fs::File) -> std::io::Result<()> {
    f.sync_data() // line 9
}

// Declarations are not calls: defining a helper named like the
// syscall is fine, only invoking one is flagged.
pub fn sync_all(_f: &std::fs::File) {}
