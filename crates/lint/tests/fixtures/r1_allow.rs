// R1 fixture: a justified allow suppresses; a bare allow is itself a
// violation and suppresses nothing.

pub fn suppressed(x: Option<u32>) -> u32 {
    // lint: allow(R1): fixture — the caller checked is_some() already
    x.unwrap() // line 6: covered by the allow above
}

pub fn bare(x: Option<u32>) -> u32 {
    // lint: allow(R1)
    x.unwrap() // line 11: still fires (the bare allow on 10 is rejected)
}
