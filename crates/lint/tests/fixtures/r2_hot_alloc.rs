// R2 fixture: allocation tokens inside a hot-loop fence must fire;
// the identical tokens outside the fence must not.
pub fn cold() -> Vec<u8> {
    Vec::new() // outside any fence: fine
}

pub fn hot(n: usize) -> u32 {
    let mut acc = 0u32;
    // lint: hot-loop — fixture fence
    for i in 0..n {
        let v = vec![0u8; 4]; // line 11: vec! allocates
        let s = format!("{i}"); // line 12: format! allocates
        let b = Box::new(i); // line 13: Box::new allocates
        acc += v.len() as u32 + s.len() as u32 + *b as u32;
    }
    // lint: end-hot-loop
    acc
}
