//! Fixture tests: each known-bad snippet under `tests/fixtures/` must
//! trigger its rule at the expected `file:line`, and the escape-hatch
//! directives must behave as documented.
//!
//! Fixtures are fed to [`lint::rules::check_file`] under a *fake*
//! library-tier path — their real path (`crates/lint/tests/fixtures/`)
//! is a test path, which the workspace walker skips and the rules
//! exempt from R1/R5.

use lint::rules::{check_file, Rule};

const LIB_PATH: &str = "crates/codec/src/fixture.rs";
const STORAGE_PATH: &str = "crates/storage/src/fixture.rs";

fn lines_of(rule: Rule, path: &str, src: &str) -> Vec<u32> {
    check_file(path, src).iter().filter(|v| v.rule == rule).map(|v| v.line).collect()
}

#[test]
fn r1_fires_on_every_panic_construct() {
    let src = include_str!("fixtures/r1_panics.rs");
    let v = check_file(LIB_PATH, src);
    assert_eq!(lines_of(Rule::R1, LIB_PATH, src), vec![4, 7, 10, 13, 16], "{v:?}");
    // Violations carry the (fake) path and render as `path:line: rule: msg`.
    assert!(v[0].to_string().starts_with("crates/codec/src/fixture.rs:4: R1:"), "{}", v[0]);
}

#[test]
fn r1_allow_suppresses_only_with_justification() {
    let src = include_str!("fixtures/r1_allow.rs");
    let v = check_file(LIB_PATH, src);
    // Line 6 is covered by the justified allow on line 5. The bare
    // allow on line 10 is itself reported and covers nothing, so the
    // unwrap on line 11 fires too.
    assert_eq!(v.len(), 2, "{v:?}");
    assert_eq!((v[0].rule, v[0].line), (Rule::R1, 10));
    assert!(v[0].msg.contains("justification"), "{}", v[0]);
    assert_eq!((v[1].rule, v[1].line), (Rule::R1, 11));
}

#[test]
fn r1_skips_fixture_when_given_its_real_test_path() {
    // Under its true path the fixture is test-tier: R1 must not fire.
    let src = include_str!("fixtures/r1_panics.rs");
    let real = "crates/lint/tests/fixtures/r1_panics.rs";
    assert!(check_file(real, src).is_empty());
}

#[test]
fn r2_fires_inside_fence_only() {
    let src = include_str!("fixtures/r2_hot_alloc.rs");
    assert_eq!(lines_of(Rule::R2, LIB_PATH, src), vec![11, 12, 13]);
}

#[test]
fn r3_fires_on_both_inversions_only_in_storage() {
    let src = include_str!("fixtures/r3_lock_order.rs");
    assert_eq!(lines_of(Rule::R3, STORAGE_PATH, src), vec![7, 14]);
    // R3 is a storage-crate contract: the same source elsewhere is clean.
    assert!(lines_of(Rule::R3, LIB_PATH, src).is_empty());
}

#[test]
fn r4_fires_without_safety_comment() {
    let src = include_str!("fixtures/r4_unsafe.rs");
    assert_eq!(lines_of(Rule::R4, LIB_PATH, src), vec![4]);
}

#[test]
fn r6_fires_outside_bufferpool_module() {
    let src = include_str!("fixtures/r6_untimed_wait.rs");
    assert_eq!(lines_of(Rule::R6, LIB_PATH, src), vec![5]);
    assert_eq!(lines_of(Rule::R6, STORAGE_PATH, src), vec![5]);
    // The one sanctioned waiter module.
    assert!(lines_of(Rule::R6, "crates/storage/src/bufferpool.rs", src).is_empty());
}

#[test]
fn r8_fires_outside_cluster_net_module() {
    let src = include_str!("fixtures/r8_socket.rs");
    assert_eq!(lines_of(Rule::R8, LIB_PATH, src), vec![5, 9]);
    assert_eq!(lines_of(Rule::R8, STORAGE_PATH, src), vec![5, 9]);
    // The one module allowed to construct raw sockets.
    assert!(lines_of(Rule::R8, "crates/cluster/src/net.rs", src).is_empty());
    // Elsewhere in the cluster crate the rule still applies.
    assert_eq!(lines_of(Rule::R8, "crates/cluster/src/coordinator.rs", src), vec![5, 9]);
}

#[test]
fn r7_fires_outside_durable_and_wal_modules() {
    let src = include_str!("fixtures/r7_fsync.rs");
    assert_eq!(lines_of(Rule::R7, LIB_PATH, src), vec![5, 9]);
    assert_eq!(lines_of(Rule::R7, STORAGE_PATH, src), vec![5, 9]);
    // The two sanctioned durability modules.
    assert!(lines_of(Rule::R7, "crates/storage/src/durable.rs", src).is_empty());
    assert!(lines_of(Rule::R7, "crates/storage/src/wal.rs", src).is_empty());
}

#[test]
fn r5_fires_outside_durable_module() {
    let src = include_str!("fixtures/r5_rename.rs");
    assert_eq!(lines_of(Rule::R5, STORAGE_PATH, src), vec![5]);
    // The one sanctioned call site.
    assert!(lines_of(Rule::R5, "crates/storage/src/durable.rs", src).is_empty());
}
