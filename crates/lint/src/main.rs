//! `lightdb-lint` CLI.
//!
//! ```text
//! cargo run -p lint                # run rules R1–R8 over the workspace
//! cargo run -p lint -- interleave  # run the interleaving harness
//! cargo run -p lint -- --root DIR  # lint a different workspace root
//! ```
//!
//! Exit status is 0 when clean, 1 on any violation (or invariant
//! failure / deadlock in the harness), 2 on usage or I/O errors.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut mode_interleave = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "interleave" => mode_interleave = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: lint [interleave] [--root DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    if mode_interleave {
        return run_interleave();
    }

    let root = root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| lint::walk::find_workspace_root(&d))
    });
    let Some(root) = root else {
        eprintln!("lint: could not locate a workspace root (try --root)");
        return ExitCode::from(2);
    };
    match lint::check_workspace(&root) {
        Ok((violations, files)) => {
            for v in &violations {
                println!("{v}");
            }
            if violations.is_empty() {
                println!("lint: {files} files scanned, 0 violations");
                ExitCode::SUCCESS
            } else {
                println!("lint: {files} files scanned, {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_interleave() -> ExitCode {
    let scenarios = lint::interleave::run_all();
    let mut total: u64 = 0;
    let mut failed = false;
    for s in &scenarios {
        total += s.outcome.schedules;
        let status = if s.outcome.ok() { "ok" } else { "FAIL" };
        println!(
            "{status:4} {:32} {:>6} schedules  {:>8} steps  {} failures  {} deadlocks",
            s.name,
            s.outcome.schedules,
            s.outcome.steps,
            s.outcome.failures.len(),
            s.outcome.deadlocks
        );
        for (trace, msg) in s.outcome.failures.iter().take(3) {
            println!("       schedule {trace}: {msg}");
        }
        failed |= !s.outcome.ok();
    }
    println!("interleave: {total} schedules explored across {} scenarios", scenarios.len());
    if failed {
        ExitCode::FAILURE
    } else if total < 100 {
        println!("interleave: FAIL — fewer than 100 schedules explored");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
