//! The invariant rules, evaluated over the token stream of one file.
//!
//! | rule | contract it guards |
//! |------|--------------------|
//! | R1   | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in non-test library code |
//! | R2   | no allocation tokens inside `// lint: hot-loop` fenced regions |
//! | R3   | storage lock order: pool mutex before flight condvar, never blocked on a flight while the pool lock is held |
//! | R4   | every `unsafe` block/impl/fn carries a `// SAFETY:` comment |
//! | R5   | `fs::rename` appears only inside `storage::durable` (publish protocol) |
//! | R6   | no untimed condvar `wait` outside `storage::bufferpool` (its timed helper is the one sanctioned waiter) |
//! | R7   | `fsync`/`sync_all`/`sync_data` appear only inside `storage::durable` and `storage::wal` (the durability boundary) |
//! | R8   | raw socket construction (`TcpStream::`/`TcpListener::`/`UdpSocket::`) only inside `cluster::net` (the framed-wire boundary) |
//!
//! Escape hatch: `// lint: allow(R1): <justification>` on the same
//! line or above the offending code suppresses that rule there —
//! blank, comment-only, and attribute-only lines (`#[allow(...)]`
//! companions for clippy) between the directive and the code are
//! skipped. Only a non-empty justification counts; a bare `allow` is
//! itself a violation.

use crate::lexer::{lex, Tok, TokKind};

/// One rule violation at a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    pub line: u32,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {:?}: {}", self.path, self.line, self.rule, self.msg)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
}

impl Rule {
    fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            "R6" => Some(Rule::R6),
            "R7" => Some(Rule::R7),
            "R8" => Some(Rule::R8),
            _ => None,
        }
    }
}

/// Which rule families apply to a file, derived from its
/// workspace-relative path by [`FileClass::of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// R1 applies: non-test source of a production library crate.
    pub library_tier: bool,
    /// Path lives under a test-like directory (`tests/`, `benches/`,
    /// `examples/`, `fixtures/`): R1 and R5 do not apply.
    pub test_path: bool,
    /// R3 applies: storage crate source.
    pub storage: bool,
    /// R5 exemption: the one module allowed to call `fs::rename`.
    pub durable_module: bool,
    /// R6 exemption: the module hosting the timed condvar-wait helper
    /// (every other waiter must go through it).
    pub bufferpool_module: bool,
    /// R7 exemption (with `durable_module`): the write-ahead log owns
    /// its own fsync schedule (group commit).
    pub wal_module: bool,
    /// R8 exemption: the one module allowed to construct raw sockets
    /// (everything else speaks the framed `cluster::net::Conn`).
    pub cluster_net_module: bool,
}

/// The production library crates R1 protects. Bench/apps/baselines/
/// datasets/testsuite/shims are tooling tiers: their panics abort a
/// developer command, not a serving process.
const LIBRARY_CRATES: &[&str] = &[
    "geom",
    "frame",
    "codec",
    "container",
    "index",
    "core",
    "storage",
    "exec",
    "optimizer",
    "engine",
    "cluster",
];

impl FileClass {
    pub fn of(rel_path: &str) -> FileClass {
        let p = rel_path.replace('\\', "/");
        let test_path = p
            .split('/')
            .any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"));
        let library_tier = !test_path
            && LIBRARY_CRATES
                .iter()
                .any(|c| p.starts_with(&format!("crates/{c}/src/")));
        FileClass {
            library_tier,
            test_path,
            storage: p.starts_with("crates/storage/src/"),
            durable_module: p == "crates/storage/src/durable.rs",
            bufferpool_module: p == "crates/storage/src/bufferpool.rs",
            wal_module: p == "crates/storage/src/wal.rs",
            cluster_net_module: p == "crates/cluster/src/net.rs",
        }
    }
}

/// Pre-pass facts shared by the rules: per-line directives and the
/// line ranges covered by `#[cfg(test)]` items.
struct FileCtx<'a> {
    path: &'a str,
    class: FileClass,
    /// (rule, line) pairs suppressed by a justified `lint: allow`.
    allows: Vec<(Rule, u32)>,
    /// Inclusive line ranges of `#[cfg(test)]`-annotated items.
    test_ranges: Vec<(u32, u32)>,
    /// Inclusive line ranges fenced by `lint: hot-loop` markers.
    hot_ranges: Vec<(u32, u32)>,
    /// Lines whose comments contain `SAFETY:`.
    safety_lines: Vec<u32>,
    /// Lines carrying at least one non-comment token.
    code_lines: std::collections::HashSet<u32>,
    /// Code lines that hold only an attribute (`#[...]` / `#![...]`).
    attr_lines: std::collections::HashSet<u32>,
}

impl<'a> FileCtx<'a> {
    fn allowed(&self, rule: Rule, line: u32) -> bool {
        // An allow covers its own line (trailing comment) and the next
        // code line below it; blank, comment-only, and attribute-only
        // lines in between are skipped so a clippy `#[allow(...)]`
        // can sit between the directive and the code it excuses.
        self.allows.iter().any(|&(r, l)| {
            r == rule
                && (l == line
                    || (l < line
                        && (l + 1..line).all(|m| {
                            !self.code_lines.contains(&m) || self.attr_lines.contains(&m)
                        })))
        })
    }

    fn in_test_range(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(s, e)| s <= line && line <= e)
    }

    fn in_hot_range(&self, line: u32) -> bool {
        self.hot_ranges.iter().any(|&(s, e)| s <= line && line <= e)
    }

    fn push(&self, out: &mut Vec<Violation>, rule: Rule, line: u32, msg: String) {
        if !self.allowed(rule, line) {
            out.push(Violation { rule, path: self.path.to_string(), line, msg });
        }
    }
}

/// Parsed `lint:` directives: allow directives as `(rule, line)`,
/// fence markers as `(line, is_open)`, plus any malformed-allow
/// violations (missing justification).
type Directives = (Vec<(Rule, u32)>, Vec<(u32, bool)>, Vec<Violation>);

/// Parses a `lint:` directive comment.
fn parse_directives(ctx_path: &str, toks: &[Tok]) -> Directives {
    let mut allows = Vec::new();
    let mut fences = Vec::new(); // (line, is_open)
    let mut bad = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim_start_matches('*').trim();
        let Some(rest) = body.strip_prefix("lint:") else { continue };
        let rest = rest.trim();
        if rest.starts_with("hot-loop") {
            fences.push((t.line, true));
        } else if rest.starts_with("end-hot-loop") {
            fences.push((t.line, false));
        } else if let Some(spec) = rest.strip_prefix("allow(") {
            let Some(close) = spec.find(')') else {
                bad.push(Violation {
                    rule: Rule::R1,
                    path: ctx_path.to_string(),
                    line: t.line,
                    msg: "malformed `lint: allow(...)` — missing `)`".into(),
                });
                continue;
            };
            let rules: Vec<Option<Rule>> =
                spec[..close].split(',').map(Rule::parse).collect();
            let justification = spec[close + 1..]
                .trim_start_matches([':', '-', '—', ' '])
                .trim();
            if justification.is_empty() {
                bad.push(Violation {
                    rule: rules.first().copied().flatten().unwrap_or(Rule::R1),
                    path: ctx_path.to_string(),
                    line: t.line,
                    msg: "`lint: allow` requires a justification: `// lint: allow(R1): <why>`"
                        .into(),
                });
                continue;
            }
            for r in rules.into_iter().flatten() {
                allows.push((r, t.line));
            }
        }
    }
    (allows, fences, bad)
}

/// `end-hot-loop` fences close `hot-loop` fences; an unclosed or
/// unopened fence is a violation (a silent no-op fence would quietly
/// stop guarding the kernel).
fn fence_ranges(
    path: &str,
    fences: &[(u32, bool)],
    last_line: u32,
    out: &mut Vec<Violation>,
) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut open: Option<u32> = None;
    for &(line, is_open) in fences {
        match (is_open, open) {
            (true, None) => open = Some(line),
            (true, Some(prev)) => {
                out.push(Violation {
                    rule: Rule::R2,
                    path: path.to_string(),
                    line,
                    msg: format!("nested `lint: hot-loop` fence (previous opened at line {prev})"),
                });
            }
            (false, Some(s)) => {
                ranges.push((s, line));
                open = None;
            }
            (false, None) => {
                out.push(Violation {
                    rule: Rule::R2,
                    path: path.to_string(),
                    line,
                    msg: "`lint: end-hot-loop` without an open fence".into(),
                });
            }
        }
    }
    if let Some(s) = open {
        out.push(Violation {
            rule: Rule::R2,
            path: path.to_string(),
            line: s,
            msg: "`lint: hot-loop` fence never closed".into(),
        });
        ranges.push((s, last_line));
    }
    ranges
}

/// Finds line ranges of items annotated `#[cfg(test)]` (or any `cfg`
/// attribute mentioning `test`, e.g. `#[cfg(any(test, fuzzing))]`).
fn cfg_test_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        // Match `#[cfg(...)]` or `#[cfg_attr(test, ...)]` whose
        // parenthesised content mentions `test`.
        if code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[') {
            // Scan the attribute to its closing `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut is_cfg = false;
            let mut mentions_test = false;
            if j < code.len() && (code[j].is_ident("cfg") || code[j].is_ident("cfg_attr")) {
                is_cfg = true;
            }
            while j < code.len() && depth > 0 {
                if code[j].is_punct('[') {
                    depth += 1;
                } else if code[j].is_punct(']') {
                    depth -= 1;
                } else if code[j].is_ident("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            if is_cfg && mentions_test {
                // The annotated item: skip any further attributes,
                // then extend to the first `;` at depth 0 or the
                // matching brace of the first `{`.
                let start_line = code[i].line;
                let mut k = j;
                while k + 1 < code.len() && code[k].is_punct('#') && code[k + 1].is_punct('[') {
                    let mut d = 1usize;
                    k += 2;
                    while k < code.len() && d > 0 {
                        if code[k].is_punct('[') {
                            d += 1;
                        } else if code[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                let mut brace = 0isize;
                let mut end_line = code.get(k).map(|t| t.line).unwrap_or(start_line);
                while k < code.len() {
                    let t = code[k];
                    if t.is_punct('{') {
                        brace += 1;
                    } else if t.is_punct('}') {
                        brace -= 1;
                        if brace == 0 {
                            end_line = t.line;
                            k += 1;
                            break;
                        }
                    } else if t.is_punct(';') && brace == 0 {
                        end_line = t.line;
                        k += 1;
                        break;
                    }
                    end_line = t.line;
                    k += 1;
                }
                ranges.push((start_line, end_line));
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Runs every applicable rule over one file. `rel_path` must be
/// workspace-relative with forward slashes.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Violation> {
    let toks = lex(src);
    check_tokens(rel_path, &toks)
}

fn check_tokens(rel_path: &str, toks: &[Tok]) -> Vec<Violation> {
    let mut out = Vec::new();
    let class = FileClass::of(rel_path);
    let (allows, fences, mut bad_allows) = parse_directives(rel_path, toks);
    out.append(&mut bad_allows);
    let last_line = toks.last().map(|t| t.line).unwrap_or(1);
    let hot_ranges = fence_ranges(rel_path, &fences, last_line, &mut out);
    let safety_lines = toks
        .iter()
        .filter(|t| {
            matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                && t.text.contains("SAFETY:")
        })
        .map(|t| t.line)
        .collect();
    let mut code_lines = std::collections::HashSet::new();
    let mut first_tok_on_line = std::collections::HashMap::new();
    let mut last_tok_on_line = std::collections::HashMap::new();
    for t in toks {
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        code_lines.insert(t.line);
        first_tok_on_line.entry(t.line).or_insert_with(|| t.text.clone());
        last_tok_on_line.insert(t.line, t.text.clone());
    }
    let attr_lines = code_lines
        .iter()
        .copied()
        .filter(|l| {
            first_tok_on_line.get(l).map(String::as_str) == Some("#")
                && last_tok_on_line.get(l).map(String::as_str) == Some("]")
        })
        .collect();
    let ctx = FileCtx {
        path: rel_path,
        class,
        allows,
        test_ranges: cfg_test_ranges(toks),
        hot_ranges,
        safety_lines,
        code_lines,
        attr_lines,
    };
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    rule_r1(&ctx, &code, &mut out);
    rule_r2(&ctx, &code, &mut out);
    if ctx.class.storage {
        rule_r3(&ctx, &code, &mut out);
    }
    rule_r4(&ctx, &code, &mut out);
    rule_r5(&ctx, &code, &mut out);
    rule_r6(&ctx, &code, &mut out);
    rule_r7(&ctx, &code, &mut out);
    rule_r8(&ctx, &code, &mut out);
    out.sort_by_key(|v| v.line);
    out
}

/// R1: panic-family tokens in non-test library code.
fn rule_r1(ctx: &FileCtx, code: &[&Tok], out: &mut Vec<Violation>) {
    if !ctx.class.library_tier {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if ctx.in_test_range(t.line) {
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |c: char| code.get(i + 1).is_some_and(|n| n.is_punct(c));
        let prev_is_dot = i > 0 && code[i - 1].is_punct('.');
        match t.text.as_str() {
            "unwrap" | "expect" if prev_is_dot && next_is('(') => {
                ctx.push(
                    out,
                    Rule::R1,
                    t.line,
                    format!(
                        ".{}() in non-test library code — propagate the error or \
                         use `// lint: allow(R1): <why infallible>`",
                        t.text
                    ),
                );
            }
            "panic" | "todo" | "unimplemented" if next_is('!') => {
                ctx.push(
                    out,
                    Rule::R1,
                    t.line,
                    format!("{}! in non-test library code", t.text),
                );
            }
            _ => {}
        }
    }
}

/// R2: allocation tokens inside `hot-loop` fences.
fn rule_r2(ctx: &FileCtx, code: &[&Tok], out: &mut Vec<Violation>) {
    if ctx.hot_ranges.is_empty() {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || !ctx.in_hot_range(t.line) {
            continue;
        }
        let next_is = |c: char| code.get(i + 1).is_some_and(|n| n.is_punct(c));
        let path_to = |target: &str| {
            code.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && code.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && code.get(i + 3).is_some_and(|a| a.is_ident(target))
        };
        let prev_is_dot = i > 0 && code[i - 1].is_punct('.');
        let hit = match t.text.as_str() {
            "vec" | "format" if next_is('!') => Some(format!("{}! allocates", t.text)),
            "Vec" | "Box" if path_to("new") => Some(format!("{}::new allocates", t.text)),
            "String" if path_to("from") => Some("String::from allocates".into()),
            "to_vec" | "collect" | "to_string" | "to_owned" if prev_is_dot => {
                Some(format!(".{}() allocates", t.text))
            }
            _ => None,
        };
        if let Some(msg) = hit {
            ctx.push(
                out,
                Rule::R2,
                t.line,
                format!("{msg} inside a `lint: hot-loop` fence — use the scratch arena"),
            );
        }
    }
}

/// A live lock guard being tracked by R3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockClass {
    /// The buffer-pool mutex (receiver mentions `inner`).
    Pool,
    /// A flight rendezvous mutex (receiver mentions `done`).
    Flight,
}

/// Dotted receiver text of a method call whose name is the token at
/// index `i`: walks back over `ident . ident .` pairs, so
/// `flight.cv.wait(...)` yields `"flight.cv"`.
fn receiver_of(code: &[&Tok], i: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut j = i; // points at the method name; step back over `.`
    while j >= 2 && code[j - 1].is_punct('.') {
        j -= 2;
        match code[j].kind {
            TokKind::Ident => parts.push(&code[j].text),
            _ => break,
        }
    }
    parts.reverse();
    parts.join(".")
}

/// R3: in `storage`, never block on a flight while holding the pool
/// lock, and never take the pool lock from inside a flight critical
/// section. (`Flight::finish`/`notify` under the pool lock is fine —
/// that is the sanctioned pool→flight order.)
fn rule_r3(ctx: &FileCtx, code: &[&Tok], out: &mut Vec<Violation>) {
    // Guard: (class, bound name or None for a temporary,
    //         brace depth at acquisition)
    struct Guard {
        class: LockClass,
        name: Option<String>,
        depth: i32,
        temporary: bool,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;

    let receiver = |i: usize| -> String { receiver_of(code, i) };
    // Start-of-statement `let` binding name, scanning back from the
    // method call to the previous `;`/`{`/`}`.
    let let_binding = |i: usize| -> Option<String> {
        let mut j = i;
        while j > 0 {
            let t = code[j - 1];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            j -= 1;
        }
        if code.get(j).is_some_and(|t| t.is_ident("let")) {
            let mut k = j + 1;
            while code.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            code.get(k).and_then(|t| {
                (t.kind == TokKind::Ident).then(|| t.text.clone())
            })
        } else {
            None
        }
    };

    for (i, t) in code.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
            continue;
        }
        if t.is_punct(';') {
            guards.retain(|g| !(g.temporary && g.depth == depth));
            continue;
        }
        // `drop(name)` releases a tracked guard.
        if t.is_ident("drop")
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && code.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(name) = code.get(i + 2) {
                guards.retain(|g| g.name.as_deref() != Some(name.text.as_str()));
            }
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_call = code.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !is_call {
            continue;
        }
        let recv = receiver(i);
        match t.text.as_str() {
            "lock" => {
                let class = if recv.contains("inner") {
                    Some(LockClass::Pool)
                } else if recv.contains("done") {
                    Some(LockClass::Flight)
                } else {
                    None
                };
                if let Some(class) = class {
                    if class == LockClass::Pool
                        && guards.iter().any(|g| g.class == LockClass::Flight)
                    {
                        ctx.push(
                            out,
                            Rule::R3,
                            t.line,
                            format!(
                                "pool lock (`{recv}.lock()`) acquired while a flight \
                                 mutex is held — lock order is pool before flight"
                            ),
                        );
                    }
                    let name = let_binding(i);
                    let temporary = name.is_none();
                    guards.push(Guard { class, name, depth, temporary });
                }
            }
            "wait" if recv.contains("flight") || recv.contains("cv") => {
                if let Some(g) = guards.iter().find(|g| g.class == LockClass::Pool) {
                    ctx.push(
                        out,
                        Rule::R3,
                        t.line,
                        format!(
                            "blocking `{recv}.wait()` while pool guard `{}` is live — \
                             drop the pool lock before waiting on a flight",
                            g.name.as_deref().unwrap_or("<temporary>")
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// R4: `unsafe` blocks/fns/impls need a `// SAFETY:` comment on the
/// same line or one of the three lines above.
fn rule_r4(ctx: &FileCtx, code: &[&Tok], out: &mut Vec<Violation>) {
    for (i, t) in code.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        // Only flag sites that introduce an unsafe obligation:
        // `unsafe {`, `unsafe fn`, `unsafe impl`, `unsafe trait`.
        let introduces = code.get(i + 1).is_some_and(|n| {
            n.is_punct('{') || n.is_ident("fn") || n.is_ident("impl") || n.is_ident("trait")
        });
        if !introduces {
            continue;
        }
        let documented = ctx
            .safety_lines
            .iter()
            .any(|&l| l <= t.line && t.line.saturating_sub(l) <= 3);
        if !documented {
            ctx.push(
                out,
                Rule::R4,
                t.line,
                "`unsafe` without a `// SAFETY:` comment (same line or \
                 the three lines above)"
                    .into(),
            );
        }
    }
}

/// R5: a `rename(` call outside `storage::durable` bypasses the
/// crash-consistent publish protocol (tmp → fsync → rename →
/// dir-fsync).
fn rule_r5(ctx: &FileCtx, code: &[&Tok], out: &mut Vec<Violation>) {
    if ctx.class.durable_module || ctx.class.test_path {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if !t.is_ident("rename") || !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // Declarations (`fn rename(`) are not calls.
        if i > 0 && code[i - 1].is_ident("fn") {
            continue;
        }
        if ctx.in_test_range(t.line) {
            continue;
        }
        ctx.push(
            out,
            Rule::R5,
            t.line,
            "rename() outside storage::durable — durable files must be \
             published via durable::publish (tmp → fsync → rename → dir-fsync)"
                .into(),
        );
    }
}

/// R6: an untimed condvar `wait(` call outside `storage::bufferpool`.
/// Cancelled queries are only guaranteed to stop because every
/// rendezvous wait is timed (`wait_timeout` + abort poll); a plain
/// `wait` can park a thread forever on a notification that will never
/// come. `storage::bufferpool` hosts the one sanctioned timed-wait
/// helper; everything else must go through it. `wait_timeout` /
/// `wait_while` are distinct idents and never match.
fn rule_r6(ctx: &FileCtx, code: &[&Tok], out: &mut Vec<Violation>) {
    if ctx.class.bufferpool_module || ctx.class.test_path {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if !t.is_ident("wait") || !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if i > 0 && code[i - 1].is_ident("fn") {
            continue; // declaration, not a call
        }
        if ctx.in_test_range(t.line) {
            continue;
        }
        let recv = receiver_of(code, i);
        let lower = recv.to_ascii_lowercase();
        if !(lower.contains("cv") || lower.contains("condvar")) {
            continue;
        }
        ctx.push(
            out,
            Rule::R6,
            t.line,
            format!(
                "untimed `{recv}.wait()` outside storage::bufferpool — use the \
                 timed wait helper (wait_timeout + abort poll) so cancelled \
                 queries never park forever"
            ),
        );
    }
}

/// R7: an `fsync`/`sync_all`/`sync_data` call outside
/// `storage::durable` and `storage::wal`. Those two modules *are* the
/// durability boundary — durable publishes its files via the
/// tmp/fsync/rename protocol and the WAL group-commits its log
/// records. A stray sync elsewhere either duplicates work the
/// boundary already does or, worse, acknowledges data the protocols
/// don't cover (an unsynced parent directory, a poisoned log).
fn rule_r7(ctx: &FileCtx, code: &[&Tok], out: &mut Vec<Violation>) {
    if ctx.class.durable_module || ctx.class.wal_module || ctx.class.test_path {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        let is_sync =
            t.is_ident("fsync") || t.is_ident("sync_all") || t.is_ident("sync_data");
        if !is_sync || !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // Declarations (`fn sync_all(`) are not calls.
        if i > 0 && code[i - 1].is_ident("fn") {
            continue;
        }
        if ctx.in_test_range(t.line) {
            continue;
        }
        ctx.push(
            out,
            Rule::R7,
            t.line,
            format!(
                "{}() outside storage::durable / storage::wal — file \
                 durability goes through the publish protocol or the WAL \
                 group commit, never ad-hoc syncs",
                t.text
            ),
        );
    }
}

/// R8: raw socket construction outside `cluster::net`. The wire
/// protocol's framing, CRC checks, timeouts, and fault injection all
/// live on [`cluster::net::Conn`]; a bare `TcpStream::connect` (or
/// `TcpListener::bind` / `UdpSocket::bind`) anywhere else would move
/// bytes that the corruption and chaos harnesses cannot see. The
/// pattern is the type ident followed by `::` — path-qualified
/// associated calls are the only way these types are constructed.
fn rule_r8(ctx: &FileCtx, code: &[&Tok], out: &mut Vec<Violation>) {
    if ctx.class.cluster_net_module || ctx.class.test_path {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        let is_socket_type =
            t.is_ident("TcpStream") || t.is_ident("TcpListener") || t.is_ident("UdpSocket");
        // `Type::` — the lexer splits `::` into two `:` puncts.
        if !is_socket_type
            || !code.get(i + 1).is_some_and(|n| n.is_punct(':'))
            || !code.get(i + 2).is_some_and(|n| n.is_punct(':'))
        {
            continue;
        }
        if ctx.in_test_range(t.line) {
            continue;
        }
        ctx.push(
            out,
            Rule::R8,
            t.line,
            format!(
                "{}:: outside cluster::net — raw sockets bypass the framed \
                 wire protocol (CRC, timeouts, fault injection); speak \
                 cluster::net::Conn instead",
                t.text
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        check_file(path, src)
    }

    const LIB: &str = "crates/codec/src/x.rs";

    #[test]
    fn r1_fires_on_unwrap_and_macros() {
        let v = check(LIB, "fn f() { x.unwrap(); }\nfn g() { panic!(\"no\"); }");
        assert_eq!(v.len(), 2);
        assert_eq!((v[0].rule, v[0].line), (Rule::R1, 1));
        assert_eq!((v[1].rule, v[1].line), (Rule::R1, 2));
    }

    #[test]
    fn r1_ignores_unwrap_or_and_test_code() {
        let v = check(
            LIB,
            "fn f() { x.unwrap_or(0); }\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r1_skips_non_library_tiers() {
        assert!(check("crates/bench/src/x.rs", "fn f() { x.unwrap(); }").is_empty());
        assert!(check("crates/codec/tests/x.rs", "fn f() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn r1_allow_with_justification_suppresses() {
        let v = check(LIB, "// lint: allow(R1): index is bounds-checked above\nfn f() { x.unwrap(); }");
        assert!(v.is_empty(), "{v:?}");
        let v = check(LIB, "fn f() { x.unwrap(); } // lint: allow(R1): infallible by construction");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r1_allow_skips_attribute_and_blank_lines() {
        // A clippy companion attribute between the directive and the
        // code must not break the coverage.
        let v = check(
            LIB,
            "fn f() {\n// lint: allow(R1): checked above\n#[allow(clippy::unwrap_used)]\nlet x = y.unwrap();\n}",
        );
        assert!(v.is_empty(), "{v:?}");
        // Blank and comment-only lines are skipped too.
        let v = check(
            LIB,
            "fn f() {\n// lint: allow(R1): checked above\n\n// and a remark\nlet x = y.unwrap();\n}",
        );
        assert!(v.is_empty(), "{v:?}");
        // But a real code line in between ends the coverage.
        let v = check(
            LIB,
            "fn f() {\n// lint: allow(R1): checked above\nlet a = 1;\nlet x = y.unwrap();\n}",
        );
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].rule, v[0].line), (Rule::R1, 4));
    }

    #[test]
    fn r1_allow_without_justification_is_a_violation() {
        let v = check(LIB, "// lint: allow(R1)\nfn f() { x.unwrap(); }");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.msg.contains("justification")));
    }

    #[test]
    fn r2_flags_alloc_in_fence_only() {
        let src = "fn f() { let a = Vec::new();\n// lint: hot-loop\nlet b = vec![0; 8];\nlet c: Vec<u8> = it.collect();\n// lint: end-hot-loop\nlet d = Vec::new(); }";
        let v = check(LIB, src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert_eq!(v[1].line, 4);
        assert!(v.iter().all(|v| v.rule == Rule::R2));
    }

    #[test]
    fn r2_unclosed_fence_is_reported() {
        let v = check(LIB, "// lint: hot-loop\nfn f() {}");
        assert!(v.iter().any(|v| v.rule == Rule::R2 && v.msg.contains("never closed")));
    }

    #[test]
    fn r3_wait_under_pool_lock_fires() {
        let src = "fn f(&self) { let mut inner = self.inner.lock(); flight.wait(); }";
        let v = check("crates/storage/src/pool.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::R3);
    }

    #[test]
    fn r3_wait_after_drop_is_clean() {
        let src = "fn f(&self) { let mut inner = self.inner.lock(); drop(inner); flight.wait(); }";
        assert!(check("crates/storage/src/pool.rs", src).is_empty());
    }

    #[test]
    fn r3_scope_exit_releases_guard() {
        let src = "fn f(&self) { { let g = self.inner.lock(); } flight.wait(); }";
        assert!(check("crates/storage/src/pool.rs", src).is_empty());
    }

    #[test]
    fn r3_pool_lock_inside_flight_section_fires() {
        let src = "fn finish(&self) { let d = self.done.lock(); let p = self.inner.lock(); }";
        let v = check("crates/storage/src/pool.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("pool lock"));
    }

    #[test]
    fn r3_temporary_guard_dies_at_statement_end() {
        let src = "fn f(&self) { self.inner.lock().stats;\n flight.wait(); }";
        assert!(check("crates/storage/src/pool.rs", src).is_empty());
    }

    #[test]
    fn r4_unsafe_without_safety_comment() {
        let v = check(LIB, "fn f() { unsafe { do_it() } }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::R4);
    }

    #[test]
    fn r4_safety_comment_satisfies() {
        let src = "fn f() {\n// SAFETY: ptr is valid for reads\nunsafe { do_it() } }";
        assert!(check(LIB, src).is_empty());
        // Applies in test paths too.
        let v = check("crates/codec/tests/t.rs", "fn f() { unsafe { x() } }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn r5_rename_outside_durable_fires() {
        let v = check("crates/storage/src/media.rs", "fn f() { fs::rename(a, b); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::R5);
        assert!(check("crates/storage/src/durable.rs", "fn f() { fs::rename(a, b); }").is_empty());
    }

    #[test]
    fn r5_ignores_declarations_and_tests() {
        assert!(check(LIB, "fn rename(a: A) {}").is_empty());
        let v = check(LIB, "#[cfg(test)]\nmod tests { fn t() { fs::rename(a, b); } }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r6_untimed_condvar_wait_fires_outside_bufferpool() {
        let src = "fn f(&self) { let g = self.cv.wait(guard); }";
        let v = check("crates/exec/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::R6);
        // The sanctioned module and test paths are exempt.
        assert!(check("crates/storage/src/bufferpool.rs", src).is_empty());
        assert!(check("crates/exec/tests/x.rs", src).is_empty());
    }

    #[test]
    fn r6_ignores_timed_waits_and_non_condvar_receivers() {
        let v = check(
            "crates/exec/src/x.rs",
            "fn f(&self) { let (g, _) = self.cv.wait_timeout(g, d); barrier.wait(); }",
        );
        assert!(v.is_empty(), "{v:?}");
        assert!(check("crates/exec/src/x.rs", "fn wait(x: u8) {}").is_empty());
    }

    #[test]
    fn tokens_in_strings_do_not_fire() {
        let v = check(LIB, r#"fn f() { let s = ".unwrap() panic! rename("; }"#);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r8_socket_construction_fires_outside_cluster_net() {
        let src = "fn f() { let s = TcpStream::connect(a); let l = TcpListener::bind(b); }";
        let v = check("crates/exec/src/x.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::R8), "{v:?}");
        // The framed-wire module and test tiers are exempt.
        assert!(check("crates/cluster/src/net.rs", src).is_empty());
        assert!(check("crates/cluster/tests/x.rs", src).is_empty());
    }

    #[test]
    fn r8_ignores_bare_type_mentions() {
        // A type position (no `::` path) is not a construction.
        let v = check(LIB, "struct S { inner: TcpStream }\nfn f(s: &TcpStream) {}");
        assert!(v.is_empty(), "{v:?}");
    }
}
