//! A miniature loom-style deterministic interleaving explorer.
//!
//! Two of the workspace's concurrency contracts are load-bearing for
//! everything PR 2 built on top of the buffer pool and the parallel
//! executor:
//!
//! 1. **Single-flight loading** (`storage::bufferpool::BufferPool`):
//!    concurrent misses on one key coalesce into one disk load, byte
//!    accounting always equals residency (`bytes == resident`), and a
//!    failed load lets a waiter take over as loader.
//! 2. **Batch reassembly** (`exec::parallel::scatter`): workers pull
//!    jobs from a shared queue and push `(index, result)` pairs in
//!    completion order; reassembly must reproduce the serial output
//!    byte-identically for *every* completion interleaving.
//!
//! The stress tests in those crates sample a handful of OS-scheduler
//! interleavings per run. This harness instead *enumerates* them: the
//! algorithms are restated as explicit state machines whose atomic
//! steps are exactly the lock-protected critical sections of the real
//! code (the same granularity loom would instrument), and a DFS
//! scheduler runs every possible schedule of 2–3 threads, checking
//! the invariants in each terminal state and flagging deadlock when
//! no runnable thread exists.
//!
//! The step decomposition is kept in lock-step with
//! `crates/storage/src/bufferpool.rs` and
//! `crates/exec/src/parallel.rs`; each step documents the source
//! lines it models.

use std::collections::BTreeMap;

/// One model thread: a cloneable program counter plus locals.
pub trait ModelThread<S>: Clone {
    /// True once the thread has finished its program.
    fn done(&self) -> bool;
    /// True when the thread can take a step now (condvar-style waits
    /// return false until their wake condition holds).
    fn runnable(&self, shared: &S) -> bool;
    /// Executes one atomic step (one lock-protected critical section
    /// or one out-of-lock action).
    fn step(&mut self, shared: &mut S);
}

/// Result of exhaustively exploring one scenario.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Distinct complete schedules (terminal DFS paths).
    pub schedules: u64,
    /// Total steps executed across all schedules.
    pub steps: u64,
    /// Invariant violations: (schedule trace, message).
    pub failures: Vec<(String, String)>,
    /// Schedules that wedged (non-done threads, none runnable).
    pub deadlocks: u64,
}

impl Outcome {
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.deadlocks == 0 && self.schedules > 0
    }
}

/// Hard cap on explored schedules: keeps an accidentally huge model
/// from hanging CI. Scenarios here are orders of magnitude smaller.
const MAX_SCHEDULES: u64 = 1_000_000;

/// Terminal-state invariant checker: sees the final shared state and
/// every thread's final local state.
type Check<'a, S, T> = &'a dyn Fn(&S, &[T]) -> Result<(), String>;

/// Exhaustively explores every interleaving of `threads` over
/// `shared`, invoking `check` on each terminal state.
pub fn explore<S: Clone, T: ModelThread<S>>(
    shared: &S,
    threads: &[T],
    check: Check<'_, S, T>,
) -> Outcome {
    let mut out = Outcome::default();
    let mut trace = String::new();
    dfs(shared, threads, check, &mut trace, &mut out);
    out
}

fn dfs<S: Clone, T: ModelThread<S>>(
    shared: &S,
    threads: &[T],
    check: Check<'_, S, T>,
    trace: &mut String,
    out: &mut Outcome,
) {
    if out.schedules >= MAX_SCHEDULES {
        return;
    }
    let mut any_runnable = false;
    let mut all_done = true;
    for t in threads {
        if !t.done() {
            all_done = false;
            if t.runnable(shared) {
                any_runnable = true;
            }
        }
    }
    if all_done {
        out.schedules += 1;
        if let Err(msg) = check(shared, threads) {
            out.failures.push((trace.clone(), msg));
        }
        return;
    }
    if !any_runnable {
        out.schedules += 1;
        out.deadlocks += 1;
        out.failures
            .push((trace.clone(), "deadlock: no runnable thread".into()));
        return;
    }
    for (i, t) in threads.iter().enumerate() {
        if t.done() || !t.runnable(shared) {
            continue;
        }
        let mut s2 = shared.clone();
        let mut t2: Vec<T> = threads.to_vec();
        t2[i].step(&mut s2);
        out.steps += 1;
        let len = trace.len();
        trace.push((b'A' + (i as u8 % 26)) as char);
        dfs(&s2, &t2, check, trace, out);
        trace.truncate(len);
    }
}

// ---------------------------------------------------------------------------
// Model 1: buffer-pool single-flight (storage::bufferpool::get_gop)
// ---------------------------------------------------------------------------

/// Shared pool state: the fields of `PoolInner` that the invariants
/// speak about, keyed by small integers instead of media paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolState {
    /// key → payload length (the model's `map`).
    resident: BTreeMap<u8, usize>,
    /// key → LRU stamp.
    stamps: BTreeMap<u8, u64>,
    /// key → flight id with a load in progress (the `loading` map).
    loading: BTreeMap<u8, usize>,
    /// flight id → completed (condvar `done` flags).
    flights_done: Vec<bool>,
    hits: u64,
    misses: u64,
    loads: u64,
    bytes: usize,
    evictions: u64,
    clock: u64,
    capacity: usize,
    /// When set, the Nth disk load (1-based) returns an error — the
    /// fault-injection hook of the model.
    failing_load: Option<u64>,
}

impl PoolState {
    pub fn new(capacity: usize) -> PoolState {
        PoolState {
            resident: BTreeMap::new(),
            stamps: BTreeMap::new(),
            loading: BTreeMap::new(),
            flights_done: Vec::new(),
            hits: 0,
            misses: 0,
            loads: 0,
            bytes: 0,
            evictions: 0,
            clock: 0,
            capacity,
            failing_load: None,
        }
    }

    pub fn failing_load(mut self, nth: u64) -> PoolState {
        self.failing_load = Some(nth);
        self
    }

    fn resident_bytes(&self) -> usize {
        self.resident.values().sum()
    }

    /// Mirrors `PoolInner::evict_to_capacity`: LRU-evict to capacity,
    /// dropping the just-inserted `protect` key only as a last resort.
    fn evict_to_capacity(&mut self, protect: u8) {
        while self.bytes > self.capacity {
            let victim = self
                .resident
                .keys()
                .filter(|&&k| k != protect)
                .min_by_key(|&&k| self.stamps.get(&k).copied().unwrap_or(0))
                .copied();
            let Some(v) = victim else { break };
            if let Some(len) = self.resident.remove(&v) {
                self.bytes -= len;
                self.evictions += 1;
            }
        }
        if self.bytes > self.capacity {
            if let Some(len) = self.resident.remove(&protect) {
                self.bytes -= len;
                self.evictions += 1;
            }
        }
    }
}

/// Program counter of one `get_gop(key)` call.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PoolPc {
    /// The locked fast path: hit check, miss accounting, flight
    /// registration or wait decision (bufferpool.rs lines 167–201).
    CheckCache,
    /// The out-of-lock disk read (lines 202–205).
    Load {
        flight: usize,
    },
    /// The locked publish: stats, insert, accounting, eviction,
    /// flight completion (lines 206–229).
    Publish {
        flight: usize,
        load_ok: bool,
    },
    /// Parked on `Flight::wait` until the loader finishes (line 194).
    WaitFlight {
        flight: usize,
    },
    Done,
}

/// One model thread calling `get_gop(key)` for a `len`-byte GOP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolThread {
    key: u8,
    len: usize,
    pc: PoolPc,
    /// Exactly one of hits/misses per call (the `counted` flag).
    counted: bool,
    /// What the call returned: payload length or error.
    pub result: Option<Result<usize, ()>>,
}

impl PoolThread {
    pub fn get(key: u8, len: usize) -> PoolThread {
        PoolThread {
            key,
            len,
            pc: PoolPc::CheckCache,
            counted: false,
            result: None,
        }
    }
}

impl ModelThread<PoolState> for PoolThread {
    fn done(&self) -> bool {
        self.pc == PoolPc::Done
    }

    fn runnable(&self, shared: &PoolState) -> bool {
        match &self.pc {
            PoolPc::WaitFlight { flight } => shared.flights_done[*flight],
            PoolPc::Done => false,
            _ => true,
        }
    }

    fn step(&mut self, s: &mut PoolState) {
        match self.pc.clone() {
            PoolPc::CheckCache => {
                s.clock += 1;
                if s.resident.contains_key(&self.key) {
                    s.stamps.insert(self.key, s.clock);
                    if !self.counted {
                        s.hits += 1;
                    }
                    self.result = Some(Ok(s.resident[&self.key]));
                    self.pc = PoolPc::Done;
                    return;
                }
                if !self.counted {
                    s.misses += 1;
                    self.counted = true;
                }
                if let Some(&flight) = s.loading.get(&self.key) {
                    self.pc = PoolPc::WaitFlight { flight };
                    return;
                }
                let flight = s.flights_done.len();
                s.flights_done.push(false);
                s.loading.insert(self.key, flight);
                self.pc = PoolPc::Load { flight };
            }
            PoolPc::Load { flight } => {
                // The disk read happens outside the lock; whether it
                // fails is decided here so `Publish` stays atomic.
                let nth = s.loads + 1; // sequenced by publish order below
                let ok = s.failing_load != Some(nth);
                self.pc = PoolPc::Publish {
                    flight,
                    load_ok: ok,
                };
            }
            PoolPc::Publish { flight, load_ok } => {
                s.loads += 1;
                s.loading.remove(&self.key);
                s.flights_done[flight] = true;
                if !load_ok {
                    self.result = Some(Err(()));
                    self.pc = PoolPc::Done;
                    return;
                }
                s.clock += 1;
                if let Some(old) = s.resident.insert(self.key, self.len) {
                    s.bytes -= old;
                }
                s.stamps.insert(self.key, s.clock);
                s.bytes += self.len;
                s.evict_to_capacity(self.key);
                self.result = Some(Ok(self.len));
                self.pc = PoolPc::Done;
            }
            PoolPc::WaitFlight { .. } => {
                // Woken: re-check the cache; if the load failed or the
                // entry was evicted we may become the loader.
                self.pc = PoolPc::CheckCache;
            }
            PoolPc::Done => {}
        }
    }
}

/// The invariants every terminal pool state must satisfy, regardless
/// of schedule. Scenario-specific bounds are layered on by callers.
pub fn pool_invariants(s: &PoolState, threads: &[PoolThread]) -> Result<(), String> {
    if s.bytes != s.resident_bytes() {
        return Err(format!(
            "bytes {} != resident {}",
            s.bytes,
            s.resident_bytes()
        ));
    }
    if s.bytes > s.capacity {
        return Err(format!("bytes {} exceeds capacity {}", s.bytes, s.capacity));
    }
    if !s.loading.is_empty() {
        return Err(format!("loading map not drained: {:?}", s.loading));
    }
    if s.hits + s.misses != threads.len() as u64 {
        return Err(format!(
            "hits {} + misses {} != {} calls",
            s.hits,
            s.misses,
            threads.len()
        ));
    }
    for (i, t) in threads.iter().enumerate() {
        match t.result {
            None => return Err(format!("thread {i} finished without a result")),
            Some(Ok(len)) if len != t.len => {
                return Err(format!("thread {i} got {len} bytes, wanted {}", t.len))
            }
            _ => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Model 2: batch scatter / reassembly (exec::parallel::scatter)
// ---------------------------------------------------------------------------

/// Shared scatter state: the job queue and completion-ordered results
/// vector, each protected by its own mutex in the real code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScatterState {
    /// Reversed `(index, item)` jobs; `pop()` hands out input order
    /// (parallel.rs lines 88–90).
    queue: Vec<(usize, u32)>,
    /// `(index, f(item))` pushed in completion order (line 99).
    results: Vec<(usize, Result<u32, u32>)>,
    jobs: usize,
}

impl ScatterState {
    /// Seeds the queue with `items` in reversed order, exactly as
    /// `scatter` does so `pop()` hands out jobs in input order.
    pub fn new(items: &[u32]) -> ScatterState {
        let mut queue: Vec<(usize, u32)> = items.iter().copied().enumerate().collect();
        queue.reverse();
        ScatterState {
            queue,
            results: Vec::new(),
            jobs: items.len(),
        }
    }
}

/// The model transform: a cheap injective function so wrong/duplicate
/// outputs are detectable.
fn kernel(item: u32) -> u32 {
    item.wrapping_mul(2).wrapping_add(1)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum WorkerPc {
    /// Locked queue pop (parallel.rs line 95).
    Pop,
    /// Out-of-lock compute of `f(i, t)` (line 98).
    Compute {
        index: usize,
        item: u32,
    },
    /// Locked results push (line 99).
    Push {
        index: usize,
        value: Result<u32, u32>,
    },
    Done,
}

/// One scatter worker; `fail_index` models a transform error for the
/// error-in-position scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerThread {
    pc: WorkerPc,
    fail_index: Option<usize>,
}

impl WorkerThread {
    pub fn new(fail_index: Option<usize>) -> WorkerThread {
        WorkerThread {
            pc: WorkerPc::Pop,
            fail_index,
        }
    }
}

impl ModelThread<ScatterState> for WorkerThread {
    fn done(&self) -> bool {
        self.pc == WorkerPc::Done
    }

    fn runnable(&self, _shared: &ScatterState) -> bool {
        self.pc != WorkerPc::Done
    }

    fn step(&mut self, s: &mut ScatterState) {
        match self.pc.clone() {
            WorkerPc::Pop => match s.queue.pop() {
                Some((index, item)) => self.pc = WorkerPc::Compute { index, item },
                None => self.pc = WorkerPc::Done,
            },
            WorkerPc::Compute { index, item } => {
                let value = if self.fail_index == Some(index) {
                    Err(item)
                } else {
                    Ok(kernel(item))
                };
                self.pc = WorkerPc::Push { index, value };
            }
            WorkerPc::Push { index, value } => {
                s.results.push((index, value));
                self.pc = WorkerPc::Pop;
            }
            WorkerPc::Done => {}
        }
    }
}

/// The reassembly contract: scattering the results back into
/// index-ordered slots reproduces the serial output exactly —
/// byte-identical, with errors in their input positions.
pub fn scatter_invariants(s: &ScatterState, items: &[u32], fail: &[usize]) -> Result<(), String> {
    if s.results.len() != s.jobs {
        return Err(format!("{} results for {} jobs", s.results.len(), s.jobs));
    }
    // Reassemble exactly as parallel.rs lines 106–110 do.
    let mut slots: Vec<Option<Result<u32, u32>>> = vec![None; s.jobs];
    for (i, v) in &s.results {
        if slots[*i].is_some() {
            return Err(format!("slot {i} produced twice"));
        }
        slots[*i] = Some(*v);
    }
    for (i, slot) in slots.iter().enumerate() {
        let expected = if fail.contains(&i) {
            Err(items[i])
        } else {
            Ok(kernel(items[i]))
        };
        match slot {
            None => return Err(format!("slot {i} missing")),
            Some(v) if *v != expected => {
                return Err(format!(
                    "slot {i}: got {v:?}, serial path gives {expected:?}"
                ))
            }
            _ => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Model 3: shared-scan decode coalescing (exec::sharedscan::SharedDecode)
// ---------------------------------------------------------------------------

/// Shared state of `SharedDecode`: the decoded-frame cache plus the
/// generic single-flight table (`storage::bufferpool::SingleFlight`),
/// each behind its own mutex in the real code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedScanState {
    /// key → decoded payload length (the model's frame cache).
    cache: BTreeMap<u8, usize>,
    /// key → flight id with a decode in progress.
    flights: BTreeMap<u8, usize>,
    /// flight id → completed (`Flight::finish`).
    flights_done: Vec<bool>,
    hits: u64,
    decodes: u64,
    /// When set, the Nth decode (1-based) fails — models a corrupt
    /// GOP surfacing in the leader.
    failing_decode: Option<u64>,
}

impl SharedScanState {
    pub fn new() -> SharedScanState {
        SharedScanState {
            cache: BTreeMap::new(),
            flights: BTreeMap::new(),
            flights_done: Vec::new(),
            hits: 0,
            decodes: 0,
            failing_decode: None,
        }
    }

    pub fn failing_decode(mut self, nth: u64) -> SharedScanState {
        self.failing_decode = Some(nth);
        self
    }
}

impl Default for SharedScanState {
    fn default() -> SharedScanState {
        SharedScanState::new()
    }
}

/// Program counter of one `SharedDecode::decode(key)` call. The step
/// granularity mirrors the real critical sections: the cache lookup
/// and the `SingleFlight::join` are separate lock acquisitions, so a
/// leader can publish *between* another thread's lookup and join.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SharedScanPc {
    /// Locked cache lookup (sharedscan.rs `decode` loop head).
    CheckCache,
    /// Locked `SingleFlight::join`: register as leader or park.
    Join,
    /// Out-of-lock decode by the leader.
    Decode {
        flight: usize,
    },
    /// Locked publish + ticket drop (flight removal and `finish`).
    Publish {
        flight: usize,
        ok: bool,
    },
    /// Parked on `Flight::wait_done`; wakes on completion or abort.
    WaitFlight {
        flight: usize,
    },
    Done,
}

/// One model query decoding GOP `key` (`len` decoded bytes). An
/// `aborted` thread models a cancelled `QueryCtx`: its waits return
/// immediately and it must exit with an error instead of parking
/// forever on a foreign flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedScanThread {
    key: u8,
    len: usize,
    pc: SharedScanPc,
    aborted: bool,
    /// What the call returned: decoded length, or error (failed own
    /// decode / cancelled).
    pub result: Option<Result<usize, ()>>,
}

impl SharedScanThread {
    pub fn decode(key: u8, len: usize) -> SharedScanThread {
        SharedScanThread {
            key,
            len,
            pc: SharedScanPc::CheckCache,
            aborted: false,
            result: None,
        }
    }

    pub fn aborted(mut self) -> SharedScanThread {
        self.aborted = true;
        self
    }
}

impl ModelThread<SharedScanState> for SharedScanThread {
    fn done(&self) -> bool {
        self.pc == SharedScanPc::Done
    }

    fn runnable(&self, shared: &SharedScanState) -> bool {
        match &self.pc {
            // The real wait is a timed condvar loop that polls the
            // abort flag, so an aborted waiter is always runnable.
            SharedScanPc::WaitFlight { flight } => self.aborted || shared.flights_done[*flight],
            SharedScanPc::Done => false,
            _ => true,
        }
    }

    fn step(&mut self, s: &mut SharedScanState) {
        match self.pc.clone() {
            SharedScanPc::CheckCache => {
                if let Some(&len) = s.cache.get(&self.key) {
                    s.hits += 1;
                    self.result = Some(Ok(len));
                    self.pc = SharedScanPc::Done;
                    return;
                }
                self.pc = SharedScanPc::Join;
            }
            SharedScanPc::Join => {
                if let Some(&flight) = s.flights.get(&self.key) {
                    self.pc = SharedScanPc::WaitFlight { flight };
                    return;
                }
                let flight = s.flights_done.len();
                s.flights_done.push(false);
                s.flights.insert(self.key, flight);
                self.pc = SharedScanPc::Decode { flight };
            }
            SharedScanPc::Decode { flight } => {
                // Leader double-check (sharedscan.rs `Leader` arm): a
                // prior leader may have published between our lookup
                // and our join; serve the hit instead of re-decoding.
                if let Some(&len) = s.cache.get(&self.key) {
                    s.hits += 1;
                    self.result = Some(Ok(len));
                    s.flights.remove(&self.key);
                    s.flights_done[flight] = true;
                    self.pc = SharedScanPc::Done;
                    return;
                }
                s.decodes += 1;
                let ok = s.failing_decode != Some(s.decodes);
                self.pc = SharedScanPc::Publish { flight, ok };
            }
            SharedScanPc::Publish { flight, ok } => {
                if ok {
                    s.cache.insert(self.key, self.len);
                    self.result = Some(Ok(self.len));
                } else {
                    // A failed leader publishes nothing; dropping the
                    // ticket wakes waiters so one can take over.
                    self.result = Some(Err(()));
                }
                s.flights.remove(&self.key);
                s.flights_done[flight] = true;
                self.pc = SharedScanPc::Done;
            }
            SharedScanPc::WaitFlight { flight } => {
                if self.aborted && !s.flights_done[flight] {
                    // `FlightJoin::Aborted` → `ctx.check()` fails.
                    self.result = Some(Err(()));
                    self.pc = SharedScanPc::Done;
                    return;
                }
                // `FlightJoin::Completed`: loop back to the lookup; on
                // a failed leader we may become the next leader.
                self.pc = SharedScanPc::CheckCache;
            }
            SharedScanPc::Done => {}
        }
    }
}

/// Terminal invariants for every shared-scan schedule.
pub fn shared_scan_invariants(
    s: &SharedScanState,
    threads: &[SharedScanThread],
) -> Result<(), String> {
    if !s.flights.is_empty() {
        return Err(format!("flight table not drained: {:?}", s.flights));
    }
    for (i, t) in threads.iter().enumerate() {
        match t.result {
            None => return Err(format!("thread {i} finished without a result")),
            Some(Ok(len)) if len != t.len => {
                return Err(format!("thread {i} got {len} bytes, wanted {}", t.len))
            }
            _ => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Model 4: encoded-tile cache single-flight (exec::tilecache::TileCache)
// ---------------------------------------------------------------------------

/// Shared state of `TileCache`: the byte-budgeted LRU map plus the
/// generic single-flight table, each behind its own lock in the real
/// code (`CacheInner` mutex and `SingleFlight`'s mutex).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileCacheState {
    /// key → (encoded tile length, LRU stamp).
    cache: BTreeMap<u8, (usize, u64)>,
    bytes: usize,
    budget: usize,
    clock: u64,
    /// key → flight id with an extraction in progress.
    flights: BTreeMap<u8, usize>,
    /// flight id → completed (`FlightTicket` dropped).
    flights_done: Vec<bool>,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
    /// `extract_tile` executions — the work the cache exists to avoid.
    extracts: u64,
    /// When set, the Nth extraction (1-based) fails — a corrupt GOP
    /// surfacing in the leader.
    failing_extract: Option<u64>,
}

impl TileCacheState {
    pub fn new(budget: usize) -> TileCacheState {
        TileCacheState {
            cache: BTreeMap::new(),
            bytes: 0,
            budget,
            clock: 0,
            flights: BTreeMap::new(),
            flights_done: Vec::new(),
            hits: 0,
            misses: 0,
            coalesced: 0,
            evictions: 0,
            extracts: 0,
            failing_extract: None,
        }
    }

    pub fn failing_extract(mut self, nth: u64) -> TileCacheState {
        self.failing_extract = Some(nth);
        self
    }

    /// Mirrors `CacheInner::evict_to_budget`: LRU-evict sparing the
    /// just-published key, then drop even it if alone over budget
    /// (oversized tiles are served but never retained).
    fn evict_to_budget(&mut self, protect: u8) {
        while self.bytes > self.budget {
            let victim = self
                .cache
                .iter()
                .filter(|(&k, _)| k != protect)
                .min_by_key(|(_, &(_, stamp))| stamp)
                .map(|(&k, _)| k);
            let Some(v) = victim else { break };
            if let Some((len, _)) = self.cache.remove(&v) {
                self.bytes -= len;
                self.evictions += 1;
            }
        }
        if self.bytes > self.budget {
            if let Some((len, _)) = self.cache.remove(&protect) {
                self.bytes -= len;
                self.evictions += 1;
            }
        }
    }
}

/// Program counter of one `TileCache::get_or_extract(key)` call. The
/// cache lookup and the `SingleFlight::join` are separate lock
/// acquisitions (as in the real code), so a leader can publish
/// between another thread's lookup and join — the leader double-check
/// covers that window.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TileCachePc {
    /// Locked cache lookup (tilecache.rs `get_or_extract` loop head).
    CheckCache,
    /// Locked `SingleFlight::join`: become leader or park.
    Join,
    /// Leader: locked double-check, then the out-of-lock
    /// `extract_tile` whose success is decided here so `Publish`
    /// stays atomic.
    Extract {
        flight: usize,
    },
    /// Locked publish + eviction + ticket drop — or, on a failed
    /// extraction, just the ticket drop (nothing is published and
    /// misses is *not* bumped; the error propagates).
    Publish {
        flight: usize,
        ok: bool,
    },
    /// Parked on the flight; wakes on completion or abort.
    WaitFlight {
        flight: usize,
    },
    Done,
}

/// One model request for tile `key` (`len` encoded bytes). An
/// `aborted` thread models a cancelled request: its waits return
/// immediately and it must exit with an error rather than park
/// forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileCacheThread {
    key: u8,
    len: usize,
    pc: TileCachePc,
    /// Parked behind a foreign flight at least once — decides hit vs
    /// coalesced attribution (the `waited` flag in the real code).
    waited: bool,
    aborted: bool,
    /// What the call returned: served length, or error (failed own
    /// extraction / cancelled).
    pub result: Option<Result<usize, ()>>,
}

impl TileCacheThread {
    pub fn get(key: u8, len: usize) -> TileCacheThread {
        TileCacheThread {
            key,
            len,
            pc: TileCachePc::CheckCache,
            waited: false,
            aborted: false,
            result: None,
        }
    }

    pub fn aborted(mut self) -> TileCacheThread {
        self.aborted = true;
        self
    }

    /// Serve from cache with hit/coalesced attribution (shared by the
    /// loop-head lookup and the leader double-check).
    fn serve_hit(&mut self, s: &mut TileCacheState, len: usize) {
        s.clock += 1;
        if let Some(entry) = s.cache.get_mut(&self.key) {
            entry.1 = s.clock; // LRU touch
        }
        if self.waited {
            s.coalesced += 1;
        } else {
            s.hits += 1;
        }
        self.result = Some(Ok(len));
        self.pc = TileCachePc::Done;
    }
}

impl ModelThread<TileCacheState> for TileCacheThread {
    fn done(&self) -> bool {
        self.pc == TileCachePc::Done
    }

    fn runnable(&self, shared: &TileCacheState) -> bool {
        match &self.pc {
            // The real wait is the sanctioned timed-condvar loop that
            // polls `should_abort`, so an aborted waiter always runs.
            TileCachePc::WaitFlight { flight } => self.aborted || shared.flights_done[*flight],
            TileCachePc::Done => false,
            _ => true,
        }
    }

    fn step(&mut self, s: &mut TileCacheState) {
        match self.pc.clone() {
            TileCachePc::CheckCache => {
                if let Some(&(len, _)) = s.cache.get(&self.key) {
                    self.serve_hit(s, len);
                    return;
                }
                self.pc = TileCachePc::Join;
            }
            TileCachePc::Join => {
                if let Some(&flight) = s.flights.get(&self.key) {
                    self.pc = TileCachePc::WaitFlight { flight };
                    return;
                }
                let flight = s.flights_done.len();
                s.flights_done.push(false);
                s.flights.insert(self.key, flight);
                self.pc = TileCachePc::Extract { flight };
            }
            TileCachePc::Extract { flight } => {
                // Leader double-check: a prior leader may have
                // published between our lookup and our join.
                if let Some(&(len, _)) = s.cache.get(&self.key) {
                    self.serve_hit(s, len);
                    s.flights.remove(&self.key);
                    s.flights_done[flight] = true;
                    return;
                }
                s.extracts += 1;
                let ok = s.failing_extract != Some(s.extracts);
                self.pc = TileCachePc::Publish { flight, ok };
            }
            TileCachePc::Publish { flight, ok } => {
                if ok {
                    s.misses += 1;
                    s.clock += 1;
                    if let Some((old, _)) = s.cache.insert(self.key, (self.len, s.clock)) {
                        s.bytes -= old;
                    }
                    s.bytes += self.len;
                    s.evict_to_budget(self.key);
                    self.result = Some(Ok(self.len));
                } else {
                    // `extract()?` propagates: nothing published, no
                    // miss counted; the ticket drop wakes waiters so
                    // one can take over as leader.
                    self.result = Some(Err(()));
                }
                s.flights.remove(&self.key);
                s.flights_done[flight] = true;
                self.pc = TileCachePc::Done;
            }
            TileCachePc::WaitFlight { flight } => {
                if self.aborted && !s.flights_done[flight] {
                    // `FlightJoin::Aborted` → `ExecError::Cancelled`.
                    self.result = Some(Err(()));
                    self.pc = TileCachePc::Done;
                    return;
                }
                // `FlightJoin::Completed`: mark waited, re-lookup; on
                // a failed leader we may become the next leader.
                self.waited = true;
                self.pc = TileCachePc::CheckCache;
            }
            TileCachePc::Done => {}
        }
    }
}

/// Terminal invariants for every tile-cache schedule: exact byte
/// accounting within budget, drained flight table, and counter
/// attribution — every successful call is exactly one of
/// hit/coalesced/miss, and misses equals successful extractions.
pub fn tile_cache_invariants(
    s: &TileCacheState,
    threads: &[TileCacheThread],
) -> Result<(), String> {
    let resident: usize = s.cache.values().map(|&(len, _)| len).sum();
    if s.bytes != resident {
        return Err(format!("bytes {} != resident {}", s.bytes, resident));
    }
    if s.bytes > s.budget {
        return Err(format!("bytes {} exceeds budget {}", s.bytes, s.budget));
    }
    if !s.flights.is_empty() {
        return Err(format!("flight table not drained: {:?}", s.flights));
    }
    let oks = threads
        .iter()
        .filter(|t| matches!(t.result, Some(Ok(_))))
        .count() as u64;
    if s.hits + s.coalesced + s.misses != oks {
        return Err(format!(
            "hits {} + coalesced {} + misses {} != {} successful calls",
            s.hits, s.coalesced, s.misses, oks
        ));
    }
    for (i, t) in threads.iter().enumerate() {
        match t.result {
            None => return Err(format!("thread {i} finished without a result")),
            Some(Ok(len)) if len != t.len => {
                return Err(format!("thread {i} got {len} bytes, wanted {}", t.len))
            }
            _ => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// One named exhaustive exploration.
#[derive(Debug)]
pub struct Scenario {
    pub name: &'static str,
    pub outcome: Outcome,
}

/// Runs the full harness: every scenario, exhaustively.
pub fn run_all() -> Vec<Scenario> {
    let mut out = Vec::new();

    // Two, then three concurrent misses on one key: must coalesce to
    // a single disk load with exact byte accounting.
    for n in [2usize, 3] {
        let state = PoolState::new(1 << 20);
        let threads: Vec<PoolThread> = (0..n).map(|_| PoolThread::get(7, 512)).collect();
        let outcome = explore(&state, &threads, &|s, t| {
            pool_invariants(s, t)?;
            if s.loads != 1 {
                return Err(format!(
                    "{} loads; concurrent misses must coalesce",
                    s.loads
                ));
            }
            if s.bytes != 512 {
                return Err(format!("bytes {} != 512", s.bytes));
            }
            Ok(())
        });
        out.push(Scenario {
            name: if n == 2 {
                "pool/single-flight-2"
            } else {
                "pool/single-flight-3"
            },
            outcome,
        });
    }

    // Mixed keys: two threads on key A, one on key B — exactly one
    // load per distinct key.
    {
        let state = PoolState::new(1 << 20);
        let threads = vec![
            PoolThread::get(1, 100),
            PoolThread::get(1, 100),
            PoolThread::get(2, 200),
        ];
        let outcome = explore(&state, &threads, &|s, t| {
            pool_invariants(s, t)?;
            if s.loads != 2 {
                return Err(format!("{} loads for 2 distinct keys", s.loads));
            }
            if s.bytes != 300 {
                return Err(format!("bytes {} != 300", s.bytes));
            }
            Ok(())
        });
        out.push(Scenario {
            name: "pool/mixed-keys",
            outcome,
        });
    }

    // Failed first load: the waiter must take over as loader; exactly
    // one caller sees the error and the pool still converges.
    {
        let state = PoolState::new(1 << 20).failing_load(1);
        let threads = vec![PoolThread::get(3, 256), PoolThread::get(3, 256)];
        let outcome = explore(&state, &threads, &|s, t| {
            pool_invariants(s, t)?;
            let errs = t.iter().filter(|t| t.result == Some(Err(()))).count();
            let oks = t.iter().filter(|t| matches!(t.result, Some(Ok(_)))).count();
            if errs != 1 || oks != 1 {
                return Err(format!("{errs} errors / {oks} successes; want 1 / 1"));
            }
            if s.loads != 2 {
                return Err(format!(
                    "{} loads; failed load must be retried once",
                    s.loads
                ));
            }
            if s.bytes != 256 {
                return Err(format!("bytes {} != 256 after recovery", s.bytes));
            }
            Ok(())
        });
        out.push(Scenario {
            name: "pool/failed-load-handover",
            outcome,
        });
    }

    // Eviction pressure: capacity holds only one of the two entries;
    // accounting must stay exact under every insertion order.
    {
        let state = PoolState::new(150);
        let threads = vec![PoolThread::get(1, 100), PoolThread::get(2, 100)];
        let outcome = explore(&state, &threads, &|s, t| {
            pool_invariants(s, t)?;
            if s.resident.len() != 1 || s.bytes != 100 {
                return Err(format!(
                    "want exactly one 100-byte entry resident, got {} entries / {} bytes",
                    s.resident.len(),
                    s.bytes
                ));
            }
            if s.evictions != 1 {
                return Err(format!("{} evictions; want 1", s.evictions));
            }
            Ok(())
        });
        out.push(Scenario {
            name: "pool/eviction-accounting",
            outcome,
        });
    }

    // Oversized entry: larger than the whole pool — served to every
    // caller but never resident.
    {
        let state = PoolState::new(100);
        let threads = vec![PoolThread::get(1, 150), PoolThread::get(1, 150)];
        let outcome = explore(&state, &threads, &|s, t| {
            pool_invariants(s, t)?;
            if !s.resident.is_empty() || s.bytes != 0 {
                return Err(format!(
                    "oversized entry must not stay resident: {:?}",
                    s.resident
                ));
            }
            Ok(())
        });
        out.push(Scenario {
            name: "pool/oversized-never-resident",
            outcome,
        });
    }

    // Scatter reassembly: 2 and 3 workers over 4 jobs; output must be
    // byte-identical to the serial map under every completion order.
    let items = [10u32, 20, 30, 40];
    for workers in [2usize, 3] {
        let state = ScatterState::new(&items);
        let threads: Vec<WorkerThread> = (0..workers).map(|_| WorkerThread::new(None)).collect();
        let outcome = explore(&state, &threads, &|s, _| scatter_invariants(s, &items, &[]));
        out.push(Scenario {
            name: if workers == 2 {
                "scatter/reassembly-2w"
            } else {
                "scatter/reassembly-3w"
            },
            outcome,
        });
    }

    // Error in position: a failing transform must land in its input
    // slot, exactly as the serial path would emit it.
    {
        let state = ScatterState::new(&items);
        let threads = vec![WorkerThread::new(Some(2)), WorkerThread::new(Some(2))];
        let outcome = explore(&state, &threads, &|s, _| {
            scatter_invariants(s, &items, &[2])
        });
        out.push(Scenario {
            name: "scatter/error-in-position",
            outcome,
        });
    }

    // Shared scans: 2, then 3 concurrent queries decoding one GOP must
    // coalesce to exactly one decode; everyone gets the frames.
    for n in [2usize, 3] {
        let state = SharedScanState::new();
        let threads: Vec<SharedScanThread> =
            (0..n).map(|_| SharedScanThread::decode(7, 4096)).collect();
        let outcome = explore(&state, &threads, &|s, t| {
            shared_scan_invariants(s, t)?;
            if s.decodes != 1 {
                return Err(format!(
                    "{} decodes; concurrent scans must coalesce",
                    s.decodes
                ));
            }
            if t.iter().any(|t| t.result != Some(Ok(4096))) {
                return Err("a query finished without the decoded frames".into());
            }
            Ok(())
        });
        out.push(Scenario {
            name: if n == 2 {
                "sharedscan/exactly-once-2"
            } else {
                "sharedscan/exactly-once-3"
            },
            outcome,
        });
    }

    // Distinct GOPs never coalesce: one decode per key.
    {
        let state = SharedScanState::new();
        let threads = vec![
            SharedScanThread::decode(1, 100),
            SharedScanThread::decode(1, 100),
            SharedScanThread::decode(2, 200),
        ];
        let outcome = explore(&state, &threads, &|s, t| {
            shared_scan_invariants(s, t)?;
            if s.decodes != 2 {
                return Err(format!("{} decodes for 2 distinct GOPs", s.decodes));
            }
            Ok(())
        });
        out.push(Scenario {
            name: "sharedscan/distinct-gops",
            outcome,
        });
    }

    // Failed leader: the first decode errors; a follower must take
    // over, decode, and succeed — exactly one error, one success.
    {
        let state = SharedScanState::new().failing_decode(1);
        let threads = vec![
            SharedScanThread::decode(3, 256),
            SharedScanThread::decode(3, 256),
        ];
        let outcome = explore(&state, &threads, &|s, t| {
            shared_scan_invariants(s, t)?;
            let errs = t.iter().filter(|t| t.result == Some(Err(()))).count();
            let oks = t.iter().filter(|t| t.result == Some(Ok(256))).count();
            if errs + oks != 2 || oks < 1 {
                return Err(format!(
                    "{errs} errors / {oks} successes; want at least 1 success"
                ));
            }
            if s.decodes > 2 {
                return Err(format!(
                    "{} decodes; handover must retry at most once",
                    s.decodes
                ));
            }
            Ok(())
        });
        out.push(Scenario {
            name: "sharedscan/failed-leader-handover",
            outcome,
        });
    }

    // Cancelled follower: a query whose ctx is cancelled must exit
    // with an error instead of parking on a foreign flight, while the
    // leader still completes normally.
    {
        let state = SharedScanState::new();
        let threads = vec![
            SharedScanThread::decode(5, 512),
            SharedScanThread::decode(5, 512).aborted(),
        ];
        let outcome = explore(&state, &threads, &|s, t| {
            shared_scan_invariants(s, t)?;
            if t[0].result != Some(Ok(512)) {
                return Err(format!("leader failed: {:?}", t[0].result));
            }
            if t[1].result.is_none() {
                return Err("cancelled follower never returned".into());
            }
            if s.decodes > 1 {
                return Err(format!("{} decodes with one real query", s.decodes));
            }
            Ok(())
        });
        out.push(Scenario {
            name: "sharedscan/cancelled-follower-unparks",
            outcome,
        });
    }

    // Tile cache: 2, then 3 concurrent requests for one hot tile must
    // run extract_tile exactly once, with exact counter attribution —
    // one miss, everyone else a hit or a coalesced wait.
    for n in [2usize, 3] {
        let state = TileCacheState::new(1 << 20);
        let threads: Vec<TileCacheThread> = (0..n).map(|_| TileCacheThread::get(7, 900)).collect();
        let outcome = explore(&state, &threads, &|s, t| {
            tile_cache_invariants(s, t)?;
            if s.extracts != 1 {
                return Err(format!(
                    "{} extractions; hot-tile requests must coalesce",
                    s.extracts
                ));
            }
            if s.misses != 1 || s.hits + s.coalesced != n as u64 - 1 {
                return Err(format!(
                    "attribution drifted: {} misses, {} hits, {} coalesced for {n} calls",
                    s.misses, s.hits, s.coalesced
                ));
            }
            if t.iter().any(|t| t.result != Some(Ok(900))) {
                return Err("a request finished without the tile bytes".into());
            }
            Ok(())
        });
        out.push(Scenario {
            name: if n == 2 {
                "tilecache/exactly-once-2"
            } else {
                "tilecache/exactly-once-3"
            },
            outcome,
        });
    }

    // Concurrent distinct keys never coalesce: one extraction per
    // tile, both resident, exact byte accounting.
    {
        let state = TileCacheState::new(1 << 20);
        let threads = vec![
            TileCacheThread::get(1, 100),
            TileCacheThread::get(1, 100),
            TileCacheThread::get(2, 200),
        ];
        let outcome = explore(&state, &threads, &|s, t| {
            tile_cache_invariants(s, t)?;
            if s.extracts != 2 {
                return Err(format!("{} extractions for 2 distinct tiles", s.extracts));
            }
            if s.bytes != 300 {
                return Err(format!("bytes {} != 300", s.bytes));
            }
            Ok(())
        });
        out.push(Scenario {
            name: "tilecache/distinct-keys",
            outcome,
        });
    }

    // Failed leader: the first extraction errors; the waiter must be
    // woken, take over as leader, extract, and succeed — exactly one
    // error, one success, one counted miss, converged cache.
    {
        let state = TileCacheState::new(1 << 20).failing_extract(1);
        let threads = vec![TileCacheThread::get(3, 256), TileCacheThread::get(3, 256)];
        let outcome = explore(&state, &threads, &|s, t| {
            tile_cache_invariants(s, t)?;
            let errs = t.iter().filter(|t| t.result == Some(Err(()))).count();
            let oks = t.iter().filter(|t| t.result == Some(Ok(256))).count();
            if errs != 1 || oks != 1 {
                return Err(format!("{errs} errors / {oks} successes; want 1 / 1"));
            }
            if s.extracts != 2 {
                return Err(format!(
                    "{} extractions; handover must retry exactly once",
                    s.extracts
                ));
            }
            if s.misses != 1 {
                return Err(format!(
                    "{} misses; failed extractions must not count",
                    s.misses
                ));
            }
            if s.bytes != 256 {
                return Err(format!("bytes {} != 256 after recovery", s.bytes));
            }
            Ok(())
        });
        out.push(Scenario {
            name: "tilecache/failed-leader-handover",
            outcome,
        });
    }

    // Cancelled waiter: a request whose abort fires must exit instead
    // of parking on a foreign flight; the leader still publishes.
    {
        let state = TileCacheState::new(1 << 20);
        let threads = vec![
            TileCacheThread::get(5, 512),
            TileCacheThread::get(5, 512).aborted(),
        ];
        let outcome = explore(&state, &threads, &|s, t| {
            tile_cache_invariants(s, t)?;
            if t[0].result != Some(Ok(512)) {
                return Err(format!("leader failed: {:?}", t[0].result));
            }
            if t[1].result.is_none() {
                return Err("cancelled waiter never returned".into());
            }
            if s.extracts > 1 {
                return Err(format!("{} extractions with one real request", s.extracts));
            }
            Ok(())
        });
        out.push(Scenario {
            name: "tilecache/cancelled-waiter-unparks",
            outcome,
        });
    }

    // Budget pressure: the budget holds only one of two tiles; every
    // publication order must evict down to budget with exact
    // accounting (and both callers still get their bytes).
    {
        let state = TileCacheState::new(150);
        let threads = vec![TileCacheThread::get(1, 100), TileCacheThread::get(2, 100)];
        let outcome = explore(&state, &threads, &|s, t| {
            tile_cache_invariants(s, t)?;
            if s.cache.len() != 1 || s.bytes != 100 {
                return Err(format!(
                    "want exactly one 100-byte tile resident, got {} entries / {} bytes",
                    s.cache.len(),
                    s.bytes
                ));
            }
            if s.evictions != 1 {
                return Err(format!("{} evictions; want 1", s.evictions));
            }
            Ok(())
        });
        out.push(Scenario {
            name: "tilecache/budget-eviction",
            outcome,
        });
    }

    // Oversized tile: bigger than the whole budget — served to both
    // callers but never retained.
    {
        let state = TileCacheState::new(100);
        let threads = vec![TileCacheThread::get(1, 150), TileCacheThread::get(1, 150)];
        let outcome = explore(&state, &threads, &|s, t| {
            tile_cache_invariants(s, t)?;
            if !s.cache.is_empty() || s.bytes != 0 {
                return Err(format!(
                    "oversized tile must not stay resident: {:?}",
                    s.cache
                ));
            }
            Ok(())
        });
        out.push(Scenario {
            name: "tilecache/oversized-never-resident",
            outcome,
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_hold_and_explore_enough_schedules() {
        let scenarios = run_all();
        let mut total = 0u64;
        for s in &scenarios {
            assert!(
                s.outcome.ok(),
                "{}: {} failures / {} deadlocks (first: {:?})",
                s.name,
                s.outcome.failures.len(),
                s.outcome.deadlocks,
                s.outcome.failures.first()
            );
            total += s.outcome.schedules;
        }
        assert!(
            total >= 100,
            "only {total} schedules explored across the harness"
        );
    }

    #[test]
    fn single_flight_pair_explores_multiple_schedules() {
        let state = PoolState::new(1 << 20);
        let threads = vec![PoolThread::get(0, 64), PoolThread::get(0, 64)];
        let o = explore(&state, &threads, &pool_invariants_check);
        assert!(o.ok());
        assert!(o.schedules >= 4, "{} schedules", o.schedules);
    }

    fn pool_invariants_check(s: &PoolState, t: &[PoolThread]) -> Result<(), String> {
        pool_invariants(s, t)
    }

    /// A deliberately broken model — double-counting bytes on re-insert,
    /// the exact bug PR 2 fixed — must be caught by the explorer.
    #[test]
    fn explorer_catches_seeded_accounting_bug() {
        #[derive(Clone)]
        struct Buggy(PoolThread);
        impl ModelThread<PoolState> for Buggy {
            fn done(&self) -> bool {
                self.0.done()
            }
            fn runnable(&self, s: &PoolState) -> bool {
                self.0.runnable(s)
            }
            fn step(&mut self, s: &mut PoolState) {
                // Re-introduce the pre-PR-2 bug: publish without
                // releasing the replaced entry's bytes and without
                // single-flight (always load; never wait).
                match self.0.pc.clone() {
                    PoolPc::CheckCache => {
                        s.clock += 1;
                        if !self.0.counted {
                            s.misses += 1;
                            self.0.counted = true;
                        }
                        self.0.pc = PoolPc::Load { flight: usize::MAX };
                    }
                    PoolPc::Load { .. } => {
                        self.0.pc = PoolPc::Publish {
                            flight: usize::MAX,
                            load_ok: true,
                        }
                    }
                    PoolPc::Publish { .. } => {
                        s.loads += 1;
                        s.resident.insert(self.0.key, self.0.len);
                        s.bytes += self.0.len; // BUG: no release on replace
                        self.0.result = Some(Ok(self.0.len));
                        self.0.pc = PoolPc::Done;
                    }
                    _ => {}
                }
            }
        }
        let state = PoolState::new(1 << 20);
        let threads = vec![Buggy(PoolThread::get(0, 64)), Buggy(PoolThread::get(0, 64))];
        let o = explore(&state, &threads, &|s, _| {
            if s.bytes != s.resident.values().sum::<usize>() {
                return Err("accounting bug".into());
            }
            Ok(())
        });
        assert!(!o.failures.is_empty(), "the seeded bug must be detected");
    }

    #[test]
    fn explorer_reports_deadlock_on_wedged_model() {
        #[derive(Clone)]
        struct Stuck(bool);
        impl ModelThread<()> for Stuck {
            fn done(&self) -> bool {
                self.0
            }
            fn runnable(&self, _s: &()) -> bool {
                false // waits forever on a condition nobody signals
            }
            fn step(&mut self, _s: &mut ()) {}
        }
        let o = explore(&(), &[Stuck(false)], &|_, _| Ok(()));
        assert_eq!(o.deadlocks, 1);
        assert!(!o.ok());
    }

    #[test]
    fn schedule_counts_match_interleaving_combinatorics() {
        // Two independent 1-step threads: exactly 2 schedules (AB, BA).
        #[derive(Clone)]
        struct OneStep(bool);
        impl ModelThread<u32> for OneStep {
            fn done(&self) -> bool {
                self.0
            }
            fn runnable(&self, _: &u32) -> bool {
                true
            }
            fn step(&mut self, s: &mut u32) {
                *s += 1;
                self.0 = true;
            }
        }
        let o = explore(&0u32, &[OneStep(false), OneStep(false)], &|s, _| {
            if *s == 2 {
                Ok(())
            } else {
                Err("lost update".into())
            }
        });
        assert_eq!(o.schedules, 2);
        assert!(o.ok());
    }
}
