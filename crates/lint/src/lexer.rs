//! A hand-rolled Rust lexer, sufficient for invariant linting.
//!
//! The workspace builds offline (no `syn`, no registry), so the lint
//! tool tokenises Rust source itself. The lexer is deliberately
//! simple: it distinguishes identifiers, lifetimes, literals,
//! punctuation, and comments, with enough fidelity that rule patterns
//! (`.unwrap(`, `fs::rename(`, `unsafe {`) never fire inside string
//! literals or comments, and that `// lint:` / `// SAFETY:` markers
//! are visible to the rules as comment tokens.
//!
//! It does not build a syntax tree; the rules operate on the token
//! stream plus line numbers.

/// The classes of token the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `unsafe`, ...).
    Ident,
    /// Lifetime such as `'a` (kept distinct so `'a` is never
    /// mistaken for the start of a char literal).
    Lifetime,
    /// Numeric literal.
    Num,
    /// String, raw-string, byte-string, or char literal.
    Str,
    /// Single punctuation character (`.`, `:`, `{`, `!`, ...).
    Punct,
    /// `// ...` comment (text includes everything after the slashes).
    LineComment,
    /// `/* ... */` comment (possibly nested; text is the body).
    BlockComment,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenises `src`. Unterminated constructs (string, block comment)
/// consume to end of input rather than erroring: the lint must keep
/// going and report what it can.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    // Advances `i` past a (possibly raw) string body that starts at
    // the opening quote, returning the index just past the close.
    fn skip_string(b: &[char], mut i: usize, line: &mut u32, hashes: usize, raw: bool) -> usize {
        debug_assert_eq!(b[i], '"');
        i += 1;
        while i < b.len() {
            match b[i] {
                '\n' => {
                    *line += 1;
                    i += 1;
                }
                '\\' if !raw => {
                    i += 2; // escape: skip the escaped char too
                }
                '"' => {
                    // A raw string only closes on `"` followed by the
                    // right number of `#`s.
                    let mut k = 0usize;
                    while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        return i + 1 + hashes;
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        i
    }

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            '"' => {
                let start_line = line;
                let end = skip_string(&b, i, &mut line, 0, false);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: b[i..end.min(n)].iter().collect(),
                    line: start_line,
                });
                i = end;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if i + 1 < n && is_ident_start(b[i + 1]) && b[i + 1] != '\\' {
                    let mut j = i + 1;
                    while j < n && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' {
                        // `'a'` — a char literal after all.
                        toks.push(Tok {
                            kind: TokKind::Str,
                            text: b[i..=j].iter().collect(),
                            line,
                        });
                        i = j + 1;
                    } else {
                        toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: b[i..j].iter().collect(),
                            line,
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: scan to the
                    // closing quote, honouring a single backslash.
                    let start = i;
                    i += 1;
                    if i < n && b[i] == '\\' {
                        i += 2;
                        // `\u{...}` spans to the closing brace.
                        while i < n && b[i] != '\'' {
                            i += 1;
                        }
                    } else if i < n {
                        i += 1;
                    }
                    if i < n && b[i] == '\'' {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: b[start..i.min(n)].iter().collect(),
                        line,
                    });
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // Literal prefixes: r"", b"", br#""#, c"", and raw
                // identifiers r#name.
                let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
                if is_str_prefix && i < n && (b[i] == '"' || b[i] == '#') {
                    if b[i] == '"' {
                        let raw = ident.contains('r');
                        let start_line = line;
                        let end = skip_string(&b, i, &mut line, 0, raw);
                        toks.push(Tok {
                            kind: TokKind::Str,
                            text: b[start..end.min(n)].iter().collect(),
                            line: start_line,
                        });
                        i = end;
                        continue;
                    }
                    // Count `#`s; a quote after them means a raw
                    // string, an identifier char means a raw ident.
                    let mut j = i;
                    while j < n && b[j] == '#' {
                        j += 1;
                    }
                    if j < n && b[j] == '"' {
                        let hashes = j - i;
                        let start_line = line;
                        let end = skip_string(&b, j, &mut line, hashes, true);
                        toks.push(Tok {
                            kind: TokKind::Str,
                            text: b[start..end.min(n)].iter().collect(),
                            line: start_line,
                        });
                        i = end;
                        continue;
                    }
                    if ident == "r" && j < n && is_ident_start(b[j]) {
                        // raw identifier r#name
                        let mut k = j;
                        while k < n && is_ident_continue(b[k]) {
                            k += 1;
                        }
                        toks.push(Tok {
                            kind: TokKind::Ident,
                            text: b[j..k].iter().collect(),
                            line,
                        });
                        i = k;
                        continue;
                    }
                }
                toks.push(Tok { kind: TokKind::Ident, text: ident, line });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n
                    && (is_ident_continue(b[i])
                        || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
                {
                    i += 1;
                }
                toks.push(Tok { kind: TokKind::Num, text: b[start..i].iter().collect(), line });
            }
            _ => {
                toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
                i += 1;
            }
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("x.unwrap()");
        assert_eq!(t[0], (TokKind::Ident, "x".into()));
        assert_eq!(t[1], (TokKind::Punct, ".".into()));
        assert_eq!(t[2], (TokKind::Ident, "unwrap".into()));
        assert_eq!(t[3], (TokKind::Punct, "(".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let t = kinds(r#"let s = "a.unwrap() /* x */";"#);
        assert!(t.iter().all(|(k, txt)| *k != TokKind::Ident || txt != "unwrap"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let t = kinds(r##"let s = r#"he said "unwrap()""#; x"##);
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Ident && txt == "x"));
        assert!(t.iter().all(|(k, txt)| *k != TokKind::Ident || txt != "unwrap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Lifetime && txt == "'a"));
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Str && txt == "'x'"));
    }

    #[test]
    fn escaped_char_literals() {
        let t = kinds(r"let c = '\n'; let q = '\''; let u = '\u{1F600}'; end");
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Ident && txt == "end"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 3);
    }

    #[test]
    fn comments_carry_text_and_lines() {
        let t = lex("a\n// lint: allow(R1): because\nb /* block */ c");
        let c = t.iter().find(|t| t.kind == TokKind::LineComment).unwrap();
        assert_eq!(c.line, 2);
        assert!(c.text.contains("allow(R1)"));
        let blk = t.iter().find(|t| t.kind == TokKind::BlockComment).unwrap();
        assert_eq!(blk.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* outer /* inner */ still */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn line_numbers_advance_through_multiline_strings() {
        let t = lex("let s = \"line1\nline2\";\nafter");
        let after = t.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn raw_identifiers() {
        let t = kinds("let r#fn = 1;");
        assert!(t.iter().any(|(k, txt)| *k == TokKind::Ident && txt == "fn"));
    }
}
