//! Workspace traversal: find every `.rs` file the rules should see.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into: build output, VCS metadata, and
/// the lint's own known-bad fixture corpus (which *must* violate the
/// rules — that is what it is for).
fn skip_dir(rel: &str, name: &str) -> bool {
    matches!(name, "target" | ".git") || rel == "crates/lint/tests/fixtures"
}

/// Recursively collects workspace-relative paths (forward slashes) of
/// every `.rs` file under `root`, sorted for deterministic output.
pub fn rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if !skip_dir(&rel, &name) {
                    stack.push(path);
                }
            } else if ty.is_file() && name.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_and_skips_fixtures() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        let files = rust_files(&root).unwrap();
        assert!(files.iter().any(|f| f == "crates/lint/src/walk.rs"));
        assert!(files.iter().any(|f| f == "crates/storage/src/bufferpool.rs"));
        assert!(!files.iter().any(|f| f.starts_with("crates/lint/tests/fixtures/")));
        // The corpus driver itself (tests/fixtures.rs) is scanned.
        assert!(files.iter().any(|f| f == "crates/lint/tests/fixtures.rs"));
        assert!(!files.iter().any(|f| f.starts_with("target/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk output must be deterministic");
    }
}
