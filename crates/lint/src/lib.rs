//! # lightdb workspace lint
//!
//! A dependency-free static-analysis tool that mechanically enforces
//! the correctness contracts PRs 1–3 introduced (crash-consistent
//! publish ordering, single-flight lock discipline, allocation-free
//! hot kernels, panic hygiene, `SAFETY` documentation), plus a
//! miniature loom-style interleaving explorer for the two concurrency
//! algorithms everything else leans on.
//!
//! Run the rules with `cargo run -p lint` and the interleaving
//! harness with `cargo run -p lint -- interleave`; both exit non-zero
//! on any violation. See DESIGN.md §"Enforced invariants" for the
//! rule ↔ contract mapping.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod interleave;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use rules::{check_file, Rule, Violation};

/// Runs every rule over every workspace `.rs` file under `root`.
/// Returns the violations plus the number of files scanned.
pub fn check_workspace(root: &Path) -> std::io::Result<(Vec<Violation>, usize)> {
    let files = walk::rust_files(root)?;
    let mut violations = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        violations.extend(rules::check_file(rel, &src));
    }
    Ok((violations, files.len()))
}
