//! Viewport predictors for the tiling experiments and the fleet
//! simulator.
//!
//! The paper's evaluation protocol: "to emulate looking in different
//! directions, the high quality tile is initially the upper-left of
//! the equirectangular projection and advanced in raster order
//! (modulo the tile count) every second." [`important_tile`] /
//! [`is_important`] implement exactly that protocol (bit-for-bit —
//! the tiling experiments depend on it).
//!
//! The [`ViewportPredictor`] trait generalizes the protocol so the
//! fleet simulator can model *populations* of viewers behind one
//! interface:
//!
//! * [`RasterPredictor`] — the paper's deterministic raster walk;
//! * [`RandomWalkPredictor`] — a seeded bounded random walk over the
//!   orientation sphere (theta wraps, phi clamps), the "wandering
//!   gaze" viewer;
//! * [`HotSpotPredictor`] — a Zipf-weighted hot-spot dweller: all
//!   viewers sharing a scenario seed agree on *which* tiles are hot
//!   (that shared attention is what a cross-user tile cache exploits),
//!   while each viewer dwells and switches on its own schedule.

use lightdb_geom::{Volume, PHI_MAX, THETA_PERIOD};

/// Row-major index of the high-quality tile during second `t`.
pub fn important_tile(second: usize, tile_count: usize) -> usize {
    debug_assert!(tile_count > 0);
    second % tile_count
}

/// The volume-level predicate: is this partition the predicted
/// viewport for its time range? (`cols × rows` is the tiling grid.)
pub fn is_important(partition: &Volume, cols: usize, rows: usize) -> bool {
    let second = partition.t().lo().max(0.0).floor() as usize;
    let target = important_tile(second, cols * rows);
    let (tc, tr) = (target % cols, target / cols);
    let col = ((partition.theta().lo() + 1e-9) / (THETA_PERIOD / cols as f64)) as usize;
    let row = ((partition.phi().lo() + 1e-9) / (PHI_MAX / rows as f64)) as usize;
    (col, row) == (tc, tr)
}

/// A model of one viewer's head: which row-major tile they look at
/// during each playback second of a `cols × rows` equirectangular
/// grid.
///
/// Predictors may be stateful (random walks advance on every call),
/// so drive them with non-decreasing seconds. All implementations
/// here are deterministic functions of their seeds — the fleet
/// benchmark depends on replayable traces.
pub trait ViewportPredictor: Send {
    /// The focus tile for playback second `second`.
    fn tile(&mut self, second: u64, cols: usize, rows: usize) -> usize;
}

/// SplitMix64 — the same tiny deterministic generator the chaos
/// harness uses, re-derived here so `apps` stays free of test-crate
/// dependencies.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The paper's protocol as a [`ViewportPredictor`]: raster order,
/// advancing one tile per second modulo the tile count. Delegates to
/// [`important_tile`], so the trait and the tiling experiments can
/// never drift apart.
#[derive(Debug, Clone, Copy, Default)]
pub struct RasterPredictor;

impl ViewportPredictor for RasterPredictor {
    fn tile(&mut self, second: u64, cols: usize, rows: usize) -> usize {
        important_tile(second as usize, cols * rows)
    }
}

/// A seeded bounded random walk over the orientation sphere: each
/// second the gaze moves by up to ±`step` of the sphere in each
/// angular dimension, wrapping in theta and clamping in phi, then
/// quantizes to a tile with the same mapping as [`is_important`].
#[derive(Debug, Clone)]
pub struct RandomWalkPredictor {
    state: u64,
    theta: f64,
    phi: f64,
    /// Per-second maximum angular step, as a fraction of the full
    /// angular range (so `0.25` can cross a 4-wide grid's tile in a
    /// single second).
    step: f64,
    last_second: Option<u64>,
}

impl RandomWalkPredictor {
    /// Default per-second step fraction: a viewer pans at most an
    /// eighth of the sphere per second.
    pub const DEFAULT_STEP: f64 = 0.125;

    pub fn new(seed: u64) -> RandomWalkPredictor {
        Self::with_step(seed, Self::DEFAULT_STEP)
    }

    pub fn with_step(seed: u64, step: f64) -> RandomWalkPredictor {
        let mut state = seed ^ 0x5bf0_3635_dee0_91bb;
        let theta = unit(&mut state) * THETA_PERIOD;
        let phi = unit(&mut state) * PHI_MAX;
        RandomWalkPredictor {
            state,
            theta,
            phi,
            step,
            last_second: None,
        }
    }

    /// The walk's current orientation `(theta, phi)` — lets the fleet
    /// simulator serve the exact gaze rather than the tile center.
    pub fn orientation(&self) -> (f64, f64) {
        (self.theta, self.phi)
    }
}

impl ViewportPredictor for RandomWalkPredictor {
    fn tile(&mut self, second: u64, cols: usize, rows: usize) -> usize {
        // Advance once per distinct second (re-queries within a
        // second see a stable gaze).
        if self.last_second != Some(second) {
            self.last_second = Some(second);
            let dtheta = (unit(&mut self.state) * 2.0 - 1.0) * self.step * THETA_PERIOD;
            let dphi = (unit(&mut self.state) * 2.0 - 1.0) * self.step * PHI_MAX;
            self.theta = (self.theta + dtheta).rem_euclid(THETA_PERIOD);
            self.phi = (self.phi + dphi).clamp(0.0, PHI_MAX);
        }
        let col = (((self.theta + 1e-9) / (THETA_PERIOD / cols as f64)) as usize).min(cols - 1);
        let row = (((self.phi + 1e-9) / (PHI_MAX / rows as f64)) as usize).min(rows - 1);
        row * cols + col
    }
}

/// A Zipf-weighted hot-spot dweller.
///
/// The *scenario seed* alone decides which tiles are hot (a shared
/// permutation of the grid, rank `r` drawn with weight
/// `1/(r+1)^exponent`), so every viewer in a fleet built from one
/// scenario concentrates on the same few tiles — the cross-user
/// locality a shared tile cache converts into hits. The *viewer id*
/// seeds the per-viewer dwell/switch schedule, so viewers are not in
/// lockstep.
#[derive(Debug, Clone)]
pub struct HotSpotPredictor {
    scenario_seed: u64,
    state: u64,
    exponent: f64,
    /// Seconds a viewer stares at one hot tile before resampling.
    dwell: u64,
    /// Shared hotness permutation: `perm[rank]` = tile (built lazily
    /// from the scenario seed once the grid is known).
    perm: Vec<usize>,
    current: usize,
    switch_at: Option<u64>,
}

impl HotSpotPredictor {
    /// Defaults: Zipf exponent 1.0, 4-second dwell.
    pub fn new(scenario_seed: u64, viewer: u64) -> HotSpotPredictor {
        Self::with_shape(scenario_seed, viewer, 1.0, 4)
    }

    pub fn with_shape(
        scenario_seed: u64,
        viewer: u64,
        exponent: f64,
        dwell: u64,
    ) -> HotSpotPredictor {
        HotSpotPredictor {
            scenario_seed,
            state: scenario_seed
                ^ viewer.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ 0xd6e8_feb8_6659_fd93,
            exponent,
            dwell: dwell.max(1),
            perm: Vec::new(),
            current: 0,
            switch_at: None,
        }
    }

    /// Fisher–Yates permutation of `0..count` from the scenario seed:
    /// identical for every viewer of the scenario.
    fn rebuild_perm(&mut self, count: usize) {
        let mut perm: Vec<usize> = (0..count).collect();
        let mut state = self.scenario_seed ^ 0xa076_1d64_78bd_642f;
        for i in (1..count).rev() {
            let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        self.perm = perm;
        self.switch_at = None;
    }

    /// Inverse-CDF draw of a rank with weight `1/(rank+1)^exponent`.
    fn sample_rank(&mut self, count: usize) -> usize {
        let total: f64 = (0..count)
            .map(|r| 1.0 / ((r + 1) as f64).powf(self.exponent))
            .sum();
        let mut target = unit(&mut self.state) * total;
        for r in 0..count {
            target -= 1.0 / ((r + 1) as f64).powf(self.exponent);
            if target <= 0.0 {
                return r;
            }
        }
        count - 1
    }
}

impl ViewportPredictor for HotSpotPredictor {
    fn tile(&mut self, second: u64, cols: usize, rows: usize) -> usize {
        let count = cols * rows;
        debug_assert!(count > 0);
        if self.perm.len() != count {
            self.rebuild_perm(count);
        }
        let due = match self.switch_at {
            None => true,
            Some(at) => second >= at,
        };
        if due {
            let rank = self.sample_rank(count);
            self.current = self.perm[rank];
            self.switch_at = Some(second + self.dwell);
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_geom::{Dimension, Interval};

    #[test]
    fn raster_advance_modulo() {
        assert_eq!(important_tile(0, 16), 0);
        assert_eq!(important_tile(5, 16), 5);
        assert_eq!(important_tile(16, 16), 0);
        assert_eq!(important_tile(35, 16), 3);
    }

    #[test]
    fn exactly_one_partition_important_per_second() {
        let full = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 4.0));
        for second in 0..4 {
            let window = full.with(
                Dimension::T,
                Interval::new(second as f64, second as f64 + 1.0),
            );
            // Phi-major spec order yields row-major tiles, matching
            // the executor's TileGrid ordering.
            let tiles = window.partition_multi(&[
                (Dimension::Phi, PHI_MAX / 4.0),
                (Dimension::Theta, THETA_PERIOD / 4.0),
            ]);
            let important: Vec<usize> = tiles
                .iter()
                .enumerate()
                .filter(|(_, v)| is_important(v, 4, 4))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(important.len(), 1, "second {second}: {important:?}");
            assert_eq!(important[0], second % 16, "second {second}");
        }
    }

    #[test]
    fn raster_predictor_matches_important_tile() {
        let mut p = RasterPredictor;
        for second in 0..40u64 {
            assert_eq!(p.tile(second, 4, 4), important_tile(second as usize, 16));
        }
    }

    #[test]
    fn random_walk_is_deterministic_bounded_and_moves() {
        let trace = |seed: u64| -> Vec<usize> {
            let mut p = RandomWalkPredictor::new(seed);
            (0..64u64).map(|s| p.tile(s, 4, 4)).collect()
        };
        let a = trace(7);
        assert_eq!(a, trace(7), "same seed replays the same trace");
        assert_ne!(a, trace(8), "different seeds diverge");
        assert!(a.iter().all(|&t| t < 16), "tiles stay on the grid");
        assert!(
            a.windows(2).any(|w| w[0] != w[1]),
            "the gaze actually moves"
        );
        // Re-querying within one second sees a stable gaze.
        let mut p = RandomWalkPredictor::new(7);
        assert_eq!(p.tile(3, 4, 4), p.tile(3, 4, 4));
    }

    #[test]
    fn hot_spots_are_shared_across_viewers_and_skewed() {
        // 16 viewers of one scenario, 64 seconds each: the top few
        // tiles should absorb well over half of all gaze-seconds, and
        // a different scenario seed should pick different hot tiles.
        let histogram = |scenario: u64| -> Vec<usize> {
            let mut counts = vec![0usize; 16];
            for viewer in 0..16u64 {
                let mut p = HotSpotPredictor::new(scenario, viewer);
                for s in 0..64u64 {
                    counts[p.tile(s, 4, 4)] += 1;
                }
            }
            counts
        };
        let counts = histogram(42);
        let total: usize = counts.iter().sum();
        assert_eq!(total, 16 * 64);
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top3: usize = sorted[..3].iter().sum();
        assert!(
            top3 * 2 > total,
            "Zipf skew: top-3 tiles got {top3}/{total}"
        );
        // Determinism per (scenario, viewer); divergence across viewers.
        let replay = histogram(42);
        assert_eq!(counts, replay);
        assert_ne!(counts, histogram(43), "scenario seed moves the hot set");
    }
}
