//! The viewport predictor used by the tiling experiments.
//!
//! The paper's evaluation protocol: "to emulate looking in different
//! directions, the high quality tile is initially the upper-left of
//! the equirectangular projection and advanced in raster order
//! (modulo the tile count) every second." This module implements
//! exactly that, plus the volume-level `is_important` form the VRQL
//! query uses.

use lightdb_geom::{Volume, PHI_MAX, THETA_PERIOD};

/// Row-major index of the high-quality tile during second `t`.
pub fn important_tile(second: usize, tile_count: usize) -> usize {
    debug_assert!(tile_count > 0);
    second % tile_count
}

/// The volume-level predicate: is this partition the predicted
/// viewport for its time range? (`cols × rows` is the tiling grid.)
pub fn is_important(partition: &Volume, cols: usize, rows: usize) -> bool {
    let second = partition.t().lo().max(0.0).floor() as usize;
    let target = important_tile(second, cols * rows);
    let (tc, tr) = (target % cols, target / cols);
    let col = ((partition.theta().lo() + 1e-9) / (THETA_PERIOD / cols as f64)) as usize;
    let row = ((partition.phi().lo() + 1e-9) / (PHI_MAX / rows as f64)) as usize;
    (col, row) == (tc, tr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_geom::{Dimension, Interval};

    #[test]
    fn raster_advance_modulo() {
        assert_eq!(important_tile(0, 16), 0);
        assert_eq!(important_tile(5, 16), 5);
        assert_eq!(important_tile(16, 16), 0);
        assert_eq!(important_tile(35, 16), 3);
    }

    #[test]
    fn exactly_one_partition_important_per_second() {
        let full = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 4.0));
        for second in 0..4 {
            let window = full.with(
                Dimension::T,
                Interval::new(second as f64, second as f64 + 1.0),
            );
            // Phi-major spec order yields row-major tiles, matching
            // the executor's TileGrid ordering.
            let tiles = window.partition_multi(&[
                (Dimension::Phi, PHI_MAX / 4.0),
                (Dimension::Theta, THETA_PERIOD / 4.0),
            ]);
            let important: Vec<usize> = tiles
                .iter()
                .enumerate()
                .filter(|(_, v)| is_important(v, 4, 4))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(important.len(), 1, "second {second}: {important:?}");
            assert_eq!(important[0], second % 16, "second {second}");
        }
    }
}
