//! The depth-map generation workload (Section 3.5 / Figure 12).
//!
//! Samples a light field (or a stereoscopic 360° TLF) at the two
//! points a viewer's eyes occupy (`p ± i/2`), and synthesises a depth
//! map with the `DepthMapInterpolation` UDF. Three physical variants
//! reproduce Figure 12: all-CPU, all-CPU-with-FPGA-UDF, and hybrid
//! (GPU decode + FPGA UDF).

use crate::{Result, RunStats};
use lightdb::exec::fpga::{DepthMapCpu, DepthMapFpga};
use lightdb::ingest::IngestConfig;
use lightdb::prelude::*;
use lightdb_datasets::DatasetSpec;
use std::sync::Arc;

/// Interpupillary distance used by the experiments (metres).
pub const IPD: f64 = 0.064;

/// Which physical configuration to run (the Figure 12 bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepthVariant {
    /// CPU decode + float NCC UDF.
    Cpu,
    /// CPU decode + fixed-point FPGA UDF.
    Fpga,
    /// GPU decode/transfer + FPGA UDF.
    Hybrid,
}

impl DepthVariant {
    pub const ALL: [DepthVariant; 3] = [DepthVariant::Cpu, DepthVariant::Fpga, DepthVariant::Hybrid];

    pub fn name(self) -> &'static str {
        match self {
            DepthVariant::Cpu => "CPU",
            DepthVariant::Fpga => "FPGA",
            DepthVariant::Hybrid => "Hybrid",
        }
    }
}

/// Installs a stereoscopic variant of a 360° dataset: two spheres at
/// `±IPD/2` whose content differs by a small horizontal parallax.
pub fn install_stereo(
    db: &LightDb,
    dataset: lightdb_datasets::Dataset,
    spec: &DatasetSpec,
) -> Result<String> {
    let name = format!("{}_stereo", dataset.name());
    if db.catalog().exists(&name) {
        return Ok(name);
    }
    // Left eye: the dataset itself. Right eye: the scene rotated by a
    // couple of pixels (a crude but deterministic parallax).
    let parallax_px = (spec.width / 128).max(2);
    let left: Vec<Frame> =
        (0..spec.frame_count()).map(|i| lightdb_datasets::frame(dataset, spec, i)).collect();
    let right: Vec<Frame> = left
        .iter()
        .map(|f| {
            let mut r = f.clone();
            for y in 0..f.height() {
                for x in 0..f.width() {
                    r.set(x, y, f.get((x + parallax_px) % f.width(), y));
                }
            }
            r
        })
        .collect();
    let cfg = IngestConfig {
        fps: spec.fps,
        gop_length: spec.fps as usize,
        qp: spec.qp,
        ..Default::default()
    };
    // Store as a two-point TLF: one track per eye.
    use lightdb::container::{SpherePoint, TlfBody, TlfDescriptor, TrackRole};
    use lightdb::storage::catalog::TrackWrite;
    let enc = |frames: &[Frame]| {
        lightdb::codec::Encoder::new(lightdb::codec::EncoderConfig {
            codec: cfg.codec,
            qp: cfg.qp,
            grid: cfg.grid,
            gop_length: cfg.gop_length,
            fps: cfg.fps,
        })
        .and_then(|e| e.encode(frames))
        .map_err(lightdb::Error::from)
    };
    let mk_point = |x: f64, track: u32| SpherePoint {
        position: Point3::new(x, 0.0, 0.0),
        video_track: track,
        depth_track: None,
        right_eye_track: None,
    };
    let volume = Volume::new(
        Interval::new(-IPD / 2.0, IPD / 2.0),
        Interval::point(0.0),
        Interval::point(0.0),
        Interval::new(0.0, spec.seconds as f64),
        Interval::new(0.0, lightdb::geom::THETA_PERIOD),
        Interval::new(0.0, lightdb::geom::PHI_MAX),
    );
    let tlf = TlfDescriptor {
        volume,
        streaming: false,
        partition_spec: vec![],
        view_subgraph: None,
        body: TlfBody::Sphere360 {
            points: vec![mk_point(-IPD / 2.0, 0), mk_point(IPD / 2.0, 1)],
        },
    };
    db.catalog()
        .store(
            &name,
            vec![
                TrackWrite::New {
                    role: TrackRole::Video,
                    projection: lightdb::geom::projection::ProjectionKind::Equirectangular,
                    stream: enc(&left)?,
                },
                TrackWrite::New {
                    role: TrackRole::Video,
                    projection: lightdb::geom::projection::ProjectionKind::Equirectangular,
                    stream: enc(&right)?,
                },
            ],
            tlf,
        )
        .map_err(lightdb::Error::from)?;
    Ok(name)
}

/// Runs the depth-map query over a stereo TLF with the chosen
/// physical variant, storing the result.
pub fn depth_map(
    db: &mut LightDb,
    stereo_tlf: &str,
    output: &str,
    variant: DepthVariant,
) -> Result<RunStats> {
    let mut options = db.options();
    options.use_gpu = matches!(variant, DepthVariant::Hybrid);
    options.use_fpga = !matches!(variant, DepthVariant::Cpu);
    db.set_options(options);
    let udf: Arc<dyn InterpUdf> = match variant {
        DepthVariant::Cpu => Arc::new(DepthMapCpu),
        _ => Arc::new(DepthMapFpga),
    };
    let bytes_in = crate::workloads::lightdb_q::stored_bytes(db, stereo_tlf)?;
    // LOC:BEGIN lightdb-depth
    let p = 0.0;
    let stereo = union(
        vec![
            scan(stereo_tlf) >> Select::at(Dimension::X, p + IPD / 2.0),
            scan(stereo_tlf) >> Select::at(Dimension::X, p - IPD / 2.0),
        ],
        MergeFunction::Last,
    );
    let query = stereo >> Interpolate::udf(udf) >> Store::named(output);
    db.execute(&query)?;
    // LOC:END lightdb-depth
    let frames = crate::workloads::lightdb_q::stored_frames(db, output)?;
    Ok(RunStats {
        frames,
        bytes_in,
        bytes_out: crate::workloads::lightdb_q::stored_bytes(db, output)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_datasets::Dataset;

    fn db(tag: &str) -> LightDb {
        let root =
            std::env::temp_dir().join(format!("lightdb-depth-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        LightDb::open(root).unwrap()
    }

    #[test]
    fn stereo_install_has_two_points() {
        let db = db("install");
        let spec = DatasetSpec { width: 64, height: 32, fps: 2, seconds: 1, qp: 28 };
        let name = install_stereo(&db, Dataset::Timelapse, &spec).unwrap();
        let stored = db.catalog().read(&name, None).unwrap();
        assert_eq!(stored.metadata.tracks.len(), 2);
        std::fs::remove_dir_all(db.catalog().root()).unwrap();
    }

    #[test]
    fn depth_map_runs_on_all_variants() {
        let mut database = db("variants");
        let spec = DatasetSpec { width: 64, height: 32, fps: 2, seconds: 1, qp: 28 };
        let name = install_stereo(&database, Dataset::Timelapse, &spec).unwrap();
        for v in DepthVariant::ALL {
            let out = format!("depth_{}", v.name());
            let stats = depth_map(&mut database, &name, &out, v).unwrap();
            assert_eq!(stats.frames, 2, "{v:?}");
        }
        // The FPGA variant actually placed the UDF on the FPGA.
        assert!(database.metrics().count("INTERPOLATE[FPGA]") >= 1);
        std::fs::remove_dir_all(database.catalog().root()).unwrap();
    }
}
