//! The workloads as declarative VRQL queries.
//!
//! These are the nine-line queries of Table 2: the developer states
//! *what* — partition, per-partition quality, recombination happen
//! wherever the optimizer decides (here: homomorphically, on the
//! simulated GPU).

use crate::predictor::is_important;
use crate::workloads::{HI_QP, LO_QP};
use crate::{detect::DetectUdf, Result, RunStats};
use lightdb::prelude::*;
use std::sync::Arc;

fn qp_quality(qp: u8) -> Quality {
    // Map the workload QPs onto the named qualities LightDB exposes.
    if qp <= 20 {
        Quality::Medium
    } else {
        Quality::Low
    }
}

/// Predictive 360° tiling: partition into a `cols × rows` grid per
/// second, encode the predicted-viewport tile at high quality and the
/// rest at low, recombine, store.
pub fn tiling(db: &LightDb, input: &str, output: &str, cols: usize, rows: usize) -> Result<RunStats> {
    let bytes_in = stored_bytes(db, input)?;
    // LOC:BEGIN lightdb-tiling
    let query = scan(input)
        >> Partition::along(Dimension::T, 1.0)
            .and(Dimension::Theta, 2.0 * std::f64::consts::PI / cols as f64)
            .and(Dimension::Phi, std::f64::consts::PI / rows as f64)
        >> Subquery::new("adaptive-quality", move |partition, tile| {
            let quality =
                if is_important(partition, cols, rows) { qp_quality(HI_QP) } else { qp_quality(LO_QP) };
            tile >> Encode::quality(CodecKind::HevcSim, quality)
        })
        >> Store::named(output);
    db.execute(&query)?;
    // LOC:END lightdb-tiling
    let frames = stored_frames(db, output)?;
    Ok(RunStats { frames, bytes_in, bytes_out: stored_bytes(db, output)? })
}

/// Augmented reality: discretise to the detector's input resolution,
/// detect, union the red boxes back onto the source.
pub fn ar(db: &LightDb, input: &str, output: &str, detect_size: usize) -> Result<RunStats> {
    let bytes_in = stored_bytes(db, input)?;
    // LOC:BEGIN lightdb-ar
    let source = scan(input);
    let lowres = source.clone() >> Discretize::angular(detect_size, detect_size);
    let boxes = lowres >> Map::udf(Arc::new(DetectUdf));
    let query = union(vec![source, boxes], MergeFunction::Last) >> Store::named(output);
    db.execute(&query)?;
    // LOC:END lightdb-ar
    let frames = stored_frames(db, output)?;
    Ok(RunStats { frames, bytes_in, bytes_out: stored_bytes(db, output)? })
}

/// Total encoded media bytes of a stored TLF's latest version.
pub fn stored_bytes(db: &LightDb, name: &str) -> Result<usize> {
    let stored = db.catalog().read(name, None).map_err(lightdb::Error::from)?;
    let media = stored.media();
    let mut total = 0usize;
    for t in &stored.metadata.tracks {
        total += media.file_size(&t.media_path).map_err(lightdb::Error::from)? as usize;
    }
    Ok(total)
}

/// Frame count of a stored TLF's latest version (first track).
pub fn stored_frames(db: &LightDb, name: &str) -> Result<usize> {
    let stored = db.catalog().read(name, None).map_err(lightdb::Error::from)?;
    Ok(stored.metadata.tracks.first().map(|t| t.frame_count() as usize).unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_datasets::{install, Dataset, DatasetSpec};

    fn db(tag: &str) -> LightDb {
        let root = std::env::temp_dir().join(format!("lightdb-appsq-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        LightDb::open(root).unwrap()
    }

    fn tiny_spec() -> DatasetSpec {
        // 128×64 divides into a 4×4 grid of 32×16… 16 is MB-misaligned;
        // use 2×2 grids in tests (64×32 tiles).
        DatasetSpec { width: 128, height: 64, fps: 4, seconds: 2, qp: 22 }
    }

    #[test]
    fn tiling_reduces_size_and_roundtrips() {
        let db = db("tiling");
        install(&db, Dataset::Venice, &tiny_spec()).unwrap();
        let stats = tiling(&db, "venice", "venice_tiled", 2, 2).unwrap();
        assert_eq!(stats.frames, 8);
        assert!(
            stats.reduction() > 0.2,
            "adaptive tiling should shrink the video, got {:.2}",
            stats.reduction()
        );
        // The tiled output decodes at full dimensions.
        let out = db.execute(&scan("venice_tiled")).unwrap();
        assert_eq!(out.frame_count(), 8);
        // The homomorphic stitch ran.
        assert!(db.metrics().count("TILEUNION") >= 2);
        std::fs::remove_dir_all(db.catalog().root()).unwrap();
    }

    #[test]
    fn ar_produces_full_length_output() {
        let db = db("ar");
        install(&db, Dataset::Venice, &tiny_spec()).unwrap();
        let stats = ar(&db, "venice", "venice_ar", 64).unwrap();
        assert_eq!(stats.frames, 8);
        assert!(db.metrics().count("MAP") >= 1);
        std::fs::remove_dir_all(db.catalog().root()).unwrap();
    }
}
