//! The evaluation workloads, one module per system.
//!
//! Every module exposes the same two entry points used by the
//! Figure 11 / Table 3 experiments:
//!
//! * `tiling(...)` — predictive 360° tiling;
//! * `ar(...)` — augmented-reality detection overlay;
//!
//! plus LightDB-only extras (depth maps live in [`crate::depth`]).
//!
//! The pipeline cores are bracketed with `LOC:BEGIN`/`LOC:END`
//! markers; [`crate::loc`] counts them to regenerate Table 2.

pub mod ffmpeg_q;
pub mod lightdb_q;
pub mod opencv_q;
pub mod scanner_q;
pub mod scidb_q;

/// High-quality tile QP (≈ source quality).
pub const HI_QP: u8 = 18;
/// Low-quality tile QP (the paper's 50 kbps analogue).
pub const LO_QP: u8 = 45;
/// QP systems use when re-encoding recombined tiles (mixed content).
pub const RECOMBINE_QP: u8 = 24;

/// Identifies the system a workload ran on (for harness reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    LightDb,
    Ffmpeg,
    OpenCv,
    Scanner,
    SciDb,
}

impl System {
    pub const ALL: [System; 5] =
        [System::LightDb, System::Ffmpeg, System::OpenCv, System::Scanner, System::SciDb];

    pub fn name(self) -> &'static str {
        match self {
            System::LightDb => "LightDB",
            System::Ffmpeg => "FFmpeg",
            System::OpenCv => "OpenCV",
            System::Scanner => "Scanner",
            System::SciDb => "SciDB",
        }
    }
}
