//! The workloads against the Scanner-style API.
//!
//! Scanner pipelines are concise (tables + kernels), but the
//! developer still selects tile geometry and pays the
//! materialise-everything architecture: long inputs exhaust the
//! pinned-frame budget before any work happens.

use crate::workloads::{HI_QP, LO_QP};
use crate::{detect::boxes_overlay, predictor::important_tile, Result, RunStats};
use lightdb::exec::chunk::is_omega;
use lightdb_baselines::ffmpeg::concat;
use lightdb_baselines::scanner::ScannerPipeline;
use lightdb_codec::VideoStream;
use lightdb_frame::Frame;

/// Predictive 360° tiling, Scanner-style.
pub fn tiling(input: &VideoStream, cols: usize, rows: usize) -> Result<(VideoStream, RunStats)> {
    let bytes_in = input.to_bytes().len();
    // LOC:BEGIN scanner-tiling
    let fps = input.header.fps as usize;
    let (w, h) = (input.header.width, input.header.height);
    let table = ScannerPipeline::ingest(input)?; // pins every frame
    let seconds = table.len().div_ceil(fps);
    let mut outputs: Vec<VideoStream> = Vec::new();
    for second in 0..seconds {
        let window = table.slice(second * fps, (second + 1) * fps);
        let tiles = window.tile(cols, rows)?; // per-tile, per-frame copies
        let hot = important_tile(second, cols * rows);
        // Encode each tile (the writer's settings are fixed, so the
        // requested qualities do not differentiate the outputs).
        let mut encoded: Vec<VideoStream> = Vec::with_capacity(tiles.len());
        for (i, t) in tiles.iter().enumerate() {
            encoded.push(t.write(if i == hot { HI_QP } else { LO_QP })?);
        }
        // Recombine via decode + paste + encode.
        let mut canvases = vec![Frame::new(w, h); window.len()];
        for (i, ts) in encoded.iter().enumerate() {
            let (c, r) = (i % cols, i / cols);
            let tile_table = ScannerPipeline::ingest(ts)?;
            for (fi, f) in tile_table.frames().iter().enumerate() {
                canvases[fi].blit(f, c * (w / cols), r * (h / rows));
            }
        }
        let recombined = ScannerPipeline::ingest(&{
            // Wrap the canvases as a pipeline by encoding once
            // (Scanner tables originate from videos).
            let mut tmp = lightdb_baselines::opencv::VideoWriter::open(fps as u32, HI_QP);
            for f in &canvases {
                tmp.write(&lightdb_baselines::opencv::Mat::from_frame(f))?;
            }
            tmp.release()?
        })?;
        outputs.push(recombined.write(HI_QP)?);
    }
    let refs: Vec<&VideoStream> = outputs.iter().collect();
    let output = concat(&refs)?;
    // LOC:END scanner-tiling
    let stats = RunStats {
        frames: output.frame_count(),
        bytes_in,
        bytes_out: output.to_bytes().len(),
    };
    Ok((output, stats))
}

/// Augmented reality, Scanner-style.
pub fn ar(input: &VideoStream, detect_size: usize) -> Result<(VideoStream, RunStats)> {
    let bytes_in = input.to_bytes().len();
    // LOC:BEGIN scanner-ar
    let (w, h) = (input.header.width, input.header.height);
    let table = ScannerPipeline::ingest(input)?; // pins every frame
    // Kernel 1: downscale (Scanner converts through OpenCV formats).
    let small = table.map(|f| f.resize(detect_size, detect_size));
    // Kernel 2: detect and upscale the overlay.
    let overlays = small.map(|f| boxes_overlay(f).resize(w, h));
    // Kernel 3: composite overlay onto source (bounding-box overlay
    // goes through OpenCV in the real system).
    let composed: Vec<Frame> = table
        .frames()
        .iter()
        .zip(overlays.frames())
        .map(|(src, ov)| {
            let mut out = src.clone();
            for y in 0..h {
                for x in 0..w {
                    let c = ov.get(x, y);
                    if !is_omega(c) {
                        out.set(x, y, c);
                    }
                }
            }
            out
        })
        .collect();
    let mut writer = lightdb_baselines::opencv::VideoWriter::open(input.header.fps, HI_QP);
    for f in &composed {
        writer.write(&lightdb_baselines::opencv::Mat::from_frame(f))?;
    }
    let output = writer.release()?;
    // LOC:END scanner-ar
    let stats = RunStats {
        frames: output.frame_count(),
        bytes_in,
        bytes_out: output.to_bytes().len(),
    };
    Ok((output, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_datasets::{encode_dataset, Dataset, DatasetSpec};

    fn spec() -> DatasetSpec {
        DatasetSpec { width: 128, height: 64, fps: 4, seconds: 2, qp: 22 }
    }

    #[test]
    fn tiling_runs() {
        let input = encode_dataset(Dataset::Venice, &spec());
        let (out, _) = tiling(&input, 2, 2).unwrap();
        assert_eq!(out.frame_count(), 8);
    }

    #[test]
    fn ar_runs() {
        let input = encode_dataset(Dataset::Venice, &spec());
        let (out, _) = ar(&input, 64).unwrap();
        assert_eq!(out.frame_count(), 8);
    }

    #[test]
    fn long_input_exhausts_memory() {
        std::env::set_var("LIGHTDB_SCANNER_BUDGET", "50000");
        let input = encode_dataset(Dataset::Venice, &spec());
        let r = tiling(&input, 2, 2);
        std::env::remove_var("LIGHTDB_SCANNER_BUDGET");
        assert!(r.is_err(), "scanner must OOM under a tiny budget");
    }
}
