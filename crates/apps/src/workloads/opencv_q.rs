//! The workloads against the OpenCV-style API.
//!
//! Frame-at-a-time `Mat` processing with a fixed-settings
//! `VideoWriter`: quality adaptation is *requested* but the writer
//! cannot honour it, which is why OpenCV's Table 3 size reduction is
//! small.

use crate::workloads::{HI_QP, LO_QP};
use crate::{detect::boxes_overlay, predictor::important_tile, Result, RunStats};
use lightdb::exec::chunk::is_omega;
use lightdb_baselines::opencv::{Mat, VideoCapture, VideoWriter};
use lightdb_codec::VideoStream;

/// Predictive 360° tiling, OpenCV-style.
pub fn tiling(input: &VideoStream, cols: usize, rows: usize) -> Result<(VideoStream, RunStats)> {
    let bytes_in = input.to_bytes().len();
    // LOC:BEGIN opencv-tiling
    let fps = input.header.fps;
    let (w, h) = (input.header.width, input.header.height);
    let (tw, th) = (w / cols, h / rows);
    let tile_count = cols * rows;
    let mut cap = VideoCapture::open(input);
    let mut second = 0usize;
    let mut outputs: Vec<VideoStream> = Vec::new();
    'seconds: loop {
        // One second of Mats (each read copies into a fresh Mat).
        let mut mats: Vec<Mat> = Vec::with_capacity(fps as usize);
        for _ in 0..fps {
            match cap.read() {
                Some(m) => mats.push(m?),
                None => {
                    if mats.is_empty() {
                        break 'seconds;
                    }
                    break;
                }
            }
        }
        // Per-tile writers; requested QPs are silently fixed by the
        // writer, so "high" and "low" come out the same.
        let hot = important_tile(second, tile_count);
        let mut tile_streams: Vec<VideoStream> = Vec::with_capacity(tile_count);
        for tile in 0..tile_count {
            let (c, r) = (tile % cols, tile / cols);
            let qp = if tile == hot { HI_QP } else { LO_QP };
            let mut writer = VideoWriter::open(fps, qp);
            for m in &mats {
                let roi = m.crop(c * tw, r * th, tw, th);
                writer.write(&roi)?;
            }
            tile_streams.push(writer.release()?);
        }
        // Recombine: decode tiles, paste into canvases, re-encode.
        let mut canvases: Vec<Mat> =
            mats.iter().map(|_| Mat::from_frame(&lightdb_frame::Frame::new(w, h))).collect();
        for (tile, ts) in tile_streams.iter().enumerate() {
            let (c, r) = (tile % cols, tile / cols);
            let mut tcap = VideoCapture::open(ts);
            let mut i = 0usize;
            while let Some(m) = tcap.read() {
                canvases[i].paste(&m?, c * tw, r * th);
                i += 1;
            }
        }
        let mut writer = VideoWriter::open(fps, HI_QP);
        for m in &canvases {
            writer.write(m)?;
        }
        outputs.push(writer.release()?);
        second += 1;
    }
    // Manual muxing: decode every per-second output and re-write it
    // into one final stream (OpenCV has no concat protocol).
    let mut final_writer = VideoWriter::open(fps, HI_QP);
    for s in &outputs {
        let mut c = VideoCapture::open(s);
        while let Some(m) = c.read() {
            final_writer.write(&m?)?;
        }
    }
    let output = final_writer.release()?;
    // LOC:END opencv-tiling
    let stats = RunStats {
        frames: output.frame_count(),
        bytes_in,
        bytes_out: output.to_bytes().len(),
    };
    Ok((output, stats))
}

/// Augmented reality, OpenCV-style.
pub fn ar(input: &VideoStream, detect_size: usize) -> Result<(VideoStream, RunStats)> {
    let bytes_in = input.to_bytes().len();
    // LOC:BEGIN opencv-ar
    let fps = input.header.fps;
    let (w, h) = (input.header.width, input.header.height);
    let mut cap = VideoCapture::open(input);
    let mut writer = VideoWriter::open(fps, HI_QP);
    while let Some(m) = cap.read() {
        let m = m?;
        let small = m.resize(detect_size, detect_size);
        let overlay = Mat { frame: boxes_overlay(&small.frame) }.resize(w, h);
        let mut composed = m.clone();
        for y in 0..h {
            for x in 0..w {
                let c = overlay.frame.get(x, y);
                if !is_omega(c) {
                    composed.frame.set(x, y, c);
                }
            }
        }
        writer.write(&composed)?;
    }
    let output = writer.release()?;
    // LOC:END opencv-ar
    let stats = RunStats {
        frames: output.frame_count(),
        bytes_in,
        bytes_out: output.to_bytes().len(),
    };
    Ok((output, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_datasets::{encode_dataset, Dataset, DatasetSpec};

    fn spec() -> DatasetSpec {
        DatasetSpec { width: 128, height: 64, fps: 4, seconds: 2, qp: 22 }
    }

    #[test]
    fn tiling_runs_but_reduction_is_poor() {
        let input = encode_dataset(Dataset::Venice, &spec());
        let (out, stats) = tiling(&input, 2, 2).unwrap();
        assert_eq!(out.frame_count(), 8);
        // Fixed writer settings: much weaker reduction than LightDB's.
        assert!(stats.reduction() < 0.6, "opencv should not reach LightDB-level reduction");
    }

    #[test]
    fn ar_runs() {
        let input = encode_dataset(Dataset::Venice, &spec());
        let (out, _) = ar(&input, 64).unwrap();
        assert_eq!(out.frame_count(), 8);
    }
}
