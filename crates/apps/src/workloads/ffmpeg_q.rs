//! The workloads against the FFmpeg-style API.
//!
//! Everything the VRQL query left to the optimizer is manual here:
//! GOP bookkeeping, per-tile encoder management, frame cropping, the
//! recombination decode/encode cycle, and output muxing — which is
//! why the FFmpeg rows of Table 2 are an order of magnitude longer.

use crate::workloads::{HI_QP, LO_QP, RECOMBINE_QP};
use crate::{detect::boxes_overlay, predictor::important_tile, Result, RunStats};
use lightdb::exec::chunk::is_omega;
use lightdb_baselines::ffmpeg::{concat, FfmpegDecoder, FfmpegEncoder, FfmpegEncoderSettings};
use lightdb_codec::{CodecKind, VideoStream};
use lightdb_frame::Frame;

/// Predictive 360° tiling, FFmpeg-style.
pub fn tiling(input: &VideoStream, cols: usize, rows: usize) -> Result<(VideoStream, RunStats)> {
    let bytes_in = input.to_bytes().len();
    // LOC:BEGIN ffmpeg-tiling
    let fps = input.header.fps;
    let (w, h) = (input.header.width, input.header.height);
    let (tw, th) = (w / cols, h / rows);
    let tile_count = cols * rows;
    let mut second = 0usize;
    let mut second_outputs: Vec<VideoStream> = Vec::new();
    let mut frames_in_second: Vec<Frame> = Vec::with_capacity(fps as usize);
    let mut decoder = FfmpegDecoder::new(input);
    loop {
        // Gather one second of decoded frames.
        frames_in_second.clear();
        for _ in 0..fps {
            match decoder.next() {
                Some(f) => frames_in_second.push(f?),
                None => break,
            }
        }
        if frames_in_second.is_empty() {
            break;
        }
        // Crop and encode every tile at its chosen quality.
        let hot = important_tile(second, tile_count);
        let mut tile_streams: Vec<VideoStream> = Vec::with_capacity(tile_count);
        for tile in 0..tile_count {
            let (c, r) = (tile % cols, tile / cols);
            let qp = if tile == hot { HI_QP } else { LO_QP };
            let mut enc = FfmpegEncoder::new(FfmpegEncoderSettings {
                codec: CodecKind::HevcSim,
                qp,
                fps,
                gop_length: fps as usize,
            });
            for f in &frames_in_second {
                enc.push(&f.crop(c * tw, r * th, tw, th))?;
            }
            tile_streams.push(enc.finish()?);
        }
        // Recombine: decode every tile stream and paste into a canvas,
        // then encode the canvas — the extra decode/encode cycle
        // FFmpeg cannot avoid without tile-aware bitstream surgery.
        let mut canvases = vec![Frame::new(w, h); frames_in_second.len()];
        for (tile, ts) in tile_streams.iter().enumerate() {
            let (c, r) = (tile % cols, tile / cols);
            for (i, f) in FfmpegDecoder::new(ts).enumerate() {
                canvases[i].blit(&f?, c * tw, r * th);
            }
        }
        let mut out = FfmpegEncoder::new(FfmpegEncoderSettings {
            codec: CodecKind::HevcSim,
            qp: RECOMBINE_QP,
            fps,
            gop_length: fps as usize,
        });
        for f in &canvases {
            out.push(f)?;
        }
        second_outputs.push(out.finish()?);
        second += 1;
    }
    // Mux the per-second outputs into one file via the concat protocol.
    let refs: Vec<&VideoStream> = second_outputs.iter().collect();
    let output = concat(&refs)?;
    // LOC:END ffmpeg-tiling
    let stats = RunStats {
        frames: output.frame_count(),
        bytes_in,
        bytes_out: output.to_bytes().len(),
    };
    Ok((output, stats))
}

/// Augmented reality, FFmpeg-style: scale → detect → overlay → encode.
pub fn ar(input: &VideoStream, detect_size: usize) -> Result<(VideoStream, RunStats)> {
    let bytes_in = input.to_bytes().len();
    // LOC:BEGIN ffmpeg-ar
    let fps = input.header.fps;
    let (w, h) = (input.header.width, input.header.height);
    let mut enc = FfmpegEncoder::new(FfmpegEncoderSettings {
        codec: CodecKind::HevcSim,
        qp: HI_QP,
        fps,
        gop_length: fps as usize,
    });
    for f in FfmpegDecoder::new(input) {
        let frame = f?;
        // Scale down for the detector, run it, scale boxes back up,
        // and composite manually (skipping transparent pixels).
        let small = frame.resize(detect_size, detect_size);
        let overlay = boxes_overlay(&small).resize(w, h);
        let mut composed = frame.clone();
        for y in 0..h {
            for x in 0..w {
                let c = overlay.get(x, y);
                if !is_omega(c) {
                    composed.set(x, y, c);
                }
            }
        }
        enc.push(&composed)?;
    }
    let output = enc.finish()?;
    // LOC:END ffmpeg-ar
    let stats = RunStats {
        frames: output.frame_count(),
        bytes_in,
        bytes_out: output.to_bytes().len(),
    };
    Ok((output, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_datasets::{encode_dataset, Dataset, DatasetSpec};

    fn spec() -> DatasetSpec {
        DatasetSpec { width: 128, height: 64, fps: 4, seconds: 2, qp: 22 }
    }

    #[test]
    fn tiling_roundtrip_and_reduction() {
        let input = encode_dataset(Dataset::Venice, &spec());
        let (out, stats) = tiling(&input, 2, 2).unwrap();
        assert_eq!(out.frame_count(), 8);
        assert!(stats.reduction() > 0.0, "reduction {:.2}", stats.reduction());
    }

    #[test]
    fn ar_preserves_length() {
        let input = encode_dataset(Dataset::Venice, &spec());
        let (out, stats) = ar(&input, 64).unwrap();
        assert_eq!(out.frame_count(), 8);
        assert_eq!(stats.frames, 8);
    }
}
