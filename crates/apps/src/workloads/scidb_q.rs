//! The workloads against the SciDB-style array API.
//!
//! The array operations themselves are short (SciDB queries are
//! declarative too — its Table 2 row is close to LightDB's), but
//! every video boundary costs an external export/import cycle over
//! raw pixels, which is what demolishes its throughput.

use crate::workloads::{HI_QP, LO_QP};
use crate::{detect::boxes_overlay, predictor::important_tile, Result, RunStats};
use lightdb::exec::chunk::is_omega;
use lightdb_baselines::ffmpeg::concat;
use lightdb_baselines::scidb::SciDb;
use lightdb_codec::VideoStream;
use lightdb_frame::Frame;

/// Loads a video into the array store (setup cost, not measured by
/// the harness — the paper's SciDB arrays were pre-loaded too).
pub fn setup(db: &SciDb, name: &str, input: &VideoStream) -> Result<()> {
    db.import_video(name, input)?;
    Ok(())
}

/// Predictive 360° tiling, SciDB-style.
pub fn tiling(
    db: &SciDb,
    array: &str,
    cols: usize,
    rows: usize,
    bytes_in: usize,
) -> Result<(VideoStream, RunStats)> {
    // LOC:BEGIN scidb-tiling
    let meta = db.meta(array)?;
    let fps = meta.fps as usize;
    let (w, h) = (meta.width, meta.height);
    let (tw, th) = (w / cols, h / rows);
    let seconds = meta.frames.div_ceil(fps);
    let mut outputs: Vec<VideoStream> = Vec::new();
    for second in 0..seconds {
        let hot = important_tile(second, cols * rows);
        // One array query per tile: each subarray re-reads the
        // second's raw cells from disk (SciDB queries are
        // independent), crops, stores the tile array, and exports it
        // through the external encoder UDF.
        let mut tile_streams = Vec::with_capacity(cols * rows);
        for tile in 0..cols * rows {
            let (c, r) = (tile % cols, tile / cols);
            let frames = db.subarray(array, second * fps, (second + 1) * fps)?;
            let tile_array = format!("{array}_s{second}_t{tile}");
            db.store_frames(
                &tile_array,
                &frames.iter().map(|f| f.crop(c * tw, r * th, tw, th)).collect::<Vec<_>>(),
                meta.fps,
            )?;
            let qp = if tile == hot { HI_QP } else { LO_QP };
            tile_streams.push(db.export_video(&tile_array, 0, fps, qp)?);
            db.remove(&tile_array)?;
        }
        // Recombine externally: decode tiles, paste, re-encode.
        let frames_this_second = fps.min(meta.frames - second * fps);
        let mut canvases = vec![Frame::new(w, h); frames_this_second];
        for (tile, ts) in tile_streams.iter().enumerate() {
            let (c, r) = (tile % cols, tile / cols);
            let decoded = lightdb_codec::Decoder::new().decode(ts).map_err(
                lightdb_baselines::BaselineError::from,
            )?;
            for (fi, f) in decoded.iter().enumerate() {
                canvases[fi].blit(f, c * tw, r * th);
            }
        }
        let canvas_array = format!("{array}_s{second}_out");
        db.store_frames(&canvas_array, &canvases, meta.fps)?;
        outputs.push(db.export_video(&canvas_array, 0, fps, HI_QP)?);
        db.remove(&canvas_array)?;
    }
    let refs: Vec<&VideoStream> = outputs.iter().collect();
    let output = concat(&refs)?;
    // Results live in SciDB: the muxed output is imported back into
    // the array store (the paper's mandatory import/export cycle).
    db.import_video(&format!("{array}_tiled"), &output)?;
    db.remove(&format!("{array}_tiled"))?;
    // LOC:END scidb-tiling
    let stats = RunStats {
        frames: output.frame_count(),
        bytes_in,
        bytes_out: output.to_bytes().len(),
    };
    Ok((output, stats))
}

/// Augmented reality, SciDB-style.
pub fn ar(
    db: &SciDb,
    array: &str,
    detect_size: usize,
    bytes_in: usize,
) -> Result<(VideoStream, RunStats)> {
    // LOC:BEGIN scidb-ar
    let meta = db.meta(array)?;
    let (w, h) = (meta.width, meta.height);
    // apply: run the external detector UDF over every cell.
    let out_array = format!("{array}_ar");
    db.apply(array, &out_array, |f| {
        let small = f.resize(detect_size, detect_size);
        let overlay = boxes_overlay(&small).resize(w, h);
        let mut composed = f.clone();
        for y in 0..h {
            for x in 0..w {
                let c = overlay.get(x, y);
                if !is_omega(c) {
                    composed.set(x, y, c);
                }
            }
        }
        composed
    })?;
    // Export the result through the external encoder, and import the
    // video form back as an array (the mandatory exit/entry cycle).
    let output = db.export_video(&out_array, 0, meta.frames, HI_QP)?;
    db.import_video(&format!("{array}_ar_video"), &output)?;
    db.remove(&format!("{array}_ar_video"))?;
    db.remove(&out_array)?;
    // LOC:END scidb-ar
    let stats = RunStats {
        frames: output.frame_count(),
        bytes_in,
        bytes_out: output.to_bytes().len(),
    };
    Ok((output, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_datasets::{encode_dataset, Dataset, DatasetSpec};

    fn spec() -> DatasetSpec {
        DatasetSpec { width: 128, height: 64, fps: 4, seconds: 2, qp: 22 }
    }

    fn scidb(tag: &str) -> SciDb {
        let root = std::env::temp_dir().join(format!("lightdb-scidbq-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        SciDb::open(root).unwrap()
    }

    #[test]
    fn tiling_runs() {
        let db = scidb("tiling");
        let input = encode_dataset(Dataset::Venice, &spec());
        setup(&db, "v", &input).unwrap();
        let (out, _) = tiling(&db, "v", 2, 2, input.to_bytes().len()).unwrap();
        assert_eq!(out.frame_count(), 8);
    }

    #[test]
    fn ar_runs() {
        let db = scidb("ar");
        let input = encode_dataset(Dataset::Venice, &spec());
        setup(&db, "v", &input).unwrap();
        let (out, _) = ar(&db, "v", 64, input.to_bytes().len()).unwrap();
        assert_eq!(out.frame_count(), 8);
    }
}
