//! The simulated object detector standing in for YOLO9000.
//!
//! The AR experiment measures *plumbing* — discretisation, device
//! transfers, UDF invocation, union overlay — not detector accuracy,
//! so the stand-in is a deterministic connected-component detector
//! over bright warm-chroma blobs, trained (like the paper's network)
//! for a fixed square input resolution.

use lightdb::prelude::*;
use lightdb_frame::kernels::draw_rect;

/// The square input resolution the detector expects (the paper's
/// network used 480×480; the mini-scale default is 128).
pub fn detect_input_size() -> usize {
    if std::env::var("LIGHTDB_FULL_SCALE").as_deref() == Ok("1") {
        480
    } else {
        128
    }
}

/// A detection box in the detector's input coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BBox {
    pub x: usize,
    pub y: usize,
    pub w: usize,
    pub h: usize,
}

/// Runs the detector over a frame: finds connected regions of pixels
/// that are simultaneously bright and warm-chroma (our datasets'
/// "interesting objects": gondola hulls are dark, the detector
/// instead keys on *distinctive* pixels — far from mid-grey in
/// chroma) and returns their bounding boxes.
pub fn detect_boxes(frame: &Frame) -> Vec<BBox> {
    let (w, h) = (frame.width(), frame.height());
    let mut mask = vec![false; w * h];
    for y in 0..h {
        for x in 0..w {
            let c = frame.get(x, y);
            let chroma_dist =
                (c.u as i32 - 128).abs() + (c.v as i32 - 128).abs();
            mask[y * w + x] = chroma_dist > 60 || c.y < 36;
        }
    }
    // Connected components via flood fill on a coarse grid (stride 2
    // keeps it cheap; detections are chunky anyway).
    let mut seen = vec![false; w * h];
    let mut boxes = Vec::new();
    for sy in (0..h).step_by(2) {
        for sx in (0..w).step_by(2) {
            let idx = sy * w + sx;
            if !mask[idx] || seen[idx] {
                continue;
            }
            let (mut x0, mut x1, mut y0, mut y1) = (sx, sx, sy, sy);
            let mut count = 0usize;
            let mut stack = vec![(sx, sy)];
            seen[idx] = true;
            while let Some((x, y)) = stack.pop() {
                count += 1;
                x0 = x0.min(x);
                x1 = x1.max(x);
                y0 = y0.min(y);
                y1 = y1.max(y);
                for (dx, dy) in [(2i64, 0i64), (-2, 0), (0, 2), (0, -2)] {
                    let nx = x as i64 + dx;
                    let ny = y as i64 + dy;
                    if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                        continue;
                    }
                    let nidx = ny as usize * w + nx as usize;
                    if mask[nidx] && !seen[nidx] {
                        seen[nidx] = true;
                        stack.push((nx as usize, ny as usize));
                    }
                }
            }
            // Reject specks and wall-to-wall regions.
            let bw = x1 - x0 + 2;
            let bh = y1 - y0 + 2;
            if count >= 6 && bw < w * 3 / 4 && bh < h * 3 / 4 {
                boxes.push(BBox { x: x0, y: y0, w: bw, h: bh });
            }
        }
    }
    boxes
}

/// Renders detections as red outlines on a transparent (ω) canvas —
/// the "red at detection boundaries and null otherwise" output the
/// paper's AR query unions with the source.
pub fn boxes_overlay(frame: &Frame) -> Frame {
    let red = lightdb_frame::Rgb::RED.to_yuv();
    let mut canvas = Frame::filled(
        frame.width(),
        frame.height(),
        lightdb::exec::chunk::OMEGA,
    );
    for b in detect_boxes(frame) {
        draw_rect(&mut canvas, b.x, b.y, b.w, b.h, 2, red);
    }
    canvas
}

/// The detector as a `MAP` UDF.
#[derive(Debug)]
pub struct DetectUdf;

impl MapUdf for DetectUdf {
    fn name(&self) -> &str {
        "DETECT"
    }

    fn apply(&self, frame: &Frame) -> Frame {
        boxes_overlay(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene_with_object() -> Frame {
        let mut f = Frame::filled(64, 64, Yuv::new(120, 128, 128));
        // A warm-chroma blob.
        for y in 20..34 {
            for x in 28..44 {
                f.set(x, y, Yuv::new(180, 90, 190));
            }
        }
        f
    }

    #[test]
    fn finds_the_object() {
        let boxes = detect_boxes(&scene_with_object());
        assert_eq!(boxes.len(), 1, "{boxes:?}");
        let b = boxes[0];
        assert!(b.x >= 26 && b.x <= 30, "{b:?}");
        assert!(b.y >= 18 && b.y <= 22, "{b:?}");
        assert!(b.w >= 12 && b.w <= 20, "{b:?}");
    }

    #[test]
    fn empty_scene_has_no_boxes() {
        let f = Frame::filled(64, 64, Yuv::new(120, 128, 128));
        assert!(detect_boxes(&f).is_empty());
    }

    #[test]
    fn overlay_is_sparse_and_red() {
        let overlay = boxes_overlay(&scene_with_object());
        let mut omega = 0;
        let mut colored = 0;
        for y in 0..64 {
            for x in 0..64 {
                if lightdb::exec::chunk::is_omega(overlay.get(x, y)) {
                    omega += 1;
                } else {
                    colored += 1;
                }
            }
        }
        assert!(colored > 20, "box outline must be drawn");
        assert!(omega > colored * 10, "overlay must be mostly null");
    }

    #[test]
    fn deterministic() {
        let f = scene_with_object();
        assert_eq!(detect_boxes(&f), detect_boxes(&f));
    }

    #[test]
    fn detects_in_venice_dataset() {
        // Gondola hulls are dark: the detector keys on them.
        let f = lightdb_datasets::venice_frame(128, 64, 10, 30);
        let boxes = detect_boxes(&f);
        assert!(!boxes.is_empty(), "venice should contain detectable gondolas");
    }
}
