//! Trace-driven headset-fleet simulator.
//!
//! VisualCloud's load is not one query — it is *thousands of
//! concurrent headsets* pulling tiles from the same few panoramas.
//! This module turns that into a reproducible workload: a
//! [`FleetConfig`] describes a population of viewers (how many, for
//! how long, which [`ViewportPredictor`] family, one seed), a
//! [`FleetTrace`] is the fully materialized deterministic gaze
//! trace, and [`run_fleet`] replays it against a
//! [`TileServer`](lightdb::tileserver::TileServer) from a bounded
//! worker pool, measuring per-serve latency into a
//! [`Histogram`](lightdb::core::Histogram) and classifying every
//! error.
//!
//! Traces are generated up front (predictor state never races with
//! serving) and replayed **second-major**: every viewer's second 0,
//! then every viewer's second 1, … — the order real concurrent
//! playback presents to the server, and the one that exposes
//! cross-user locality to the tile cache.

use crate::predictor::{HotSpotPredictor, RandomWalkPredictor, RasterPredictor, ViewportPredictor};
use lightdb::core::{ErrorClass, Histogram, Quality};
use lightdb::ingest::{store_frames, IngestConfig};
use lightdb::tileserver::{Orientation, TileServer};
use lightdb::LightDb;
use lightdb_codec::TileGrid;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Which viewer population to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Every viewer follows the paper's raster protocol in lockstep —
    /// the best-case locality ceiling.
    Raster,
    /// Independent seeded random walks over the sphere — the
    /// worst-case scattered-attention floor.
    RandomWalk,
    /// Zipf hot-spot dwellers sharing one hot set — the realistic
    /// "everyone watches the action" middle.
    HotSpot,
}

/// One simulated fleet: the whole run is a deterministic function of
/// this struct.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Concurrent viewers.
    pub viewers: usize,
    /// Playback seconds each viewer watches (wraps over the video).
    pub seconds: u64,
    /// Scenario seed: fixes hot sets, walks, and dwell schedules.
    pub seed: u64,
    /// Viewer population model.
    pub kind: TraceKind,
    /// Worker threads replaying the trace.
    pub workers: usize,
    /// Call [`TileServer::prefetch`] after each serve (the predictive
    /// warm-up the server is named for).
    pub prefetch: bool,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            viewers: 64,
            seconds: 30,
            seed: 1,
            kind: TraceKind::HotSpot,
            workers: 8,
            prefetch: true,
        }
    }
}

/// A materialized gaze trace: `tiles[viewer][second]` is the
/// row-major focus tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetTrace {
    pub tiles: Vec<Vec<usize>>,
}

/// Generates the deterministic per-viewer trace for `cfg` on a
/// `cols × rows` grid.
pub fn generate_trace(cfg: &FleetConfig, cols: usize, rows: usize) -> FleetTrace {
    let mut tiles = Vec::with_capacity(cfg.viewers);
    for viewer in 0..cfg.viewers as u64 {
        let mut predictor: Box<dyn ViewportPredictor> = match cfg.kind {
            TraceKind::Raster => Box::new(RasterPredictor),
            TraceKind::RandomWalk => Box::new(RandomWalkPredictor::new(
                cfg.seed ^ viewer.wrapping_mul(0x2545_F491_4F6C_DD1D),
            )),
            TraceKind::HotSpot => Box::new(HotSpotPredictor::new(cfg.seed, viewer)),
        };
        tiles.push(
            (0..cfg.seconds)
                .map(|s| predictor.tile(s, cols, rows))
                .collect(),
        );
    }
    FleetTrace { tiles }
}

/// What a fleet replay measured.
#[derive(Debug)]
pub struct FleetReport {
    pub viewers: usize,
    pub seconds: u64,
    /// Successful serves (each = one HQ focus tile + LQ ring).
    pub serves: u64,
    /// Individual tiles delivered across all serves.
    pub tiles_served: u64,
    /// Failed serves (see `error_classes` for the breakdown).
    pub errors: u64,
    /// Serves whose response violated the serving contract (wrong
    /// focus tile or empty payload) — always a bug, never load.
    pub invariant_violations: u64,
    /// Error count per [`ErrorClass`] (debug-formatted name).
    pub error_classes: BTreeMap<String, u64>,
    /// Per-serve wall-clock latency.
    pub latency: Histogram,
}

fn class_of(e: &lightdb::Error) -> ErrorClass {
    match e {
        lightdb::Error::Exec(x) => x.classify(),
        lightdb::Error::Storage(x) => x.classify(),
        lightdb::Error::Codec(_) => ErrorClass::Corrupt,
        lightdb::Error::Plan(_) => ErrorClass::Fatal,
    }
}

/// Replays `cfg`'s trace against `server` from a bounded worker pool
/// and reports latency and error statistics. Playback seconds wrap
/// over the video's duration, so a long simulation loops a short
/// panorama (as looping demo content does).
pub fn run_fleet(server: &TileServer, cfg: &FleetConfig) -> FleetReport {
    let grid = server.grid();
    let trace = generate_trace(cfg, grid.cols, grid.rows);
    let duration = server.duration_seconds().max(1);
    let total = cfg.viewers * cfg.seconds as usize;
    let latency = Histogram::new();
    let serves = AtomicU64::new(0);
    let tiles_served = AtomicU64::new(0);
    let violations = AtomicU64::new(0);
    let errors = Mutex::new(BTreeMap::<String, u64>::new());
    let next = AtomicUsize::new(0);
    let workers = cfg.workers.clamp(1, total.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                // Second-major replay order (see module docs).
                let second = (i / cfg.viewers) as u64;
                let viewer = (i % cfg.viewers) as u64;
                let tile = trace.tiles[viewer as usize][second as usize];
                let orientation = Orientation::tile_center(tile, grid);
                let start = Instant::now();
                match server.serve(viewer, second % duration, orientation) {
                    Ok(view) => {
                        latency.record(start.elapsed());
                        serves.fetch_add(1, Ordering::Relaxed);
                        tiles_served.fetch_add(1 + view.neighbors.len() as u64, Ordering::Relaxed);
                        let intact = view.focus == tile
                            && !view.primary.bytes.is_empty()
                            && view.neighbors.iter().all(|n| !n.bytes.is_empty());
                        if !intact {
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                        if cfg.prefetch {
                            server.prefetch(viewer);
                        }
                    }
                    Err(e) => {
                        let class = format!("{:?}", class_of(&e));
                        let mut errors = errors.lock().unwrap_or_else(|e| e.into_inner());
                        *errors.entry(class).or_insert(0) += 1;
                    }
                }
            });
        }
    });
    let error_classes = errors.into_inner().unwrap_or_else(|e| e.into_inner());
    FleetReport {
        viewers: cfg.viewers,
        seconds: cfg.seconds,
        serves: serves.into_inner(),
        tiles_served: tiles_served.into_inner(),
        errors: error_classes.values().sum(),
        invariant_violations: violations.into_inner(),
        error_classes,
        latency,
    }
}

/// Ingests a synthetic tiled panorama twice — `name` at
/// [`Quality::High`] and `name_lq` at [`Quality::Low`] — with
/// identical fps (4), GOP cadence (one GOP per second), and `grid`,
/// so the pair can back a two-tier `TileServer`. Returns the
/// low-quality TLF's name. Frames are 256×128 (a 4×4 grid of 64×32
/// macroblock-aligned tiles).
pub fn install_tiled_pair(
    db: &LightDb,
    name: &str,
    seconds: usize,
    grid: TileGrid,
) -> lightdb::Result<String> {
    let spec = lightdb_datasets::DatasetSpec {
        width: 256,
        height: 128,
        fps: 4,
        seconds,
        qp: 22,
    };
    let frames: Vec<_> = (0..spec.frame_count())
        .map(|i| lightdb_datasets::frame(lightdb_datasets::Dataset::Venice, &spec, i))
        .collect();
    let cfg = IngestConfig {
        qp: Quality::High.qp(),
        fps: spec.fps,
        gop_length: spec.fps as usize,
        grid,
        ..IngestConfig::default()
    };
    store_frames(db, name, &frames, &cfg)?;
    let lq_name = format!("{name}_lq");
    store_frames(
        db,
        &lq_name,
        &frames,
        &IngestConfig {
            qp: Quality::Low.qp(),
            ..cfg
        },
    )?;
    Ok(lq_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb::tileserver::TileServerConfig;

    fn db(tag: &str) -> LightDb {
        let root = std::env::temp_dir().join(format!("lightdb-fleet-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        LightDb::open(root).unwrap()
    }

    #[test]
    fn traces_are_deterministic_and_kind_sensitive() {
        let cfg = FleetConfig {
            viewers: 8,
            seconds: 16,
            ..FleetConfig::default()
        };
        assert_eq!(generate_trace(&cfg, 4, 4), generate_trace(&cfg, 4, 4));
        let walk = FleetConfig {
            kind: TraceKind::RandomWalk,
            ..cfg
        };
        assert_ne!(generate_trace(&cfg, 4, 4), generate_trace(&walk, 4, 4));
        let reseeded = FleetConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        assert_ne!(generate_trace(&cfg, 4, 4), generate_trace(&reseeded, 4, 4));
        // Raster fleet is the protocol itself.
        let raster = FleetConfig {
            kind: TraceKind::Raster,
            ..cfg
        };
        let t = generate_trace(&raster, 4, 4);
        assert!(t.tiles.iter().all(|v| v[3] == 3));
    }

    #[test]
    fn small_fleet_replays_cleanly_and_hits_the_cache() {
        let db = db("replay");
        install_tiled_pair(&db, "plaza", 3, TileGrid { cols: 4, rows: 4 }).unwrap();
        let session = db.session();
        let server = session
            .tile_server("plaza", Some("plaza_lq"), TileServerConfig::default())
            .unwrap();
        let cfg = FleetConfig {
            viewers: 8,
            seconds: 6,
            workers: 4,
            kind: TraceKind::HotSpot,
            ..FleetConfig::default()
        };
        let report = run_fleet(&server, &cfg);
        assert_eq!(report.errors, 0, "classes: {:?}", report.error_classes);
        assert_eq!(report.invariant_violations, 0);
        assert_eq!(report.serves, 8 * 6);
        assert_eq!(report.latency.count(), report.serves);
        // 8 hot-spot viewers over 16 tiles must share extractions.
        let stats = db.tile_cache().unwrap().stats();
        assert!(stats.avoided() > 0, "no cross-user reuse: {stats:?}");
        std::fs::remove_dir_all(db.catalog().root()).unwrap();
    }
}
