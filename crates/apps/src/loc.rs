//! Lines-of-code accounting for Table 2.
//!
//! Each workload implementation brackets its pipeline core with
//! `// LOC:BEGIN <name>` / `// LOC:END <name>` markers; this module
//! extracts and counts the non-blank, non-comment lines between them,
//! regenerating the programmability comparison. UDF code (the
//! detector) is counted separately, matching the paper's
//! parenthesised numbers.

use crate::workloads::System;

/// Sources of every workload implementation, embedded at compile time.
const SOURCES: &[(&str, &str)] = &[
    ("lightdb", include_str!("workloads/lightdb_q.rs")),
    ("lightdb", include_str!("depth.rs")),
    ("ffmpeg", include_str!("workloads/ffmpeg_q.rs")),
    ("opencv", include_str!("workloads/opencv_q.rs")),
    ("scanner", include_str!("workloads/scanner_q.rs")),
    ("scidb", include_str!("workloads/scidb_q.rs")),
];

/// The detector UDF source (counted separately, like the paper's
/// parenthesised UDF numbers).
const UDF_SOURCE: &str = include_str!("detect.rs");

/// Counts the code lines between `LOC:BEGIN name` and `LOC:END name`
/// in `source`. Blank lines and pure comment lines are excluded.
pub fn count_marked(source: &str, name: &str) -> Option<usize> {
    let begin = format!("LOC:BEGIN {name}");
    let end = format!("LOC:END {name}");
    let mut counting = false;
    let mut count = 0usize;
    let mut found = false;
    for line in source.lines() {
        if line.contains(&begin) {
            counting = true;
            found = true;
            continue;
        }
        if line.contains(&end) {
            counting = false;
            continue;
        }
        if counting {
            let t = line.trim();
            if !t.is_empty() && !t.starts_with("//") {
                count += 1;
            }
        }
    }
    if found {
        Some(count)
    } else {
        None
    }
}

/// Lines of code for one system's implementation of one workload
/// (`"tiling"` or `"ar"`), or `None` when no implementation exists.
pub fn workload_loc(system: System, workload: &str) -> Option<usize> {
    let key = match system {
        System::LightDb => "lightdb",
        System::Ffmpeg => "ffmpeg",
        System::OpenCv => "opencv",
        System::Scanner => "scanner",
        System::SciDb => "scidb",
    };
    let marker = format!("{key}-{workload}");
    let mut total = 0usize;
    let mut found = false;
    for (sys, src) in SOURCES {
        if *sys == key {
            if let Some(n) = count_marked(src, &marker) {
                total += n;
                found = true;
            }
        }
    }
    if found {
        Some(total)
    } else {
        None
    }
}

/// Lines of the detector UDF (whole-file code lines, excluding tests).
pub fn detector_udf_loc() -> usize {
    let body = UDF_SOURCE.split("#[cfg(test)]").next().unwrap_or(UDF_SOURCE);
    body.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marked_counting_skips_comments_and_blanks() {
        let src = "x\n// LOC:BEGIN demo\nlet a = 1;\n\n// comment\nlet b = 2;\n// LOC:END demo\ny";
        assert_eq!(count_marked(src, "demo"), Some(2));
        assert_eq!(count_marked(src, "absent"), None);
    }

    #[test]
    fn every_system_has_tiling_and_ar_counts() {
        for sys in System::ALL {
            for wl in ["tiling", "ar"] {
                let n = workload_loc(sys, wl);
                assert!(n.is_some(), "{} missing {wl} implementation markers", sys.name());
                assert!(n.unwrap() > 0);
            }
        }
    }

    #[test]
    fn lightdb_is_the_tersest_and_ffmpeg_among_the_longest() {
        // The paper's Table 2 ordering: declarative systems are an
        // order of magnitude shorter than imperative frameworks.
        let loc = |s| workload_loc(s, "tiling").unwrap();
        assert!(loc(System::LightDb) < loc(System::Scanner));
        assert!(loc(System::LightDb) < loc(System::OpenCv));
        assert!(loc(System::LightDb) * 3 < loc(System::Ffmpeg));
        assert!(loc(System::OpenCv) > loc(System::Scanner) / 2);
    }

    #[test]
    fn depth_workload_counted_for_lightdb() {
        let n = count_marked(include_str!("depth.rs"), "lightdb-depth");
        assert!(n.is_some() && n.unwrap() > 0);
    }

    #[test]
    fn udf_loc_positive() {
        assert!(detector_udf_loc() > 20);
    }
}
