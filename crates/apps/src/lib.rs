//! # lightdb-apps
//!
//! The real-world workloads from the paper's evaluation (Section 3.5
//! / Section 5), each implemented five times — once against LightDB's
//! declarative VRQL, and once against each baseline's API — so the
//! benchmark harness can measure both throughput (Figure 11) and
//! programmability (Table 2, via [`loc`]).
//!
//! * **Predictive 360° tiling** — partition each second of a
//!   panorama into a tile grid, encode the predicted-viewport tile at
//!   high quality and the rest at low, recombine, store.
//! * **Augmented reality** — downsample, run an object detector,
//!   overlay detection boxes on the original stream.
//! * **Depth-map generation** — sample a stereo pair and synthesise a
//!   depth map (CPU / FPGA / hybrid physical variants, Figure 12).

pub mod depth;
pub mod detect;
pub mod fleet;
pub mod loc;
pub mod predictor;
pub mod workloads;

pub use detect::{detect_boxes, BBox, DetectUdf};
pub use predictor::{
    important_tile, HotSpotPredictor, RandomWalkPredictor, RasterPredictor, ViewportPredictor,
};

/// Result summary a workload run reports to the harness.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Source frames processed.
    pub frames: usize,
    /// Encoded input bytes.
    pub bytes_in: usize,
    /// Encoded output bytes.
    pub bytes_out: usize,
}

impl RunStats {
    /// Fraction of the input size removed by the workload (Table 3).
    pub fn reduction(&self) -> f64 {
        if self.bytes_in == 0 {
            return 0.0;
        }
        1.0 - self.bytes_out as f64 / self.bytes_in as f64
    }
}

/// Errors from workload implementations.
#[derive(Debug)]
pub enum AppError {
    LightDb(lightdb::Error),
    Baseline(lightdb_baselines::BaselineError),
    Other(String),
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::LightDb(e) => write!(f, "{e}"),
            AppError::Baseline(e) => write!(f, "{e}"),
            AppError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<lightdb::Error> for AppError {
    fn from(e: lightdb::Error) -> Self {
        AppError::LightDb(e)
    }
}

impl From<lightdb_baselines::BaselineError> for AppError {
    fn from(e: lightdb_baselines::BaselineError) -> Self {
        AppError::Baseline(e)
    }
}

pub type Result<T> = std::result::Result<T, AppError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        let s = RunStats {
            frames: 10,
            bytes_in: 1000,
            bytes_out: 250,
        };
        assert!((s.reduction() - 0.75).abs() < 1e-12);
        let zero = RunStats {
            frames: 0,
            bytes_in: 0,
            bytes_out: 0,
        };
        assert_eq!(zero.reduction(), 0.0);
    }
}
