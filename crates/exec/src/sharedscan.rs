//! Shared scans: a process-wide cache of *decoded* GOPs with
//! single-flight decoding.
//!
//! The buffer pool already coalesces concurrent disk reads of one GOP
//! (`storage::bufferpool`), but N concurrent queries scanning the
//! same TLF range still paid N decodes of every GOP — and DECODE is
//! where nearly all query time goes (PAPER.md §5). A [`SharedDecode`]
//! generalises the pool's per-key single-flight to the decode stage:
//! concurrent decodes of the same encoded GOP coalesce into one, and
//! the decoded frames are kept in a small byte-bounded LRU so closely
//! trailing scans hit outright.
//!
//! Keys are **content-addressed** (a double-FNV digest of the
//! sequence header and the encoded payload), not provenance-based:
//! chunks carry no origin identity, and content addressing means two
//! queries reading the same bytes through different plans still
//! share. Decode output is deterministic for given input bytes, so a
//! cache hit is byte-identical to a fresh decode by construction.
//!
//! Degraded (prediction-only) decodes never touch the cache: their
//! output depends on deadline pressure, not just input bytes, and
//! caching them would let one query's emergency degrade leak into
//! another's full-fidelity scan.

use crate::chunk::{Chunk, ChunkPayload};
use crate::device::Device;
use crate::frameops::decode_one;
use crate::metrics::{counters, Metrics};
use crate::query_ctx::QueryCtx;
use crate::Result;
use lightdb_codec::SequenceHeader;
use lightdb_frame::Frame;
use lightdb_storage::bufferpool::{FlightJoin, SingleFlight};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Default decoded-GOP cache budget: 32 MiB (a few dozen GOPs of the
/// evaluation datasets). Overridable per [`SharedDecode::new`];
/// engines read `LIGHTDB_SHARED_DECODE_MB`.
pub const DEFAULT_BUDGET_BYTES: usize = 32 << 20;

/// Content digest of one encoded GOP (+ its sequence parameters).
/// Two independent FNV-1a passes plus the payload length: a collision
/// requires both 64-bit digests *and* the length to agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodeKey {
    h1: u64,
    h2: u64,
    len: usize,
}

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl DecodeKey {
    fn for_gop(header: &SequenceHeader, device: Device, payload: &[u8]) -> DecodeKey {
        // The header participates because decode semantics depend on
        // it (codec, geometry, tile grid), and the device because the
        // tiled-GPU decode path is a distinct implementation — frames
        // are expected identical, but the cache never has to assume
        // it. Debug formatting is a stable in-process serialisation
        // of these plain-data fields.
        let head = format!("{header:?}/{device:?}");
        let (s1, s2) = (0xcbf2_9ce4_8422_2325, 0x6c62_272e_07bb_0142);
        DecodeKey {
            h1: fnv1a(fnv1a(s1, head.as_bytes()), payload),
            h2: fnv1a(fnv1a(s2, head.as_bytes()), payload),
            len: head.len() + payload.len(),
        }
    }
}

struct CacheEntry {
    frames: Arc<Vec<Frame>>,
    bytes: usize,
    /// Monotonic stamp for LRU ordering.
    stamp: u64,
}

struct CacheInner {
    map: HashMap<DecodeKey, CacheEntry>,
    bytes: usize,
    budget: usize,
    clock: u64,
}

impl CacheInner {
    /// Evicts LRU entries until within budget, never touching the
    /// just-inserted `protect` key unless it alone exceeds the budget
    /// (in which case it is served but not retained — mirroring the
    /// buffer pool's oversized-entry rule).
    fn evict_to_budget(&mut self, protect: &DecodeKey, metrics: &Metrics) {
        while self.bytes > self.budget {
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| *k != protect)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(e) = self.map.remove(&victim) {
                self.bytes -= e.bytes;
                metrics.bump(counters::SHARED_SCAN_EVICTIONS);
            }
        }
        if self.bytes > self.budget {
            if let Some(e) = self.map.remove(protect) {
                self.bytes -= e.bytes;
                metrics.bump(counters::SHARED_SCAN_EVICTIONS);
            }
        }
    }
}

/// The shared decoded-GOP facility: single-flight decode plus a
/// byte-bounded LRU of decoded frames. One per engine, shared by
/// every session; an executor without one decodes privately, exactly
/// as before.
pub struct SharedDecode {
    flights: SingleFlight<DecodeKey>,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for SharedDecode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never locks: safe to call mid-critical-section.
        f.debug_struct("SharedDecode").finish_non_exhaustive()
    }
}

impl SharedDecode {
    /// A cache bounded by `budget_bytes` of decoded frame data.
    pub fn new(budget_bytes: usize) -> SharedDecode {
        SharedDecode {
            flights: SingleFlight::new(),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                bytes: 0,
                budget: budget_bytes,
                clock: 0,
            }),
        }
    }

    /// Decoded bytes currently resident (for tests / introspection).
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of cached decoded GOPs.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: &DecodeKey) -> Option<Arc<Vec<Frame>>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.get_mut(key).map(|e| {
            e.stamp = clock;
            e.frames.clone()
        })
    }

    fn publish(&self, key: DecodeKey, frames: Arc<Vec<Frame>>, metrics: &Metrics) {
        let bytes: usize = frames.iter().map(|f| f.width() * f.height() * 3 / 2).sum();
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        inner.map.insert(key, CacheEntry { frames, bytes, stamp: clock });
        inner.evict_to_budget(&key, metrics);
    }

    /// Decodes `chunk` through the shared cache: a cached decode of
    /// the same bytes is reused (bumping `shared_scan.hits`), a fresh
    /// decode runs under single-flight so concurrent scans of the
    /// same GOP decode it exactly once (`shared_scan.decodes`).
    ///
    /// Waiting on another scan's in-flight decode polls `ctx` each
    /// step, so cancellation/deadline is honoured within one poll. A
    /// failed leader's waiters retry and one becomes the new leader —
    /// errors propagate to every query, none is stranded.
    pub fn decode(
        &self,
        chunk: Chunk,
        device: Device,
        metrics: &Metrics,
        ctx: &QueryCtx,
    ) -> Result<Chunk> {
        let ChunkPayload::Encoded { header, ref gop } = chunk.payload else {
            return Ok(chunk); // already decoded
        };
        let key = DecodeKey::for_gop(&header, device, &gop.to_bytes());
        loop {
            if let Some(frames) = self.lookup(&key) {
                metrics.bump(counters::SHARED_SCAN_HITS);
                // The hit replays the decode's cost-free result; the
                // frames are cloned out so downstream operators can
                // mutate them freely.
                return Ok(Chunk {
                    payload: ChunkPayload::Decoded { frames: (*frames).clone(), device },
                    ..chunk
                });
            }
            match self.flights.join(&key, &|| ctx.should_abort()) {
                FlightJoin::Leader(ticket) => {
                    // Double-check under leadership: a prior leader may
                    // have published between our lookup and our join
                    // (the cache and flight table are separate locks).
                    // Serving the hit here keeps "exactly one decode
                    // per GOP" true under that race.
                    if let Some(frames) = self.lookup(&key) {
                        metrics.bump(counters::SHARED_SCAN_HITS);
                        drop(ticket);
                        return Ok(Chunk {
                            payload: ChunkPayload::Decoded { frames: (*frames).clone(), device },
                            ..chunk
                        });
                    }
                    let decoded = decode_one(chunk, device, metrics)?;
                    metrics.bump(counters::SHARED_SCAN_DECODES);
                    if let ChunkPayload::Decoded { ref frames, .. } = decoded.payload {
                        self.publish(key, Arc::new(frames.clone()), metrics);
                    }
                    drop(ticket); // wakes followers onto the published entry
                    return Ok(decoded);
                }
                FlightJoin::Completed => continue,
                FlightJoin::Aborted => {
                    ctx.check()?;
                    // Raced: the abort condition cleared (or never
                    // maps to an error); retry the cache.
                    continue;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::StreamInfo;
    use lightdb_codec::encoder::EncoderConfig;
    use lightdb_codec::{CodecKind, Encoder, TileGrid};
    use lightdb_frame::Yuv;
    use lightdb_geom::{Interval, Volume};

    fn encoded_chunk(t: usize, shade: u8) -> Chunk {
        let frames: Vec<Frame> =
            (0..4).map(|i| Frame::filled(32, 32, Yuv::new(shade + i as u8, 90, 150))).collect();
        let cfg = EncoderConfig {
            codec: CodecKind::H264Sim,
            qp: 24,
            grid: TileGrid::SINGLE,
            gop_length: 4,
            fps: 4,
        };
        let stream = Encoder::new(cfg).expect("encoder").encode(&frames).expect("encode");
        let header = stream.header;
        let gop = stream.gops.into_iter().next().expect("one gop");
        Chunk {
            t_index: t,
            part: 0,
            volume: Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(t as f64, t as f64 + 1.0)),
            info: StreamInfo::origin(1),
            payload: ChunkPayload::Encoded { header, gop },
        }
    }

    #[test]
    fn hit_is_byte_identical_to_fresh_decode() {
        let shared = SharedDecode::new(DEFAULT_BUDGET_BYTES);
        let m = Metrics::new();
        let ctx = QueryCtx::unbounded();
        let a = shared.decode(encoded_chunk(0, 40), Device::Cpu, &m, &ctx).unwrap();
        let b = shared.decode(encoded_chunk(0, 40), Device::Cpu, &m, &ctx).unwrap();
        let fresh = decode_one(encoded_chunk(0, 40), Device::Cpu, &m).unwrap();
        let frames = |c: &Chunk| match &c.payload {
            ChunkPayload::Decoded { frames, .. } => frames.clone(),
            _ => panic!("expected decoded payload"),
        };
        assert_eq!(frames(&a), frames(&fresh));
        assert_eq!(frames(&b), frames(&fresh));
        assert_eq!(m.counter(counters::SHARED_SCAN_DECODES), 1);
        assert_eq!(m.counter(counters::SHARED_SCAN_HITS), 1);
    }

    #[test]
    fn distinct_content_takes_distinct_entries() {
        let shared = SharedDecode::new(DEFAULT_BUDGET_BYTES);
        let m = Metrics::new();
        let ctx = QueryCtx::unbounded();
        shared.decode(encoded_chunk(0, 40), Device::Cpu, &m, &ctx).unwrap();
        shared.decode(encoded_chunk(1, 90), Device::Cpu, &m, &ctx).unwrap();
        assert_eq!(shared.len(), 2);
        assert_eq!(m.counter(counters::SHARED_SCAN_DECODES), 2);
        assert_eq!(m.counter(counters::SHARED_SCAN_HITS), 0);
    }

    #[test]
    fn concurrent_decodes_of_one_gop_coalesce() {
        use std::sync::Barrier;
        const THREADS: usize = 8;
        let shared = Arc::new(SharedDecode::new(DEFAULT_BUDGET_BYTES));
        let m = Metrics::new();
        let barrier = Arc::new(Barrier::new(THREADS));
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let (shared, m, barrier) = (shared.clone(), m.clone(), barrier.clone());
                s.spawn(move || {
                    barrier.wait();
                    let c = shared
                        .decode(encoded_chunk(0, 40), Device::Cpu, &m, &QueryCtx::unbounded())
                        .unwrap();
                    assert!(matches!(c.payload, ChunkPayload::Decoded { .. }));
                });
            }
        });
        assert_eq!(
            m.counter(counters::SHARED_SCAN_DECODES),
            1,
            "concurrent decodes of identical bytes must run exactly once"
        );
        assert_eq!(m.counter(counters::SHARED_SCAN_HITS), THREADS as u64 - 1);
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn budget_evicts_lru() {
        // Each decoded GOP: 4 frames × 32×32×1.5 = 6144 bytes.
        let shared = SharedDecode::new(13_000); // fits two
        let m = Metrics::new();
        let ctx = QueryCtx::unbounded();
        shared.decode(encoded_chunk(0, 10), Device::Cpu, &m, &ctx).unwrap();
        shared.decode(encoded_chunk(1, 60), Device::Cpu, &m, &ctx).unwrap();
        // Touch 0 so 1 is the LRU victim.
        shared.decode(encoded_chunk(0, 10), Device::Cpu, &m, &ctx).unwrap();
        shared.decode(encoded_chunk(2, 110), Device::Cpu, &m, &ctx).unwrap();
        assert_eq!(m.counter(counters::SHARED_SCAN_EVICTIONS), 1);
        assert!(shared.resident_bytes() <= 13_000);
        // 0 must still hit; 1 must re-decode.
        shared.decode(encoded_chunk(0, 10), Device::Cpu, &m, &ctx).unwrap();
        let before = m.counter(counters::SHARED_SCAN_DECODES);
        shared.decode(encoded_chunk(1, 60), Device::Cpu, &m, &ctx).unwrap();
        assert_eq!(m.counter(counters::SHARED_SCAN_DECODES), before + 1);
    }

    #[test]
    fn cancelled_query_does_not_park_on_foreign_decode() {
        let shared = SharedDecode::new(DEFAULT_BUDGET_BYTES);
        let ctx = QueryCtx::unbounded();
        ctx.cancel_token().cancel();
        // The cache is empty so this query becomes the leader — the
        // cancel surfaces via decode_one's ctx-free path? No: leaders
        // decode unconditionally; cancellation is honoured by the
        // chunk pipeline before entry. Here we exercise the follower
        // path: park a flight, then join it cancelled.
        let key = DecodeKey::for_gop(
            &SequenceHeader {
                codec: CodecKind::H264Sim,
                width: 32,
                height: 32,
                fps: 4,
                gop_length: 4,
                grid: TileGrid::SINGLE,
            },
            Device::Cpu,
            b"pending",
        );
        let ticket = match shared.flights.join(&key, &|| false) {
            FlightJoin::Leader(t) => t,
            other => panic!("expected leadership, got {other:?}"),
        };
        let join = shared.flights.join(&key, &|| ctx.should_abort());
        assert!(matches!(join, FlightJoin::Aborted));
        drop(ticket);
    }
}
