//! Per-query execution context: deadline, cooperative cancellation,
//! and resource declaration.
//!
//! A [`QueryCtx`] travels with a query through the executor, the
//! parallel scatter/reassembly path and the buffer pool. Cancellation
//! is **cooperative**: [`QueryCtx::check`] is called at every
//! GOP/chunk boundary (and polled inside timed pool waits), so a
//! cancelled or expired query stops within one chunk of work — it is
//! never torn down mid-kernel, which is what keeps aborted queries
//! from leaking pool bytes or half-accounted metrics spans.
//!
//! The context is cheap to clone (an `Arc` plus copies) and clones
//! share the same cancellation flag: cancelling a [`CancelToken`]
//! aborts every clone of the context it came from.

use crate::{ExecError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handle for cancelling a running query from another thread.
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Requests cancellation. Idempotent; takes effect at the
    /// query's next chunk boundary or wait-poll step.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Per-query deadline, cancellation and working-set declaration.
#[derive(Debug, Clone)]
pub struct QueryCtx {
    cancelled: Arc<AtomicBool>,
    /// Hard deadline; crossing it fails the query with
    /// [`ExecError::DeadlineExceeded`].
    deadline: Option<Instant>,
    /// Soft threshold before the hard deadline: once inside this
    /// margin, decodes switch to the degraded (prediction-only) path
    /// to land the query in time rather than miss.
    degrade_margin: Duration,
    /// Declared working-set estimate in bytes for buffer-pool
    /// admission; `None` skips admission control.
    mem_estimate: Option<usize>,
}

impl Default for QueryCtx {
    fn default() -> Self {
        QueryCtx::unbounded()
    }
}

impl QueryCtx {
    /// A context with no deadline and no resource declaration —
    /// the behaviour of queries before resilience existed.
    pub fn unbounded() -> QueryCtx {
        QueryCtx {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: None,
            degrade_margin: Duration::ZERO,
            mem_estimate: None,
        }
    }

    /// Reads knobs from the environment: `LIGHTDB_DEADLINE_MS` (query
    /// deadline in milliseconds) and `LIGHTDB_MEM_CAP` (declared
    /// working-set bytes for admission). Unset values leave the
    /// corresponding limit off; malformed values warn loudly (once per
    /// knob per process, via [`lightdb_core::envknob`]) and read as
    /// unset. Byte counts convert with a checked clamp, never a
    /// truncating cast.
    pub fn from_env() -> QueryCtx {
        let mut ctx = QueryCtx::unbounded();
        if let Some(budget) = lightdb_core::envknob::read_duration_ms("LIGHTDB_DEADLINE_MS") {
            ctx = ctx.with_deadline(budget);
        }
        if let Some(bytes) = lightdb_core::envknob::read_usize("LIGHTDB_MEM_CAP") {
            ctx = ctx.with_mem_estimate(bytes);
        }
        ctx
    }

    /// Sets a deadline `budget` from now. Also derives the degrade
    /// margin: the final quarter of the budget (capped at 250 ms) is
    /// the at-risk window where decodes go prediction-only.
    pub fn with_deadline(self, budget: Duration) -> QueryCtx {
        let margin = (budget / 4).min(Duration::from_millis(250));
        QueryCtx {
            deadline: Some(Instant::now() + budget),
            degrade_margin: margin,
            ..self
        }
    }

    /// Sets an absolute deadline with an explicit degrade margin.
    pub fn with_deadline_at(self, deadline: Instant, degrade_margin: Duration) -> QueryCtx {
        QueryCtx { deadline: Some(deadline), degrade_margin, ..self }
    }

    /// Declares an estimated working set for buffer-pool admission.
    pub fn with_mem_estimate(self, bytes: usize) -> QueryCtx {
        QueryCtx { mem_estimate: Some(bytes), ..self }
    }

    /// A token other threads can use to cancel this query.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken { flag: self.cancelled.clone() }
    }

    /// The declared working-set estimate, if any.
    pub fn mem_estimate(&self) -> Option<usize> {
        self.mem_estimate
    }

    /// The remaining deadline budget; `None` when no deadline is set.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// True once the query should stop: cancelled or past deadline.
    /// This is the poll condition handed to timed pool waits.
    pub fn should_abort(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True while a deadline exists and the remaining budget is
    /// inside the degrade margin — the signal for switching decodes
    /// to the cheap prediction-only path.
    pub fn deadline_at_risk(&self) -> bool {
        match self.deadline {
            Some(d) => {
                Instant::now() + self.degrade_margin >= d && self.degrade_margin > Duration::ZERO
            }
            None => false,
        }
    }

    /// The chunk-boundary checkpoint: errors with
    /// [`ExecError::Cancelled`] or [`ExecError::DeadlineExceeded`]
    /// when the query should stop, in that priority order (an
    /// explicit cancel wins over a concurrently expired deadline).
    pub fn check(&self) -> Result<()> {
        if self.cancelled.load(Ordering::Acquire) {
            return Err(ExecError::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ExecError::DeadlineExceeded);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_aborts() {
        let ctx = QueryCtx::unbounded();
        assert!(ctx.check().is_ok());
        assert!(!ctx.should_abort());
        assert!(!ctx.deadline_at_risk());
        assert_eq!(ctx.remaining(), None);
    }

    #[test]
    fn cancel_token_aborts_all_clones() {
        let ctx = QueryCtx::unbounded();
        let clone = ctx.clone();
        let token = ctx.cancel_token();
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        assert!(matches!(ctx.check(), Err(ExecError::Cancelled)));
        assert!(matches!(clone.check(), Err(ExecError::Cancelled)));
        assert!(clone.should_abort());
    }

    #[test]
    fn expired_deadline_errs_deadline_exceeded() {
        let ctx = QueryCtx::unbounded().with_deadline(Duration::ZERO);
        assert!(matches!(ctx.check(), Err(ExecError::DeadlineExceeded)));
        assert!(ctx.should_abort());
        assert_eq!(ctx.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancel_wins_over_expired_deadline() {
        let ctx = QueryCtx::unbounded().with_deadline(Duration::ZERO);
        ctx.cancel_token().cancel();
        assert!(matches!(ctx.check(), Err(ExecError::Cancelled)));
    }

    #[test]
    fn generous_deadline_is_not_at_risk() {
        let ctx = QueryCtx::unbounded().with_deadline(Duration::from_secs(3600));
        assert!(ctx.check().is_ok());
        assert!(!ctx.deadline_at_risk());
        assert!(ctx.remaining().expect("has deadline") > Duration::from_secs(3500));
    }

    #[test]
    fn near_deadline_is_at_risk_before_it_expires() {
        // Budget 400ms → margin 100ms. At ~350ms elapsed the query is
        // at risk but not yet expired.
        let ctx = QueryCtx::unbounded()
            .with_deadline_at(
                Instant::now() + Duration::from_millis(50),
                Duration::from_millis(100),
            );
        assert!(ctx.deadline_at_risk());
        assert!(ctx.check().is_ok(), "at-risk is earlier than expiry");
    }
}
