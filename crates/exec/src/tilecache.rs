//! Cross-user cache of *encoded* tile outputs with single-flight
//! extraction.
//!
//! The fleet-serving workload (PAPER.md §2: many headsets viewing one
//! 360° video, head orientations clustered on the action) asks for
//! the same hot tile thousands of times per second. Extraction is
//! already zero-decode (`EncodedGop::extract_tile` clones the tile's
//! slice out of every frame), but under a fleet even that memcpy —
//! plus the buffer-pool traffic to get the GOP bytes — multiplies by
//! the viewer count. A [`TileCache`] is the serving-layer analogue of
//! [`crate::sharedscan::SharedDecode`]: a byte-budgeted LRU over the
//! serialized single-tile GOPs, wrapped in the buffer pool's generic
//! `SingleFlight` so concurrent requests for one hot tile run
//! `extract_tile` exactly once and everyone else reuses those bytes.
//!
//! ## Keys and version safety
//!
//! Keys are **provenance-addressed**: `(tlf, catalog version, track,
//! gop start-frame, tile index, quality)`. The catalog version is the
//! load-bearing field — re-ingesting a TLF under the same name mints
//! a new version, so a server that resolved the new snapshot builds
//! keys that can never collide with the old entries. Stale tiles age
//! out of the LRU; they are never *served*, because nothing asks for
//! the dead version's keys. (Content addressing, as the shared-decode
//! cache uses, would also be correct but would hash every GOP payload
//! on every request; the serving path is exactly the place where that
//! per-request cost matters.)
//!
//! ## Counter semantics
//!
//! Every call bumps exactly one of three counters:
//! `tile_cache.hits` (served from cache without waiting),
//! `tile_cache.coalesced` (waited on another request's in-flight
//! extraction, then reused its result), or `tile_cache.misses` (ran
//! the extraction as leader). So `hits + coalesced` is precisely
//! "extractions avoided", and `misses` equals extractions performed.

use crate::metrics::{counters, Metrics};
use crate::Result;
use lightdb_core::Quality;
use lightdb_storage::bufferpool::{FlightJoin, SingleFlight};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default encoded-tile cache budget: 64 MiB. Encoded tiles are tiny
/// (a tile's slice of each frame at one quality), so this holds many
/// thousands of hot tiles. Engines read `LIGHTDB_TILE_CACHE_MB`.
pub const DEFAULT_BUDGET_BYTES: usize = 64 << 20;

/// Provenance identity of one encoded tile at one quality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TileKey {
    /// TLF name in the catalog.
    pub tlf: Arc<str>,
    /// Catalog version the serving snapshot resolved. Re-ingest under
    /// the same name bumps this, so stale entries are unreachable.
    pub version: u64,
    /// Track ordinal within the TLF.
    pub track: usize,
    /// GOP identity within the track: its start frame (matches the
    /// buffer pool's `GopKey::gop` convention).
    pub gop: u64,
    /// Tile ordinal in the track's grid (row-major).
    pub tile: usize,
    /// Quality tier of the stream the tile was cut from.
    pub quality: Quality,
}

struct CacheEntry {
    tile: Arc<Vec<u8>>,
    bytes: usize,
    /// Monotonic stamp for LRU ordering.
    stamp: u64,
}

struct CacheInner {
    map: HashMap<TileKey, CacheEntry>,
    bytes: usize,
    budget: usize,
    clock: u64,
}

impl CacheInner {
    /// Evicts LRU entries until within budget, never touching the
    /// just-inserted `protect` key unless it alone exceeds the budget
    /// (in which case it is served but not retained — the same
    /// oversized-entry rule as the buffer pool and shared-decode
    /// cache).
    fn evict_to_budget(&mut self, protect: &TileKey, metrics: &Metrics, stats: &CacheStats) {
        while self.bytes > self.budget {
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| *k != protect)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(e) = self.map.remove(&victim) {
                self.bytes -= e.bytes;
                metrics.bump(counters::TILE_CACHE_EVICTIONS);
                stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        if self.bytes > self.budget {
            if let Some(e) = self.map.remove(protect) {
                self.bytes -= e.bytes;
                metrics.bump(counters::TILE_CACHE_EVICTIONS);
                stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Cache-wide totals, independent of any one session's [`Metrics`].
/// Sessions see their own share through the `tile_cache.*` counters;
/// these atomics see the whole fleet, which is what the exactly-once
/// tests and the fleet bench assert on.
#[derive(Debug, Default)]
struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of the cache-wide totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileCacheStats {
    /// Requests served from cache without waiting.
    pub hits: u64,
    /// Extractions performed (single-flight leaders).
    pub misses: u64,
    /// Requests that reused another request's in-flight extraction.
    pub coalesced: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
}

impl TileCacheStats {
    /// Requests that did not run an extraction.
    pub fn avoided(&self) -> u64 {
        self.hits + self.coalesced
    }

    /// Fraction of requests served without extraction, 0.0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            self.avoided() as f64 / total as f64
        }
    }

    /// Field-wise `self - earlier`, for before/after deltas around a
    /// bench run against a shared cache.
    pub fn since(&self, earlier: &TileCacheStats) -> TileCacheStats {
        TileCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            coalesced: self.coalesced.saturating_sub(earlier.coalesced),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// The cross-user encoded-tile facility: single-flight extraction
/// plus a byte-bounded LRU of serialized single-tile GOPs. One per
/// engine, shared by every session's `TileServer`.
pub struct TileCache {
    flights: SingleFlight<TileKey>,
    inner: Mutex<CacheInner>,
    stats: CacheStats,
}

impl std::fmt::Debug for TileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never locks: safe to call mid-critical-section.
        f.debug_struct("TileCache").finish_non_exhaustive()
    }
}

impl TileCache {
    /// A cache bounded by `budget_bytes` of serialized tile data.
    pub fn new(budget_bytes: usize) -> TileCache {
        TileCache {
            flights: SingleFlight::new(),
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                bytes: 0,
                budget: budget_bytes,
                clock: 0,
            }),
            stats: CacheStats::default(),
        }
    }

    /// Encoded-tile bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.inner.lock().budget
    }

    /// Number of cached tiles.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache-wide totals since construction.
    pub fn stats(&self) -> TileCacheStats {
        TileCacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
        }
    }

    /// Whether `key` is resident right now (no LRU touch; tests and
    /// prefetch use this to avoid redundant warming).
    pub fn contains(&self, key: &TileKey) -> bool {
        self.inner.lock().map.contains_key(key)
    }

    fn lookup(&self, key: &TileKey) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.get_mut(key).map(|e| {
            e.stamp = clock;
            e.tile.clone()
        })
    }

    fn publish(&self, key: TileKey, tile: Arc<Vec<u8>>, metrics: &Metrics) {
        let bytes = tile.len();
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        inner.map.insert(
            key.clone(),
            CacheEntry {
                tile,
                bytes,
                stamp: clock,
            },
        );
        inner.evict_to_budget(&key, metrics, &self.stats);
    }

    /// Serves `key` from the cache, or runs `extract` under
    /// single-flight so concurrent requests for the same tile extract
    /// it exactly once.
    ///
    /// `extract` must be a pure function of the key (it produces the
    /// serialized single-tile GOP — `extract_tile(i).to_bytes()` — for
    /// the pinned catalog version in the key), so a cached entry is
    /// byte-identical to a fresh extraction by construction. It may be
    /// called more than once only if a leader fails and this request
    /// retries into leadership; each call is still "one extraction"
    /// for counter purposes.
    ///
    /// Waiting on another request's in-flight extraction polls
    /// `should_abort` each step; an aborted wait returns the abort
    /// error produced by `on_abort` (sessions map it to their query's
    /// cancellation/deadline error).
    pub fn get_or_extract(
        &self,
        key: &TileKey,
        metrics: &Metrics,
        should_abort: &dyn Fn() -> bool,
        extract: &dyn Fn() -> Result<Vec<u8>>,
    ) -> Result<Arc<Vec<u8>>> {
        // Whether we parked behind another request's flight; decides
        // hit vs coalesced attribution when the value materialises.
        let mut waited = false;
        loop {
            if let Some(tile) = self.lookup(key) {
                if waited {
                    metrics.bump(counters::TILE_CACHE_COALESCED);
                    self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                } else {
                    metrics.bump(counters::TILE_CACHE_HITS);
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(tile);
            }
            match self.flights.join(key, should_abort) {
                FlightJoin::Leader(ticket) => {
                    // Double-check under leadership: a prior leader may
                    // have published between our lookup and our join
                    // (the cache and flight table are separate locks).
                    if let Some(tile) = self.lookup(key) {
                        if waited {
                            metrics.bump(counters::TILE_CACHE_COALESCED);
                            self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                        } else {
                            metrics.bump(counters::TILE_CACHE_HITS);
                            self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        }
                        drop(ticket);
                        return Ok(tile);
                    }
                    let tile = Arc::new(extract()?);
                    metrics.bump(counters::TILE_CACHE_MISSES);
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    self.publish(key.clone(), tile.clone(), metrics);
                    drop(ticket); // wakes followers onto the published entry
                    return Ok(tile);
                }
                FlightJoin::Completed => {
                    waited = true;
                    continue;
                }
                FlightJoin::Aborted => {
                    if should_abort() {
                        return Err(crate::ExecError::Cancelled);
                    }
                    // Raced: the abort condition cleared; retry.
                    continue;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn key(tile: usize) -> TileKey {
        TileKey {
            tlf: Arc::from("vid"),
            version: 1,
            track: 0,
            gop: 0,
            tile,
            quality: Quality::High,
        }
    }

    fn payload(tile: usize, len: usize) -> Vec<u8> {
        (0..len).map(|i| (tile * 31 + i) as u8).collect()
    }

    #[test]
    fn hit_returns_published_bytes() {
        let cache = TileCache::new(DEFAULT_BUDGET_BYTES);
        let m = Metrics::new();
        let a = cache
            .get_or_extract(&key(3), &m, &|| false, &|| Ok(payload(3, 100)))
            .unwrap();
        let b = cache
            .get_or_extract(&key(3), &m, &|| false, &|| panic!("must not re-extract"))
            .unwrap();
        assert_eq!(*a, payload(3, 100));
        assert_eq!(a, b);
        assert_eq!(m.counter(counters::TILE_CACHE_MISSES), 1);
        assert_eq!(m.counter(counters::TILE_CACHE_HITS), 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.coalesced), (1, 1, 0));
        assert_eq!(s.avoided(), 1);
    }

    #[test]
    fn distinct_keys_take_distinct_entries() {
        let cache = TileCache::new(DEFAULT_BUDGET_BYTES);
        let m = Metrics::new();
        for t in 0..4 {
            cache
                .get_or_extract(&key(t), &m, &|| false, &|| Ok(payload(t, 50)))
                .unwrap();
        }
        // Same tile at a different version is a different entry.
        let mut v2 = key(0);
        v2.version = 2;
        cache
            .get_or_extract(&v2, &m, &|| false, &|| Ok(payload(9, 50)))
            .unwrap();
        assert_eq!(cache.len(), 5);
        assert_eq!(m.counter(counters::TILE_CACHE_MISSES), 5);
        assert_eq!(m.counter(counters::TILE_CACHE_HITS), 0);
    }

    #[test]
    fn concurrent_requests_for_one_tile_extract_once() {
        const THREADS: usize = 8;
        let cache = Arc::new(TileCache::new(DEFAULT_BUDGET_BYTES));
        let m = Metrics::new();
        let barrier = Arc::new(Barrier::new(THREADS));
        let extractions = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let (cache, m, barrier, extractions) = (
                    cache.clone(),
                    m.clone(),
                    barrier.clone(),
                    extractions.clone(),
                );
                s.spawn(move || {
                    barrier.wait();
                    let got = cache
                        .get_or_extract(&key(7), &m, &|| false, &|| {
                            extractions.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window so followers park.
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            Ok(payload(7, 64))
                        })
                        .unwrap();
                    assert_eq!(*got, payload(7, 64));
                });
            }
        });
        assert_eq!(
            extractions.load(Ordering::Relaxed),
            1,
            "exactly-once extraction"
        );
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits + s.coalesced, THREADS as u64 - 1);
        assert_eq!(
            m.counter(counters::TILE_CACHE_HITS) + m.counter(counters::TILE_CACHE_COALESCED),
            THREADS as u64 - 1
        );
    }

    #[test]
    fn budget_evicts_lru_and_bounds_bytes() {
        let cache = TileCache::new(250); // fits two 100-byte tiles
        let m = Metrics::new();
        cache
            .get_or_extract(&key(0), &m, &|| false, &|| Ok(payload(0, 100)))
            .unwrap();
        cache
            .get_or_extract(&key(1), &m, &|| false, &|| Ok(payload(1, 100)))
            .unwrap();
        // Touch 0 so 1 is the LRU victim.
        cache
            .get_or_extract(&key(0), &m, &|| false, &|| panic!("hit"))
            .unwrap();
        cache
            .get_or_extract(&key(2), &m, &|| false, &|| Ok(payload(2, 100)))
            .unwrap();
        assert_eq!(m.counter(counters::TILE_CACHE_EVICTIONS), 1);
        assert!(cache.resident_bytes() <= 250);
        assert!(cache.contains(&key(0)), "recently-touched entry survived");
        assert!(!cache.contains(&key(1)), "LRU entry evicted");
        // An entry bigger than the whole budget is served, not kept.
        cache
            .get_or_extract(&key(9), &m, &|| false, &|| Ok(payload(9, 1000)))
            .unwrap();
        assert!(!cache.contains(&key(9)));
        assert!(cache.resident_bytes() <= 250);
    }

    #[test]
    fn failed_leader_hands_over_and_error_propagates() {
        let cache = Arc::new(TileCache::new(DEFAULT_BUDGET_BYTES));
        let m = Metrics::new();
        let err = cache
            .get_or_extract(&key(5), &m, &|| false, &|| {
                Err(crate::ExecError::Other("injected".into()))
            })
            .unwrap_err();
        assert!(matches!(err, crate::ExecError::Other(_)));
        // The flight was released on the error path: a new request
        // becomes leader and succeeds.
        let got = cache
            .get_or_extract(&key(5), &m, &|| false, &|| Ok(payload(5, 10)))
            .unwrap();
        assert_eq!(*got, payload(5, 10));
        assert_eq!(
            cache.stats().misses,
            1,
            "failed extraction is not a miss-count"
        );
    }

    #[test]
    fn aborted_wait_surfaces_cancelled() {
        let cache = TileCache::new(DEFAULT_BUDGET_BYTES);
        // Park a leader on the key, then join it with an abort signal.
        let k = key(11);
        let ticket = match cache.flights.join(&k, &|| false) {
            FlightJoin::Leader(t) => t,
            other => panic!("expected leadership, got {other:?}"),
        };
        let m = Metrics::new();
        let err = cache
            .get_or_extract(&k, &m, &|| true, &|| Ok(payload(11, 10)))
            .unwrap_err();
        assert!(matches!(err, crate::ExecError::Cancelled));
        drop(ticket);
    }

    #[test]
    fn stats_since_subtracts() {
        let a = TileCacheStats {
            hits: 10,
            misses: 4,
            coalesced: 2,
            evictions: 1,
        };
        let b = TileCacheStats {
            hits: 4,
            misses: 4,
            coalesced: 0,
            evictions: 0,
        };
        let d = a.since(&b);
        assert_eq!(
            d,
            TileCacheStats {
                hits: 6,
                misses: 0,
                coalesced: 2,
                evictions: 1
            }
        );
        assert!((d.hit_rate() - 8.0 / 8.0).abs() < 1e-9);
        assert_eq!(TileCacheStats::default().hit_rate(), 0.0);
    }
}
