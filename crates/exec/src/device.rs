//! Execution devices.
//!
//! LightDB's physical operators come in CPU, GPU, and FPGA variants.
//! In this reproduction the GPU is simulated by a data-parallel
//! thread-pool backend (the real system used NVENC/NVDEC and CUDA)
//! and the FPGA by a fixed-function kernel (see [`crate::fpga`]).
//! `TRANSFER` operators copy buffers between devices; the copies are
//! real `memcpy`s, so the optimizer's keep-data-on-device heuristic
//! has a measurable effect.

use lightdb_frame::Frame;

/// An execution device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    Cpu,
    Gpu,
    Fpga,
}

impl Device {
    pub fn name(self) -> &'static str {
        match self {
            Device::Cpu => "CPU",
            Device::Gpu => "GPU",
            Device::Fpga => "FPGA",
        }
    }
}

/// Number of worker threads the simulated GPU uses. Overridable via
/// `LIGHTDB_GPU_WORKERS` for experiments; malformed values warn
/// loudly (via [`lightdb_core::envknob`]) and fall back to the core
/// count instead of being silently ignored.
pub fn gpu_workers() -> usize {
    match lightdb_core::envknob::read_usize("LIGHTDB_GPU_WORKERS") {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
    }
}

/// Runs `f(index, item)` over `items` on the simulated GPU (a scoped
/// thread pool), preserving output order.
pub fn gpu_map<T: Send, U: Send>(items: Vec<T>, f: impl Fn(usize, T) -> U + Sync) -> Vec<U> {
    let workers = gpu_workers();
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let n = items.len();
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let jobs: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = parking_lot::Mutex::new(jobs);
    let results = parking_lot::Mutex::new(Vec::<(usize, U)>::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let job = queue.lock().pop();
                match job {
                    Some((i, t)) => {
                        let out = f(i, t);
                        results.lock().push((i, out));
                    }
                    None => break,
                }
            });
        }
    });
    for (i, u) in results.into_inner() {
        slots[i] = Some(u);
    }
    // lint: allow(R1): every index 0..n is pushed exactly once by the worker loop above
    #[allow(clippy::expect_used)]
    slots.into_iter().map(|s| s.expect("gpu job lost")).collect()
}

/// Splits the luma rows of a frame into `gpu_workers()` bands and
/// applies `kernel(src, dst, row_lo, row_hi)` to each band in
/// parallel — the simulated-GPU path for row-parallel `MAP` kernels.
pub fn gpu_row_kernel(
    src: &Frame,
    kernel: impl Fn(&Frame, &mut Frame, usize, usize) + Sync,
) -> Frame {
    let h = src.height();
    let workers = gpu_workers().min(h / 2).max(1);
    if workers <= 1 {
        let mut dst = src.clone();
        kernel(src, &mut dst, 0, h);
        return dst;
    }
    // Bands are 2-aligned so chroma rows split cleanly.
    let bands = lightdb_frame::kernels::row_bands(h, workers);
    let outputs = gpu_map(bands, |_, (lo, hi)| {
        // A fresh (zeroed) frame per band: the kernel writes only
        // rows [lo, hi), so cloning the source would be wasted work.
        let mut dst = Frame::new(src.width(), src.height());
        kernel(src, &mut dst, lo, hi);
        (lo, hi, dst)
    });
    // Stitch the bands back together.
    let mut out = src.clone();
    for (lo, hi, piece) in outputs {
        let w = src.width();
        out.plane_mut(lightdb_frame::PlaneKind::Luma)[lo * w..hi * w]
            .copy_from_slice(&piece.plane(lightdb_frame::PlaneKind::Luma)[lo * w..hi * w]);
        let cw = w / 2;
        let (clo, chi) = (lo / 2, hi / 2);
        for plane in [lightdb_frame::PlaneKind::Cb, lightdb_frame::PlaneKind::Cr] {
            let slice = piece.plane(plane)[clo * cw..chi * cw].to_vec();
            out.plane_mut(plane)[clo * cw..chi * cw].copy_from_slice(&slice);
        }
    }
    out
}

/// Simulates a device-to-device transfer of frame buffers: a real
/// deep copy (the PCIe cost the optimizer tries to avoid).
pub fn transfer_frames(frames: &[Frame]) -> Vec<Frame> {
    frames.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_frame::{kernels, Yuv};

    #[test]
    fn gpu_map_preserves_order() {
        let out = gpu_map((0..64).collect::<Vec<i32>>(), |_, v| v * 2);
        assert_eq!(out, (0..64).map(|v| v * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn gpu_map_empty_and_single() {
        assert!(gpu_map(Vec::<u8>::new(), |_, v| v).is_empty());
        assert_eq!(gpu_map(vec![7], |_, v| v + 1), vec![8]);
    }

    #[test]
    fn gpu_row_kernel_matches_sequential() {
        let mut f = Frame::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                f.set(x, y, Yuv::new(((x * 3 + y * 5) % 256) as u8, x as u8, y as u8));
            }
        }
        let seq = kernels::blur(&f);
        let par = gpu_row_kernel(&f, kernels::blur_rows);
        assert_eq!(seq, par);
    }

    #[test]
    fn transfer_is_a_deep_copy() {
        let f = vec![Frame::filled(8, 8, Yuv::GREY)];
        let t = transfer_frames(&f);
        assert_eq!(f, t);
    }

    #[test]
    fn device_names() {
        assert_eq!(Device::Cpu.name(), "CPU");
        assert_eq!(Device::Gpu.name(), "GPU");
        assert_eq!(Device::Fpga.name(), "FPGA");
    }
}
