//! Physical query plans.

use crate::device::Device;
use lightdb_codec::CodecKind;
use lightdb_core::algebra::{MergeFunction, VolumePredicate};
use lightdb_core::udf::{InterpFunction, MapFunction};
use lightdb_geom::{Dimension, Volume};
use std::fmt;
use std::sync::Arc;

/// The body of a compiled `SUBQUERY`: given a partition's volume,
/// produce the physical plan to run over it. The produced plan must
/// contain exactly one [`PhysicalPlan::SubqueryInput`] leaf, which the
/// executor binds to the partition's data.
/// `Send + Sync` so plans (and the chunk pipelines built from them)
/// can cross worker-thread boundaries in the parallel executor.
pub type CompiledSubquery = Arc<dyn Fn(&Volume) -> crate::Result<PhysicalPlan> + Send + Sync>;

/// A physical operator tree.
#[derive(Clone)]
pub enum PhysicalPlan {
    // ----- sources -----
    /// Scan a stored TLF. `t_frames` restricts the scan to GOPs
    /// overlapping the given frame range (pushed down through the GOP
    /// index); `spatial` restricts which sphere points are read
    /// (pushed down through the spatial R-tree when one exists).
    ScanTlf {
        name: String,
        version: Option<u64>,
        t_frames: Option<(u64, u64)>,
        spatial: Option<Volume>,
    },
    /// Parse an external encoded file into encoded chunks.
    DecodeFile { path: String, codec_hint: Option<CodecKind> },
    /// The distinguished null TLF Ω.
    Omega { volume: Volume },
    /// Placeholder bound to the partition inside a subquery body.
    SubqueryInput,

    // ----- domain conversion -----
    /// Decode encoded chunks into device frames.
    ToFrames { input: Box<PhysicalPlan>, device: Device },
    /// Encode device frames into encoded chunks.
    FromFrames { input: Box<PhysicalPlan>, device: Device, codec: CodecKind, qp: u8 },
    /// Copy decoded frames between devices.
    Transfer { input: Box<PhysicalPlan>, to: Device },

    // ----- homomorphic (encoded-domain) operators -----
    /// Pass through only whole GOPs overlapping a frame range.
    GopSelect { input: Box<PhysicalPlan>, t_frames: (u64, u64) },
    /// Concatenate encoded streams GOP-wise.
    GopUnion { inputs: Vec<PhysicalPlan> },
    /// Extract single tiles from encoded chunks without decoding.
    TileSelect { input: Box<PhysicalPlan>, tiles: Vec<usize> },
    /// Stitch aligned single-tile encoded chunks into a tiled stream.
    TileUnion { inputs: Vec<PhysicalPlan>, cols: usize, rows: usize },
    /// Extract each GOP's keyframe without decoding (extension; the
    /// paper lists keyframe selection as planned future HOp work).
    KeyframeSelect { input: Box<PhysicalPlan> },

    // ----- decoded-domain operators -----
    SelectFrames { input: Box<PhysicalPlan>, predicate: VolumePredicate, device: Device },
    MapFrames { input: Box<PhysicalPlan>, f: MapFunction, device: Device },
    InterpolateFrames { input: Box<PhysicalPlan>, f: InterpFunction, device: Device },
    DiscretizeFrames { input: Box<PhysicalPlan>, steps: Vec<(Dimension, f64)>, device: Device },
    PartitionChunks { input: Box<PhysicalPlan>, spec: Vec<(Dimension, f64)> },
    FlattenChunks { input: Box<PhysicalPlan> },
    UnionFrames { inputs: Vec<PhysicalPlan>, merge: MergeFunction, device: Device },
    TranslateChunks { input: Box<PhysicalPlan>, dx: f64, dy: f64, dz: f64, dt: f64 },
    RotateFrames { input: Box<PhysicalPlan>, dtheta: f64, dphi: f64, device: Device },
    Subquery { input: Box<PhysicalPlan>, body: CompiledSubquery, label: String },

    // ----- sinks & DDL -----
    Store {
        input: Box<PhysicalPlan>,
        name: String,
        /// Serialised view subgraph recorded alongside the stored
        /// TLF when the query's continuous suffix was peeled off
        /// (partially materialised views, Section 4.1).
        view_subgraph: Option<Vec<u8>>,
    },
    CreateTlf { name: String },
    DropTlf { name: String },
    CreateIndex { name: String, dims: Vec<Dimension> },
    DropIndex { name: String, dims: Vec<Dimension> },
}

impl PhysicalPlan {
    /// Children of this node.
    pub fn inputs(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::ScanTlf { .. }
            | PhysicalPlan::DecodeFile { .. }
            | PhysicalPlan::Omega { .. }
            | PhysicalPlan::SubqueryInput
            | PhysicalPlan::CreateTlf { .. }
            | PhysicalPlan::DropTlf { .. }
            | PhysicalPlan::CreateIndex { .. }
            | PhysicalPlan::DropIndex { .. } => vec![],
            PhysicalPlan::ToFrames { input, .. }
            | PhysicalPlan::FromFrames { input, .. }
            | PhysicalPlan::Transfer { input, .. }
            | PhysicalPlan::GopSelect { input, .. }
            | PhysicalPlan::KeyframeSelect { input }
            | PhysicalPlan::TileSelect { input, .. }
            | PhysicalPlan::SelectFrames { input, .. }
            | PhysicalPlan::MapFrames { input, .. }
            | PhysicalPlan::InterpolateFrames { input, .. }
            | PhysicalPlan::DiscretizeFrames { input, .. }
            | PhysicalPlan::PartitionChunks { input, .. }
            | PhysicalPlan::FlattenChunks { input }
            | PhysicalPlan::TranslateChunks { input, .. }
            | PhysicalPlan::RotateFrames { input, .. }
            | PhysicalPlan::Subquery { input, .. }
            | PhysicalPlan::Store { input, .. } => vec![input],
            PhysicalPlan::GopUnion { inputs }
            | PhysicalPlan::TileUnion { inputs, .. }
            | PhysicalPlan::UnionFrames { inputs, .. } => inputs.iter().collect(),
        }
    }

    /// Operator display name (matches the paper's physical-operator
    /// vocabulary; homomorphic operators are ALL-CAPS single words).
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalPlan::ScanTlf { .. } => "SCAN",
            PhysicalPlan::DecodeFile { .. } => "DECODEFILE",
            PhysicalPlan::Omega { .. } => "OMEGA",
            PhysicalPlan::SubqueryInput => "SUBQUERYINPUT",
            PhysicalPlan::ToFrames { .. } => "DECODE",
            PhysicalPlan::FromFrames { .. } => "ENCODE",
            PhysicalPlan::Transfer { .. } => "TRANSFER",
            PhysicalPlan::GopSelect { .. } => "GOPSELECT",
            PhysicalPlan::GopUnion { .. } => "GOPUNION",
            PhysicalPlan::TileSelect { .. } => "TILESELECT",
            PhysicalPlan::TileUnion { .. } => "TILEUNION",
            PhysicalPlan::KeyframeSelect { .. } => "KEYFRAMESELECT",
            PhysicalPlan::SelectFrames { .. } => "SELECT",
            PhysicalPlan::MapFrames { .. } => "MAP",
            PhysicalPlan::InterpolateFrames { .. } => "INTERPOLATE",
            PhysicalPlan::DiscretizeFrames { .. } => "DISCRETIZE",
            PhysicalPlan::PartitionChunks { .. } => "PARTITION",
            PhysicalPlan::FlattenChunks { .. } => "FLATTEN",
            PhysicalPlan::UnionFrames { .. } => "UNION",
            PhysicalPlan::TranslateChunks { .. } => "TRANSLATE",
            PhysicalPlan::RotateFrames { .. } => "ROTATE",
            PhysicalPlan::Subquery { .. } => "SUBQUERY",
            PhysicalPlan::Store { .. } => "STORE",
            PhysicalPlan::CreateTlf { .. } => "CREATE",
            PhysicalPlan::DropTlf { .. } => "DROP",
            PhysicalPlan::CreateIndex { .. } => "CREATEINDEX",
            PhysicalPlan::DropIndex { .. } => "DROPINDEX",
        }
    }

    /// The device annotation shown in plan listings.
    pub fn device(&self) -> Option<Device> {
        match self {
            PhysicalPlan::ToFrames { device, .. }
            | PhysicalPlan::FromFrames { device, .. }
            | PhysicalPlan::SelectFrames { device, .. }
            | PhysicalPlan::MapFrames { device, .. }
            | PhysicalPlan::InterpolateFrames { device, .. }
            | PhysicalPlan::DiscretizeFrames { device, .. }
            | PhysicalPlan::UnionFrames { device, .. }
            | PhysicalPlan::RotateFrames { device, .. } => Some(*device),
            PhysicalPlan::Transfer { to, .. } => Some(*to),
            _ => None,
        }
    }

    /// Number of operators in the plan (subquery bodies excluded —
    /// they are compiled per partition at run time).
    pub fn len(&self) -> usize {
        1 + self.inputs().iter().map(|p| p.len()).sum::<usize>()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if any operator in the tree satisfies `pred`.
    pub fn any(&self, pred: &impl Fn(&PhysicalPlan) -> bool) -> bool {
        pred(self) || self.inputs().iter().any(|p| p.any(pred))
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        for _ in 0..depth {
            write!(f, "  ")?;
        }
        write!(f, "{}", self.name())?;
        if let Some(d) = self.device() {
            write!(f, " [{}]", d.name())?;
        }
        match self {
            PhysicalPlan::ScanTlf { name, t_frames, spatial, .. } => {
                write!(f, "({name}")?;
                if let Some((a, b)) = t_frames {
                    write!(f, ", frames {a}..={b}")?;
                }
                if spatial.is_some() {
                    write!(f, ", spatial-filtered")?;
                }
                write!(f, ")")?;
            }
            PhysicalPlan::DecodeFile { path, .. } => write!(f, "({path})")?,
            PhysicalPlan::FromFrames { codec, qp, .. } => {
                write!(f, "({}, qp={qp})", codec.name())?
            }
            PhysicalPlan::GopSelect { t_frames, .. } => {
                write!(f, "(frames {}..={})", t_frames.0, t_frames.1)?
            }
            PhysicalPlan::TileSelect { tiles, .. } => write!(f, "({tiles:?})")?,
            PhysicalPlan::TileUnion { cols, rows, .. } => write!(f, "({cols}×{rows})")?,
            PhysicalPlan::SelectFrames { predicate, .. } => write!(f, "({predicate})")?,
            PhysicalPlan::MapFrames { f: func, .. } => write!(f, "({})", func.name())?,
            PhysicalPlan::InterpolateFrames { f: func, .. } => write!(f, "({})", func.name())?,
            PhysicalPlan::Subquery { label, .. } => write!(f, "({label})")?,
            PhysicalPlan::Store { name, .. } => write!(f, "({name})")?,
            _ => {}
        }
        writeln!(f)?;
        for i in self.inputs() {
            i.fmt_indented(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

impl fmt::Debug for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

// The parallel executor moves plans (and closures built over them)
// across scoped worker threads; keep that property checked at
// compile time.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PhysicalPlan>();
    assert_send_sync::<CompiledSubquery>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_devices_and_structure() {
        let plan = PhysicalPlan::MapFrames {
            input: Box::new(PhysicalPlan::ToFrames {
                input: Box::new(PhysicalPlan::ScanTlf {
                    name: "demo".into(),
                    version: None,
                    t_frames: Some((0, 29)),
                    spatial: None,
                }),
                device: Device::Gpu,
            }),
            f: MapFunction::Builtin(lightdb_core::udf::BuiltinMap::Blur),
            device: Device::Gpu,
        };
        let s = plan.to_string();
        assert!(s.contains("MAP [GPU](BLUR)"), "{s}");
        assert!(s.contains("DECODE [GPU]"), "{s}");
        assert!(s.contains("SCAN(demo, frames 0..=29)"), "{s}");
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn any_finds_operators() {
        let plan = PhysicalPlan::GopSelect {
            input: Box::new(PhysicalPlan::ScanTlf {
                name: "x".into(),
                version: None,
                t_frames: None,
                spatial: None,
            }),
            t_frames: (0, 10),
        };
        assert!(plan.any(&|p| matches!(p, PhysicalPlan::GopSelect { .. })));
        assert!(!plan.any(&|p| matches!(p, PhysicalPlan::TileUnion { .. })));
    }
}
