//! # lightdb-exec
//!
//! LightDB's physical algebra and executor.
//!
//! Queries execute as **chunk pipelines**: data flows between physical
//! operators one GOP-sized chunk at a time (per spatial/angular part),
//! so a 90-second 4K query never materialises more than a GOP of
//! decoded frames per pipeline stage. Chunks are either *encoded*
//! (GOP bytes plus stream parameters) or *decoded* (device-resident
//! frames); operators declare which domain they work in.
//!
//! Three device backends exist:
//!
//! * **CPU** — sequential reference implementations;
//! * **GPU (simulated)** — a thread-pool backend that parallelises
//!   kernels across rows/tiles/parts and uses a hardware-encoder-style
//!   fast motion search (standing in for NVENC/NVDEC + CUDA);
//! * **FPGA (simulated)** — a fixed-function integer depth-estimation
//!   kernel (standing in for the paper's Kintex-7 bilateral solver).
//!
//! The **homomorphic operators** (`GOPSELECT`, `GOPUNION`,
//! `TILESELECT`, `TILEUNION`) transform encoded chunks byte-wise,
//! without any decode — the source of the paper's up-to-500×
//! micro-benchmark wins.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod chunk;
pub mod device;
pub mod executor;
pub mod fpga;
pub mod frameops;
pub mod hops;
pub mod metrics;
pub mod parallel;
pub mod plan;
pub mod query_ctx;
pub mod sharedscan;
pub mod sources;
pub mod tilecache;

pub use chunk::{Chunk, ChunkPayload, StreamInfo};
pub use device::Device;
pub use executor::{Executor, QueryOutput};
pub use metrics::Metrics;
pub use parallel::Parallelism;
pub use plan::PhysicalPlan;
pub use query_ctx::{CancelToken, QueryCtx};

use lightdb_core::ErrorClass;

/// What a scan does when a GOP fails checksum verification or cannot
/// be parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPolicy {
    /// Propagate the error; the query fails (the default).
    #[default]
    Fail,
    /// Skip up to `max_skipped` damaged GOPs, degrading output
    /// instead of killing the query. Skips are counted in
    /// [`metrics::counters::SKIPPED_GOPS`]; exceeding the budget
    /// fails the query with the underlying error.
    SkipCorruptGops { max_skipped: usize },
    /// Serve up to `max_degraded` damaged GOPs as well-formed
    /// lower-fidelity substitutes (coarse-quantised held frames with
    /// the damaged GOP's frame count and stream parameters) instead
    /// of dropping them — output shape is always preserved.
    /// Substitutions are counted in
    /// [`metrics::counters::DEGRADED_GOPS`]; exceeding the budget
    /// fails the query with the underlying error.
    Degrade { max_degraded: usize },
}

impl ExecError {
    /// True for errors that mean one piece of stored data is damaged
    /// (checksum mismatch, unparsable GOP) rather than the query
    /// being impossible — the class [`ReadPolicy::SkipCorruptGops`]
    /// may skip over and [`ReadPolicy::Degrade`] may substitute.
    pub fn is_data_corruption(&self) -> bool {
        match self {
            ExecError::Storage(e) => e.is_data_corruption(),
            ExecError::Codec(_) => true,
            _ => false,
        }
    }

    /// Maps this error onto the engine-wide taxonomy. Callers decide
    /// retry/skip/shed/abort against the class, not the variant.
    pub fn classify(&self) -> ErrorClass {
        match self {
            ExecError::Storage(e) => e.classify(),
            ExecError::Codec(_) => ErrorClass::Corrupt,
            ExecError::Io(e) => ErrorClass::of_io_kind(e.kind()),
            ExecError::Cancelled => ErrorClass::Cancelled,
            ExecError::DeadlineExceeded => ErrorClass::DeadlineExceeded,
            ExecError::Overloaded(_) => ErrorClass::Overloaded,
            ExecError::Unavailable(_) => ErrorClass::Unavailable,
            ExecError::Core(_)
            | ExecError::Domain(_)
            | ExecError::Align(_)
            | ExecError::Other(_) => ErrorClass::Fatal,
        }
    }
}

/// Errors raised during physical execution.
#[derive(Debug)]
pub enum ExecError {
    Storage(lightdb_storage::StorageError),
    Codec(lightdb_codec::CodecError),
    Core(lightdb_core::CoreError),
    Io(std::io::Error),
    /// The plan asked an operator to process data in the wrong domain
    /// or on the wrong device.
    Domain(String),
    /// Inputs to an n-ary operator are misaligned or incompatible.
    Align(String),
    /// The query's cancellation token fired (see
    /// [`QueryCtx::cancel_token`]).
    Cancelled,
    /// The query's deadline expired before it finished.
    DeadlineExceeded,
    /// Admission control refused the query before it held any
    /// resources (working set over budget, or backpressure timeout).
    Overloaded(String),
    /// A remote fragment's worker is down or partitioned away and no
    /// replica could serve it. The data is intact — just unreachable.
    Unavailable(String),
    /// Anything else.
    Other(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage: {e}"),
            ExecError::Codec(e) => write!(f, "codec: {e}"),
            ExecError::Core(e) => write!(f, "core: {e}"),
            ExecError::Io(e) => write!(f, "io: {e}"),
            ExecError::Domain(m) => write!(f, "domain: {m}"),
            ExecError::Align(m) => write!(f, "alignment: {m}"),
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ExecError::Overloaded(m) => write!(f, "overloaded: {m}"),
            ExecError::Unavailable(m) => write!(f, "unavailable: {m}"),
            ExecError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<lightdb_storage::StorageError> for ExecError {
    fn from(e: lightdb_storage::StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<lightdb_codec::CodecError> for ExecError {
    fn from(e: lightdb_codec::CodecError) -> Self {
        ExecError::Codec(e)
    }
}

impl From<lightdb_core::CoreError> for ExecError {
    fn from(e: lightdb_core::CoreError) -> Self {
        ExecError::Core(e)
    }
}

impl From<std::io::Error> for ExecError {
    fn from(e: std::io::Error) -> Self {
        ExecError::Io(e)
    }
}

impl From<lightdb_storage::AdmitError> for ExecError {
    fn from(e: lightdb_storage::AdmitError) -> Self {
        match e {
            // Callers with a QueryCtx refine `Aborted` into the
            // precise Cancelled/DeadlineExceeded via `ctx.check()`
            // before converting; a bare conversion reports Cancelled.
            lightdb_storage::AdmitError::Aborted => ExecError::Cancelled,
            e @ lightdb_storage::AdmitError::Overloaded { .. } => {
                ExecError::Overloaded(e.to_string())
            }
        }
    }
}

pub type Result<T> = std::result::Result<T, ExecError>;

/// A pull-based stream of chunks.
pub type ChunkStream = Box<dyn Iterator<Item = Result<Chunk>>>;
