//! Chunk sources: catalog scans and external-file decodes.

use crate::chunk::{Chunk, ChunkPayload, SlabInfo, StreamInfo};
use crate::metrics::{counters, Metrics};
use crate::query_ctx::QueryCtx;
use crate::{ChunkStream, ExecError, ReadPolicy, Result};
use lightdb_codec::{EncodedGop, Encoder, EncoderConfig, SequenceHeader, VideoStream};
use lightdb_container::{GopIndexEntry, TlfBody, TlfDescriptor, Track, TrackRole};
use lightdb_geom::{Dimension, Interval, Point3, Volume};
use lightdb_index::persist::load_rtree;
use lightdb_index::rtree::Rect3;
use lightdb_index::IndexKey;
use lightdb_storage::bufferpool::GopKey;
use lightdb_storage::{BufferPool, Catalog, MediaStore, StoredTlf};
use std::fs;
use std::io::Read;
use std::sync::Arc;

/// One scannable stream resolved from a TLF descriptor: a part with
/// its track, header, GOP entries, and geometry.
struct ScanPart {
    part: usize,
    header: SequenceHeader,
    media_path: String,
    entries: Vec<GopIndexEntry>,
    volume: Volume,
    info: StreamInfo,
}

/// `SCAN`: reads a stored TLF as encoded chunks, using the GOP index
/// for temporal pushdown (only the needed byte ranges are read) and a
/// spatial R-tree — when one exists — for point pushdown across
/// multi-sphere TLFs. `read_policy` governs what happens when a GOP
/// fails checksum verification or cannot be parsed.
#[allow(clippy::too_many_arguments)]
pub fn scan_tlf(
    catalog: &Catalog,
    pool: &Arc<BufferPool>,
    name: &str,
    version: Option<u64>,
    t_frames: Option<(u64, u64)>,
    spatial: Option<Volume>,
    use_spatial_index: bool,
    read_policy: ReadPolicy,
    metrics: Metrics,
    ctx: QueryCtx,
    owner: Option<u64>,
) -> Result<ChunkStream> {
    ctx.check()?;
    let stored = metrics.time("SCAN", || catalog.read(name, version))?;
    if let Some(f) = pool.get_metadata(name, stored.version) {
        debug_assert_eq!(f.version, stored.version);
    } else {
        pool.put_metadata(name, stored.version, stored.metadata.clone());
    }
    let media = stored.media();
    let mut parts = Vec::new();
    let spatial_ids = if use_spatial_index {
        spatial_pushdown(catalog, pool, &stored, &spatial)?
    } else {
        None // fall back to the linear point filter
    };
    resolve_parts(&stored, &media, &stored.metadata.tlf, t_frames, &spatial, &spatial_ids, &mut parts)?;
    Ok(stream_parts(parts, media, pool.clone(), read_policy, metrics, ctx, owner))
}

/// Looks up the spatial index (if any) and returns the matching point
/// ordinals, or `None` when no index exists (fall back to linear
/// filtering inside `resolve_parts`).
fn spatial_pushdown(
    catalog: &Catalog,
    pool: &Arc<BufferPool>,
    stored: &StoredTlf,
    spatial: &Option<Volume>,
) -> Result<Option<Vec<u64>>> {
    let Some(vol) = spatial else { return Ok(None) };
    let tree = match pool.get_rtree(&stored.name, stored.version) {
        Some(t) => t,
        None => {
            let key = IndexKey::new(stored.version, Dimension::SPATIAL.to_vec());
            let Some(bytes) = catalog.read_aux_file(&stored.name, &key.file_name())? else {
                return Ok(None);
            };
            let Some(tree) = load_rtree(&bytes) else {
                return Ok(None); // corrupt index: ignore it
            };
            let tree = Arc::new(tree);
            pool.put_rtree(&stored.name, stored.version, tree.clone());
            tree
        }
    };
    let rect = Rect3::from_volume(vol);
    let mut ids: Vec<u64> = tree.search(&rect).into_iter().copied().collect();
    ids.sort_unstable();
    ids.dedup();
    Ok(Some(ids))
}

fn resolve_parts(
    stored: &StoredTlf,
    media: &MediaStore,
    tlf: &TlfDescriptor,
    t_frames: Option<(u64, u64)>,
    spatial: &Option<Volume>,
    spatial_ids: &Option<Vec<u64>>,
    out: &mut Vec<ScanPart>,
) -> Result<()> {
    match &tlf.body {
        TlfBody::Sphere360 { points } => {
            for (pi, p) in points.iter().enumerate() {
                // Spatial pushdown: indexed ids when available, else a
                // linear point-in-volume check.
                if let Some(ids) = spatial_ids {
                    // `ids` is sorted (spatial_pushdown sorts it).
                    if ids.binary_search(&(pi as u64)).is_err() {
                        continue;
                    }
                } else if let Some(v) = spatial {
                    if !v.x().contains(p.position.x)
                        || !v.y().contains(p.position.y)
                        || !v.z().contains(p.position.z)
                    {
                        continue;
                    }
                }
                let track = track_of(stored, p.video_track)?;
                let header = read_stream_header(media, &track.media_path)?;
                let entries = filter_entries(&track.gop_index, t_frames);
                let volume = Volume::sphere_at(
                    p.position.x,
                    p.position.y,
                    p.position.z,
                    tlf.volume.t(),
                );
                out.push(ScanPart {
                    part: out.len(),
                    header,
                    media_path: track.media_path.clone(),
                    entries,
                    volume,
                    info: StreamInfo {
                        projection: track.projection,
                        position: p.position,
                        fps: header.fps,
                        slab: None,
                    },
                });
            }
        }
        TlfBody::Slab { slabs } => {
            for s in slabs {
                let track = track_of(stored, s.track)?;
                let header = read_stream_header(media, &track.media_path)?;
                let entries = filter_entries(&track.gop_index, t_frames);
                let centre = Point3::new(
                    (s.uv_min.x + s.uv_max.x) / 2.0,
                    (s.uv_min.y + s.uv_max.y) / 2.0,
                    (s.uv_min.z + s.uv_max.z) / 2.0,
                );
                if let Some(v) = spatial {
                    // A slab is relevant when its uv extent intersects.
                    let xiv = Interval::new(s.uv_min.x, s.uv_max.x);
                    let yiv = Interval::new(s.uv_min.y, s.uv_max.y);
                    if v.x().intersect(&xiv).is_none() || v.y().intersect(&yiv).is_none() {
                        continue;
                    }
                }
                let volume = tlf
                    .volume
                    .with(Dimension::X, Interval::new(s.uv_min.x, s.uv_max.x))
                    .with(Dimension::Y, Interval::new(s.uv_min.y, s.uv_max.y));
                out.push(ScanPart {
                    part: out.len(),
                    header,
                    media_path: track.media_path.clone(),
                    entries,
                    volume,
                    info: StreamInfo {
                        projection: track.projection,
                        position: centre,
                        fps: header.fps,
                        slab: Some(SlabInfo {
                            nu: s.uv_samples.0 as usize,
                            nv: s.uv_samples.1 as usize,
                            uv_min: s.uv_min,
                            uv_max: s.uv_max,
                        }),
                    },
                });
            }
        }
        TlfBody::Composite { children } => {
            for c in children {
                resolve_parts(stored, media, c, t_frames, spatial, spatial_ids, out)?;
            }
        }
    }
    Ok(())
}

fn track_of(stored: &StoredTlf, index: u32) -> Result<&Track> {
    stored
        .metadata
        .tracks
        .get(index as usize)
        .filter(|t| t.role == TrackRole::Video)
        .ok_or_else(|| ExecError::Other(format!("TLF references missing video track {index}")))
}

fn read_stream_header(media: &MediaStore, path: &str) -> Result<SequenceHeader> {
    let mut f = fs::File::open(media.path_of(path))?;
    let mut buf = [0u8; 64];
    let n = f.read(&mut buf)?;
    Ok(VideoStream::parse_header_prefix(&buf[..n])?)
}

fn filter_entries(entries: &[GopIndexEntry], t_frames: Option<(u64, u64)>) -> Vec<GopIndexEntry> {
    match t_frames {
        None => entries.to_vec(),
        Some((first, last)) => entries
            .iter()
            .filter(|e| e.start_frame <= last && e.start_frame + e.frame_count > first)
            .copied()
            .collect(),
    }
}

/// Quantiser for substitute GOPs served under [`ReadPolicy::Degrade`]
/// — deliberately coarse: the content is a placeholder, so spend as
/// few bytes on it as possible.
const DEGRADE_QP: u8 = 50;

/// Builds a well-formed lower-fidelity stand-in for a damaged GOP:
/// `frame_count` held mid-grey frames encoded at [`DEGRADE_QP`] with
/// the damaged stream's exact parameters, so downstream assembly
/// (which insists on matching codec/dimensions/fps/grid) accepts it.
fn substitute_gop(header: &SequenceHeader, frame_count: usize) -> Result<EncodedGop> {
    let n = frame_count.max(1);
    let frames = vec![
        lightdb_frame::Frame::filled(header.width, header.height, lightdb_frame::Yuv::GREY);
        n
    ];
    let stream = Encoder::new(EncoderConfig {
        codec: header.codec,
        qp: DEGRADE_QP,
        grid: header.grid,
        gop_length: n,
        fps: header.fps,
    })?
    .encode(&frames)?;
    stream
        .gops
        .into_iter()
        .next()
        .ok_or_else(|| ExecError::Other("substitute encode produced no GOP".into()))
}

/// Lazily streams a scan's parts in t-major order, pulling GOP bytes
/// through the buffer pool. Under
/// [`ReadPolicy::SkipCorruptGops`], damaged GOPs (checksum or parse
/// failures) are skipped — up to the budget — and counted in
/// [`counters::SKIPPED_GOPS`] instead of failing the stream; under
/// [`ReadPolicy::Degrade`] they are replaced by well-formed
/// lower-fidelity substitutes counted in
/// [`counters::DEGRADED_GOPS`]. The query context is checked before
/// every GOP and polled while waiting on in-flight pool loads, so a
/// cancelled scan stops within one GOP.
#[allow(clippy::too_many_arguments)]
fn stream_parts(
    parts: Vec<ScanPart>,
    media: MediaStore,
    pool: Arc<BufferPool>,
    read_policy: ReadPolicy,
    metrics: Metrics,
    ctx: QueryCtx,
    owner: Option<u64>,
) -> ChunkStream {
    // Flatten (t, part) pairs in t-major order.
    let mut jobs: Vec<(usize, usize)> = Vec::new(); // (part idx, entry idx)
    let max_entries = parts.iter().map(|p| p.entries.len()).max().unwrap_or(0);
    for e in 0..max_entries {
        for (pi, p) in parts.iter().enumerate() {
            if e < p.entries.len() {
                jobs.push((pi, e));
            }
        }
    }
    let mut jobs = jobs.into_iter();
    // Damaged GOPs already handled, keyed by (media file, start
    // frame): a GOP reached through several parts (points sharing a
    // track) or re-read after a pool eviction must count against the
    // budget — and in the counter — exactly once.
    let mut damaged: std::collections::HashSet<(String, u64)> = std::collections::HashSet::new();
    Box::new(std::iter::from_fn(move || {
        loop {
            let (pi, ei) = jobs.next()?;
            let p = &parts[pi];
            let entry = p.entries[ei];
            if let Err(e) = ctx.check() {
                return Some(Err(e));
            }
            let r = metrics.time("SCAN", || -> Result<Chunk> {
                let key = GopKey { media: media.path_of(&p.media_path).display().to_string(), gop: entry.start_frame };
                let bytes = pool.get_gop_watch(&key, owner, &|| ctx.should_abort(), || {
                    media.read_gop_bytes(&p.media_path, &entry)
                })?;
                let gop = EncodedGop::from_bytes(&bytes)?;
                let fps = p.header.fps as f64;
                let t0 = p.volume.t().lo() + entry.start_frame as f64 / fps;
                let t1 = t0 + entry.frame_count as f64 / fps;
                let volume = p.volume.with(Dimension::T, Interval::new(t0, t1));
                Ok(Chunk {
                    t_index: (entry.start_frame as usize) / p.header.gop_length.max(1),
                    part: p.part,
                    volume,
                    info: p.info,
                    payload: ChunkPayload::Encoded { header: p.header, gop },
                })
            });
            match r {
                Err(e) => {
                    // An abort observed while waiting on the pool
                    // surfaces as an opaque io error; re-check the
                    // context so callers see the classified
                    // Cancelled / DeadlineExceeded instead.
                    if let Err(ce) = ctx.check() {
                        return Some(Err(ce));
                    }
                    if !e.is_data_corruption() {
                        return Some(Err(e));
                    }
                    let gop_id = (p.media_path.clone(), entry.start_frame);
                    match read_policy {
                        ReadPolicy::Fail => return Some(Err(e)),
                        ReadPolicy::SkipCorruptGops { max_skipped } => {
                            if damaged.contains(&gop_id) {
                                // Reached again through another part:
                                // already counted.
                                continue;
                            }
                            if damaged.len() >= max_skipped {
                                return Some(Err(e)); // budget exhausted
                            }
                            damaged.insert(gop_id);
                            metrics.bump(counters::SKIPPED_GOPS);
                            continue;
                        }
                        ReadPolicy::Degrade { max_degraded } => {
                            if !damaged.contains(&gop_id) {
                                if damaged.len() >= max_degraded {
                                    return Some(Err(e)); // budget exhausted
                                }
                                damaged.insert(gop_id);
                                metrics.bump(counters::DEGRADED_GOPS);
                            }
                            // Unlike a skip, every part that reaches
                            // the damaged GOP still gets a chunk —
                            // output shape is preserved.
                            let gop = match substitute_gop(&p.header, entry.frame_count as usize) {
                                Err(se) => return Some(Err(se)),
                                Ok(g) => g,
                            };
                            let fps = p.header.fps as f64;
                            let t0 = p.volume.t().lo() + entry.start_frame as f64 / fps;
                            let t1 = t0 + entry.frame_count as f64 / fps;
                            let volume = p.volume.with(Dimension::T, Interval::new(t0, t1));
                            return Some(Ok(Chunk {
                                t_index: (entry.start_frame as usize)
                                    / p.header.gop_length.max(1),
                                part: p.part,
                                volume,
                                info: p.info,
                                payload: ChunkPayload::Encoded { header: p.header, gop },
                            }));
                        }
                    }
                }
                ok => return Some(ok),
            }
        }
    }))
}

/// `DECODE(file)`: ingest an external encoded file as encoded chunks.
pub fn decode_file(path: &str, metrics: Metrics) -> Result<ChunkStream> {
    let stream = metrics.time("SCAN", || -> Result<VideoStream> {
        let bytes = fs::read(path)?;
        Ok(VideoStream::from_bytes(&bytes)?)
    })?;
    Ok(stream_from_video(stream))
}

/// Wraps an in-memory stream as chunks (used by `decode_file`, tests,
/// and the baselines).
pub fn stream_from_video(stream: VideoStream) -> ChunkStream {
    let header = stream.header;
    let fps = header.fps as f64;
    let mut start_frame = 0u64;
    let chunks: Vec<Chunk> = stream
        .gops
        .into_iter()
        .enumerate()
        .map(|(i, gop)| {
            let t0 = start_frame as f64 / fps;
            let t1 = t0 + gop.frame_count() as f64 / fps;
            start_frame += gop.frame_count() as u64;
            Chunk {
                t_index: i,
                part: 0,
                volume: Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(t0, t1)),
                info: StreamInfo::origin(header.fps),
                payload: ChunkPayload::Encoded { header, gop },
            }
        })
        .collect();
    Box::new(chunks.into_iter().map(Ok))
}

/// The distinguished TLF Ω: defined everywhere, null everywhere — an
/// empty chunk stream.
pub fn omega() -> ChunkStream {
    Box::new(std::iter::empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_codec::{Encoder, EncoderConfig};
    use lightdb_container::SpherePoint;
    use lightdb_frame::{Frame, Yuv};
    use lightdb_geom::projection::ProjectionKind;
    use lightdb_storage::catalog::TrackWrite;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lightdb-src-{tag}-{}", std::process::id()));
        match fs::remove_dir_all(&d) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => panic!("failed to clear temp dir {}: {e}", d.display()),
        }
        d
    }

    fn store_demo(catalog: &Catalog, name: &str, seconds: usize) {
        let frames: Vec<Frame> = (0..seconds * 10)
            .map(|i| Frame::filled(32, 32, Yuv::new((i * 3 % 250) as u8, 128, 128)))
            .collect();
        let stream = Encoder::new(EncoderConfig {
            gop_length: 10,
            fps: 10,
            qp: 35,
            ..Default::default()
        })
        .unwrap()
        .encode(&frames)
        .unwrap();
        let tlf = TlfDescriptor::single_sphere(
            Point3::ORIGIN,
            Interval::new(0.0, seconds as f64),
            0,
        );
        catalog
            .store(
                name,
                vec![TrackWrite::New {
                    role: TrackRole::Video,
                    projection: ProjectionKind::Equirectangular,
                    stream,
                }],
                tlf,
            )
            .unwrap();
    }

    #[test]
    fn scan_streams_all_gops_in_order() {
        let catalog = Catalog::open(temp_root("scanall")).unwrap();
        store_demo(&catalog, "demo", 3);
        let pool = Arc::new(BufferPool::new(1 << 20));
        let chunks: Vec<Chunk> =
            scan_tlf(&catalog, &pool, "demo", None, None, None, true, ReadPolicy::default(), Metrics::new(), QueryCtx::unbounded(), None)
                .unwrap()
                .map(|c| c.unwrap())
                .collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].t_index, 0);
        assert_eq!(chunks[2].t_index, 2);
        assert!((chunks[2].volume.t().lo() - 2.0).abs() < 1e-9);
        fs::remove_dir_all(catalog.root()).unwrap();
    }

    #[test]
    fn scan_with_temporal_pushdown_reads_one_gop() {
        let catalog = Catalog::open(temp_root("pushdown")).unwrap();
        store_demo(&catalog, "demo", 5);
        let pool = Arc::new(BufferPool::new(1 << 20));
        // Frames 30..=39 live in GOP 3 only.
        let chunks: Vec<Chunk> =
            scan_tlf(&catalog, &pool, "demo", None, Some((30, 39)), None, true, ReadPolicy::default(), Metrics::new(), QueryCtx::unbounded(), None)
                .unwrap()
                .map(|c| c.unwrap())
                .collect();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].t_index, 3);
        // Exactly one GOP was pulled through the pool.
        assert_eq!(pool.stats().misses, 1);
        fs::remove_dir_all(catalog.root()).unwrap();
    }

    #[test]
    fn repeated_scans_hit_buffer_pool() {
        let catalog = Catalog::open(temp_root("poolhit")).unwrap();
        store_demo(&catalog, "demo", 2);
        let pool = Arc::new(BufferPool::new(1 << 20));
        for _ in 0..3 {
            let n = scan_tlf(&catalog, &pool, "demo", None, None, None, true, ReadPolicy::default(), Metrics::new(), QueryCtx::unbounded(), None)
                .unwrap()
                .count();
            assert_eq!(n, 2);
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 4);
        fs::remove_dir_all(catalog.root()).unwrap();
    }

    #[test]
    fn multi_point_scan_filters_spatially_without_index() {
        let catalog = Catalog::open(temp_root("multipoint")).unwrap();
        // Two spheres at different points sharing one track each.
        let frames = vec![Frame::filled(32, 32, Yuv::GREY); 2];
        let mk = || {
            Encoder::new(EncoderConfig { gop_length: 2, fps: 2, qp: 40, ..Default::default() })
                .unwrap()
                .encode(&frames)
                .unwrap()
        };
        let tlf = TlfDescriptor {
            volume: Volume::everywhere(),
            streaming: false,
            partition_spec: vec![],
            view_subgraph: None,
            body: TlfBody::Sphere360 {
                points: vec![
                    SpherePoint {
                        position: Point3::new(0.0, 0.0, 0.0),
                        video_track: 0,
                        depth_track: None,
                        right_eye_track: None,
                    },
                    SpherePoint {
                        position: Point3::new(10.0, 0.0, 0.0),
                        video_track: 1,
                        depth_track: None,
                        right_eye_track: None,
                    },
                ],
            },
        };
        catalog
            .store(
                "two",
                vec![
                    TrackWrite::New {
                        role: TrackRole::Video,
                        projection: ProjectionKind::Equirectangular,
                        stream: mk(),
                    },
                    TrackWrite::New {
                        role: TrackRole::Video,
                        projection: ProjectionKind::Equirectangular,
                        stream: mk(),
                    },
                ],
                tlf,
            )
            .unwrap();
        let pool = Arc::new(BufferPool::new(1 << 20));
        let all: Vec<Chunk> = scan_tlf(&catalog, &pool, "two", None, None, None, true, ReadPolicy::default(), Metrics::new(), QueryCtx::unbounded(), None)
            .unwrap()
            .map(|c| c.unwrap())
            .collect();
        assert_eq!(all.len(), 2); // one GOP per point
        let near = Volume::everywhere()
            .with(Dimension::X, Interval::new(5.0, 15.0));
        let filtered: Vec<Chunk> =
            scan_tlf(&catalog, &pool, "two", None, None, Some(near), true, ReadPolicy::default(), Metrics::new(), QueryCtx::unbounded(), None)
                .unwrap()
                .map(|c| c.unwrap())
                .collect();
        assert_eq!(filtered.len(), 1);
        assert!((filtered[0].info.position.x - 10.0).abs() < 1e-9);
        fs::remove_dir_all(catalog.root()).unwrap();
    }

    #[test]
    fn omega_is_empty() {
        assert_eq!(omega().count(), 0);
    }

    /// Two points sharing one video track scan the same GOPs; when a
    /// shared GOP is corrupt, the skip budget and `SKIPPED_GOPS`
    /// counter must see it once, not once per part.
    #[test]
    fn shared_track_corrupt_gop_counted_once() {
        let catalog = Catalog::open(temp_root("sharedskip")).unwrap();
        let frames: Vec<Frame> = (0..4)
            .map(|i| Frame::filled(32, 32, Yuv::new((i * 50 + 20) as u8, 128, 128)))
            .collect();
        let stream = Encoder::new(EncoderConfig {
            gop_length: 2,
            fps: 2,
            qp: 35,
            ..Default::default()
        })
        .unwrap()
        .encode(&frames)
        .unwrap();
        let mk_point = |x: f64| SpherePoint {
            position: Point3::new(x, 0.0, 0.0),
            video_track: 0, // both points share the one track
            depth_track: None,
            right_eye_track: None,
        };
        let tlf = TlfDescriptor {
            volume: Volume::everywhere(),
            streaming: false,
            partition_spec: vec![],
            view_subgraph: None,
            body: TlfBody::Sphere360 { points: vec![mk_point(0.0), mk_point(1.0)] },
        };
        catalog
            .store(
                "shared",
                vec![TrackWrite::New {
                    role: TrackRole::Video,
                    projection: ProjectionKind::Equirectangular,
                    stream,
                }],
                tlf,
            )
            .unwrap();
        // Flip a byte inside the first GOP's range on disk.
        let stored = catalog.read("shared", None).unwrap();
        let track = &stored.metadata.tracks[0];
        let entry = &track.gop_index[0];
        let media = catalog.root().join("shared").join(&track.media_path);
        let mut bytes = fs::read(&media).unwrap();
        bytes[(entry.byte_offset + entry.byte_len / 2) as usize] ^= 0x01;
        fs::write(&media, &bytes).unwrap();

        let pool = Arc::new(BufferPool::new(1 << 20));
        let metrics = Metrics::new();
        let policy = ReadPolicy::SkipCorruptGops { max_skipped: 4 };
        let chunks: Vec<Chunk> =
            scan_tlf(&catalog, &pool, "shared", None, None, None, true, policy, metrics.clone(), QueryCtx::unbounded(), None)
                .unwrap()
                .map(|c| c.unwrap())
                .collect();
        // The damaged GOP disappears from both parts; the healthy GOP
        // survives in both.
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|c| c.t_index == 1));
        assert_eq!(
            metrics.counter(counters::SKIPPED_GOPS),
            1,
            "one damaged GOP must count once, not once per part"
        );
        // A budget of one unique GOP is enough for this scan.
        let metrics2 = Metrics::new();
        let policy1 = ReadPolicy::SkipCorruptGops { max_skipped: 1 };
        let n = scan_tlf(&catalog, &pool, "shared", None, None, None, true, policy1, metrics2.clone(), QueryCtx::unbounded(), None)
            .unwrap()
            .filter(|c| c.is_ok())
            .count();
        assert_eq!(n, 2);
        assert_eq!(metrics2.counter(counters::SKIPPED_GOPS), 1);
        fs::remove_dir_all(catalog.root()).unwrap();
    }

    /// Under `ReadPolicy::Degrade`, a corrupt GOP is served as a
    /// well-formed substitute in *every* part that reaches it (output
    /// shape preserved), decodes cleanly, and counts against the
    /// budget — and in `DEGRADED_GOPS` — exactly once.
    #[test]
    fn degrade_policy_substitutes_corrupt_gops() {
        let catalog = Catalog::open(temp_root("degrade")).unwrap();
        store_demo(&catalog, "demo", 3);
        // Corrupt the middle GOP on disk.
        let stored = catalog.read("demo", None).unwrap();
        let track = &stored.metadata.tracks[0];
        let entry = &track.gop_index[1];
        let media = catalog.root().join("demo").join(&track.media_path);
        let mut bytes = fs::read(&media).unwrap();
        bytes[(entry.byte_offset + entry.byte_len / 2) as usize] ^= 0x01;
        fs::write(&media, &bytes).unwrap();

        let pool = Arc::new(BufferPool::new(1 << 20));
        let metrics = Metrics::new();
        let policy = ReadPolicy::Degrade { max_degraded: 1 };
        let chunks: Vec<Chunk> =
            scan_tlf(&catalog, &pool, "demo", None, None, None, true, policy, metrics.clone(), QueryCtx::unbounded(), None)
                .unwrap()
                .map(|c| c.unwrap())
                .collect();
        // No GOP disappears: the damaged one arrives as a substitute.
        assert_eq!(chunks.len(), 3);
        assert_eq!(
            chunks.iter().map(|c| c.t_index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(metrics.counter(counters::DEGRADED_GOPS), 1);
        assert_eq!(metrics.counter(counters::SKIPPED_GOPS), 0);
        // The substitute decodes with the stream's own parameters.
        let ChunkPayload::Encoded { header, gop } = &chunks[1].payload else { panic!() };
        let frames = lightdb_codec::Decoder::new().decode_gop(header, gop).unwrap();
        assert_eq!(frames.len(), 10);
        assert_eq!((frames[0].width(), frames[0].height()), (32, 32));
        // A zero budget refuses to degrade and surfaces the error.
        let none = ReadPolicy::Degrade { max_degraded: 0 };
        let r: Vec<_> =
            scan_tlf(&catalog, &pool, "demo", None, None, None, true, none, Metrics::new(), QueryCtx::unbounded(), None)
                .unwrap()
                .collect();
        assert!(r.iter().any(|c| c.is_err()));
        fs::remove_dir_all(catalog.root()).unwrap();
    }

    /// Transient read errors are retried inside the storage layer and
    /// must be invisible to the skip accounting: the scan succeeds and
    /// `SKIPPED_GOPS` stays zero.
    #[test]
    fn transient_retries_do_not_bump_skip_counter() {
        use lightdb_storage::faults::{self, sites, Fault};
        faults::reset();
        let catalog = Catalog::open(temp_root("transkip")).unwrap();
        store_demo(&catalog, "demo", 2);
        let pool = Arc::new(BufferPool::new(1 << 20));
        let metrics = Metrics::new();
        faults::arm_n(sites::MEDIA_READ, Fault::Transient(std::io::ErrorKind::Interrupted), 2);
        let policy = ReadPolicy::SkipCorruptGops { max_skipped: 4 };
        let chunks: Vec<Chunk> =
            scan_tlf(&catalog, &pool, "demo", None, None, None, true, policy, metrics.clone(), QueryCtx::unbounded(), None)
                .unwrap()
                .map(|c| c.unwrap())
                .collect();
        faults::reset();
        assert_eq!(chunks.len(), 2, "retried reads must deliver every GOP");
        assert_eq!(
            metrics.counter(counters::SKIPPED_GOPS),
            0,
            "transient retries are not skips"
        );
        fs::remove_dir_all(catalog.root()).unwrap();
    }

    #[test]
    fn decode_file_roundtrip() {
        let dir = temp_root("decodefile");
        fs::create_dir_all(&dir).unwrap();
        let frames = vec![Frame::filled(32, 32, Yuv::GREY); 4];
        let stream = Encoder::new(EncoderConfig {
            gop_length: 2,
            fps: 2,
            qp: 40,
            ..Default::default()
        })
        .unwrap()
        .encode(&frames)
        .unwrap();
        let path = dir.join("input.lvc");
        fs::write(&path, stream.to_bytes()).unwrap();
        let chunks: Vec<Chunk> = decode_file(path.to_str().unwrap(), Metrics::new())
            .unwrap()
            .map(|c| c.unwrap())
            .collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].t_index, 1);
        fs::remove_dir_all(dir).unwrap();
    }
}
