//! Per-operator execution metrics.
//!
//! The evaluation's operator-breakdown plots (Figure 11) come
//! straight from these counters: every physical operator wraps its
//! work in [`Metrics::time`].

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Thread-safe accumulator of per-operator wall time and invocation
/// counts, plus named event counters (e.g. GOPs skipped due to
/// corruption). Cloning shares the underlying counters.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<HashMap<&'static str, (Duration, u64)>>>,
    counters: Arc<Mutex<HashMap<&'static str, u64>>>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Runs `f`, attributing its wall time to `op`.
    pub fn time<T>(&self, op: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(op, start.elapsed());
        out
    }

    /// Adds an explicit duration to `op`.
    pub fn record(&self, op: &'static str, d: Duration) {
        let mut m = self.inner.lock();
        let e = m.entry(op).or_insert((Duration::ZERO, 0));
        e.0 += d;
        e.1 += 1;
    }

    /// Accumulated time for one operator.
    pub fn total(&self, op: &str) -> Duration {
        self.inner.lock().get(op).map(|e| e.0).unwrap_or(Duration::ZERO)
    }

    /// Invocation count for one operator.
    pub fn count(&self, op: &str) -> u64 {
        self.inner.lock().get(op).map(|e| e.1).unwrap_or(0)
    }

    /// All `(operator, total, count)` rows, sorted by descending time.
    pub fn report(&self) -> Vec<(&'static str, Duration, u64)> {
        let mut rows: Vec<_> =
            self.inner.lock().iter().map(|(k, (d, c))| (*k, *d, *c)).collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }

    /// Adds `n` to the named event counter.
    pub fn add(&self, counter: &'static str, n: u64) {
        *self.counters.lock().entry(counter).or_insert(0) += n;
    }

    /// Increments the named event counter by one.
    pub fn bump(&self, counter: &'static str) {
        self.add(counter, 1);
    }

    /// Current value of a named event counter (zero when never set).
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters.lock().get(counter).copied().unwrap_or(0)
    }

    /// All `(counter, value)` rows, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut rows: Vec<_> = self.counters.lock().iter().map(|(k, v)| (*k, *v)).collect();
        rows.sort_unstable();
        rows
    }

    /// Clears all counters.
    pub fn reset(&self) {
        self.inner.lock().clear();
        self.counters.lock().clear();
    }
}

/// Counter names used by the built-in operators.
pub mod counters {
    /// GOPs skipped by a scan running under
    /// [`crate::ReadPolicy::SkipCorruptGops`].
    pub const SKIPPED_GOPS: &str = "scan.skipped_gops";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_attributes_to_op() {
        let m = Metrics::new();
        let v = m.time("DECODE", || 42);
        assert_eq!(v, 42);
        assert_eq!(m.count("DECODE"), 1);
        assert_eq!(m.count("ENCODE"), 0);
    }

    #[test]
    fn totals_accumulate() {
        let m = Metrics::new();
        m.record("MAP", Duration::from_millis(5));
        m.record("MAP", Duration::from_millis(7));
        assert_eq!(m.total("MAP"), Duration::from_millis(12));
        assert_eq!(m.count("MAP"), 2);
    }

    #[test]
    fn report_sorted_and_reset_clears() {
        let m = Metrics::new();
        m.record("A", Duration::from_millis(1));
        m.record("B", Duration::from_millis(10));
        let r = m.report();
        assert_eq!(r[0].0, "B");
        m.reset();
        assert!(m.report().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.record("X", Duration::from_millis(3));
        assert_eq!(m.count("X"), 1);
    }

    #[test]
    fn event_counters_accumulate_and_reset() {
        let m = Metrics::new();
        assert_eq!(m.counter(counters::SKIPPED_GOPS), 0);
        m.bump(counters::SKIPPED_GOPS);
        m.add(counters::SKIPPED_GOPS, 2);
        assert_eq!(m.counter(counters::SKIPPED_GOPS), 3);
        assert_eq!(m.counters(), vec![(counters::SKIPPED_GOPS, 3)]);
        // Clones share counters too.
        m.clone().bump(counters::SKIPPED_GOPS);
        assert_eq!(m.counter(counters::SKIPPED_GOPS), 4);
        m.reset();
        assert_eq!(m.counter(counters::SKIPPED_GOPS), 0);
    }
}
