//! Per-operator execution metrics.
//!
//! The evaluation's operator-breakdown plots (Figure 11) come
//! straight from these counters: every physical operator wraps its
//! work in [`Metrics::time`].
//!
//! With the parallel execution layer, one operator can run on several
//! worker threads at once, so each operator tracks two durations:
//!
//! * **busy** ([`Metrics::total`]) — the sum of per-invocation
//!   durations across all threads (total CPU the operator consumed);
//! * **wall** ([`Metrics::wall`]) — the union of the intervals during
//!   which *at least one* invocation of the operator was running
//!   (elapsed time the operator contributed to the query).
//!
//! Serially the two coincide; under overlap `wall < busy`, and
//! `busy / wall` approximates the operator's effective parallelism.

use lightdb_core::histogram::Histogram;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct OpStat {
    /// Summed per-invocation durations (CPU-style accounting).
    busy: Duration,
    count: u64,
    /// Union of active intervals (wall-clock accounting).
    wall: Duration,
    /// Invocations currently running.
    active: u32,
    /// When `active` last rose from zero.
    span_start: Option<Instant>,
}

/// Thread-safe accumulator of per-operator busy/wall time and
/// invocation counts, plus named event counters (e.g. GOPs skipped
/// due to corruption). Cloning shares the underlying counters.
#[derive(Clone, Default, Debug)]
pub struct Metrics {
    inner: Arc<Mutex<HashMap<&'static str, OpStat>>>,
    counters: Arc<Mutex<HashMap<&'static str, u64>>>,
    /// Latency distributions, recorded via [`Metrics::observe`]. Kept
    /// separate from `OpStat` so the per-span hot path (enter/exit)
    /// never pays for percentile bucketing it does not use.
    latencies: Arc<Mutex<HashMap<&'static str, Arc<Histogram>>>>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Runs `f`, attributing its duration to `op`. Safe to call for
    /// the same `op` from several threads at once: busy time sums,
    /// wall time counts overlapping invocations once.
    ///
    /// The span is closed by an RAII guard, so a panic (or any other
    /// unwind) out of `f` still decrements the active count — an
    /// aborted query must never leave a span open, or every later
    /// wall reading for that operator would silently keep growing.
    pub fn time<T>(&self, op: &'static str, f: impl FnOnce() -> T) -> T {
        let _span = self.span(op);
        f()
    }

    /// Opens a span on `op` that closes when the guard drops.
    pub fn span(&self, op: &'static str) -> SpanGuard<'_> {
        let start = self.enter(op);
        SpanGuard {
            metrics: self,
            op,
            start,
        }
    }

    /// Number of spans currently open across all operators. The
    /// resilience tests assert this returns to zero after cancelled
    /// and panicked queries.
    pub fn open_spans(&self) -> u64 {
        self.inner
            .lock()
            .values()
            .map(|e| u64::from(e.active))
            .sum()
    }

    fn enter(&self, op: &'static str) -> Instant {
        let mut m = self.inner.lock();
        let e = m.entry(op).or_default();
        e.active += 1;
        if e.active == 1 {
            e.span_start = Some(Instant::now());
        }
        drop(m);
        Instant::now()
    }

    fn exit(&self, op: &'static str, start: Instant) {
        let d = start.elapsed();
        let mut m = self.inner.lock();
        let e = m.entry(op).or_default();
        e.busy += d;
        e.count += 1;
        e.active = e.active.saturating_sub(1);
        if e.active == 0 {
            if let Some(s) = e.span_start.take() {
                e.wall += s.elapsed();
            }
        }
    }

    /// Adds an explicit duration to `op`. The duration is treated as
    /// its own span: it extends wall time unless the operator is
    /// concurrently active through [`Metrics::time`].
    pub fn record(&self, op: &'static str, d: Duration) {
        let mut m = self.inner.lock();
        let e = m.entry(op).or_default();
        e.busy += d;
        e.count += 1;
        if e.active == 0 {
            e.wall += d;
        }
    }

    /// Accumulated busy time (summed across threads) for one operator.
    pub fn total(&self, op: &str) -> Duration {
        self.inner
            .lock()
            .get(op)
            .map(|e| e.busy)
            .unwrap_or(Duration::ZERO)
    }

    /// Accumulated wall-clock time for one operator: the union of the
    /// intervals during which it was running on any thread. Equals
    /// [`Metrics::total`] for serial execution; strictly less when
    /// invocations overlap.
    pub fn wall(&self, op: &str) -> Duration {
        self.inner
            .lock()
            .get(op)
            .map(|e| e.wall)
            .unwrap_or(Duration::ZERO)
    }

    /// Invocation count for one operator.
    pub fn count(&self, op: &str) -> u64 {
        self.inner.lock().get(op).map(|e| e.count).unwrap_or(0)
    }

    /// All `(operator, busy total, count)` rows, sorted by descending
    /// time.
    pub fn report(&self) -> Vec<(&'static str, Duration, u64)> {
        let mut rows: Vec<_> = self
            .inner
            .lock()
            .iter()
            .map(|(k, e)| (*k, e.busy, e.count))
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }

    /// All `(operator, busy, wall, count)` rows, sorted by descending
    /// busy time — the parallel-aware variant of [`Metrics::report`].
    pub fn report_wall(&self) -> Vec<(&'static str, Duration, Duration, u64)> {
        let mut rows: Vec<_> = self
            .inner
            .lock()
            .iter()
            .map(|(k, e)| (*k, e.busy, e.wall, e.count))
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }

    /// Adds `n` to the named event counter.
    pub fn add(&self, counter: &'static str, n: u64) {
        *self.counters.lock().entry(counter).or_insert(0) += n;
    }

    /// Increments the named event counter by one.
    pub fn bump(&self, counter: &'static str) {
        self.add(counter, 1);
    }

    /// Current value of a named event counter (zero when never set).
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters.lock().get(counter).copied().unwrap_or(0)
    }

    /// All `(counter, value)` rows, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut rows: Vec<_> = self.counters.lock().iter().map(|(k, v)| (*k, *v)).collect();
        rows.sort_unstable();
        rows
    }

    /// Records one sample into the named latency distribution. Unlike
    /// [`Metrics::record`] this feeds a log-bucketed histogram
    /// ([`lightdb_core::histogram::Histogram`]) so p50/p99/p999 can be
    /// read back without retaining individual samples.
    pub fn observe(&self, op: &'static str, d: Duration) {
        self.histogram(op).record(d);
    }

    /// The named latency histogram, created empty on first access.
    /// The `Arc` can be held across calls (e.g. by a worker loop) to
    /// record without re-taking the map lock per sample.
    pub fn histogram(&self, op: &'static str) -> Arc<Histogram> {
        self.latencies.lock().entry(op).or_default().clone()
    }

    /// A percentile (0.0–100.0) of the named latency distribution;
    /// zero when nothing was observed.
    pub fn percentile(&self, op: &str, p: f64) -> Duration {
        self.latencies
            .lock()
            .get(op)
            .map(|h| h.percentile(p))
            .unwrap_or(Duration::ZERO)
    }

    /// Clears all counters.
    pub fn reset(&self) {
        self.inner.lock().clear();
        self.counters.lock().clear();
        self.latencies.lock().clear();
    }
}

/// Closes the span opened by [`Metrics::span`] on drop (unwind-safe).
#[derive(Debug)]
pub struct SpanGuard<'m> {
    metrics: &'m Metrics,
    op: &'static str,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.metrics.exit(self.op, self.start);
    }
}

/// Counter names used by the built-in operators.
pub mod counters {
    /// GOPs skipped by a scan running under
    /// [`crate::ReadPolicy::SkipCorruptGops`].
    pub const SKIPPED_GOPS: &str = "scan.skipped_gops";
    /// GOPs served as lower-fidelity substitutes: corrupt GOPs
    /// replaced under [`crate::ReadPolicy::Degrade`], plus decodes
    /// switched to the prediction-only path because the query's
    /// deadline was at risk.
    pub const DEGRADED_GOPS: &str = "scan.degraded_gops";
    /// Decoded-GOP requests served from the shared-scan cache
    /// ([`crate::sharedscan::SharedDecode`]) without running a decode.
    pub const SHARED_SCAN_HITS: &str = "shared_scan.hits";
    /// Decodes actually performed through the shared-scan cache.
    /// Under concurrent scans of one TLF range this stays at one per
    /// distinct GOP — the exactly-once property tests assert.
    pub const SHARED_SCAN_DECODES: &str = "shared_scan.decodes";
    /// Decoded GOPs evicted from the shared-scan cache to stay within
    /// its byte budget.
    pub const SHARED_SCAN_EVICTIONS: &str = "shared_scan.evictions";
    /// Prepared statements served from a session's plan cache.
    pub const PLAN_CACHE_HITS: &str = "plan_cache.hits";
    /// Statements planned from scratch (uncacheable shapes included).
    pub const PLAN_CACHE_MISSES: &str = "plan_cache.misses";
    /// Cached plans evicted to respect the plan-cache entry bound.
    pub const PLAN_CACHE_EVICTIONS: &str = "plan_cache.evictions";
    /// Encoded-tile requests served straight from the cross-user tile
    /// cache ([`crate::tilecache::TileCache`]) — no extraction ran.
    pub const TILE_CACHE_HITS: &str = "tile_cache.hits";
    /// Tile requests that ran `extract_tile` as the single-flight
    /// leader. Every miss is exactly one extraction.
    pub const TILE_CACHE_MISSES: &str = "tile_cache.misses";
    /// Cached tiles evicted to stay within `LIGHTDB_TILE_CACHE_MB`.
    pub const TILE_CACHE_EVICTIONS: &str = "tile_cache.evictions";
    /// Tile requests that waited on another request's in-flight
    /// extraction and then reused its published result — the requests
    /// the single-flight wrapper deduplicated.
    pub const TILE_CACHE_COALESCED: &str = "tile_cache.coalesced";
    /// Views served by a `TileServer` (one per `serve` call; each view
    /// bundles one high-quality tile plus its low-quality neighbors).
    pub const TILE_SERVES: &str = "tile_server.serves";
    /// Tiles warmed into the tile cache by predictive prefetch.
    pub const TILE_PREFETCHED: &str = "tile_server.prefetched_tiles";
    /// Latency histogram name for one served view (use with
    /// [`super::Metrics::observe`] / [`super::Metrics::percentile`]).
    pub const SERVE_LATENCY: &str = "tile_server.serve";
    /// Cluster RPCs retried on a transient failure (same worker).
    pub const CLUSTER_RPC_RETRIES: &str = "cluster.rpc.retries";
    /// Fragment dispatches failed over from an unreachable worker to
    /// a replica holder.
    pub const CLUSTER_FAILOVERS: &str = "cluster.failovers";
    /// Fragments dropped from a degraded distributed result because
    /// no reachable worker held a copy (`ReadPolicy::Degrade` only).
    pub const CLUSTER_LOST_FRAGMENTS: &str = "cluster.lost_fragments";
    /// Heartbeat probes that found a worker unreachable.
    pub const CLUSTER_HEARTBEAT_FAILURES: &str = "cluster.heartbeat.failures";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_attributes_to_op() {
        let m = Metrics::new();
        let v = m.time("DECODE", || 42);
        assert_eq!(v, 42);
        assert_eq!(m.count("DECODE"), 1);
        assert_eq!(m.count("ENCODE"), 0);
    }

    #[test]
    fn totals_accumulate() {
        let m = Metrics::new();
        m.record("MAP", Duration::from_millis(5));
        m.record("MAP", Duration::from_millis(7));
        assert_eq!(m.total("MAP"), Duration::from_millis(12));
        assert_eq!(m.count("MAP"), 2);
        // Non-overlapping recorded spans extend wall time too.
        assert_eq!(m.wall("MAP"), Duration::from_millis(12));
    }

    #[test]
    fn report_sorted_and_reset_clears() {
        let m = Metrics::new();
        m.record("A", Duration::from_millis(1));
        m.record("B", Duration::from_millis(10));
        let r = m.report();
        assert_eq!(r[0].0, "B");
        let rw = m.report_wall();
        assert_eq!(rw[0].0, "B");
        assert_eq!(rw[0].1, rw[0].2, "serial records: busy == wall");
        m.reset();
        assert!(m.report().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.record("X", Duration::from_millis(3));
        assert_eq!(m.count("X"), 1);
    }

    #[test]
    fn serial_wall_tracks_busy() {
        let m = Metrics::new();
        for _ in 0..3 {
            m.time("OP", || std::thread::sleep(Duration::from_millis(5)));
        }
        let (busy, wall) = (m.total("OP"), m.wall("OP"));
        assert!(busy >= Duration::from_millis(15));
        // Serially, wall and busy measure the same spans (modulo the
        // instants taken just inside/outside the lock).
        assert!(
            wall >= busy / 2,
            "serial wall {wall:?} far below busy {busy:?}"
        );
        assert!(wall <= busy + Duration::from_millis(15));
    }

    #[test]
    fn overlapping_invocations_union_wall_time() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || m.time("OP", || std::thread::sleep(Duration::from_millis(40))));
            }
        });
        let (busy, wall) = (m.total("OP"), m.wall("OP"));
        assert!(
            busy >= Duration::from_millis(160),
            "4 × 40ms summed, got {busy:?}"
        );
        assert!(
            wall < busy,
            "overlapping spans must not sum: wall {wall:?} vs busy {busy:?}"
        );
        // All four overlap almost entirely: wall should be near one
        // invocation's length, not four (generous bound for CI noise).
        assert!(wall < Duration::from_millis(120));
    }

    #[test]
    fn panicking_invocation_still_closes_its_span() {
        let m = Metrics::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.time("OP", || panic!("injected"));
        }));
        assert!(caught.is_err());
        assert_eq!(m.open_spans(), 0, "unwound span must have closed");
        assert_eq!(m.count("OP"), 1);
        // Wall accounting still works afterwards: a fresh serial call
        // adds its own span instead of inheriting a stuck-open one.
        let wall_before = m.wall("OP");
        m.time("OP", || std::thread::sleep(Duration::from_millis(5)));
        assert!(m.wall("OP") >= wall_before + Duration::from_millis(4));
        assert_eq!(m.open_spans(), 0);
    }

    #[test]
    fn observed_latencies_expose_percentiles() {
        let m = Metrics::new();
        assert_eq!(m.percentile("SERVE", 99.0), Duration::ZERO);
        for us in 1..=100u64 {
            m.observe("SERVE", Duration::from_micros(us));
        }
        let p50 = m.percentile("SERVE", 50.0).as_nanos() as f64;
        assert!((p50 / 1_000.0 - 50.0).abs() < 8.0, "p50 {p50}ns");
        // Clones share histograms; reset clears them.
        m.clone().observe("SERVE", Duration::from_micros(1));
        assert_eq!(m.histogram("SERVE").count(), 101);
        m.reset();
        assert_eq!(m.percentile("SERVE", 50.0), Duration::ZERO);
    }

    #[test]
    fn event_counters_accumulate_and_reset() {
        let m = Metrics::new();
        assert_eq!(m.counter(counters::SKIPPED_GOPS), 0);
        m.bump(counters::SKIPPED_GOPS);
        m.add(counters::SKIPPED_GOPS, 2);
        assert_eq!(m.counter(counters::SKIPPED_GOPS), 3);
        assert_eq!(m.counters(), vec![(counters::SKIPPED_GOPS, 3)]);
        // Clones share counters too.
        m.clone().bump(counters::SKIPPED_GOPS);
        assert_eq!(m.counter(counters::SKIPPED_GOPS), 4);
        m.reset();
        assert_eq!(m.counter(counters::SKIPPED_GOPS), 0);
    }
}
