//! The executor: interprets physical plans as chunk pipelines.

use crate::chunk::{Chunk, ChunkPayload, TimeGrouped};
use crate::frameops;
use crate::hops;
use crate::metrics::Metrics;
use crate::parallel::Parallelism;
use crate::plan::PhysicalPlan;
use crate::query_ctx::QueryCtx;
use crate::sources;
use crate::{ChunkStream, ExecError, ReadPolicy, Result};
use lightdb_storage::AdmitPolicy;
use lightdb_codec::{CodecKind, VideoStream};
use lightdb_container::{SpherePoint, TlfBody, TlfDescriptor};
use lightdb_core::udf::MapFunction;
use lightdb_geom::projection::ProjectionKind;
use lightdb_geom::{Dimension, Volume};
use lightdb_index::persist::serialize_entries;
use lightdb_index::rtree::Rect3;
use lightdb_index::IndexKey;
use lightdb_storage::catalog::TrackWrite;
use lightdb_container::TrackRole;
use lightdb_storage::{BufferPool, Catalog};
use std::sync::Arc;

/// The result of running a physical plan.
#[derive(Debug)]
pub enum QueryOutput {
    /// A `STORE` committed this version.
    Stored { name: String, version: u64 },
    /// The query produced encoded streams (one per output part).
    Encoded(Vec<VideoStream>),
    /// The query produced decoded frames (volume + frames per part,
    /// time-concatenated).
    Frames(Vec<(Volume, Vec<lightdb_frame::Frame>)>),
    /// DDL or other side-effect-only statement.
    Unit,
}

impl QueryOutput {
    /// Decodes (if necessary) and returns the output's frames, one
    /// entry per part. `Stored`/`Unit` outputs yield an empty vector.
    pub fn into_frame_parts(self) -> Result<Vec<Vec<lightdb_frame::Frame>>> {
        match self {
            QueryOutput::Frames(parts) => Ok(parts.into_iter().map(|(_, f)| f).collect()),
            QueryOutput::Encoded(streams) => streams
                .into_iter()
                .map(|s| lightdb_codec::Decoder::new().decode(&s).map_err(ExecError::from))
                .collect(),
            _ => Ok(Vec::new()),
        }
    }

    /// Total frames across all outputs (useful for FPS accounting).
    pub fn frame_count(&self) -> usize {
        match self {
            QueryOutput::Encoded(streams) => streams.iter().map(|s| s.frame_count()).sum(),
            QueryOutput::Frames(parts) => parts.iter().map(|(_, f)| f.len()).sum(),
            _ => 0,
        }
    }
}

/// Executes physical plans against a catalog.
#[derive(Clone)]
#[derive(Debug)]
pub struct Executor {
    pub catalog: Arc<Catalog>,
    pub pool: Arc<BufferPool>,
    pub metrics: Metrics,
    /// Whether scans may consult spatial R-tree index files (the
    /// optimizer's `use_indexes` switch; part filtering itself always
    /// happens — without the index it is a linear point scan).
    pub spatial_index: bool,
    /// What scans do when a stored GOP turns out to be corrupt.
    pub read_policy: ReadPolicy,
    /// Worker-thread budget for chunk-parallel operators (DECODE,
    /// ENCODE, MAP, and STORE's auto-encode). Defaults to
    /// [`Parallelism::from_env`] (`LIGHTDB_THREADS`); output is
    /// byte-identical at any setting.
    pub parallelism: Parallelism,
    /// Per-query deadline, cancellation and working-set declaration.
    /// Checked at every GOP/chunk boundary and polled inside timed
    /// pool waits, so a cancelled or expired query stops within one
    /// chunk of work.
    pub ctx: QueryCtx,
    /// What [`Executor::run`] does when the context declares a
    /// working set ([`QueryCtx::with_mem_estimate`]) that does not
    /// currently fit under the pool's admission limit.
    pub admit_policy: AdmitPolicy,
    /// Shared decoded-GOP cache (see
    /// [`crate::sharedscan::SharedDecode`]). `None` decodes
    /// privately, exactly as before shared scans existed; an engine
    /// sets one instance here for every session's executor so
    /// concurrent scans of the same TLF range decode each GOP once.
    pub shared_decode: Option<Arc<crate::sharedscan::SharedDecode>>,
    /// Session tag for admission accounting (server front-end);
    /// `None` for single-shot queries.
    pub session: Option<u64>,
    /// Admission tag for pages this query inserts into the buffer
    /// pool (set for the duration of `run` when admission is active).
    owner: Option<u64>,
}

impl Executor {
    pub fn new(catalog: Arc<Catalog>, pool: Arc<BufferPool>) -> Executor {
        Executor {
            catalog,
            pool,
            metrics: Metrics::new(),
            spatial_index: true,
            read_policy: ReadPolicy::default(),
            parallelism: Parallelism::from_env(),
            ctx: QueryCtx::unbounded(),
            admit_policy: AdmitPolicy::Block { timeout: std::time::Duration::from_secs(10) },
            shared_decode: None,
            session: None,
            owner: None,
        }
    }

    /// Runs a plan to completion.
    pub fn run(&self, plan: &PhysicalPlan) -> Result<QueryOutput> {
        self.ctx.check()?;
        // Admission: a declared working set reserves pool budget for
        // the whole query; the RAII guard releases it on every exit
        // path. `Aborted` is refined into the precise Cancelled /
        // DeadlineExceeded by re-checking the context.
        let _admission = match self.ctx.mem_estimate() {
            None => None,
            Some(bytes) => {
                match self.pool.admit_for_session(
                    bytes,
                    self.admit_policy,
                    &|| self.ctx.should_abort(),
                    self.session,
                ) {
                    Ok(a) => Some(a),
                    Err(e) => {
                        self.ctx.check()?;
                        return Err(e.into());
                    }
                }
            }
        };
        // The clone shares metrics/pool/catalog; only the owner tag
        // differs, so pool pages inserted below carry this query's id.
        let exec = Executor {
            owner: _admission.as_ref().map(|a| a.query_id()),
            ..self.clone()
        };
        exec.run_admitted(plan)
    }

    fn run_admitted(&self, plan: &PhysicalPlan) -> Result<QueryOutput> {
        match plan {
            PhysicalPlan::CreateTlf { name } => {
                let tlf = TlfDescriptor {
                    volume: Volume::everywhere(),
                    streaming: false,
                    partition_spec: vec![],
                    view_subgraph: None,
                    body: TlfBody::Sphere360 { points: vec![] },
                };
                self.catalog.create(name, tlf)?;
                Ok(QueryOutput::Unit)
            }
            PhysicalPlan::DropTlf { name } => {
                self.catalog.drop_tlf(name)?;
                self.pool.invalidate(name);
                Ok(QueryOutput::Unit)
            }
            PhysicalPlan::CreateIndex { name, dims } => self.create_index(name, dims),
            PhysicalPlan::DropIndex { name, dims } => self.drop_index(name, dims),
            PhysicalPlan::Store { input, name, view_subgraph } => {
                self.store(input, name, view_subgraph.clone())
            }
            _ => {
                let stream = self.build(plan, None)?;
                self.collect_output(stream)
            }
        }
    }

    /// Builds the chunk pipeline for a plan. `sub` binds
    /// `SubqueryInput` leaves when compiling subquery bodies.
    fn build(&self, plan: &PhysicalPlan, sub: Option<&Chunk>) -> Result<ChunkStream> {
        let m = self.metrics.clone();
        Ok(match plan {
            PhysicalPlan::ScanTlf { name, version, t_frames, spatial } => sources::scan_tlf(
                &self.catalog,
                &self.pool,
                name,
                *version,
                *t_frames,
                *spatial,
                self.spatial_index,
                self.read_policy,
                m,
                self.ctx.clone(),
                self.owner,
            )?,
            PhysicalPlan::DecodeFile { path, .. } => sources::decode_file(path, m)?,
            PhysicalPlan::Omega { .. } => sources::omega(),
            PhysicalPlan::SubqueryInput => {
                let c = sub.ok_or_else(|| {
                    ExecError::Other("SubqueryInput outside a subquery".into())
                })?;
                Box::new(std::iter::once(Ok(c.clone())))
            }
            PhysicalPlan::ToFrames { input, device } => frameops::decode_chunks_par_shared(
                self.build(input, sub)?,
                *device,
                m,
                self.parallelism,
                self.ctx.clone(),
                self.shared_decode.clone(),
            ),
            PhysicalPlan::FromFrames { input, device, codec, qp } => {
                frameops::encode_chunks_par(
                    self.build(input, sub)?,
                    *device,
                    *codec,
                    *qp,
                    m,
                    self.parallelism,
                    self.ctx.clone(),
                )
            }
            PhysicalPlan::Transfer { input, to } => {
                frameops::transfer(self.build(input, sub)?, *to, m)
            }
            PhysicalPlan::GopSelect { input, t_frames } => {
                hops::gop_select(self.build(input, sub)?, *t_frames, m)
            }
            PhysicalPlan::GopUnion { inputs } => {
                let streams = self.build_all(inputs, sub)?;
                hops::gop_union(streams, m)
            }
            PhysicalPlan::TileSelect { input, tiles } => {
                hops::tile_select(self.build(input, sub)?, tiles.clone(), m)
            }
            PhysicalPlan::KeyframeSelect { input } => {
                hops::keyframe_select(self.build(input, sub)?, m)
            }
            PhysicalPlan::TileUnion { inputs, cols, rows } => {
                if inputs.len() == 1 {
                    tile_union_interleaved(self.build(&inputs[0], sub)?, *cols, *rows, m)
                } else {
                    let streams = self.build_all(inputs, sub)?;
                    hops::tile_union(streams, *cols, *rows, m)
                }
            }
            PhysicalPlan::SelectFrames { input, predicate, device } => {
                frameops::select_frames(self.build(input, sub)?, *predicate, *device, m)
            }
            PhysicalPlan::MapFrames { input, f, device } => match f {
                MapFunction::Point(udf) => {
                    let udf = udf.clone();
                    let metrics = m.clone();
                    let input = self.build(input, sub)?;
                    crate::parallel::par_map_chunks_ctx(
                        input,
                        self.parallelism,
                        self.ctx.clone(),
                        move |c| {
                            metrics.time("MAP", || frameops::apply_point_map(&c, udf.as_ref()))
                        },
                    )
                }
                _ => frameops::map_frames_par(
                    self.build(input, sub)?,
                    f.clone(),
                    *device,
                    m,
                    self.parallelism,
                    self.ctx.clone(),
                ),
            },
            PhysicalPlan::InterpolateFrames { input, f, device } => {
                frameops::interpolate_frames(self.build(input, sub)?, f.clone(), *device, m)
            }
            PhysicalPlan::DiscretizeFrames { input, steps, device } => {
                frameops::discretize_frames(self.build(input, sub)?, steps.clone(), *device, m)
            }
            PhysicalPlan::PartitionChunks { input, spec } => {
                frameops::partition_chunks(self.build(input, sub)?, spec.clone(), m)
            }
            PhysicalPlan::FlattenChunks { input } => {
                frameops::flatten_chunks(self.build(input, sub)?, m)
            }
            PhysicalPlan::UnionFrames { inputs, merge, device } => {
                let streams = self.build_all(inputs, sub)?;
                frameops::union_frames(streams, merge.clone(), *device, m)
            }
            PhysicalPlan::TranslateChunks { input, dx, dy, dz, dt } => {
                frameops::translate_chunks(self.build(input, sub)?, *dx, *dy, *dz, *dt, m)
            }
            PhysicalPlan::RotateFrames { input, dtheta, dphi, device } => {
                frameops::rotate_frames(self.build(input, sub)?, *dtheta, *dphi, *device, m)
            }
            PhysicalPlan::Subquery { input, body, label } => {
                let exec = self.clone();
                let body = body.clone();
                let label = label.clone();
                let input = self.build(input, sub)?;
                let mut outbox: Vec<Chunk> = Vec::new();
                let mut input = input;
                Box::new(std::iter::from_fn(move || loop {
                    if let Some(c) = outbox.pop() {
                        return Some(Ok(c));
                    }
                    let chunk = match input.next()? {
                        Err(e) => return Some(Err(e)),
                        Ok(c) => c,
                    };
                    let part = chunk.part;
                    let body_plan = match body(&chunk.volume) {
                        Err(e) => {
                            return Some(Err(ExecError::Other(format!(
                                "subquery {label}: {e}"
                            ))))
                        }
                        Ok(p) => p,
                    };
                    let stream = match exec.build(&body_plan, Some(&chunk)) {
                        Err(e) => return Some(Err(e)),
                        Ok(s) => s,
                    };
                    let mut produced: Vec<Chunk> = Vec::new();
                    for r in stream {
                        match r {
                            Err(e) => return Some(Err(e)),
                            Ok(mut out) => {
                                out.part = part; // keep the partition's identity
                                produced.push(out);
                            }
                        }
                    }
                    produced.reverse();
                    outbox = produced;
                }))
            }
            PhysicalPlan::Store { .. }
            | PhysicalPlan::CreateTlf { .. }
            | PhysicalPlan::DropTlf { .. }
            | PhysicalPlan::CreateIndex { .. }
            | PhysicalPlan::DropIndex { .. } => {
                return Err(ExecError::Other(format!(
                    "{} must be the plan root",
                    plan.name()
                )))
            }
        })
    }

    fn build_all(&self, plans: &[PhysicalPlan], sub: Option<&Chunk>) -> Result<Vec<ChunkStream>> {
        plans.iter().map(|p| self.build(p, sub)).collect()
    }

    // ------------------------------------------------------------- sinks

    fn collect_output(&self, stream: ChunkStream) -> Result<QueryOutput> {
        let parts = collect_parts(stream, &self.ctx)?;
        if parts.is_empty() {
            return Ok(QueryOutput::Unit);
        }
        if parts.iter().all(|p| p.chunks.iter().all(Chunk::is_encoded)) {
            let streams = parts
                .into_iter()
                .map(|p| assemble_stream(&p.chunks))
                .collect::<Result<Vec<_>>>()?;
            Ok(QueryOutput::Encoded(streams))
        } else {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                let mut frames = Vec::new();
                for c in &p.chunks {
                    match &c.payload {
                        ChunkPayload::Decoded { frames: f, .. } => frames.extend(f.iter().cloned()),
                        ChunkPayload::Encoded { header, gop } => {
                            // Mixed output: decode the stragglers.
                            frames.extend(
                                self.metrics.time("DECODE", || {
                                    lightdb_codec::Decoder::new().decode_gop(header, gop)
                                })?,
                            );
                        }
                    }
                }
                out.push((p.volume, frames));
            }
            Ok(QueryOutput::Frames(out))
        }
    }

    fn store(
        &self,
        input: &PhysicalPlan,
        name: &str,
        view_subgraph: Option<Vec<u8>>,
    ) -> Result<QueryOutput> {
        let stream = self.build(input, None)?;
        let parts = collect_parts(stream, &self.ctx)?;
        if parts.is_empty() {
            return Err(ExecError::Other("STORE of an empty result".into()));
        }
        let mut tracks = Vec::with_capacity(parts.len());
        let mut points = Vec::with_capacity(parts.len());
        let mut volume: Option<Volume> = None;
        for (ti, p) in parts.iter().enumerate() {
            // Auto-encode any decoded chunks (STORE persists encoded);
            // each chunk is an independent GOP, so fan out.
            let encoded: Vec<Chunk> = crate::parallel::scatter(
                p.chunks.iter().collect::<Vec<&Chunk>>(),
                self.parallelism.threads(),
                |_, c| {
                    self.ctx.check()?;
                    match &c.payload {
                        ChunkPayload::Encoded { .. } => Ok(c.clone()),
                        ChunkPayload::Decoded { frames, device } => {
                            self.metrics.time("ENCODE", || {
                                frameops::encode_one_gop(
                                    c,
                                    frames,
                                    *device,
                                    CodecKind::HevcSim,
                                    20,
                                )
                            })
                        }
                    }
                },
            )
            .into_iter()
            .collect::<Result<Vec<_>>>()?;
            let stream = assemble_stream(&encoded)?;
            tracks.push(TrackWrite::New {
                role: TrackRole::Video,
                projection: p.info_projection,
                stream,
            });
            points.push(SpherePoint {
                position: p.position,
                video_track: ti as u32,
                depth_track: None,
                right_eye_track: None,
            });
            volume = Some(match volume {
                None => p.volume,
                Some(v) => v.hull(&p.volume),
            });
        }
        let tlf = TlfDescriptor {
            volume: volume
                .ok_or_else(|| ExecError::Other("STORE produced no output chunks".into()))?,
            streaming: false,
            partition_spec: vec![],
            view_subgraph,
            body: TlfBody::Sphere360 { points },
        };
        let version =
            self.metrics.time("STORE", || self.catalog.store(name, tracks, tlf))?;
        Ok(QueryOutput::Stored { name: name.to_string(), version })
    }

    // ------------------------------------------------------------- DDL

    fn create_index(&self, name: &str, dims: &[Dimension]) -> Result<QueryOutput> {
        let spatial: Vec<Dimension> = dims.iter().copied().filter(|d| d.is_spatial()).collect();
        if spatial.is_empty() {
            // Temporal/angular indexes are embedded (GOP & tile
            // indexes); nothing external to build.
            return Ok(QueryOutput::Unit);
        }
        let stored = self.catalog.read(name, None)?;
        let mut entries: Vec<(Rect3, u64)> = Vec::new();
        collect_spatial_entries(&stored.metadata.tlf, &mut entries);
        let key = IndexKey::new(stored.version, Dimension::SPATIAL.to_vec());
        self.catalog.write_aux_file(name, &key.file_name(), &serialize_entries(&entries))?;
        Ok(QueryOutput::Unit)
    }

    fn drop_index(&self, name: &str, dims: &[Dimension]) -> Result<QueryOutput> {
        if dims.iter().any(|d| d.is_angular()) {
            // The tile index is used by the video decoders themselves;
            // dropping it is an error (Section 4.2).
            return Err(ExecError::Other(
                "cannot drop an angular index: it is used by video decoders".into(),
            ));
        }
        let stored = self.catalog.read(name, None)?;
        let key = IndexKey::new(stored.version, Dimension::SPATIAL.to_vec());
        self.catalog.remove_aux_file(name, &key.file_name())?;
        self.pool.invalidate_rtree(name);
        Ok(QueryOutput::Unit)
    }
}

fn collect_spatial_entries(tlf: &TlfDescriptor, out: &mut Vec<(Rect3, u64)>) {
    match &tlf.body {
        TlfBody::Sphere360 { points } => {
            let base = out.len() as u64;
            for (i, p) in points.iter().enumerate() {
                out.push((Rect3::point(p.position), base + i as u64));
            }
        }
        TlfBody::Slab { slabs } => {
            let base = out.len() as u64;
            for (i, s) in slabs.iter().enumerate() {
                out.push((
                    Rect3::new(
                        lightdb_geom::Point3::new(
                            s.uv_min.x.min(s.st_min.x),
                            s.uv_min.y.min(s.st_min.y),
                            s.uv_min.z.min(s.st_min.z),
                        ),
                        lightdb_geom::Point3::new(
                            s.uv_max.x.max(s.st_max.x),
                            s.uv_max.y.max(s.st_max.y),
                            s.uv_max.z.max(s.st_max.z),
                        ),
                    ),
                    base + i as u64,
                ));
            }
        }
        TlfBody::Composite { children } => {
            for c in children {
                collect_spatial_entries(c, out);
            }
        }
    }
}

/// One output part: its chunks in time order plus aggregate geometry.
struct OutPart {
    chunks: Vec<Chunk>,
    volume: Volume,
    position: lightdb_geom::Point3,
    info_projection: ProjectionKind,
}

fn collect_parts(stream: ChunkStream, ctx: &QueryCtx) -> Result<Vec<OutPart>> {
    let mut parts: Vec<(usize, OutPart)> = Vec::new();
    for c in stream {
        ctx.check()?;
        let c = c?;
        match parts.iter_mut().find(|(id, _)| *id == c.part) {
            Some((_, p)) => {
                p.volume = p.volume.hull(&c.volume);
                p.chunks.push(c);
            }
            None => {
                parts.push((
                    c.part,
                    OutPart {
                        volume: c.volume,
                        position: c.info.position,
                        info_projection: c.info.projection,
                        chunks: vec![c],
                    },
                ));
            }
        }
    }
    parts.sort_by_key(|(id, _)| *id);
    Ok(parts.into_iter().map(|(_, p)| p).collect())
}

fn assemble_stream(chunks: &[Chunk]) -> Result<VideoStream> {
    let mut header = None;
    let mut gops = Vec::with_capacity(chunks.len());
    for c in chunks {
        let ChunkPayload::Encoded { header: h, gop } = &c.payload else {
            return Err(ExecError::Domain("cannot assemble decoded chunks".into()));
        };
        match &header {
            None => header = Some(*h),
            Some(prev) => {
                if (prev.codec, prev.width, prev.height, prev.fps, prev.grid)
                    != (h.codec, h.width, h.height, h.fps, h.grid)
                {
                    return Err(ExecError::Align(
                        "output chunks have incompatible stream parameters".into(),
                    ));
                }
            }
        }
        gops.push(gop.clone());
    }
    let header = header.ok_or_else(|| ExecError::Other("empty output part".into()))?;
    Ok(VideoStream { header, gops })
}

/// `TILEUNION` over a single interleaved stream: each time step's
/// parts (in part order) are the row-major tiles.
fn tile_union_interleaved(
    input: ChunkStream,
    cols: usize,
    rows: usize,
    metrics: Metrics,
) -> ChunkStream {
    let grouped = TimeGrouped::new(input);
    let expected = cols * rows;
    Box::new(grouped.map(move |g| {
        let mut group = g?;
        group.sort_by_key(|c| c.part);
        if group.len() != expected {
            return Err(ExecError::Align(format!(
                "TILEUNION expected {expected} tiles per time step, got {}",
                group.len()
            )));
        }
        metrics.time("TILEUNION", || hops_stitch(&group, cols, rows))
    }))
}

fn hops_stitch(tiles: &[Chunk], cols: usize, rows: usize) -> Result<Chunk> {
    // Delegate to the hops implementation through the multi-stream
    // entry point: build one-chunk streams.
    let streams: Vec<ChunkStream> = tiles
        .iter()
        .map(|c| {
            let mut c = c.clone();
            // Normalise t_index so the zip aligns.
            c.t_index = 0;
            Box::new(std::iter::once(Ok(c))) as ChunkStream
        })
        .collect();
    let mut out: Vec<Chunk> =
        hops::tile_union(streams, cols, rows, Metrics::new()).collect::<Result<Vec<_>>>()?;
    let mut stitched =
        out.pop().ok_or_else(|| ExecError::Align("TILEUNION produced nothing".into()))?;
    stitched.t_index = tiles[0].t_index;
    Ok(stitched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use lightdb_codec::{Encoder, EncoderConfig};
    use lightdb_container::TlfDescriptor;
    use lightdb_core::algebra::VolumePredicate;
    use lightdb_core::udf::BuiltinMap;
    use lightdb_frame::{Frame, Yuv};
    use lightdb_geom::{Interval, Point3};
    use std::fs;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lightdb-exec-{tag}-{}", std::process::id()));
        match fs::remove_dir_all(&d) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => panic!("failed to clear temp dir {}: {e}", d.display()),
        }
        d
    }

    fn executor(tag: &str) -> Executor {
        let catalog = Arc::new(Catalog::open(temp_root(tag)).unwrap());
        Executor::new(catalog, Arc::new(BufferPool::new(8 << 20)))
    }

    fn seed_video(exec: &Executor, name: &str, seconds: usize, fps: u32) {
        let frames: Vec<Frame> = (0..seconds * fps as usize)
            .map(|i| {
                let mut f = Frame::new(64, 32);
                for y in 0..32 {
                    for x in 0..64 {
                        f.set(x, y, Yuv::new(((x * 2 + y * 3 + i * 5) % 256) as u8, 128, 128));
                    }
                }
                f
            })
            .collect();
        let stream = Encoder::new(EncoderConfig {
            gop_length: fps as usize,
            fps,
            qp: 26,
            ..Default::default()
        })
        .unwrap()
        .encode(&frames)
        .unwrap();
        exec.catalog
            .store(
                name,
                vec![TrackWrite::New {
                    role: TrackRole::Video,
                    projection: ProjectionKind::Equirectangular,
                    stream,
                }],
                TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, seconds as f64), 0),
            )
            .unwrap();
    }

    fn scan(name: &str) -> PhysicalPlan {
        PhysicalPlan::ScanTlf { name: name.into(), version: None, t_frames: None, spatial: None }
    }

    #[test]
    fn scan_decode_map_store_end_to_end() {
        let exec = executor("e2e");
        seed_video(&exec, "src", 2, 4);
        let plan = PhysicalPlan::Store {
            name: "out".into(),
            view_subgraph: None,
            input: Box::new(PhysicalPlan::MapFrames {
                f: MapFunction::Builtin(BuiltinMap::Grayscale),
                device: Device::Cpu,
                input: Box::new(PhysicalPlan::ToFrames {
                    input: Box::new(scan("src")),
                    device: Device::Cpu,
                }),
            }),
        };
        let out = exec.run(&plan).unwrap();
        let QueryOutput::Stored { name, version } = out else { panic!("{out:?}") };
        assert_eq!((name.as_str(), version), ("out", 1));
        // Read back and verify grayscale.
        let frames_plan = PhysicalPlan::ToFrames {
            input: Box::new(scan("out")),
            device: Device::Cpu,
        };
        let QueryOutput::Frames(parts) = exec.run(&frames_plan).unwrap() else { panic!() };
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].1.len(), 8);
        // All chroma neutral-ish (codec may wiggle by a step).
        let f = &parts[0].1[0];
        let c = f.get(10, 10);
        assert!((c.u as i32 - 128).abs() <= 8 && (c.v as i32 - 128).abs() <= 8);
        // Operator metrics were collected.
        assert!(exec.metrics.count("DECODE") >= 2);
        assert!(exec.metrics.count("MAP") >= 2);
        assert!(exec.metrics.count("STORE") == 1);
        fs::remove_dir_all(exec.catalog.root()).unwrap();
    }

    #[test]
    fn gop_select_plan_skips_decode() {
        let exec = executor("gopsel");
        seed_video(&exec, "src", 4, 4);
        let plan = PhysicalPlan::GopSelect {
            input: Box::new(PhysicalPlan::ScanTlf {
                name: "src".into(),
                version: None,
                t_frames: Some((8, 11)),
                spatial: None,
            }),
            t_frames: (8, 11),
        };
        let QueryOutput::Encoded(streams) = exec.run(&plan).unwrap() else { panic!() };
        assert_eq!(streams.len(), 1);
        assert_eq!(streams[0].frame_count(), 4); // exactly one GOP
        assert_eq!(exec.metrics.count("DECODE"), 0, "no decode should have happened");
        fs::remove_dir_all(exec.catalog.root()).unwrap();
    }

    #[test]
    fn subquery_adaptive_encode_and_tile_union() {
        let exec = executor("tiling");
        seed_video(&exec, "src", 2, 2);
        // Partition each GOP into 2×2 tiles, encode tile 0 at high
        // quality, the rest low, stitch homomorphically, store.
        let body: crate::plan::CompiledSubquery = Arc::new(|vol: &Volume| {
            let hi = vol.theta().lo() < 1e-9 && vol.phi().lo() < 1e-9;
            Ok(PhysicalPlan::FromFrames {
                input: Box::new(PhysicalPlan::SubqueryInput),
                device: Device::Cpu,
                codec: CodecKind::HevcSim,
                qp: if hi { 8 } else { 42 },
            })
        });
        let plan = PhysicalPlan::Store {
            name: "tiled".into(),
            view_subgraph: None,
            input: Box::new(PhysicalPlan::TileUnion {
                cols: 2,
                rows: 2,
                inputs: vec![PhysicalPlan::Subquery {
                    label: "adaptive".into(),
                    body,
                    input: Box::new(PhysicalPlan::PartitionChunks {
                        spec: vec![
                            (Dimension::T, 1.0),
                            (Dimension::Theta, std::f64::consts::PI),
                            (Dimension::Phi, std::f64::consts::PI / 2.0),
                        ],
                        input: Box::new(PhysicalPlan::ToFrames {
                            input: Box::new(scan("src")),
                            device: Device::Cpu,
                        }),
                    }),
                }],
            }),
        };
        let QueryOutput::Stored { version, .. } = exec.run(&plan).unwrap() else { panic!() };
        assert_eq!(version, 1);
        assert!(exec.metrics.count("TILEUNION") >= 2);
        // The stored stream decodes and has full dimensions.
        let QueryOutput::Frames(parts) = exec
            .run(&PhysicalPlan::ToFrames { input: Box::new(scan("tiled")), device: Device::Cpu })
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(parts[0].1[0].width(), 64);
        assert_eq!(parts[0].1.len(), 4);
        fs::remove_dir_all(exec.catalog.root()).unwrap();
    }

    #[test]
    fn select_frames_plan_crops() {
        let exec = executor("selframes");
        seed_video(&exec, "src", 1, 4);
        let pred = VolumePredicate::any().with(
            Dimension::Phi,
            Interval::new(0.0, lightdb_geom::PHI_MAX / 2.0),
        );
        let plan = PhysicalPlan::SelectFrames {
            predicate: pred,
            device: Device::Cpu,
            input: Box::new(PhysicalPlan::ToFrames {
                input: Box::new(scan("src")),
                device: Device::Cpu,
            }),
        };
        let QueryOutput::Frames(parts) = exec.run(&plan).unwrap() else { panic!() };
        assert_eq!(parts[0].1[0].height(), 16);
        fs::remove_dir_all(exec.catalog.root()).unwrap();
    }

    #[test]
    fn ddl_lifecycle_and_spatial_index() {
        let exec = executor("ddl");
        seed_video(&exec, "src", 1, 2);
        exec.run(&PhysicalPlan::CreateIndex {
            name: "src".into(),
            dims: vec![Dimension::X, Dimension::Y, Dimension::Z],
        })
        .unwrap();
        // Index file exists.
        let key = IndexKey::new(1, Dimension::SPATIAL.to_vec());
        assert!(exec.catalog.read_aux_file("src", &key.file_name()).unwrap().is_some());
        // Dropping an angular index errors.
        assert!(exec
            .run(&PhysicalPlan::DropIndex { name: "src".into(), dims: vec![Dimension::Theta] })
            .is_err());
        // Dropping the spatial index works.
        exec.run(&PhysicalPlan::DropIndex {
            name: "src".into(),
            dims: vec![Dimension::X, Dimension::Y, Dimension::Z],
        })
        .unwrap();
        assert!(exec.catalog.read_aux_file("src", &key.file_name()).unwrap().is_none());
        // Create + Drop TLF.
        exec.run(&PhysicalPlan::CreateTlf { name: "fresh".into() }).unwrap();
        assert!(exec.catalog.exists("fresh"));
        exec.run(&PhysicalPlan::DropTlf { name: "fresh".into() }).unwrap();
        assert!(!exec.catalog.exists("fresh"));
        fs::remove_dir_all(exec.catalog.root()).unwrap();
    }

    #[test]
    fn gpu_plan_produces_same_frames_as_cpu() {
        let exec = executor("gpucpu");
        seed_video(&exec, "src", 1, 4);
        let mk = |device| PhysicalPlan::MapFrames {
            f: MapFunction::Builtin(BuiltinMap::Sharpen),
            device,
            input: Box::new(PhysicalPlan::ToFrames {
                input: Box::new(scan("src")),
                device,
            }),
        };
        let QueryOutput::Frames(cpu) = exec.run(&mk(Device::Cpu)).unwrap() else { panic!() };
        let QueryOutput::Frames(gpu) = exec.run(&mk(Device::Gpu)).unwrap() else { panic!() };
        assert_eq!(cpu[0].1, gpu[0].1);
        fs::remove_dir_all(exec.catalog.root()).unwrap();
    }
}
