//! Chunks: the unit of data flow between physical operators.

use crate::device::Device;
use lightdb_codec::{EncodedGop, SequenceHeader};
use lightdb_frame::{Frame, Yuv};
use lightdb_geom::projection::ProjectionKind;
use lightdb_geom::{Point3, Volume};

/// The pixel value LightDB uses as the null token ω at pixel
/// granularity: pure black with zeroed chroma never occurs in real
/// (BT.601 full-range) content produced by our pipeline, so it can
/// mark "no light ray here" in sparse TLFs such as detection overlays.
pub const OMEGA: Yuv = Yuv { y: 0, u: 0, v: 0 };

/// True when a pixel is the null token.
#[inline]
pub fn is_omega(c: Yuv) -> bool {
    c == OMEGA
}

/// Light-slab sampling information for slab-backed streams: the
/// chunk's frames are the `nu × nv` uv-plane samples of one time
/// step, in row-major raster order (each frame is one st-image).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlabInfo {
    pub nu: usize,
    pub nv: usize,
    pub uv_min: Point3,
    pub uv_max: Point3,
}

impl SlabInfo {
    /// Frame index of the uv sample nearest to `(x, y)` (slab plane
    /// coordinates), clamped to the sampled grid.
    pub fn nearest_sample(&self, x: f64, y: f64) -> usize {
        let fx = if self.uv_max.x > self.uv_min.x {
            (x - self.uv_min.x) / (self.uv_max.x - self.uv_min.x)
        } else {
            0.0
        };
        let fy = if self.uv_max.y > self.uv_min.y {
            (y - self.uv_min.y) / (self.uv_max.y - self.uv_min.y)
        } else {
            0.0
        };
        let u = ((fx * self.nu as f64) as isize).clamp(0, self.nu as isize - 1) as usize;
        let v = ((fy * self.nv as f64) as isize).clamp(0, self.nv as isize - 1) as usize;
        v * self.nu + u
    }
}

/// Static per-stream information carried alongside chunk payloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamInfo {
    pub projection: ProjectionKind,
    /// The spatial point the stream's sphere sits at (slabs use the
    /// uv-plane centre).
    pub position: Point3,
    pub fps: u32,
    /// Present for light-slab streams.
    pub slab: Option<SlabInfo>,
}

impl StreamInfo {
    pub fn origin(fps: u32) -> StreamInfo {
        StreamInfo {
            projection: ProjectionKind::Equirectangular,
            position: Point3::ORIGIN,
            fps,
            slab: None,
        }
    }
}

/// Chunk payload: encoded GOP bytes or device-resident frames.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkPayload {
    Encoded {
        /// Stream parameters needed to decode the GOP.
        header: SequenceHeader,
        gop: EncodedGop,
    },
    Decoded {
        frames: Vec<Frame>,
        device: Device,
    },
}

/// One unit of flow: a time step (GOP) of one part of a TLF.
///
/// Ordering contract: streams yield chunks with non-decreasing
/// `t_index`; within one `t_index`, all parts appear consecutively
/// ordered by `part`.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Time-step ordinal (GOP number since stream start).
    pub t_index: usize,
    /// Part ordinal within the TLF (spatial point / angular tile).
    pub part: usize,
    /// The 6-D extent this chunk covers.
    pub volume: Volume,
    pub info: StreamInfo,
    pub payload: ChunkPayload,
}

impl Chunk {
    /// Frame count regardless of payload domain.
    pub fn frame_count(&self) -> usize {
        match &self.payload {
            ChunkPayload::Encoded { gop, .. } => gop.frame_count(),
            ChunkPayload::Decoded { frames, .. } => frames.len(),
        }
    }

    /// True when the payload is encoded bytes.
    pub fn is_encoded(&self) -> bool {
        matches!(self.payload, ChunkPayload::Encoded { .. })
    }

    /// The device holding a decoded payload (`Cpu` for encoded ones —
    /// encoded bytes live in host memory).
    pub fn device(&self) -> Device {
        match &self.payload {
            ChunkPayload::Encoded { .. } => Device::Cpu,
            ChunkPayload::Decoded { device, .. } => *device,
        }
    }

    /// Encoded payload bytes (0 for decoded chunks).
    pub fn encoded_bytes(&self) -> usize {
        match &self.payload {
            ChunkPayload::Encoded { gop, .. } => gop.payload_bytes(),
            ChunkPayload::Decoded { .. } => 0,
        }
    }
}

/// Groups a chunk stream by `t_index`, yielding one `Vec<Chunk>` per
/// time step — the alignment primitive n-ary operators use.
pub struct TimeGrouped {
    inner: crate::ChunkStream,
    pending: Option<Chunk>,
}

impl std::fmt::Debug for TimeGrouped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `inner` is an opaque boxed stream; show only what is known.
        f.debug_struct("TimeGrouped").field("pending", &self.pending).finish_non_exhaustive()
    }
}

impl TimeGrouped {
    pub fn new(inner: crate::ChunkStream) -> Self {
        TimeGrouped { inner, pending: None }
    }
}

impl Iterator for TimeGrouped {
    type Item = crate::Result<Vec<Chunk>>;

    fn next(&mut self) -> Option<Self::Item> {
        let first = match self.pending.take() {
            Some(c) => c,
            None => match self.inner.next() {
                None => return None,
                Some(Err(e)) => return Some(Err(e)),
                Some(Ok(c)) => c,
            },
        };
        let t = first.t_index;
        let mut group = vec![first];
        loop {
            match self.inner.next() {
                None => break,
                Some(Err(e)) => return Some(Err(e)),
                Some(Ok(c)) => {
                    if c.t_index == t {
                        group.push(c);
                    } else {
                        self.pending = Some(c);
                        break;
                    }
                }
            }
        }
        Some(Ok(group))
    }
}

// Chunks are the unit of work the parallel layer scatters across
// scoped worker threads (see [`crate::parallel`]); the payload types
// must stay `Send + Sync`.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Chunk>();
    assert_send_sync::<ChunkPayload>();
    assert_send_sync::<StreamInfo>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_geom::Interval;

    fn chunk(t: usize, part: usize) -> Chunk {
        Chunk {
            t_index: t,
            part,
            volume: Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(t as f64, t as f64 + 1.0)),
            info: StreamInfo::origin(30),
            payload: ChunkPayload::Decoded { frames: vec![], device: Device::Cpu },
        }
    }

    #[test]
    fn omega_detection() {
        assert!(is_omega(OMEGA));
        assert!(!is_omega(Yuv::BLACK)); // video black has neutral chroma
        assert!(!is_omega(Yuv::GREY));
    }

    #[test]
    fn time_grouping_batches_by_t_index() {
        let chunks = vec![chunk(0, 0), chunk(0, 1), chunk(1, 0), chunk(2, 0), chunk(2, 1)];
        let stream: crate::ChunkStream = Box::new(chunks.into_iter().map(Ok));
        let groups: Vec<Vec<Chunk>> =
            TimeGrouped::new(stream).map(|g| g.unwrap()).collect();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 1);
        assert_eq!(groups[2].len(), 2);
        assert_eq!(groups[2][1].part, 1);
    }

    #[test]
    fn time_grouping_empty_stream() {
        let stream: crate::ChunkStream = Box::new(std::iter::empty());
        assert_eq!(TimeGrouped::new(stream).count(), 0);
    }

    #[test]
    fn chunk_accessors() {
        let c = chunk(0, 0);
        assert!(!c.is_encoded());
        assert_eq!(c.device(), Device::Cpu);
        assert_eq!(c.frame_count(), 0);
        assert_eq!(c.encoded_bytes(), 0);
    }
}
