//! Simulated FPGA acceleration: the depth-map generation kernel.
//!
//! The paper offloads a bilateral-solver depth-map UDF to a Xilinx
//! Kintex-7. We reproduce the *system* effect — a fixed-function
//! accelerator variant of one `INTERPOLATE` UDF that the optimizer
//! can place — with two implementations of block-matching stereo
//! disparity estimation:
//!
//! * [`DepthMapCpu`] — the general implementation: per-block
//!   normalised cross-correlation in floating point;
//! * [`DepthMapFpga`] — the "hardware" implementation: fixed-point
//!   integer sum-of-absolute-differences with early exit, the kind of
//!   datapath an FPGA synthesises.
//!
//! Both produce the same qualitative output (near objects bright);
//! the FPGA variant is substantially faster, which is what Figure 12
//! measures.

use lightdb_core::udf::InterpUdf;
use lightdb_frame::{Frame, PlaneKind, Yuv};

const BLOCK: usize = 8;
const MAX_DISPARITY: usize = 16;

/// Computes a depth map (bright = near) from a stereo frame pair
/// using integer zero-mean SAD (ZSAD) block matching — the
/// DC-compensated variant real fixed-function stereo pipelines use,
/// which keeps the matcher robust to per-block codec brightness
/// noise while staying integer-only.
pub fn depth_map_sad(left: &Frame, right: &Frame) -> Frame {
    let (w, h) = (left.width(), left.height());
    let mut out = Frame::filled(w, h, Yuv::GREY);
    let lp = left.plane(PlaneKind::Luma);
    let rp = right.plane(PlaneKind::Luma);
    for by in (0..h).step_by(BLOCK) {
        for bx in (0..w).step_by(BLOCK) {
            let mut best_d = 0usize;
            let mut best = u32::MAX;
            // Uniqueness bias: a larger disparity must beat the
            // incumbent by a clear margin (suppresses flat-region
            // flicker).
            const BIAS: u32 = 2 * (BLOCK * BLOCK) as u32;
            for d in 0..MAX_DISPARITY.min(bx + 1) {
                // Pass 1: the summed difference gives the DC offset
                // between the two blocks (×64, kept in fixed point).
                let mut diff_sum = 0i32;
                for y in by..(by + BLOCK).min(h) {
                    for x in bx..(bx + BLOCK).min(w) {
                        diff_sum += lp[y * w + x] as i32 - rp[y * w + (x - d)] as i32;
                    }
                }
                let mean_diff = diff_sum / (BLOCK * BLOCK) as i32;
                // Pass 2: SAD of the DC-compensated residuals.
                let limit = best.saturating_sub(BIAS);
                let mut sad = 0u32;
                'block: for y in by..(by + BLOCK).min(h) {
                    for x in bx..(bx + BLOCK).min(w) {
                        sad += (lp[y * w + x] as i32
                            - rp[y * w + (x - d)] as i32
                            - mean_diff)
                            .unsigned_abs();
                        if sad >= limit {
                            break 'block;
                        }
                    }
                }
                if sad < limit {
                    best = sad;
                    best_d = d;
                }
            }
            let depth = (best_d * 255 / MAX_DISPARITY.max(1)) as u8;
            paint_block(&mut out, bx, by, depth);
        }
    }
    out
}

/// Computes a depth map using per-block normalised cross-correlation
/// in floating point — the general (CPU) implementation.
pub fn depth_map_ncc(left: &Frame, right: &Frame) -> Frame {
    let (w, h) = (left.width(), left.height());
    let mut out = Frame::filled(w, h, Yuv::GREY);
    let lp = left.plane(PlaneKind::Luma);
    let rp = right.plane(PlaneKind::Luma);
    let stats = |p: &[u8], bx: usize, by: usize, d: usize| -> (f64, f64) {
        let mut sum = 0.0;
        let mut sq = 0.0;
        for y in by..(by + BLOCK).min(h) {
            for x in bx..(bx + BLOCK).min(w) {
                let v = p[y * w + (x - d)] as f64;
                sum += v;
                sq += v * v;
            }
        }
        let n = (BLOCK * BLOCK) as f64;
        let mean = sum / n;
        (mean, (sq / n - mean * mean).max(1e-6).sqrt())
    };
    for by in (0..h).step_by(BLOCK) {
        for bx in (0..w).step_by(BLOCK) {
            let (lm, ls) = stats(lp, bx, by, 0);
            let mut best_d = 0usize;
            let mut best = f64::NEG_INFINITY;
            for d in 0..MAX_DISPARITY.min(bx + 1) {
                let (rm, rs) = stats(rp, bx, by, d);
                let mut corr = 0.0;
                for y in by..(by + BLOCK).min(h) {
                    for x in bx..(bx + BLOCK).min(w) {
                        corr += (lp[y * w + x] as f64 - lm) * (rp[y * w + (x - d)] as f64 - rm);
                    }
                }
                let ncc = corr / ((BLOCK * BLOCK) as f64 * ls * rs);
                if ncc > best {
                    best = ncc;
                    best_d = d;
                }
            }
            let depth = (best_d * 255 / MAX_DISPARITY.max(1)) as u8;
            paint_block(&mut out, bx, by, depth);
        }
    }
    out
}

fn paint_block(out: &mut Frame, bx: usize, by: usize, depth: u8) {
    let (w, h) = (out.width(), out.height());
    let plane = out.plane_mut(PlaneKind::Luma);
    for y in by..(by + BLOCK).min(h) {
        for x in bx..(bx + BLOCK).min(w) {
            plane[y * w + x] = depth;
        }
    }
}

/// The CPU depth-map `INTERPOLATE` UDF.
#[derive(Debug)]
pub struct DepthMapCpu;

impl InterpUdf for DepthMapCpu {
    fn name(&self) -> &str {
        "DEPTHMAP"
    }

    fn synthesize(&self, inputs: &[&Frame]) -> Frame {
        assert!(inputs.len() >= 2, "depth map needs a stereo pair");
        depth_map_ncc(inputs[0], inputs[1])
    }
}

/// The FPGA-accelerated depth-map `INTERPOLATE` UDF.
#[derive(Debug)]
pub struct DepthMapFpga;

impl InterpUdf for DepthMapFpga {
    fn name(&self) -> &str {
        "DEPTHMAP" // same logical UDF, different physical implementation
    }

    fn synthesize(&self, inputs: &[&Frame]) -> Frame {
        assert!(inputs.len() >= 2, "depth map needs a stereo pair");
        depth_map_sad(inputs[0], inputs[1])
    }

    fn fpga_accelerated(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stereo pair: a textured square at disparity `d` over a
    /// textured background at disparity 0.
    fn stereo_pair(d: usize) -> (Frame, Frame) {
        let (w, h) = (64, 64);
        let mut left = Frame::new(w, h);
        let mut right = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let bg = (((x * 13 + y * 7) % 97) + 60) as u8;
                left.set(x, y, Yuv::new(bg, 128, 128));
                right.set(x, y, Yuv::new(bg, 128, 128));
            }
        }
        // Foreground square (textured so matching locks on).
        for y in 24..40 {
            for x in 32..48 {
                let v = (((x * 31 + y * 17) % 120) + 120) as u8;
                left.set(x, y, Yuv::new(v, 128, 128));
                right.set(x - d, y, Yuv::new(v, 128, 128));
            }
        }
        (left, right)
    }

    #[test]
    fn sad_detects_foreground_disparity() {
        let (l, r) = stereo_pair(8);
        let depth = depth_map_sad(&l, &r);
        // Foreground block should be brighter (nearer) than background.
        let fg = depth.luma_at(36, 28) as i32;
        let bg = depth.luma_at(8, 8) as i32;
        assert!(fg > bg + 50, "fg {fg} vs bg {bg}");
    }

    #[test]
    fn ncc_detects_foreground_disparity() {
        let (l, r) = stereo_pair(8);
        let depth = depth_map_ncc(&l, &r);
        let fg = depth.luma_at(36, 28) as i32;
        let bg = depth.luma_at(8, 8) as i32;
        assert!(fg > bg + 50, "fg {fg} vs bg {bg}");
    }

    #[test]
    fn implementations_agree_qualitatively() {
        let (l, r) = stereo_pair(6);
        let a = depth_map_sad(&l, &r);
        let b = depth_map_ncc(&l, &r);
        // Same foreground block classification.
        let fg_a = a.luma_at(36, 28);
        let fg_b = b.luma_at(36, 28);
        assert_eq!(fg_a, fg_b, "both should lock onto the same disparity");
    }

    #[test]
    fn fpga_variant_is_faster() {
        let (l, r) = stereo_pair(8);
        // Warm up.
        let _ = depth_map_sad(&l, &r);
        let _ = depth_map_ncc(&l, &r);
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            let _ = depth_map_sad(&l, &r);
        }
        let fpga = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..3 {
            let _ = depth_map_ncc(&l, &r);
        }
        let cpu = t1.elapsed();
        assert!(
            fpga < cpu,
            "fixed-point SAD ({fpga:?}) should beat float NCC ({cpu:?})"
        );
    }

    #[test]
    fn udf_metadata() {
        assert!(DepthMapFpga.fpga_accelerated());
        assert!(!DepthMapCpu.fpga_accelerated());
        assert_eq!(DepthMapCpu.name(), DepthMapFpga.name());
    }
}
