//! Homomorphic operators (HOps): byte-level transformations over
//! encoded chunks that never invoke the codec.
//!
//! Because video encode/decode dominates every other cost in a video
//! DBMS, an operator that can satisfy a query by *copying byte
//! ranges* — whole GOPs via the GOP index, single tiles via the tile
//! index — outruns decode-based plans by orders of magnitude (the
//! paper measures up to 500×).

use crate::chunk::{Chunk, ChunkPayload, TimeGrouped};
use crate::metrics::Metrics;
use crate::{ChunkStream, ExecError, Result};
use lightdb_codec::{EncodedGop, SequenceHeader, TileGrid};
use lightdb_geom::{Dimension, Interval, Volume, PHI_MAX, THETA_PERIOD};

/// `GOPSELECT`: pass through only the whole GOPs overlapping the
/// frame range `[first, last]`. Valid when a temporal selection falls
/// on GOP boundaries; the passed chunks are byte-identical.
pub fn gop_select(
    input: ChunkStream,
    t_frames: (u64, u64),
    metrics: Metrics,
) -> ChunkStream {
    let (first, last) = t_frames;
    Box::new(input.filter(move |c| {
        
        match c {
            Err(_) => true,
            Ok(c) => metrics.time("GOPSELECT", || match &c.payload {
                ChunkPayload::Encoded { header, gop } => {
                    let start = (c.t_index * header.gop_length) as u64;
                    let end = start + gop.frame_count() as u64;
                    start <= last && end > first
                }
                // Decoded chunks pass through untouched (the planner
                // should not have chosen GOPSELECT, but be lenient).
                ChunkPayload::Decoded { .. } => true,
            }),
        }
    }))
}

/// `TILESELECT`: extract the given tiles from each encoded chunk as
/// independent single-tile streams, using only the tile index.
///
/// Output parts are numbered `part * tiles.len() + k` for the k-th
/// requested tile, and each carries a synthesised single-tile
/// sequence header plus the tile's angular sub-volume.
pub fn tile_select(input: ChunkStream, tiles: Vec<usize>, metrics: Metrics) -> ChunkStream {
    let mut pending: Vec<Chunk> = Vec::new();
    let mut input = input;
    Box::new(std::iter::from_fn(move || loop {
        if let Some(c) = pending.pop() {
            return Some(Ok(c));
        }
        let chunk = match input.next()? {
            Err(e) => return Some(Err(e)),
            Ok(c) => c,
        };
        let (header, gop) = match &chunk.payload {
            ChunkPayload::Encoded { header, gop } => (*header, gop),
            ChunkPayload::Decoded { .. } => {
                return Some(Err(ExecError::Domain(
                    "TILESELECT requires encoded input".into(),
                )))
            }
        };
        let r = metrics.time("TILESELECT", || -> Result<Vec<Chunk>> {
            let mut out = Vec::with_capacity(tiles.len());
            for (k, &t) in tiles.iter().enumerate() {
                if t >= header.grid.tile_count() {
                    return Err(ExecError::Domain(format!(
                        "tile {t} out of range for {}×{} grid",
                        header.grid.cols, header.grid.rows
                    )));
                }
                let sub = gop.extract_tile(t)?;
                let (tw, th) = header.grid.tile_dims(header.width, header.height);
                let sub_header = SequenceHeader {
                    width: tw,
                    height: th,
                    grid: TileGrid::SINGLE,
                    ..header
                };
                out.push(Chunk {
                    t_index: chunk.t_index,
                    part: chunk.part * tiles.len() + k,
                    volume: tile_volume(&chunk.volume, &header.grid, t),
                    info: chunk.info,
                    payload: ChunkPayload::Encoded { header: sub_header, gop: sub },
                });
            }
            Ok(out)
        });
        match r {
            Err(e) => return Some(Err(e)),
            Ok(mut chunks) => {
                chunks.reverse(); // popped back-to-front
                pending = chunks;
            }
        }
    }))
}

/// The angular sub-volume covered by tile `index` of `grid` within a
/// full-sphere `volume` (equirectangular layout: θ left→right,
/// φ top→bottom).
pub fn tile_volume(volume: &Volume, grid: &TileGrid, index: usize) -> Volume {
    let col = index % grid.cols;
    let row = index / grid.cols;
    let th = volume.theta();
    let ph = volume.phi();
    let dt = th.length() / grid.cols as f64;
    let dp = ph.length() / grid.rows as f64;
    volume
        .with(
            Dimension::Theta,
            Interval::new(th.lo() + col as f64 * dt, (th.lo() + (col + 1) as f64 * dt).min(THETA_PERIOD)),
        )
        .with(
            Dimension::Phi,
            Interval::new(ph.lo() + row as f64 * dp, (ph.lo() + (row + 1) as f64 * dp).min(PHI_MAX)),
        )
}

/// `KEYFRAMESELECT` (an HOp the paper lists as future work): extract
/// each GOP's keyframe as a one-frame GOP, byte-for-byte — thumbnail
/// or preview extraction at GOP rate without any decoding.
pub fn keyframe_select(input: ChunkStream, metrics: Metrics) -> ChunkStream {
    Box::new(input.map(move |c| {
        let c = c?;
        metrics.time("KEYFRAMESELECT", || match &c.payload {
            ChunkPayload::Encoded { header, gop } => {
                let first = gop
                    .frames
                    .first()
                    .ok_or(ExecError::Align("empty GOP".into()))?
                    .clone();
                debug_assert_eq!(first.frame_type, lightdb_codec::gop::FrameType::Key);
                let header = SequenceHeader { gop_length: 1, ..*header };
                let keyframe_instant = c.volume.t().lo();
                let volume = c.volume.with(
                    Dimension::T,
                    Interval::new(
                        keyframe_instant,
                        keyframe_instant + 1.0 / header.fps as f64,
                    ),
                );
                Ok(Chunk {
                    volume,
                    payload: ChunkPayload::Encoded {
                        header,
                        gop: EncodedGop { frames: vec![first] },
                    },
                    ..c
                })
            }
            ChunkPayload::Decoded { .. } => {
                Err(ExecError::Domain("KEYFRAMESELECT requires encoded input".into()))
            }
        })
    }))
}

/// `GOPUNION`: concatenate encoded streams in time by re-basing the
/// second (and later) inputs' time indices — no decode, byte-level
/// GOP concatenation (FFmpeg's "concat protocol" is the analogue).
pub fn gop_union(inputs: Vec<ChunkStream>, metrics: Metrics) -> ChunkStream {
    let mut inputs = inputs.into_iter();
    let mut current: Option<ChunkStream> = inputs.next();
    let mut t_base = 0usize;
    let mut time_base = 0.0f64;
    let mut seen_t_max = 0usize;
    let mut seen_time_max = 0.0f64;
    let mut header_check: Option<SequenceHeader> = None;
    Box::new(std::iter::from_fn(move || loop {
        let stream = current.as_mut()?;
        match stream.next() {
            Some(Err(e)) => return Some(Err(e)),
            Some(Ok(mut c)) => {
                return metrics.time("GOPUNION", || {
                    if let ChunkPayload::Encoded { header, .. } = &c.payload {
                        match &header_check {
                            None => header_check = Some(*header),
                            Some(h) if h != header => {
                                return Some(Err(ExecError::Align(
                                    "GOPUNION inputs have incompatible headers".into(),
                                )))
                            }
                            _ => {}
                        }
                    }
                    c.t_index += t_base;
                    c.volume = c.volume.translate(0.0, 0.0, 0.0, time_base);
                    seen_t_max = seen_t_max.max(c.t_index + 1);
                    seen_time_max = seen_time_max.max(c.volume.t().hi());
                    Some(Ok(c))
                });
            }
            None => {
                // Move to the next input, re-based after this one.
                t_base = seen_t_max;
                time_base = seen_time_max;
                current = inputs.next();
                current.as_ref()?;
            }
        }
    }))
}

/// `TILEUNION`: stitch aligned single-tile encoded streams (given in
/// row-major tile order) into one tiled stream without decoding.
///
/// All inputs must yield exactly one single-tile chunk per time step,
/// with identical frame types and compatible parameters — which is
/// exactly what a tiling subquery produces. Per-tile QPs may differ.
pub fn tile_union(
    inputs: Vec<ChunkStream>,
    cols: usize,
    rows: usize,
    metrics: Metrics,
) -> ChunkStream {
    let mut grouped: Vec<TimeGrouped> = inputs.into_iter().map(TimeGrouped::new).collect();
    let expected = cols * rows;
    Box::new(std::iter::from_fn(move || {
        let mut tiles: Vec<Chunk> = Vec::with_capacity(expected);
        for (i, g) in grouped.iter_mut().enumerate() {
            match g.next() {
                None => {
                    if i == 0 {
                        return None; // all streams exhausted together
                    }
                    return Some(Err(ExecError::Align(format!(
                        "TILEUNION input {i} ended early"
                    ))));
                }
                Some(Err(e)) => return Some(Err(e)),
                Some(Ok(mut group)) => {
                    if group.len() != 1 {
                        return Some(Err(ExecError::Align(format!(
                            "TILEUNION input {i} must be single-part, got {} parts",
                            group.len()
                        ))));
                    }
                    match group.pop() {
                        Some(t) => tiles.push(t),
                        None => {
                            return Some(Err(ExecError::Align(format!(
                                "TILEUNION input {i} produced no chunk"
                            ))))
                        }
                    }
                }
            }
        }
        if tiles.len() != expected {
            return Some(Err(ExecError::Align(format!(
                "TILEUNION needs {expected} tiles, got {}",
                tiles.len()
            ))));
        }
        Some(metrics.time("TILEUNION", || stitch(&tiles, cols, rows)))
    }))
}

fn stitch(tiles: &[Chunk], cols: usize, rows: usize) -> Result<Chunk> {
    let mut gops = Vec::with_capacity(tiles.len());
    let mut first_header: Option<SequenceHeader> = None;
    let mut volume: Option<Volume> = None;
    let t_index = tiles[0].t_index;
    for c in tiles {
        if c.t_index != t_index {
            return Err(ExecError::Align("TILEUNION inputs are time-misaligned".into()));
        }
        match &c.payload {
            ChunkPayload::Encoded { header, gop } => {
                if header.grid != TileGrid::SINGLE {
                    return Err(ExecError::Align("TILEUNION inputs must be single-tile".into()));
                }
                match &first_header {
                    None => first_header = Some(*header),
                    Some(h) => {
                        if (h.width, h.height, h.fps, h.codec, h.gop_length)
                            != (header.width, header.height, header.fps, header.codec, header.gop_length)
                        {
                            return Err(ExecError::Align(
                                "TILEUNION tile parameters disagree".into(),
                            ));
                        }
                    }
                }
                gops.push(gop.clone());
            }
            ChunkPayload::Decoded { .. } => {
                return Err(ExecError::Domain("TILEUNION requires encoded input".into()))
            }
        }
        volume = Some(match volume {
            None => c.volume,
            Some(v) => v.hull(&c.volume),
        });
    }
    let th = first_header
        .ok_or_else(|| ExecError::Align("TILEUNION with no input tiles".into()))?;
    let stitched = EncodedGop::stitch_tiles(&gops)?;
    let header = SequenceHeader {
        width: th.width * cols,
        height: th.height * rows,
        grid: TileGrid::new(cols, rows),
        ..th
    };
    Ok(Chunk {
        t_index,
        part: 0,
        volume: volume
            .ok_or_else(|| ExecError::Align("TILEUNION tiles carry no volume".into()))?,
        info: tiles[0].info,
        payload: ChunkPayload::Encoded { header, gop: stitched },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::StreamInfo;
    use lightdb_codec::{Decoder, Encoder, EncoderConfig};
    use lightdb_frame::{Frame, Yuv};

    fn encoded_chunks(frames_per_gop: usize, gops: usize, grid: TileGrid) -> Vec<Chunk> {
        let total = frames_per_gop * gops;
        let frames: Vec<Frame> = (0..total)
            .map(|i| {
                let mut f = Frame::new(64, 32);
                for y in 0..32 {
                    for x in 0..64 {
                        f.set(x, y, Yuv::new(((x + y + 7 * i) % 256) as u8, 128, 128));
                    }
                }
                f
            })
            .collect();
        let enc = Encoder::new(EncoderConfig {
            gop_length: frames_per_gop,
            qp: 28,
            grid,
            ..Default::default()
        })
        .unwrap();
        let stream = enc.encode(&frames).unwrap();
        stream
            .gops
            .iter()
            .enumerate()
            .map(|(i, g)| Chunk {
                t_index: i,
                part: 0,
                volume: Volume::sphere_at(
                    0.0,
                    0.0,
                    0.0,
                    Interval::new(i as f64, (i + 1) as f64),
                ),
                info: StreamInfo::origin(30),
                payload: ChunkPayload::Encoded { header: stream.header, gop: g.clone() },
            })
            .collect()
    }

    fn to_stream(chunks: Vec<Chunk>) -> ChunkStream {
        Box::new(chunks.into_iter().map(Ok))
    }

    #[test]
    fn gop_select_passes_only_overlapping_gops() {
        let chunks = encoded_chunks(30, 3, TileGrid::SINGLE);
        let m = Metrics::new();
        let out: Vec<Chunk> = gop_select(to_stream(chunks), (60, 89), m.clone())
            .map(|c| c.unwrap())
            .collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].t_index, 2);
        assert!(m.count("GOPSELECT") >= 1);
    }

    #[test]
    fn gop_select_range_spanning_boundary() {
        let chunks = encoded_chunks(30, 3, TileGrid::SINGLE);
        let out: Vec<Chunk> = gop_select(to_stream(chunks), (29, 31), Metrics::new())
            .map(|c| c.unwrap())
            .collect();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn tile_select_extract_decodes_to_tile_region() {
        let chunks = encoded_chunks(4, 1, TileGrid::new(2, 1));
        let header = match &chunks[0].payload {
            ChunkPayload::Encoded { header, .. } => *header,
            _ => unreachable!(),
        };
        let full = Decoder::new()
            .decode_gop(&header, match &chunks[0].payload {
                ChunkPayload::Encoded { gop, .. } => gop,
                _ => unreachable!(),
            })
            .unwrap();
        let out: Vec<Chunk> = tile_select(to_stream(chunks), vec![1], Metrics::new())
            .map(|c| c.unwrap())
            .collect();
        assert_eq!(out.len(), 1);
        let (h, g) = match &out[0].payload {
            ChunkPayload::Encoded { header, gop } => (header, gop),
            _ => unreachable!(),
        };
        assert_eq!((h.width, h.height), (32, 32));
        let dec = Decoder::new().decode_gop(h, g).unwrap();
        for (d, f) in dec.iter().zip(full.iter()) {
            assert_eq!(d, &f.crop(32, 0, 32, 32));
        }
        // Angular volume is the right half of the sphere.
        assert!((out[0].volume.theta().lo() - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn gop_union_rebases_time() {
        let a = encoded_chunks(30, 2, TileGrid::SINGLE);
        let b = encoded_chunks(30, 1, TileGrid::SINGLE);
        let out: Vec<Chunk> =
            gop_union(vec![to_stream(a), to_stream(b)], Metrics::new())
                .map(|c| c.unwrap())
                .collect();
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].t_index, 2);
        assert!((out[2].volume.t().lo() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gop_union_rejects_mismatched_headers() {
        let a = encoded_chunks(30, 1, TileGrid::SINGLE);
        let b = encoded_chunks(15, 1, TileGrid::SINGLE); // different gop_length
        let r: Result<Vec<Chunk>> =
            gop_union(vec![to_stream(a), to_stream(b)], Metrics::new()).collect();
        assert!(r.is_err());
    }

    #[test]
    fn tile_select_then_tile_union_roundtrips_bytes() {
        let chunks = encoded_chunks(4, 2, TileGrid::new(2, 1));
        let originals: Vec<EncodedGop> = chunks
            .iter()
            .map(|c| match &c.payload {
                ChunkPayload::Encoded { gop, .. } => gop.clone(),
                _ => unreachable!(),
            })
            .collect();
        let left = tile_select(to_stream(chunks.clone()), vec![0], Metrics::new());
        let right = tile_select(to_stream(chunks), vec![1], Metrics::new());
        let out: Vec<Chunk> = tile_union(vec![left, right], 2, 1, Metrics::new())
            .map(|c| c.unwrap())
            .collect();
        assert_eq!(out.len(), 2);
        for (c, orig) in out.iter().zip(originals.iter()) {
            match &c.payload {
                ChunkPayload::Encoded { gop, header } => {
                    assert_eq!(gop, orig, "stitched GOP must be byte-identical");
                    assert_eq!(header.grid, TileGrid::new(2, 1));
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn tile_union_detects_early_end() {
        let a = encoded_chunks(4, 2, TileGrid::SINGLE);
        let b = encoded_chunks(4, 1, TileGrid::SINGLE);
        let r: Result<Vec<Chunk>> =
            tile_union(vec![to_stream(a), to_stream(b)], 2, 1, Metrics::new()).collect();
        assert!(r.is_err());
    }

    #[test]
    fn tile_volume_partitions_the_sphere() {
        let v = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 1.0));
        let grid = TileGrid::new(4, 4);
        let vols: Vec<Volume> = (0..16).map(|i| tile_volume(&v, &grid, i)).collect();
        // Tiles abut and cover the angular domain.
        assert!((vols[0].theta().lo()).abs() < 1e-9);
        assert!((vols[3].theta().hi() - THETA_PERIOD).abs() < 1e-9);
        assert!((vols[15].phi().hi() - PHI_MAX).abs() < 1e-9);
        assert!((vols[5].theta().lo() - THETA_PERIOD / 4.0).abs() < 1e-9);
    }
}
