//! Decoded-domain physical operators.
//!
//! These operators work on chunks whose payload is device-resident
//! frames. CPU variants are sequential reference implementations;
//! GPU variants parallelise across rows (row-parallel kernels) or
//! across frames, and the GPU encoder uses a hardware-style narrow
//! motion search.

use crate::chunk::{is_omega, Chunk, ChunkPayload, TimeGrouped};
use crate::device::{gpu_map, gpu_row_kernel, transfer_frames, Device};
use crate::metrics::{counters, Metrics};
use crate::parallel::{par_map_chunks_ctx, Parallelism};
use crate::query_ctx::QueryCtx;
use crate::{ChunkStream, ExecError, Result};
use lightdb_storage::faults::{fail_point, sites};
use lightdb_codec::encoder::encode_tile_opts_into;
use lightdb_codec::gop::{EncodedFrame, EncodedGop, FrameType};
use lightdb_codec::scratch::{DecoderScratch, EncoderScratch};
use lightdb_codec::{CodecKind, Decoder, SequenceHeader, TileGrid};
use lightdb_core::algebra::{MergeFunction, VolumePredicate};
use lightdb_core::udf::{BuiltinInterp, InterpFunction, MapFunction};
use lightdb_frame::{Frame, Yuv};
use lightdb_geom::{Dimension, Interval, Volume};

/// Narrow motion-search range used by the simulated hardware (GPU)
/// encoder, mirroring NVENC's speed-over-density trade-off.
pub const GPU_SEARCH_RANGE: i32 = 4;

thread_local! {
    // Per-worker codec scratch arenas. `par_map_chunks` fans chunks
    // out across worker threads, so thread-locals give each worker its
    // own reusable buffers with no contention; scratch contents never
    // influence output bytes, so results stay identical at any thread
    // count.
    static ENC_SCRATCH: std::cell::RefCell<EncoderScratch> =
        std::cell::RefCell::new(EncoderScratch::new());
    static DEC_SCRATCH: std::cell::RefCell<DecoderScratch> =
        std::cell::RefCell::new(DecoderScratch::new());
}

// ------------------------------------------------------------------ decode

/// `DECODE`: encoded chunks → decoded frames on `device`. The GPU
/// variant decodes a tiled frame's tiles in parallel.
pub fn decode_chunks(input: ChunkStream, device: Device, metrics: Metrics) -> ChunkStream {
    decode_chunks_par(input, device, metrics, Parallelism::SERIAL, QueryCtx::unbounded())
}

/// Chunk-parallel `DECODE`: independent GOPs decode on up to
/// `par.threads()` workers; output order (and bytes) match the serial
/// path. When `ctx` reports its deadline at risk, decodes switch to
/// the cheap prediction-only path ([`decode_one_degraded`]) so the
/// query lands inside its budget instead of missing it.
pub fn decode_chunks_par(
    input: ChunkStream,
    device: Device,
    metrics: Metrics,
    par: Parallelism,
    ctx: QueryCtx,
) -> ChunkStream {
    decode_chunks_par_shared(input, device, metrics, par, ctx, None)
}

/// [`decode_chunks_par`] with an optional shared decoded-GOP cache
/// (see [`crate::sharedscan::SharedDecode`]): concurrent queries
/// decoding the same encoded bytes coalesce into one decode and
/// trailing queries hit the cache. The `EXEC_DECODE_GOP` failpoint
/// fires per chunk *before* any cache lookup, so fault-injection
/// observes every would-be decode whether or not it is shared; and
/// degraded (deadline-at-risk) decodes bypass the cache entirely —
/// their output reflects this query's time pressure, not the bytes.
pub fn decode_chunks_par_shared(
    input: ChunkStream,
    device: Device,
    metrics: Metrics,
    par: Parallelism,
    ctx: QueryCtx,
    shared: Option<std::sync::Arc<crate::sharedscan::SharedDecode>>,
) -> ChunkStream {
    let at_risk = ctx.clone();
    par_map_chunks_ctx(input, par, ctx, move |c| {
        fail_point(sites::EXEC_DECODE_GOP)?;
        if at_risk.deadline_at_risk() {
            decode_one_degraded(c, device, &metrics)
        } else if let Some(shared) = &shared {
            shared.decode(c, device, &metrics, &at_risk)
        } else {
            decode_one(c, device, &metrics)
        }
    })
}

/// Decodes one chunk (no-op when already decoded).
pub fn decode_one(c: Chunk, device: Device, metrics: &Metrics) -> Result<Chunk> {
    match c.payload {
        ChunkPayload::Decoded { .. } => Ok(c), // already decoded
        ChunkPayload::Encoded { header, ref gop } => {
            let frames = metrics.time("DECODE", || -> Result<Vec<Frame>> {
                let dec = Decoder::new();
                if device == Device::Gpu && header.grid.tile_count() > 1 {
                    // Parallel per-tile decode, then blit.
                    let tiles: Vec<usize> = (0..header.grid.tile_count()).collect();
                    let parts = gpu_map(tiles, |_, t| {
                        dec.decode_gop_tile(&header, gop, t).map(|fs| (t, fs))
                    });
                    let mut frames =
                        vec![Frame::new(header.width, header.height); gop.frame_count()];
                    for r in parts {
                        let (t, fs) = r?;
                        let rect = header.grid.tile_rect(t, header.width, header.height);
                        for (f, tf) in frames.iter_mut().zip(fs.iter()) {
                            f.blit(tf, rect.x0, rect.y0);
                        }
                    }
                    Ok(frames)
                } else {
                    DEC_SCRATCH
                        .with(|s| Ok(dec.decode_gop_scratch(&header, gop, &mut s.borrow_mut())?))
                }
            })?;
            Ok(Chunk {
                payload: ChunkPayload::Decoded { frames, device },
                ..c
            })
        }
    }
}

/// Prediction-only decode of one chunk: the keyframe is reconstructed
/// in full, predicted frames hold the previous picture. Roughly one
/// frame's decode cost per GOP; used when a query's deadline is at
/// risk. Each degraded GOP is counted in
/// [`counters::DEGRADED_GOPS`].
pub fn decode_one_degraded(c: Chunk, device: Device, metrics: &Metrics) -> Result<Chunk> {
    match c.payload {
        ChunkPayload::Decoded { .. } => Ok(c), // already decoded
        ChunkPayload::Encoded { header, ref gop } => {
            let frames = metrics.time("DECODE", || -> Result<Vec<Frame>> {
                Ok(Decoder::new().decode_gop_degraded(&header, gop)?)
            })?;
            metrics.bump(counters::DEGRADED_GOPS);
            Ok(Chunk {
                payload: ChunkPayload::Decoded { frames, device },
                ..c
            })
        }
    }
}

// ------------------------------------------------------------------ encode

/// `ENCODE`: decoded chunks → encoded chunks (one GOP per chunk).
/// The GPU variant uses the narrow hardware-style motion search.
pub fn encode_chunks(
    input: ChunkStream,
    device: Device,
    codec: CodecKind,
    qp: u8,
    metrics: Metrics,
) -> ChunkStream {
    encode_chunks_par(input, device, codec, qp, metrics, Parallelism::SERIAL, QueryCtx::unbounded())
}

/// Chunk-parallel `ENCODE`: each chunk is one GOP (and, post-
/// PARTITION, one tile), so chunks encode independently across up to
/// `par.threads()` workers with byte-identical output.
#[allow(clippy::too_many_arguments)]
pub fn encode_chunks_par(
    input: ChunkStream,
    device: Device,
    codec: CodecKind,
    qp: u8,
    metrics: Metrics,
    par: Parallelism,
    ctx: QueryCtx,
) -> ChunkStream {
    par_map_chunks_ctx(input, par, ctx, move |c| {
        encode_chunk(c, device, codec, qp, &metrics)
    })
}

/// Encodes one chunk (no-op when already encoded).
pub fn encode_chunk(
    c: Chunk,
    device: Device,
    codec: CodecKind,
    qp: u8,
    metrics: &Metrics,
) -> Result<Chunk> {
    match c.payload {
        ChunkPayload::Encoded { .. } => Ok(c), // already encoded
        ChunkPayload::Decoded { ref frames, .. } => {
            metrics.time("ENCODE", || encode_one_gop(&c, frames, device, codec, qp))
        }
    }
}

/// Encodes one chunk's frames as a single GOP. Exposed for the
/// executor's auto-encode at `STORE`.
pub fn encode_one_gop(
    c: &Chunk,
    frames: &[Frame],
    device: Device,
    codec: CodecKind,
    qp: u8,
) -> Result<Chunk> {
    let first = frames
        .first()
        .ok_or_else(|| ExecError::Other("encode of empty chunk".into()))?;
    let (w, h) = (first.width(), first.height());
    TileGrid::SINGLE.validate(w, h)?;
    let search = if device == Device::Gpu {
        GPU_SEARCH_RANGE
    } else {
        codec.search_range()
    };
    let mut gop_frames = Vec::with_capacity(frames.len());
    ENC_SCRATCH.with(|scratch| {
        let EncoderScratch {
            spare, recon, bits, ..
        } = &mut *scratch.borrow_mut();
        for (i, f) in frames.iter().enumerate() {
            let ftype = if i == 0 {
                FrameType::Key
            } else {
                FrameType::Predicted
            };
            // Never read a reconstruction left over from another chunk.
            let reference = if i == 0 { None } else { recon.first() };
            let payload = encode_tile_opts_into(f, reference, qp, codec, search, spare, bits);
            // The fresh reconstruction becomes the next frame's reference.
            if recon.is_empty() {
                recon.push(std::mem::replace(spare, Frame::empty()));
            } else {
                std::mem::swap(&mut recon[0], spare);
            }
            gop_frames.push(EncodedFrame {
                frame_type: ftype,
                tiles: vec![payload],
            });
        }
    });
    let header = SequenceHeader {
        codec,
        width: w,
        height: h,
        fps: c.info.fps,
        gop_length: frames.len().max(1),
        grid: TileGrid::SINGLE,
    };
    Ok(Chunk {
        payload: ChunkPayload::Encoded {
            header,
            gop: EncodedGop { frames: gop_frames },
        },
        ..c.clone()
    })
}

// ------------------------------------------------------------------ transfer

/// `TRANSFER`: deep-copies decoded frames onto another device.
pub fn transfer(input: ChunkStream, to: Device, metrics: Metrics) -> ChunkStream {
    Box::new(input.map(move |c| {
        let c = c?;
        match c.payload {
            ChunkPayload::Decoded { ref frames, device } if device != to => {
                let copied = metrics.time("TRANSFER", || transfer_frames(frames));
                Ok(Chunk {
                    payload: ChunkPayload::Decoded {
                        frames: copied,
                        device: to,
                    },
                    ..c
                })
            }
            _ => Ok(c),
        }
    }))
}

// ------------------------------------------------------------------ select

/// `SELECT` over decoded chunks: temporal trim, angular crop, and
/// spatial part filtering (including light-slab uv sampling).
pub fn select_frames(
    input: ChunkStream,
    predicate: VolumePredicate,
    _device: Device,
    metrics: Metrics,
) -> ChunkStream {
    Box::new(input.filter_map(move |c| {
        let c = match c {
            Err(e) => return Some(Err(e)),
            Ok(c) => c,
        };
        metrics
            .time("SELECT", || select_one(c, &predicate))
            .transpose()
    }))
}

fn select_one(c: Chunk, predicate: &VolumePredicate) -> Result<Option<Chunk>> {
    // Slab spatial sampling: a point selection on x/y picks uv samples.
    if let Some(slab) = c.info.slab {
        if let (Some(xi), yi) = (predicate.get(Dimension::X), predicate.get(Dimension::Y)) {
            if xi.is_point() {
                return slab_point_select(
                    c,
                    slab,
                    xi.lo(),
                    yi.map(|i| i.lo()).unwrap_or(0.0),
                    predicate,
                );
            }
        }
    }
    let restricted = match predicate.apply(&c.volume) {
        None => return Ok(None),
        Some(v) => v,
    };
    if restricted == c.volume {
        return Ok(Some(c));
    }
    let ChunkPayload::Decoded { frames, device } = c.payload else {
        return Err(ExecError::Domain(
            "frame-level SELECT requires decoded input (planner bug)".into(),
        ));
    };
    // Temporal trim at frame granularity.
    let t0 = c.volume.t().lo();
    let fps = c.info.fps as f64;
    let lo_f = (((restricted.t().lo() - t0) * fps).round() as usize).min(frames.len());
    let hi_f = (((restricted.t().hi() - t0) * fps).round() as usize).clamp(lo_f, frames.len());
    let mut frames: Vec<Frame> = frames[lo_f..hi_f.max(lo_f + 1).min(frames.len().max(1))].to_vec();
    if frames.is_empty() {
        return Ok(None);
    }
    // Angular crop (equirectangular): θ→x, φ→y.
    let (w, h) = (frames[0].width(), frames[0].height());
    let th = c.volume.theta();
    let ph = c.volume.phi();
    let fx0 = (restricted.theta().lo() - th.lo()) / th.length().max(1e-12);
    let fx1 = (restricted.theta().hi() - th.lo()) / th.length().max(1e-12);
    let fy0 = (restricted.phi().lo() - ph.lo()) / ph.length().max(1e-12);
    let fy1 = (restricted.phi().hi() - ph.lo()) / ph.length().max(1e-12);
    let mut x0 = ((fx0 * w as f64) as usize) & !1;
    let mut x1 = (((fx1 * w as f64).ceil() as usize).min(w) + 1) & !1;
    let mut y0 = ((fy0 * h as f64) as usize) & !1;
    let mut y1 = (((fy1 * h as f64).ceil() as usize).min(h) + 1) & !1;
    x1 = x1.min(w);
    y1 = y1.min(h);
    if x1 <= x0 {
        x0 = 0;
        x1 = 2.min(w);
    }
    if y1 <= y0 {
        y0 = 0;
        y1 = 2.min(h);
    }
    if (x0, x1, y0, y1) != (0, w, 0, h) {
        frames = frames
            .into_iter()
            .map(|f| f.crop(x0, y0, x1 - x0, y1 - y0))
            .collect();
    }
    // Exact pixel-aligned angular coverage.
    let theta_iv = Interval::new(
        th.lo() + th.length() * x0 as f64 / w as f64,
        th.lo() + th.length() * x1 as f64 / w as f64,
    );
    let phi_iv = Interval::new(
        ph.lo() + ph.length() * y0 as f64 / h as f64,
        ph.lo() + ph.length() * y1 as f64 / h as f64,
    );
    let t_iv = Interval::new(
        t0 + lo_f as f64 / fps,
        t0 + (lo_f + frames.len()) as f64 / fps,
    );
    let volume = restricted
        .with(Dimension::Theta, theta_iv)
        .with(Dimension::Phi, phi_iv)
        .with(Dimension::T, t_iv);
    Ok(Some(Chunk {
        volume,
        payload: ChunkPayload::Decoded { frames, device },
        ..c
    }))
}

/// Light-slab monoscopic point selection: pick the uv sample nearest
/// the requested position; the chunk's frames collapse to one.
fn slab_point_select(
    c: Chunk,
    slab: crate::chunk::SlabInfo,
    x: f64,
    y: f64,
    predicate: &VolumePredicate,
) -> Result<Option<Chunk>> {
    // Temporal constraint still applies at chunk granularity.
    if let Some(t) = predicate.get(Dimension::T) {
        if c.volume.t().intersect(&t).is_none() {
            return Ok(None);
        }
    }
    let ChunkPayload::Decoded { frames, device } = c.payload else {
        return Err(ExecError::Domain(
            "slab SELECT requires decoded input".into(),
        ));
    };
    let idx = slab.nearest_sample(x, y);
    let frame = frames
        .get(idx)
        .ok_or_else(|| ExecError::Other(format!("slab sample {idx} missing")))?
        .clone();
    let volume = c
        .volume
        .with(Dimension::X, Interval::point(x))
        .with(Dimension::Y, Interval::point(y));
    let mut info = c.info;
    info.slab = None; // the result is a single view, not a slab
    info.position = lightdb_geom::Point3::new(x, y, c.info.position.z);
    Ok(Some(Chunk {
        volume,
        info,
        payload: ChunkPayload::Decoded {
            frames: vec![frame],
            device,
        },
        ..c
    }))
}

// ------------------------------------------------------------------ map

/// `MAP`: apply a UDF to every frame. GPU: row-parallel for kernels
/// that support it, frame-parallel otherwise.
pub fn map_frames(
    input: ChunkStream,
    f: MapFunction,
    device: Device,
    metrics: Metrics,
) -> ChunkStream {
    map_frames_par(input, f, device, metrics, Parallelism::SERIAL, QueryCtx::unbounded())
}

/// Chunk-parallel `MAP`: per-part/per-GOP UDF application fans out
/// across up to `par.threads()` workers (UDFs are `Send + Sync` by
/// trait bound). Point UDFs are handled by the executor via
/// [`apply_point_map`].
pub fn map_frames_par(
    input: ChunkStream,
    f: MapFunction,
    device: Device,
    metrics: Metrics,
    par: Parallelism,
    ctx: QueryCtx,
) -> ChunkStream {
    par_map_chunks_ctx(input, par, ctx, move |c| map_chunk(c, &f, device, &metrics))
}

/// Applies a map UDF to one chunk's frames.
pub fn map_chunk(c: Chunk, f: &MapFunction, device: Device, metrics: &Metrics) -> Result<Chunk> {
    fail_point(sites::EXEC_CHUNK_MAP)?;
    let ChunkPayload::Decoded { frames, device: d } = c.payload else {
        return Err(ExecError::Domain(
            "MAP requires decoded input (planner bug)".into(),
        ));
    };
    let out = metrics.time("MAP", || apply_map(f, frames, device));
    Ok(Chunk {
        payload: ChunkPayload::Decoded {
            frames: out,
            device: d,
        },
        ..c
    })
}

fn apply_map(f: &MapFunction, frames: Vec<Frame>, device: Device) -> Vec<Frame> {
    match f {
        MapFunction::Builtin(b) => {
            use lightdb_core::udf::MapUdf;
            if device == Device::Gpu && b.parallelizable() {
                frames
                    .iter()
                    .map(|fr| gpu_row_kernel(fr, |s, d, lo, hi| b.apply_rows(s, d, lo, hi)))
                    .collect()
            } else {
                frames.iter().map(|fr| b.apply(fr)).collect()
            }
        }
        MapFunction::Custom(u) => {
            if device == Device::Gpu && frames.len() > 1 {
                gpu_map(frames, |_, fr| u.apply(&fr))
            } else {
                frames.iter().map(|fr| u.apply(fr)).collect()
            }
        }
        MapFunction::Point(_) => {
            // Point UDFs are evaluated via apply_point_map by the
            // executor, which knows the chunk volume; reaching here
            // means the planner skipped that path.
            frames
        }
    }
}

/// Evaluates a point-granular UDF over a chunk, supplying each
/// pixel's 6-D coordinates through the equirectangular mapping.
pub fn apply_point_map(c: &Chunk, udf: &dyn lightdb_core::udf::PointMapUdf) -> Result<Chunk> {
    fail_point(sites::EXEC_CHUNK_MAP)?;
    let ChunkPayload::Decoded { frames, device } = &c.payload else {
        return Err(ExecError::Domain("point MAP requires decoded input".into()));
    };
    let th = c.volume.theta();
    let ph = c.volume.phi();
    let t0 = c.volume.t().lo();
    let fps = c.info.fps as f64;
    let pos = c.info.position;
    let out: Vec<Frame> = frames
        .iter()
        .enumerate()
        .map(|(fi, fr)| {
            let (w, h) = (fr.width(), fr.height());
            let mut o = fr.clone();
            let t = t0 + fi as f64 / fps;
            for y in 0..h {
                let phi = ph.lo() + ph.length() * (y as f64 + 0.5) / h as f64;
                for x in 0..w {
                    let theta = th.lo() + th.length() * (x as f64 + 0.5) / w as f64;
                    let p = lightdb_geom::Point6::new(pos.x, pos.y, pos.z, t, theta, phi);
                    o.set(x, y, udf.eval(&p, fr.get(x, y)));
                }
            }
            o
        })
        .collect();
    Ok(Chunk {
        payload: ChunkPayload::Decoded {
            frames: out,
            device: *device,
        },
        ..c.clone()
    })
}

// ------------------------------------------------------------------ discretize

/// `DISCRETIZE`: angular steps resample resolution; a temporal step
/// decimates frames.
pub fn discretize_frames(
    input: ChunkStream,
    steps: Vec<(Dimension, f64)>,
    _device: Device,
    metrics: Metrics,
) -> ChunkStream {
    Box::new(input.map(move |c| {
        let c = c?;
        metrics.time("DISCRETIZE", || discretize_one(c, &steps))
    }))
}

fn discretize_one(c: Chunk, steps: &[(Dimension, f64)]) -> Result<Chunk> {
    let ChunkPayload::Decoded { mut frames, device } = c.payload else {
        return Err(ExecError::Domain(
            "DISCRETIZE requires decoded input".into(),
        ));
    };
    let mut info = c.info;
    let mut target_w: Option<usize> = None;
    let mut target_h: Option<usize> = None;
    for (dim, step) in steps {
        match dim {
            Dimension::Theta => {
                let n = (c.volume.theta().length() / step).round().max(2.0) as usize;
                target_w = Some(n & !1);
            }
            Dimension::Phi => {
                let n = (c.volume.phi().length() / step).round().max(2.0) as usize;
                target_h = Some(n & !1);
            }
            Dimension::T => {
                let keep_every = (step * info.fps as f64).round().max(1.0) as usize;
                frames = frames.into_iter().step_by(keep_every).collect();
                info.fps = (info.fps as usize / keep_every).max(1) as u32;
            }
            _ => {
                return Err(ExecError::Domain(format!(
                    "DISCRETIZE along {dim} is not supported for video-backed TLFs"
                )))
            }
        }
    }
    if target_w.is_some() || target_h.is_some() {
        let (w0, h0) = (frames[0].width(), frames[0].height());
        let w = target_w.unwrap_or(w0).max(2);
        let h = target_h.unwrap_or(h0).max(2);
        if (w, h) != (w0, h0) {
            frames = frames.into_iter().map(|f| f.resize(w, h)).collect();
        }
    }
    Ok(Chunk {
        info,
        payload: ChunkPayload::Decoded { frames, device },
        ..c
    })
}

// ------------------------------------------------------------------ partition / flatten

/// `PARTITION` over decoded chunks: angular specs crop each chunk
/// into a tile grid (tiles become parts); a temporal spec must align
/// with the chunk (GOP) granularity, where it is a logical no-op.
/// Encoded chunks pass through when only temporally partitioned.
pub fn partition_chunks(
    input: ChunkStream,
    spec: Vec<(Dimension, f64)>,
    metrics: Metrics,
) -> ChunkStream {
    let mut pending: Vec<Chunk> = Vec::new();
    let mut input = input;
    Box::new(std::iter::from_fn(move || loop {
        if let Some(c) = pending.pop() {
            return Some(Ok(c));
        }
        let c = match input.next()? {
            Err(e) => return Some(Err(e)),
            Ok(c) => c,
        };
        match metrics.time("PARTITION", || partition_one(c, &spec)) {
            Err(e) => return Some(Err(e)),
            Ok(mut chunks) => {
                chunks.reverse();
                pending = chunks;
            }
        }
    }))
}

fn partition_one(c: Chunk, spec: &[(Dimension, f64)]) -> Result<Vec<Chunk>> {
    let mut cols = 1usize;
    let mut rows = 1usize;
    for (dim, delta) in spec {
        match dim {
            Dimension::T => {
                let d = c.volume.t().length();
                if *delta + 1e-9 < d {
                    return Err(ExecError::Domain(format!(
                        "temporal partition Δt={delta} finer than chunk duration {d}; \
                         re-encode with a shorter GOP"
                    )));
                }
                // Δt ≥ chunk duration: each chunk already is a partition.
            }
            Dimension::Theta => {
                cols = (c.volume.theta().length() / delta).round().max(1.0) as usize;
            }
            Dimension::Phi => {
                rows = (c.volume.phi().length() / delta).round().max(1.0) as usize;
            }
            _ => {
                return Err(ExecError::Domain(format!(
                    "PARTITION along {dim} is not supported for single-point TLFs"
                )))
            }
        }
    }
    if cols == 1 && rows == 1 {
        return Ok(vec![c]);
    }
    let ChunkPayload::Decoded { frames, device } = c.payload else {
        return Err(ExecError::Domain(
            "angular PARTITION requires decoded input (planner bug)".into(),
        ));
    };
    let (w, h) = (frames[0].width(), frames[0].height());
    if w % cols != 0
        || h % rows != 0
        || !(w / cols).is_multiple_of(2)
        || !(h / rows).is_multiple_of(2)
    {
        return Err(ExecError::Domain(format!(
            "frame {w}×{h} does not partition into {cols}×{rows} even tiles"
        )));
    }
    let (tw, thh) = (w / cols, h / rows);
    let grid = TileGrid::new(cols, rows);
    let mut out = Vec::with_capacity(cols * rows);
    for tile in 0..cols * rows {
        let (col, row) = (tile % cols, tile / cols);
        let tile_frames: Vec<Frame> = frames
            .iter()
            .map(|f| f.crop(col * tw, row * thh, tw, thh))
            .collect();
        out.push(Chunk {
            t_index: c.t_index,
            part: c.part * cols * rows + tile,
            volume: crate::hops::tile_volume(&c.volume, &grid, tile),
            info: c.info,
            payload: ChunkPayload::Decoded {
                frames: tile_frames,
                device,
            },
        });
    }
    Ok(out)
}

/// `FLATTEN`: composite each time step's parts back into one part.
pub fn flatten_chunks(input: ChunkStream, metrics: Metrics) -> ChunkStream {
    let grouped = TimeGrouped::new(input);
    Box::new(grouped.map(move |g| {
        let group = g?;
        metrics
            .time("FLATTEN", || composite_group(group, &MergeFunction::Last))
            .map(|mut parts| {
                debug_assert!(!parts.is_empty());
                parts.swap_remove(0)
            })
    }))
}

// ------------------------------------------------------------------ union

/// `UNION` over decoded chunks: a k-way merge of the inputs' time
/// steps; co-temporal parts at the same spatial point are composited
/// with the merge function (the null token ω marks transparent
/// pixels).
pub fn union_frames(
    inputs: Vec<ChunkStream>,
    merge: MergeFunction,
    _device: Device,
    metrics: Metrics,
) -> ChunkStream {
    let mut grouped: Vec<std::iter::Peekable<TimeGrouped>> = inputs
        .into_iter()
        .map(|s| TimeGrouped::new(s).peekable())
        .collect();
    let mut outbox: Vec<Chunk> = Vec::new();
    Box::new(std::iter::from_fn(move || loop {
        if let Some(c) = outbox.pop() {
            return Some(Ok(c));
        }
        // Find the smallest t_index among peeked groups.
        let mut min_t: Option<usize> = None;
        for g in grouped.iter_mut() {
            match g.peek() {
                None => {}
                Some(Err(_)) => {
                    // Surface the error.
                    return g.next().map(|r| r.map(|_| unreachable!()));
                }
                Some(Ok(group)) => {
                    let t = group[0].t_index;
                    min_t = Some(min_t.map_or(t, |m: usize| m.min(t)));
                }
            }
        }
        let t = min_t?;
        let mut merged: Vec<Chunk> = Vec::new();
        for g in grouped.iter_mut() {
            if matches!(g.peek(), Some(Ok(group)) if group[0].t_index == t) {
                match g.next() {
                    Some(Ok(group)) => merged.extend(group),
                    Some(Err(e)) => return Some(Err(e)),
                    None => {}
                }
            }
        }
        match metrics.time("UNION", || composite_group(merged, &merge)) {
            Err(e) => return Some(Err(e)),
            Ok(mut parts) => {
                // Re-number parts within the time step.
                for (i, p) in parts.iter_mut().enumerate() {
                    p.part = i;
                }
                parts.reverse();
                outbox = parts;
            }
        }
    }))
}

/// Composites a time step's chunks: parts at (approximately) the same
/// spatial position merge into the one with the widest angular
/// extent; distinct positions stay separate parts.
pub fn composite_group(group: Vec<Chunk>, merge: &MergeFunction) -> Result<Vec<Chunk>> {
    if group.is_empty() {
        return Err(ExecError::Align("empty union group".into()));
    }
    // Bucket by spatial position.
    let mut buckets: Vec<Vec<Chunk>> = Vec::new();
    'outer: for c in group {
        for b in buckets.iter_mut() {
            if b[0].info.position.distance(&c.info.position) < 1e-6 {
                b.push(c);
                continue 'outer;
            }
        }
        buckets.push(vec![c]);
    }
    let mut out = Vec::with_capacity(buckets.len());
    for mut bucket in buckets {
        if bucket.len() == 1 {
            if let Some(c) = bucket.pop() {
                out.push(c);
            }
            continue;
        }
        out.push(composite_bucket(bucket, merge)?);
    }
    Ok(out)
}

fn composite_bucket(bucket: Vec<Chunk>, merge: &MergeFunction) -> Result<Chunk> {
    // The densest input (pixels per radian) sets the canvas
    // resolution; the canvas covers the hull of all inputs' angular
    // extents, and inputs are blitted *in order* so merge-function
    // semantics (e.g. LAST) follow union input order.
    let hull = bucket
        .iter()
        .map(|c| c.volume)
        .reduce(|a, b| a.hull(&b))
        .ok_or_else(|| ExecError::Align("union bucket is empty".into()))?;
    let mut density_theta: f64 = 0.0;
    let mut density_phi: f64 = 0.0;
    let mut frame_count = 0usize;
    let mut device = Device::Cpu;
    for c in &bucket {
        let ChunkPayload::Decoded { frames, device: d } = &c.payload else {
            return Err(ExecError::Domain(
                "UNION compositing requires decoded input".into(),
            ));
        };
        if let Some(f) = frames.first() {
            density_theta =
                density_theta.max(f.width() as f64 / c.volume.theta().length().max(1e-12));
            density_phi = density_phi.max(f.height() as f64 / c.volume.phi().length().max(1e-12));
        }
        frame_count = frame_count.max(frames.len());
        device = *d;
    }
    if frame_count == 0 {
        return Err(ExecError::Align("union of empty chunks".into()));
    }
    let canvas_w = (((density_theta * hull.theta().length()).round() as usize).max(2) + 1) & !1;
    let canvas_h = (((density_phi * hull.phi().length()).round() as usize).max(2) + 1) & !1;
    let mut frames = vec![Frame::filled(canvas_w, canvas_h, crate::chunk::OMEGA); frame_count];
    for c in &bucket {
        let ChunkPayload::Decoded { frames: ov, .. } = &c.payload else {
            unreachable!("checked above");
        };
        if ov.is_empty() {
            continue;
        }
        blit_overlay(&mut frames, &hull, ov, &c.volume, merge);
    }
    let Some(first) = bucket.into_iter().next() else {
        return Err(ExecError::Align("union bucket is empty".into()));
    };
    Ok(Chunk {
        volume: hull,
        payload: ChunkPayload::Decoded { frames, device },
        ..first
    })
}

/// Blits overlay frames into base frames at the overlay's angular
/// position, resizing to the target pixel rect, skipping ω pixels,
/// and resolving overlaps with the merge function. Overlay frame `i`
/// pairs with base frame `i` (the last overlay frame broadcasts when
/// the overlay is shorter — static watermarks).
fn blit_overlay(
    base: &mut [Frame],
    base_vol: &Volume,
    overlay: &[Frame],
    ov_vol: &Volume,
    merge: &MergeFunction,
) {
    if base.is_empty() {
        return;
    }
    let (w, h) = (base[0].width(), base[0].height());
    let bth = base_vol.theta();
    let bph = base_vol.phi();
    let fx0 = ((ov_vol.theta().lo() - bth.lo()) / bth.length().max(1e-12)).clamp(0.0, 1.0);
    let fx1 = ((ov_vol.theta().hi() - bth.lo()) / bth.length().max(1e-12)).clamp(0.0, 1.0);
    let fy0 = ((ov_vol.phi().lo() - bph.lo()) / bph.length().max(1e-12)).clamp(0.0, 1.0);
    let fy1 = ((ov_vol.phi().hi() - bph.lo()) / bph.length().max(1e-12)).clamp(0.0, 1.0);
    let x0 = ((fx0 * w as f64) as usize) & !1;
    let y0 = ((fy0 * h as f64) as usize) & !1;
    let x1 = ((((fx1 * w as f64).ceil() as usize).min(w)) + 1) & !1;
    let y1 = ((((fy1 * h as f64).ceil() as usize).min(h)) + 1) & !1;
    let (x1, y1) = (x1.min(w), y1.min(h));
    if x1 <= x0 + 1 || y1 <= y0 + 1 {
        return;
    }
    let (tw, th) = (x1 - x0, y1 - y0);
    for (i, bf) in base.iter_mut().enumerate() {
        let ov = &overlay[i.min(overlay.len() - 1)];
        let scaled;
        let src = if ov.width() == tw && ov.height() == th {
            ov
        } else {
            scaled = ov.resize(tw, th);
            &scaled
        };
        for y in 0..th {
            for x in 0..tw {
                let s = src.get(x, y);
                if is_omega(s) {
                    continue; // null ray: base wins
                }
                let d = bf.get(x0 + x, y0 + y);
                let v = merge_pixels(merge, d, s);
                bf.set(x0 + x, y0 + y, v);
            }
        }
    }
}

fn merge_pixels(merge: &MergeFunction, first: Yuv, second: Yuv) -> Yuv {
    if is_omega(first) {
        return second;
    }
    match merge {
        MergeFunction::Last => second,
        MergeFunction::First => first,
        MergeFunction::Mean => Yuv::new(
            ((first.y as u16 + second.y as u16) / 2) as u8,
            ((first.u as u16 + second.u as u16) / 2) as u8,
            ((first.v as u16 + second.v as u16) / 2) as u8,
        ),
        MergeFunction::Custom(u) => u.merge(first, second),
    }
}

// ------------------------------------------------------------------ interpolate

/// `INTERPOLATE`: built-ins fill ω pixels from neighbours; custom
/// UDFs synthesise one part per time step from the group's parts
/// (e.g. a depth map from a stereo pair).
pub fn interpolate_frames(
    input: ChunkStream,
    f: InterpFunction,
    device: Device,
    metrics: Metrics,
) -> ChunkStream {
    match f {
        InterpFunction::Builtin(b) => Box::new(input.map(move |c| {
            let c = c?;
            let ChunkPayload::Decoded { frames, device: d } = c.payload else {
                return Err(ExecError::Domain(
                    "INTERPOLATE requires decoded input".into(),
                ));
            };
            let out = metrics.time("INTERPOLATE", || {
                frames
                    .iter()
                    .map(|fr| fill_nulls(fr, b))
                    .collect::<Vec<Frame>>()
            });
            Ok(Chunk {
                payload: ChunkPayload::Decoded {
                    frames: out,
                    device: d,
                },
                ..c
            })
        })),
        InterpFunction::Custom(udf) => {
            let grouped = TimeGrouped::new(input);
            let op: &'static str = if device == Device::Fpga {
                "INTERPOLATE[FPGA]"
            } else {
                "INTERPOLATE"
            };
            Box::new(grouped.map(move |g| {
                let group = g?;
                if group.len() < 2 {
                    return Err(ExecError::Align(format!(
                        "{} synthesis needs ≥2 co-temporal parts, got {}",
                        udf.name(),
                        group.len()
                    )));
                }
                let mut frame_sets: Vec<&Vec<Frame>> = Vec::with_capacity(group.len());
                for c in &group {
                    match &c.payload {
                        ChunkPayload::Decoded { frames, .. } => frame_sets.push(frames),
                        _ => {
                            return Err(ExecError::Domain(
                                "INTERPOLATE requires decoded input".into(),
                            ))
                        }
                    }
                }
                let n = frame_sets.iter().map(|f| f.len()).min().unwrap_or(0);
                let out: Vec<Frame> = metrics.time(op, || {
                    (0..n)
                        .map(|i| {
                            let inputs: Vec<&Frame> = frame_sets.iter().map(|fs| &fs[i]).collect();
                            udf.synthesize(&inputs)
                        })
                        .collect()
                });
                let volume = group
                    .iter()
                    .map(|c| c.volume)
                    .reduce(|a, b| a.hull(&b))
                    .ok_or_else(|| ExecError::Align("empty interpolation group".into()))?;
                Ok(Chunk {
                    t_index: group[0].t_index,
                    part: 0,
                    volume,
                    info: group[0].info,
                    payload: ChunkPayload::Decoded {
                        frames: out,
                        device: group[0].device(),
                    },
                })
            }))
        }
    }
}

/// Fills ω pixels from the nearest non-ω pixel on the same row
/// (then column for rows that are entirely null).
fn fill_nulls(f: &Frame, kind: BuiltinInterp) -> Frame {
    let (w, h) = (f.width(), f.height());
    let mut out = f.clone();
    for y in 0..h {
        // Forward then backward scan over the row.
        let mut last: Option<Yuv> = None;
        let mut gaps: Vec<usize> = Vec::new();
        for x in 0..w {
            let c = f.get(x, y);
            if is_omega(c) {
                gaps.push(x);
            } else {
                if let Some(prev) = last {
                    for &gx in &gaps {
                        let v = match kind {
                            BuiltinInterp::NearestNeighbor => {
                                // nearer endpoint wins
                                let left_dist = gx - gaps[0];
                                let right_dist = gaps[gaps.len() - 1] - gx;
                                if left_dist <= right_dist {
                                    prev
                                } else {
                                    c
                                }
                            }
                            BuiltinInterp::Linear => {
                                let span = (gaps.len() + 1) as f32;
                                let t = (gx - gaps[0] + 1) as f32 / span;
                                lerp(prev, c, t)
                            }
                        };
                        out.set(gx, y, v);
                    }
                } else {
                    for &gx in &gaps {
                        out.set(gx, y, c);
                    }
                }
                gaps.clear();
                last = Some(c);
            }
        }
        if let Some(prev) = last {
            for &gx in &gaps {
                out.set(gx, y, prev);
            }
        }
    }
    out
}

fn lerp(a: Yuv, b: Yuv, t: f32) -> Yuv {
    let m = |x: u8, y: u8| (x as f32 * (1.0 - t) + y as f32 * t).round() as u8;
    Yuv::new(m(a.y, b.y), m(a.u, b.u), m(a.v, b.v))
}

// ------------------------------------------------------------------ translate / rotate

/// `TRANSLATE`: shift the spatiotemporal extent of every chunk.
pub fn translate_chunks(
    input: ChunkStream,
    dx: f64,
    dy: f64,
    dz: f64,
    dt: f64,
    metrics: Metrics,
) -> ChunkStream {
    Box::new(input.map(move |c| {
        let mut c = c?;
        metrics.time("TRANSLATE", || {
            let dur = c.volume.t().length().max(1e-9);
            let steps = (dt / dur).round() as isize;
            c.t_index = (c.t_index as isize + steps).max(0) as usize;
            c.volume = c.volume.translate(dx, dy, dz, dt);
            c.info.position = c.info.position.translate(dx, dy, dz);
        });
        Ok(c)
    }))
}

/// `ROTATE`: rotate ray directions — an azimuthal pixel roll plus a
/// clamped polar shift on equirectangular frames.
pub fn rotate_frames(
    input: ChunkStream,
    dtheta: f64,
    dphi: f64,
    _device: Device,
    metrics: Metrics,
) -> ChunkStream {
    let rotation = lightdb_geom::Rotation::new(dtheta, dphi);
    Box::new(input.map(move |c| {
        let c = c?;
        let ChunkPayload::Decoded { frames, device } = c.payload else {
            return Err(ExecError::Domain("ROTATE requires decoded input".into()));
        };
        let out = metrics.time("ROTATE", || {
            frames
                .iter()
                .map(|f| rotate_equirect(f, dtheta, dphi))
                .collect::<Vec<Frame>>()
        });
        let volume = rotation.rotate_volume(&c.volume);
        Ok(Chunk {
            volume,
            payload: ChunkPayload::Decoded {
                frames: out,
                device,
            },
            ..c
        })
    }))
}

fn rotate_equirect(f: &Frame, dtheta: f64, dphi: f64) -> Frame {
    let (w, h) = (f.width(), f.height());
    let shift_x = ((dtheta / lightdb_geom::THETA_PERIOD * w as f64).round() as isize)
        .rem_euclid(w as isize) as usize;
    let shift_y = (dphi / lightdb_geom::PHI_MAX * h as f64).round() as isize;
    let mut out = f.clone();
    for y in 0..h {
        let sy = (y as isize - shift_y).clamp(0, h as isize - 1) as usize;
        for x in 0..w {
            let sx = (x + w - shift_x) % w;
            out.set(x, y, f.get(sx, sy));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{StreamInfo, OMEGA};
    use lightdb_core::udf::BuiltinMap;
    use lightdb_frame::stats::luma_psnr;
    use std::f64::consts::PI;

    fn textured(w: usize, h: usize, seed: usize) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                f.set(
                    x,
                    y,
                    Yuv::new(
                        (((x * 7 + y * 13 + seed * 29) % 200) + 30) as u8,
                        ((x + seed) % 256) as u8,
                        (y % 256) as u8,
                    ),
                );
            }
        }
        f
    }

    fn decoded_chunk(t: usize, frames: Vec<Frame>) -> Chunk {
        Chunk {
            t_index: t,
            part: 0,
            volume: Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(t as f64, t as f64 + 1.0)),
            info: StreamInfo::origin(frames.len().max(1) as u32),
            payload: ChunkPayload::Decoded {
                frames,
                device: Device::Cpu,
            },
        }
    }

    fn stream_of(chunks: Vec<Chunk>) -> ChunkStream {
        Box::new(chunks.into_iter().map(Ok))
    }

    fn collect(s: ChunkStream) -> Vec<Chunk> {
        s.map(|c| c.unwrap()).collect()
    }

    #[test]
    fn degenerate_union_groups_error_instead_of_panicking() {
        // An empty time-step group must surface as an ExecError, not
        // unwind through the pipeline.
        match composite_group(vec![], &MergeFunction::Last) {
            Err(ExecError::Align(_)) => {}
            other => panic!("expected Align error, got {other:?}"),
        }
        // Co-located *encoded* chunks (wrong domain for compositing)
        // must also report a typed error.
        let frames: Vec<Frame> = (0..2).map(|i| textured(32, 32, i)).collect();
        let enc = lightdb_codec::Encoder::new(lightdb_codec::EncoderConfig {
            gop_length: 2,
            qp: 30,
            ..Default::default()
        })
        .unwrap()
        .encode(&frames)
        .unwrap();
        let mk = || Chunk {
            t_index: 0,
            part: 0,
            volume: Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 1.0)),
            info: StreamInfo::origin(2),
            payload: ChunkPayload::Encoded {
                header: enc.header,
                gop: enc.gops[0].clone(),
            },
        };
        match composite_group(vec![mk(), mk()], &MergeFunction::Last) {
            Err(ExecError::Domain(_)) => {}
            other => panic!("expected Domain error, got {other:?}"),
        }
        // A union over one erroring and one healthy stream propagates
        // the error as a stream item rather than panicking.
        let bad: ChunkStream = Box::new(std::iter::once(Err(ExecError::Other(
            "broken input".into(),
        ))));
        let good = stream_of(vec![decoded_chunk(0, vec![textured(32, 32, 0)])]);
        let results: Vec<_> = union_frames(
            vec![bad, good],
            MergeFunction::Last,
            Device::Cpu,
            Metrics::new(),
        )
        .collect();
        assert!(results.iter().any(|r| r.is_err()));
    }

    #[test]
    fn encode_decode_roundtrip_via_ops() {
        let frames: Vec<Frame> = (0..4).map(|i| textured(64, 32, i)).collect();
        let m = Metrics::new();
        let c = decoded_chunk(0, frames.clone());
        let enc = encode_chunks(
            stream_of(vec![c]),
            Device::Cpu,
            CodecKind::H264Sim,
            8,
            m.clone(),
        );
        let dec = collect(decode_chunks(enc, Device::Cpu, m.clone()));
        assert_eq!(dec.len(), 1);
        let ChunkPayload::Decoded { frames: out, .. } = &dec[0].payload else {
            panic!()
        };
        assert_eq!(out.len(), 4);
        for (a, b) in frames.iter().zip(out.iter()) {
            assert!(luma_psnr(a, b) > 32.0);
        }
        assert_eq!(m.count("ENCODE"), 1);
        assert_eq!(m.count("DECODE"), 1);
    }

    #[test]
    fn gpu_decode_matches_cpu_decode() {
        let frames: Vec<Frame> = (0..3).map(|i| textured(64, 32, i)).collect();
        let enc = lightdb_codec::Encoder::new(lightdb_codec::EncoderConfig {
            grid: TileGrid::new(2, 1),
            gop_length: 3,
            qp: 20,
            ..Default::default()
        })
        .unwrap()
        .encode(&frames)
        .unwrap();
        let chunk = Chunk {
            t_index: 0,
            part: 0,
            volume: Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 1.0)),
            info: StreamInfo::origin(30),
            payload: ChunkPayload::Encoded {
                header: enc.header,
                gop: enc.gops[0].clone(),
            },
        };
        let cpu = collect(decode_chunks(
            stream_of(vec![chunk.clone()]),
            Device::Cpu,
            Metrics::new(),
        ));
        let gpu = collect(decode_chunks(
            stream_of(vec![chunk]),
            Device::Gpu,
            Metrics::new(),
        ));
        let (ChunkPayload::Decoded { frames: a, .. }, ChunkPayload::Decoded { frames: b, .. }) =
            (&cpu[0].payload, &gpu[0].payload)
        else {
            panic!()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn select_trims_time_and_crops_angles() {
        let frames: Vec<Frame> = (0..10).map(|i| textured(64, 32, i)).collect();
        let c = Chunk {
            info: StreamInfo::origin(10),
            ..decoded_chunk(0, frames)
        };
        // t ∈ [0.5, 1.0], θ ∈ [π, 2π] (right half), φ ∈ [0, π/2] (top half)
        let pred = VolumePredicate::any()
            .with(Dimension::T, Interval::new(0.5, 1.0))
            .with(Dimension::Theta, Interval::new(PI, 2.0 * PI))
            .with(Dimension::Phi, Interval::new(0.0, PI / 2.0));
        let out = collect(select_frames(
            stream_of(vec![c]),
            pred,
            Device::Cpu,
            Metrics::new(),
        ));
        assert_eq!(out.len(), 1);
        let ChunkPayload::Decoded { frames, .. } = &out[0].payload else {
            panic!()
        };
        assert_eq!(frames.len(), 5);
        assert_eq!((frames[0].width(), frames[0].height()), (32, 16));
        assert!((out[0].volume.theta().lo() - PI).abs() < 0.2);
    }

    #[test]
    fn select_outside_volume_drops_chunk() {
        let c = decoded_chunk(0, vec![textured(32, 32, 0)]);
        let pred = VolumePredicate::any().with(Dimension::T, Interval::new(5.0, 6.0));
        let out = collect(select_frames(
            stream_of(vec![c]),
            pred,
            Device::Cpu,
            Metrics::new(),
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn map_gpu_matches_cpu() {
        let frames: Vec<Frame> = (0..2).map(|i| textured(64, 64, i)).collect();
        let f = MapFunction::Builtin(BuiltinMap::Blur);
        let cpu = collect(map_frames(
            stream_of(vec![decoded_chunk(0, frames.clone())]),
            f.clone(),
            Device::Cpu,
            Metrics::new(),
        ));
        let gpu = collect(map_frames(
            stream_of(vec![decoded_chunk(0, frames)]),
            f,
            Device::Gpu,
            Metrics::new(),
        ));
        assert_eq!(cpu[0].payload, gpu[0].payload);
    }

    #[test]
    fn discretize_resamples_resolution_and_rate() {
        let frames: Vec<Frame> = (0..30).map(|i| textured(64, 32, i)).collect();
        let c = Chunk {
            info: StreamInfo::origin(30),
            ..decoded_chunk(0, frames)
        };
        let steps = vec![
            (Dimension::Theta, lightdb_geom::THETA_PERIOD / 32.0),
            (Dimension::Phi, lightdb_geom::PHI_MAX / 16.0),
            (Dimension::T, 0.1), // 10 samples per second
        ];
        let out = collect(discretize_frames(
            stream_of(vec![c]),
            steps,
            Device::Cpu,
            Metrics::new(),
        ));
        let ChunkPayload::Decoded { frames, .. } = &out[0].payload else {
            panic!()
        };
        assert_eq!(frames.len(), 10);
        assert_eq!((frames[0].width(), frames[0].height()), (32, 16));
        assert_eq!(out[0].info.fps, 10);
    }

    #[test]
    fn partition_into_quarters() {
        let frames: Vec<Frame> = (0..2).map(|i| textured(64, 32, i)).collect();
        let c = decoded_chunk(0, frames.clone());
        let spec = vec![
            (Dimension::T, 1.0),
            (Dimension::Theta, PI),     // 2 columns
            (Dimension::Phi, PI / 2.0), // 2 rows
        ];
        let out = collect(partition_chunks(stream_of(vec![c]), spec, Metrics::new()));
        assert_eq!(out.len(), 4);
        let ChunkPayload::Decoded { frames: tile0, .. } = &out[0].payload else {
            panic!()
        };
        assert_eq!(tile0[0], frames[0].crop(0, 0, 32, 16));
        // Tile volumes tile the angular domain.
        assert!((out[3].volume.theta().lo() - PI).abs() < 1e-9);
        assert!((out[3].volume.phi().lo() - PI / 2.0).abs() < 1e-9);
    }

    #[test]
    fn partition_then_flatten_restores_frames() {
        let frames: Vec<Frame> = (0..2).map(|i| textured(64, 32, i)).collect();
        let c = decoded_chunk(0, frames.clone());
        let spec = vec![(Dimension::Theta, PI / 2.0), (Dimension::Phi, PI / 2.0)];
        let parted = partition_chunks(stream_of(vec![c]), spec, Metrics::new());
        let flat = collect(flatten_chunks(parted, Metrics::new()));
        assert_eq!(flat.len(), 1);
        let ChunkPayload::Decoded { frames: out, .. } = &flat[0].payload else {
            panic!()
        };
        // Compositing tiles back must reconstruct the original frames.
        for (a, b) in frames.iter().zip(out.iter()) {
            assert!(luma_psnr(a, b) > 45.0, "flatten lost content");
        }
    }

    #[test]
    fn union_overlays_watermark() {
        let base = decoded_chunk(0, vec![Frame::filled(64, 32, Yuv::new(100, 128, 128))]);
        // Watermark part: small angular extent in the top-left corner.
        let wm_vol = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 1.0))
            .with(Dimension::Theta, Interval::new(0.0, PI / 2.0))
            .with(Dimension::Phi, Interval::new(0.0, PI / 4.0));
        let wm = Chunk {
            t_index: 0,
            part: 0,
            volume: wm_vol,
            info: StreamInfo::origin(1),
            payload: ChunkPayload::Decoded {
                frames: vec![Frame::filled(16, 8, Yuv::new(250, 20, 230))],
                device: Device::Cpu,
            },
        };
        let out = collect(union_frames(
            vec![stream_of(vec![base]), stream_of(vec![wm])],
            MergeFunction::Last,
            Device::Cpu,
            Metrics::new(),
        ));
        assert_eq!(out.len(), 1);
        let ChunkPayload::Decoded { frames, .. } = &out[0].payload else {
            panic!()
        };
        // Top-left quadrant is watermarked, bottom-right untouched.
        assert_eq!(frames[0].get(2, 2).y, 250);
        assert_eq!(frames[0].get(60, 30).y, 100);
    }

    #[test]
    fn union_skips_omega_pixels() {
        let base = decoded_chunk(0, vec![Frame::filled(32, 32, Yuv::new(80, 128, 128))]);
        // Overlay covering everything but almost entirely ω.
        let mut ov_frame = Frame::filled(32, 32, OMEGA);
        ov_frame.set(4, 4, Yuv::new(200, 90, 90));
        let ov = decoded_chunk(0, vec![ov_frame]);
        let out = collect(union_frames(
            vec![stream_of(vec![base]), stream_of(vec![ov])],
            MergeFunction::Last,
            Device::Cpu,
            Metrics::new(),
        ));
        let ChunkPayload::Decoded { frames, .. } = &out[0].payload else {
            panic!()
        };
        assert_eq!(frames[0].get(4, 4).y, 200);
        assert_eq!(
            frames[0].get(20, 20).y,
            80,
            "ω pixels must not clobber the base"
        );
    }

    #[test]
    fn union_concatenates_disjoint_time_ranges() {
        let a = decoded_chunk(0, vec![textured(32, 32, 0)]);
        let mut b = decoded_chunk(5, vec![textured(32, 32, 1)]);
        b.volume = b.volume.translate(0.0, 0.0, 0.0, 0.0);
        let out = collect(union_frames(
            vec![stream_of(vec![a]), stream_of(vec![b])],
            MergeFunction::Last,
            Device::Cpu,
            Metrics::new(),
        ));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].t_index, 0);
        assert_eq!(out[1].t_index, 5);
    }

    #[test]
    fn interpolate_fills_nulls() {
        let mut f = Frame::filled(16, 16, OMEGA);
        for y in 0..16 {
            for x in 0..2 {
                f.set(x, y, Yuv::new(50, 128, 128));
                f.set(14 + x, y, Yuv::new(150, 128, 128));
            }
        }
        let c = decoded_chunk(0, vec![f]);
        let out = collect(interpolate_frames(
            stream_of(vec![c]),
            InterpFunction::Builtin(BuiltinInterp::Linear),
            Device::Cpu,
            Metrics::new(),
        ));
        let ChunkPayload::Decoded { frames, .. } = &out[0].payload else {
            panic!()
        };
        let mid = frames[0].get(8, 8);
        assert!(!is_omega(mid));
        assert!(
            mid.y > 50 && mid.y < 150,
            "linear fill should land between, got {}",
            mid.y
        );
    }

    #[test]
    fn custom_interpolate_synthesizes_depth() {
        use crate::fpga::DepthMapFpga;
        let left = decoded_chunk(0, vec![textured(64, 64, 0)]);
        let mut right = decoded_chunk(0, vec![textured(64, 64, 0)]);
        right.part = 1;
        right.info.position = lightdb_geom::Point3::new(0.064, 0.0, 0.0);
        let merged: Vec<Chunk> = vec![left, right];
        let out = collect(interpolate_frames(
            stream_of(merged),
            InterpFunction::Custom(std::sync::Arc::new(DepthMapFpga)),
            Device::Fpga,
            Metrics::new(),
        ));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].frame_count(), 1);
    }

    #[test]
    fn translate_shifts_time_steps() {
        let c = decoded_chunk(0, vec![textured(32, 32, 0)]);
        let out = collect(translate_chunks(
            stream_of(vec![c]),
            0.0,
            0.0,
            0.0,
            5.0,
            Metrics::new(),
        ));
        assert_eq!(out[0].t_index, 5);
        assert!((out[0].volume.t().lo() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rotate_rolls_pixels() {
        let mut f = Frame::filled(64, 32, Yuv::new(10, 128, 128));
        f.set(0, 16, Yuv::new(200, 128, 128));
        let c = decoded_chunk(0, vec![f]);
        let out = collect(rotate_frames(
            stream_of(vec![c]),
            PI, // half turn: x shifts by w/2
            0.0,
            Device::Cpu,
            Metrics::new(),
        ));
        let ChunkPayload::Decoded { frames, .. } = &out[0].payload else {
            panic!()
        };
        assert_eq!(frames[0].get(32, 16).y, 200);
        assert_eq!(frames[0].get(0, 16).y, 10);
    }

    #[test]
    fn slab_point_select_picks_nearest_sample() {
        use crate::chunk::SlabInfo;
        // 2×2 uv grid: 4 frames with distinct luma.
        let frames: Vec<Frame> = (0..4)
            .map(|i| Frame::filled(16, 16, Yuv::new(40 * (i + 1) as u8, 128, 128)))
            .collect();
        let slab = SlabInfo {
            nu: 2,
            nv: 2,
            uv_min: lightdb_geom::Point3::new(0.0, 0.0, 0.0),
            uv_max: lightdb_geom::Point3::new(1.0, 1.0, 0.0),
        };
        let mut c = decoded_chunk(0, frames);
        c.info.slab = Some(slab);
        c.volume = Volume::new(
            Interval::new(0.0, 1.0),
            Interval::new(0.0, 1.0),
            Interval::point(0.0),
            Interval::new(0.0, 1.0),
            Interval::new(0.0, lightdb_geom::THETA_PERIOD),
            Interval::new(0.0, lightdb_geom::PHI_MAX),
        );
        // Select near the top-right sample (u=1, v=0) → frame 1.
        let pred = VolumePredicate::any()
            .with(Dimension::X, Interval::point(0.9))
            .with(Dimension::Y, Interval::point(0.1));
        let out = collect(select_frames(
            stream_of(vec![c]),
            pred,
            Device::Cpu,
            Metrics::new(),
        ));
        assert_eq!(out.len(), 1);
        let ChunkPayload::Decoded { frames, .. } = &out[0].payload else {
            panic!()
        };
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].get(0, 0).y, 80);
        assert!(out[0].info.slab.is_none());
    }

    #[test]
    fn transfer_changes_device() {
        let c = decoded_chunk(0, vec![textured(16, 16, 0)]);
        let m = Metrics::new();
        let out = collect(transfer(stream_of(vec![c]), Device::Gpu, m.clone()));
        assert_eq!(out[0].device(), Device::Gpu);
        assert_eq!(m.count("TRANSFER"), 1);
        // Transferring to the same device is free.
        let out2 = collect(transfer(stream_of(out), Device::Gpu, m.clone()));
        assert_eq!(out2[0].device(), Device::Gpu);
        assert_eq!(m.count("TRANSFER"), 1);
    }
}
