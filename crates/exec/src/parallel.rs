//! The parallel execution layer.
//!
//! LightDB's evaluation attributes nearly all query time to
//! ENCODE/DECODE over *independent* work units — GOPs, tiles, and
//! partition parts (PAPER.md §5, Figure 11). This module fans those
//! units out across cores with scoped threads (`std::thread::scope`;
//! the workspace builds offline, so no runtime dependency) while
//! keeping results in deterministic chunk order: a parallel pipeline
//! produces a `QueryOutput` byte-identical to the serial one.
//!
//! Chunk streams are pull-based `Box<dyn Iterator>`s and deliberately
//! not `Send`, so [`par_map_chunks`] pulls a batch on the caller's
//! thread, scatters the batch across workers, and replays the results
//! in input order. An `Err` item ends its batch and is emitted in
//! position, exactly as the serial path would.

use crate::chunk::Chunk;
use crate::query_ctx::QueryCtx;
use crate::{ChunkStream, Result};

/// How many worker threads chunk-parallel operators may use.
///
/// `1` means strictly serial (no threads are spawned). The executor
/// default comes from [`Parallelism::from_env`]: the
/// `LIGHTDB_THREADS` variable when set, the machine's available
/// parallelism otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Strictly serial execution; spawns no threads.
    pub const SERIAL: Parallelism = Parallelism { threads: 1 };

    /// A fixed thread count (clamped to at least 1).
    pub fn new(threads: usize) -> Parallelism {
        Parallelism { threads: threads.max(1) }
    }

    /// One thread per available core.
    pub fn auto() -> Parallelism {
        Parallelism::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// `LIGHTDB_THREADS` when set and well-formed, [`auto`] otherwise.
    /// `LIGHTDB_THREADS=1` forces the serial path. A malformed value
    /// warns loudly (once per process, via [`lightdb_core::envknob`])
    /// and falls back to [`auto`] instead of being silently ignored.
    ///
    /// [`auto`]: Parallelism::auto
    pub fn from_env() -> Parallelism {
        match lightdb_core::envknob::read_usize("LIGHTDB_THREADS") {
            Some(n) if n >= 1 => Parallelism::new(n),
            _ => Parallelism::auto(),
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::from_env()
    }
}

/// Runs `f(index, item)` over `items` on up to `threads` scoped
/// workers, preserving input order in the output. With one thread (or
/// one item) it degenerates to a plain in-place map — the serial and
/// parallel paths run the same closure on the same items, so results
/// are identical by construction.
pub fn scatter<T: Send, U: Send>(
    items: Vec<T>,
    threads: usize,
    f: impl Fn(usize, T) -> U + Sync,
) -> Vec<U> {
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let n = items.len();
    let mut jobs: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    jobs.reverse(); // pop() hands out jobs in input order
    let queue = parking_lot::Mutex::new(jobs);
    let results = parking_lot::Mutex::new(Vec::<(usize, U)>::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let job = queue.lock().pop();
                match job {
                    Some((i, t)) => {
                        let out = f(i, t);
                        results.lock().push((i, out));
                    }
                    None => break,
                }
            });
        }
    });
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, u) in results.into_inner() {
        slots[i] = Some(u);
    }
    slots.into_iter().flatten().collect()
}

/// Applies a fallible per-chunk transform across worker threads while
/// preserving stream order and error positions.
///
/// Batches of up to `threads × 2` chunks are pulled from `input` on
/// the calling thread (the stream itself is not `Send`), transformed
/// concurrently with [`scatter`], and replayed in input order. When
/// the stream yields an `Err`, the batch ends there and the error is
/// emitted after the chunks that preceded it — the same prefix a
/// serial consumer would observe.
pub fn par_map_chunks(
    input: ChunkStream,
    par: Parallelism,
    f: impl Fn(Chunk) -> Result<Chunk> + Sync + 'static,
) -> ChunkStream {
    par_map_chunks_ctx(input, par, QueryCtx::unbounded(), f)
}

/// [`par_map_chunks`] under a [`QueryCtx`]: cancellation and deadline
/// are checked on the caller thread before each batch refill and on
/// every worker before each chunk, so an abort is observed within one
/// chunk's worth of work. Chunks already transformed when the abort
/// lands are replayed first (output stays a well-ordered prefix), then
/// the abort error is emitted and the stream ends.
pub fn par_map_chunks_ctx(
    input: ChunkStream,
    par: Parallelism,
    ctx: QueryCtx,
    f: impl Fn(Chunk) -> Result<Chunk> + Sync + 'static,
) -> ChunkStream {
    if par.is_serial() {
        return Box::new(input.map(move |c| {
            ctx.check()?;
            c.and_then(&f)
        }));
    }
    let threads = par.threads();
    let batch_size = threads * 2;
    let mut input = input;
    let mut outbox: std::collections::VecDeque<Result<Chunk>> = std::collections::VecDeque::new();
    let mut done = false;
    Box::new(std::iter::from_fn(move || loop {
        if let Some(r) = outbox.pop_front() {
            return Some(r);
        }
        if done {
            return None;
        }
        if let Err(e) = ctx.check() {
            done = true;
            return Some(Err(e));
        }
        // Refill: pull a batch, stopping at stream end or an error.
        let mut batch: Vec<Chunk> = Vec::with_capacity(batch_size);
        let mut tail_err: Option<crate::ExecError> = None;
        while batch.len() < batch_size {
            match input.next() {
                None => {
                    done = true;
                    break;
                }
                Some(Err(e)) => {
                    tail_err = Some(e);
                    break;
                }
                Some(Ok(c)) => batch.push(c),
            }
        }
        if batch.is_empty() && tail_err.is_none() && done {
            return None;
        }
        let ctx_ref = &ctx;
        outbox.extend(scatter(batch, threads, |_, c| {
            // Workers re-check before each item: a cancel that lands
            // mid-batch stops the remaining items, not just the next
            // batch.
            ctx_ref.check()?;
            f(c)
        }));
        // Reassembly failpoint: fires once per replayed batch, on the
        // caller thread (so thread-local arming works in tests).
        if let Err(e) = lightdb_storage::faults::fail_point(
            lightdb_storage::faults::sites::EXEC_REASSEMBLE,
        ) {
            outbox.push_back(Err(e.into()));
            done = true;
            return outbox.pop_front();
        }
        if let Some(e) = tail_err {
            outbox.push_back(Err(e));
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{ChunkPayload, StreamInfo};
    use crate::device::Device;
    use crate::ExecError;
    use lightdb_frame::Frame;
    use lightdb_geom::{Interval, Volume};

    fn chunk(t: usize) -> Chunk {
        Chunk {
            t_index: t,
            part: 0,
            volume: Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(t as f64, t as f64 + 1.0)),
            info: StreamInfo::origin(1),
            payload: ChunkPayload::Decoded {
                frames: vec![Frame::new(16, 16)],
                device: Device::Cpu,
            },
        }
    }

    #[test]
    fn parallelism_knob_clamps_and_reports() {
        assert!(Parallelism::SERIAL.is_serial());
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(8).threads(), 8);
        assert!(!Parallelism::new(8).is_serial());
        assert!(Parallelism::auto().threads() >= 1);
    }

    #[test]
    fn scatter_preserves_order() {
        for threads in [1, 2, 8] {
            let out = scatter((0..100).collect::<Vec<i32>>(), threads, |i, v| {
                assert_eq!(i as i32, v);
                v * 3
            });
            assert_eq!(out, (0..100).map(|v| v * 3).collect::<Vec<i32>>());
        }
    }

    #[test]
    fn scatter_empty_and_single() {
        assert!(scatter(Vec::<u8>::new(), 4, |_, v| v).is_empty());
        assert_eq!(scatter(vec![9], 4, |_, v| v + 1), vec![10]);
    }

    #[test]
    fn par_map_matches_serial_order() {
        let chunks: Vec<Chunk> = (0..37).map(chunk).collect();
        let serial: Vec<usize> = par_map_chunks(
            Box::new(chunks.clone().into_iter().map(Ok)),
            Parallelism::SERIAL,
            Ok,
        )
        .map(|r| r.unwrap().t_index)
        .collect();
        let parallel: Vec<usize> = par_map_chunks(
            Box::new(chunks.into_iter().map(Ok)),
            Parallelism::new(8),
            |c| {
                // Vary per-chunk latency to shuffle completion order.
                std::thread::sleep(std::time::Duration::from_micros(
                    ((c.t_index * 13) % 7) as u64 * 50,
                ));
                Ok(c)
            },
        )
        .map(|r| r.unwrap().t_index)
        .collect();
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..37).collect::<Vec<usize>>());
    }

    #[test]
    fn par_map_emits_error_in_position() {
        // chunks 0..5, then an error, then 6..9: consumers must see
        // exactly five Ok items before the error, like the serial path.
        let items: Vec<crate::Result<Chunk>> = (0..5)
            .map(|t| Ok(chunk(t)))
            .chain(std::iter::once(Err(ExecError::Other("boom".into()))))
            .chain((6..10).map(|t| Ok(chunk(t))))
            .collect();
        let out: Vec<_> =
            par_map_chunks(Box::new(items.into_iter()), Parallelism::new(4), Ok).collect();
        assert_eq!(out.len(), 10);
        assert!(out[..5].iter().all(|r| r.is_ok()));
        assert!(out[5].is_err());
        assert!(out[6..].iter().all(|r| r.is_ok()));
    }

    #[test]
    fn par_map_propagates_transform_errors_in_order() {
        let out: Vec<_> = par_map_chunks(
            Box::new((0..8).map(chunk).map(Ok)),
            Parallelism::new(4),
            |c| {
                if c.t_index == 3 {
                    Err(ExecError::Other("bad chunk".into()))
                } else {
                    Ok(c)
                }
            },
        )
        .collect();
        assert_eq!(out.len(), 8);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.is_err(), i == 3, "slot {i}");
        }
    }

    #[test]
    fn from_env_parses_thread_count() {
        // Not touching the process env (other tests run concurrently);
        // just exercise the parse paths through new().
        assert_eq!(Parallelism::new(3).threads(), 3);
        assert_eq!(Parallelism::default().threads(), Parallelism::from_env().threads());
    }
}
