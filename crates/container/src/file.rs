//! Metadata files: the on-disk unit the storage manager writes once
//! per TLF version.

use crate::atom::{kinds, Atom};
use crate::tlfd::TlfDescriptor;
use crate::track::Track;
use crate::{ContainerError, Result};
use lightdb_codec::bitio::{read_varint, write_varint};

/// The brand written into the `ftyp` atom.
pub const BRAND: &[u8; 4] = b"ldb1";

/// A complete TLF metadata file: an `ftyp` atom carrying the brand
/// and version number, and a `moov` atom containing one `trak` per
/// media stream plus the `tlfd` descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct MetadataFile {
    /// TLF version this metadata file describes (multi-version,
    /// no-overwrite storage: one file per version).
    pub version: u64,
    pub tracks: Vec<Track>,
    pub tlf: TlfDescriptor,
}

impl MetadataFile {
    pub fn new(version: u64, tracks: Vec<Track>, tlf: TlfDescriptor) -> Result<MetadataFile> {
        let file = MetadataFile { version, tracks, tlf };
        file.validate()?;
        Ok(file)
    }

    /// Checks that every track referenced by the descriptor exists.
    pub fn validate(&self) -> Result<()> {
        for t in self.tlf.referenced_tracks() {
            if t as usize >= self.tracks.len() {
                return Err(ContainerError::Malformed("descriptor references missing track"));
            }
        }
        Ok(())
    }

    /// Serialises to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut ftyp = BRAND.to_vec();
        write_varint(&mut ftyp, self.version);
        let mut children: Vec<Atom> = self.tracks.iter().map(Track::to_atom).collect();
        children.push(Atom::leaf(kinds::TLFD, self.tlf.to_bytes()));
        let moov = Atom::container(kinds::MOOV, children);
        let mut out = Vec::new();
        Atom::leaf(kinds::FTYP, ftyp).write(&mut out);
        moov.write(&mut out);
        out
    }

    /// Parses wire bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<MetadataFile> {
        let forest = Atom::read_forest(buf)?;
        let ftyp = forest
            .iter()
            .find(|a| a.code == kinds::FTYP)
            .and_then(Atom::bytes)
            .ok_or(ContainerError::MissingAtom("ftyp"))?;
        if ftyp.len() < 4 || &ftyp[..4] != BRAND {
            return Err(ContainerError::Malformed("wrong brand"));
        }
        let mut pos = 4;
        let version =
            read_varint(ftyp, &mut pos).map_err(|_| ContainerError::Malformed("version"))?;
        let moov = forest
            .iter()
            .find(|a| a.code == kinds::MOOV)
            .ok_or(ContainerError::MissingAtom("moov"))?;
        let tracks = moov
            .find_all(kinds::TRAK)
            .into_iter()
            .map(Track::from_atom)
            .collect::<Result<Vec<_>>>()?;
        let tlfd = moov
            .find(kinds::TLFD)
            .and_then(Atom::bytes)
            .ok_or(ContainerError::MissingAtom("tlfd"))?;
        let tlf = TlfDescriptor::from_bytes(tlfd)?;
        let file = MetadataFile { version, tracks, tlf };
        file.validate()?;
        Ok(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::{GopIndexEntry, TrackRole};
    use lightdb_codec::CodecKind;
    use lightdb_geom::projection::ProjectionKind;
    use lightdb_geom::{Interval, Point3};

    fn sample_file() -> MetadataFile {
        let track = Track {
            role: TrackRole::Video,
            codec: CodecKind::HevcSim,
            projection: ProjectionKind::Equirectangular,
            media_path: "stream0.lvc".into(),
            gop_index: vec![GopIndexEntry {
                start_frame: 0,
                frame_count: 30,
                byte_offset: 0,
                byte_len: 512,
                crc32: 0,
            }],
        };
        let tlf =
            TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, 1.0), 0);
        MetadataFile::new(1, vec![track], tlf).unwrap()
    }

    #[test]
    fn file_roundtrips() {
        let f = sample_file();
        assert_eq!(MetadataFile::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn metadata_files_stay_small() {
        // The paper: metadata files are generally under 20 kB.
        let f = sample_file();
        assert!(f.to_bytes().len() < 20 * 1024);
    }

    #[test]
    fn dangling_track_reference_rejected() {
        let tlf =
            TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, 1.0), 7);
        assert!(MetadataFile::new(1, vec![], tlf).is_err());
    }

    #[test]
    fn wrong_brand_rejected() {
        let mut bytes = sample_file().to_bytes();
        // Corrupt the brand inside the ftyp payload (offset 8).
        bytes[8] = b'X';
        assert!(MetadataFile::from_bytes(&bytes).is_err());
    }

    #[test]
    fn version_survives_roundtrip() {
        let mut f = sample_file();
        f.version = 42;
        assert_eq!(MetadataFile::from_bytes(&f.to_bytes()).unwrap().version, 42);
    }
}
