//! CRC32 checksums over encoded media.
//!
//! Every GOP's serialised bytes are checksummed at `STORE` time and
//! the digest rides in the GOP index (`stss` atom) next to the byte
//! range. Readers recompute the digest on every buffer-pool load, so
//! bit rot or torn writes in an externally stored media file are
//! detected *below* the codec — before corrupt bytes can reach (and
//! possibly confuse) entropy decoding.
//!
//! The polynomial is the IEEE 802.3 reflected CRC-32 (0xEDB88320),
//! table-driven, one table baked at first use. A stored digest of `0`
//! means "unchecked" (pre-checksum index entries, or hand-built
//! entries in tests); [`verify`] accepts those unconditionally. To
//! keep that sentinel unambiguous, [`checksum`] maps a computed
//! digest of `0` to [`REMAPPED_ZERO`].

use std::sync::OnceLock;

/// Sentinel stored when data genuinely checksums to zero, so that `0`
/// can keep meaning "no checksum recorded".
pub const REMAPPED_ZERO: u32 = 0xFFFF_FFFF;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// Raw IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Digest for storing in a GOP index entry: CRC-32 with `0` remapped
/// so it never collides with the "unchecked" sentinel.
pub fn checksum(bytes: &[u8]) -> u32 {
    match crc32(bytes) {
        0 => REMAPPED_ZERO,
        c => c,
    }
}

/// Checks `bytes` against a stored digest. A stored digest of `0`
/// means the entry predates checksumming and always verifies.
pub fn verify(bytes: &[u8], stored: u32) -> bool {
    if stored == 0 {
        return true;
    }
    let c = crc32(bytes);
    c == stored || (c == 0 && stored == REMAPPED_ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn verify_roundtrip_and_detects_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let c = checksum(&data);
        assert!(verify(&data, c));
        data[3] ^= 0x40;
        assert!(!verify(&data, c));
    }

    #[test]
    fn zero_digest_means_unchecked() {
        assert!(verify(b"anything at all", 0));
    }

    #[test]
    fn empty_data_uses_remapped_sentinel() {
        // crc32("") == 0, which must round-trip through the sentinel.
        let c = checksum(b"");
        assert_eq!(c, REMAPPED_ZERO);
        assert!(verify(b"", c));
    }
}
