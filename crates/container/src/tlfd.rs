//! The custom `tlfd` atom: LightDB's physical TLF descriptor.
//!
//! For a `360TLF` it records the spatial points at which spheres are
//! defined and their track assignments (including optional depth-map
//! and right-eye tracks). For a `SlabTLF` it records each light
//! slab's plane geometry and sampling granularity. A `CompositeTLF`
//! recursively contains child descriptors. Common to all three are
//! the bounding volume, streaming flag, partitioning metadata, and —
//! for partially materialised continuous TLFs — an opaque serialised
//! *view subgraph* (the logical operators still to be applied, owned
//! by the query layer).

use crate::{ContainerError, Result};
use lightdb_codec::bitio::{read_varint, write_varint};
use lightdb_geom::{Dimension, Interval, Point3, Volume};

/// A 360° sphere definition: a spatial point plus its tracks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpherePoint {
    pub position: Point3,
    /// Index into the metadata file's track list.
    pub video_track: u32,
    /// Optional depth-map stream for the sphere.
    pub depth_track: Option<u32>,
    /// Optional second (right-eye) stream for explicit stereo.
    pub right_eye_track: Option<u32>,
}

/// Light-slab geometry: the `uv` and `st` plane rectangles (axis-
/// aligned, given by min/max corners) and sampling granularity, after
/// Levoy & Hanrahan's two-plane parameterisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlabGeometry {
    pub uv_min: Point3,
    pub uv_max: Point3,
    pub st_min: Point3,
    pub st_max: Point3,
    /// Samples along (u, v): the outer array-of-arrays dimensions.
    pub uv_samples: (u32, u32),
    /// Samples along (s, t): the nested array dimensions.
    pub st_samples: (u32, u32),
    /// Index into the metadata file's track list.
    pub track: u32,
}

/// Variant-specific body of a TLF descriptor.
#[derive(Debug, Clone, PartialEq)]
pub enum TlfBody {
    /// One or more 360° videos at spatially distinct points.
    Sphere360 { points: Vec<SpherePoint> },
    /// One or more light slabs.
    Slab { slabs: Vec<SlabGeometry> },
    /// Recursive union of child TLFs.
    Composite { children: Vec<TlfDescriptor> },
}

/// The full payload of a `tlfd` atom.
#[derive(Debug, Clone, PartialEq)]
pub struct TlfDescriptor {
    pub volume: Volume,
    /// True when the TLF's ending time monotonically increases (live
    /// ingest); LightDB advances `volume.t().hi()` as data arrives.
    pub streaming: bool,
    /// Partitioning metadata: `(dimension, block width)` pairs.
    pub partition_spec: Vec<(Dimension, f64)>,
    /// Serialised logical-operator subgraph for continuous TLFs
    /// (opaque to the container layer), or `None` for discrete TLFs.
    pub view_subgraph: Option<Vec<u8>>,
    pub body: TlfBody,
}

impl TlfDescriptor {
    /// A discrete 360TLF at a single point with one video track.
    pub fn single_sphere(position: Point3, t: Interval, video_track: u32) -> TlfDescriptor {
        TlfDescriptor {
            volume: Volume::sphere_at(position.x, position.y, position.z, t),
            streaming: false,
            partition_spec: Vec::new(),
            view_subgraph: None,
            body: TlfBody::Sphere360 {
                points: vec![SpherePoint {
                    position,
                    video_track,
                    depth_track: None,
                    right_eye_track: None,
                }],
            },
        }
    }

    /// All track indices referenced anywhere in the descriptor tree.
    pub fn referenced_tracks(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_tracks(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_tracks(&self, out: &mut Vec<u32>) {
        match &self.body {
            TlfBody::Sphere360 { points } => {
                for p in points {
                    out.push(p.video_track);
                    out.extend(p.depth_track);
                    out.extend(p.right_eye_track);
                }
            }
            TlfBody::Slab { slabs } => out.extend(slabs.iter().map(|s| s.track)),
            TlfBody::Composite { children } => {
                for c in children {
                    c.collect_tracks(out);
                }
            }
        }
    }

    /// Serialises to `tlfd` payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut Vec<u8>) {
        write_volume(out, &self.volume);
        out.push(self.streaming as u8);
        write_varint(out, self.partition_spec.len() as u64);
        for (dim, delta) in &self.partition_spec {
            out.push(dim.index() as u8);
            out.extend_from_slice(&delta.to_be_bytes());
        }
        match &self.view_subgraph {
            None => out.push(0),
            Some(bytes) => {
                out.push(1);
                write_varint(out, bytes.len() as u64);
                out.extend_from_slice(bytes);
            }
        }
        match &self.body {
            TlfBody::Sphere360 { points } => {
                out.push(0);
                write_varint(out, points.len() as u64);
                for p in points {
                    write_point(out, &p.position);
                    write_varint(out, p.video_track as u64);
                    write_opt_track(out, p.depth_track);
                    write_opt_track(out, p.right_eye_track);
                }
            }
            TlfBody::Slab { slabs } => {
                out.push(1);
                write_varint(out, slabs.len() as u64);
                for s in slabs {
                    write_point(out, &s.uv_min);
                    write_point(out, &s.uv_max);
                    write_point(out, &s.st_min);
                    write_point(out, &s.st_max);
                    write_varint(out, s.uv_samples.0 as u64);
                    write_varint(out, s.uv_samples.1 as u64);
                    write_varint(out, s.st_samples.0 as u64);
                    write_varint(out, s.st_samples.1 as u64);
                    write_varint(out, s.track as u64);
                }
            }
            TlfBody::Composite { children } => {
                out.push(2);
                write_varint(out, children.len() as u64);
                for c in children {
                    c.write(out);
                }
            }
        }
    }

    /// Parses `tlfd` payload bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<TlfDescriptor> {
        let mut pos = 0;
        let d = Self::read(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(ContainerError::Malformed("trailing bytes in tlfd"));
        }
        Ok(d)
    }

    fn read(buf: &[u8], pos: &mut usize) -> Result<TlfDescriptor> {
        let volume = read_volume(buf, pos)?;
        let streaming = read_u8(buf, pos)? != 0;
        let nspec = rv(buf, pos)? as usize;
        if nspec > 64 {
            return Err(ContainerError::Malformed("implausible partition spec"));
        }
        let mut partition_spec = Vec::with_capacity(nspec);
        for _ in 0..nspec {
            let dim = Dimension::from_index(read_u8(buf, pos)? as usize)
                .ok_or(ContainerError::Malformed("bad dimension"))?;
            partition_spec.push((dim, read_f64(buf, pos)?));
        }
        let view_subgraph = match read_u8(buf, pos)? {
            0 => None,
            1 => {
                let len = rv(buf, pos)? as usize;
                if *pos + len > buf.len() {
                    return Err(ContainerError::Malformed("view subgraph truncated"));
                }
                let bytes = buf[*pos..*pos + len].to_vec();
                *pos += len;
                Some(bytes)
            }
            _ => return Err(ContainerError::Malformed("bad view subgraph tag")),
        };
        let body = match read_u8(buf, pos)? {
            0 => {
                let n = rv(buf, pos)? as usize;
                if n > 1 << 24 {
                    return Err(ContainerError::Malformed("implausible point count"));
                }
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    points.push(SpherePoint {
                        position: read_point(buf, pos)?,
                        video_track: rv(buf, pos)? as u32,
                        depth_track: read_opt_track(buf, pos)?,
                        right_eye_track: read_opt_track(buf, pos)?,
                    });
                }
                TlfBody::Sphere360 { points }
            }
            1 => {
                let n = rv(buf, pos)? as usize;
                if n > 1 << 16 {
                    return Err(ContainerError::Malformed("implausible slab count"));
                }
                let mut slabs = Vec::with_capacity(n);
                for _ in 0..n {
                    slabs.push(SlabGeometry {
                        uv_min: read_point(buf, pos)?,
                        uv_max: read_point(buf, pos)?,
                        st_min: read_point(buf, pos)?,
                        st_max: read_point(buf, pos)?,
                        uv_samples: (rv(buf, pos)? as u32, rv(buf, pos)? as u32),
                        st_samples: (rv(buf, pos)? as u32, rv(buf, pos)? as u32),
                        track: rv(buf, pos)? as u32,
                    });
                }
                TlfBody::Slab { slabs }
            }
            2 => {
                let n = rv(buf, pos)? as usize;
                if n > 4096 {
                    return Err(ContainerError::Malformed("implausible child count"));
                }
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(Self::read(buf, pos)?);
                }
                TlfBody::Composite { children }
            }
            _ => return Err(ContainerError::Malformed("unknown tlfd body tag")),
        };
        Ok(TlfDescriptor { volume, streaming, partition_spec, view_subgraph, body })
    }
}

fn rv(buf: &[u8], pos: &mut usize) -> Result<u64> {
    read_varint(buf, pos).map_err(|_| ContainerError::Malformed("varint"))
}

fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let b = *buf.get(*pos).ok_or(ContainerError::Malformed("unexpected end"))?;
    *pos += 1;
    Ok(b)
}

fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64> {
    if *pos + 8 > buf.len() {
        return Err(ContainerError::Malformed("f64 truncated"));
    }
    let v = f64::from_be_bytes(
        buf[*pos..*pos + 8]
            .try_into()
            .map_err(|_| ContainerError::Malformed("f64 truncated"))?,
    );
    *pos += 8;
    Ok(v)
}

fn write_point(out: &mut Vec<u8>, p: &Point3) {
    out.extend_from_slice(&p.x.to_be_bytes());
    out.extend_from_slice(&p.y.to_be_bytes());
    out.extend_from_slice(&p.z.to_be_bytes());
}

fn read_point(buf: &[u8], pos: &mut usize) -> Result<Point3> {
    Ok(Point3::new(read_f64(buf, pos)?, read_f64(buf, pos)?, read_f64(buf, pos)?))
}

fn write_opt_track(out: &mut Vec<u8>, t: Option<u32>) {
    match t {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            write_varint(out, v as u64);
        }
    }
}

fn read_opt_track(buf: &[u8], pos: &mut usize) -> Result<Option<u32>> {
    match read_u8(buf, pos)? {
        0 => Ok(None),
        1 => Ok(Some(rv(buf, pos)? as u32)),
        _ => Err(ContainerError::Malformed("bad option tag")),
    }
}

fn write_volume(out: &mut Vec<u8>, v: &Volume) {
    for d in Dimension::ALL {
        let iv = v.get(d);
        out.extend_from_slice(&iv.lo().to_be_bytes());
        out.extend_from_slice(&iv.hi().to_be_bytes());
    }
}

fn read_volume(buf: &[u8], pos: &mut usize) -> Result<Volume> {
    let mut ivs = [Interval::point(0.0); 6];
    for iv in ivs.iter_mut() {
        let lo = read_f64(buf, pos)?;
        let hi = read_f64(buf, pos)?;
        if lo.is_nan() || hi.is_nan() || lo > hi {
            return Err(ContainerError::Malformed("bad interval"));
        }
        *iv = Interval::new(lo, hi);
    }
    // Validate angular bounds through the Volume constructor.
    let ok = std::panic::catch_unwind(|| {
        Volume::new(ivs[0], ivs[1], ivs[2], ivs[3], ivs[4], ivs[5])
    });
    ok.map_err(|_| ContainerError::Malformed("volume out of angular domain"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_desc() -> TlfDescriptor {
        let mut d = TlfDescriptor::single_sphere(
            Point3::new(0.5, 0.0, -1.0),
            Interval::new(0.0, 90.0),
            0,
        );
        d.partition_spec = vec![(Dimension::T, 1.0), (Dimension::Theta, std::f64::consts::PI / 2.0)];
        d
    }

    fn slab_desc() -> TlfDescriptor {
        TlfDescriptor {
            volume: Volume::everywhere(),
            streaming: false,
            partition_spec: vec![],
            view_subgraph: Some(vec![1, 2, 3, 4]),
            body: TlfBody::Slab {
                slabs: vec![SlabGeometry {
                    uv_min: Point3::new(0.0, 0.0, 0.0),
                    uv_max: Point3::new(1.0, 1.0, 0.0),
                    st_min: Point3::new(0.0, 0.0, 1.0),
                    st_max: Point3::new(1.0, 1.0, 1.0),
                    uv_samples: (8, 8),
                    st_samples: (512, 384),
                    track: 2,
                }],
            },
        }
    }

    #[test]
    fn sphere_roundtrip() {
        let d = sphere_desc();
        assert_eq!(TlfDescriptor::from_bytes(&d.to_bytes()).unwrap(), d);
    }

    #[test]
    fn slab_roundtrip_with_view_subgraph() {
        let d = slab_desc();
        let parsed = TlfDescriptor::from_bytes(&d.to_bytes()).unwrap();
        assert_eq!(parsed, d);
        assert_eq!(parsed.view_subgraph.as_deref(), Some(&[1u8, 2, 3, 4][..]));
    }

    #[test]
    fn composite_roundtrip_recursive() {
        let d = TlfDescriptor {
            volume: Volume::everywhere(),
            streaming: true,
            partition_spec: vec![],
            view_subgraph: None,
            body: TlfBody::Composite {
                children: vec![
                    sphere_desc(),
                    TlfDescriptor {
                        body: TlfBody::Composite { children: vec![slab_desc()] },
                        ..sphere_desc()
                    },
                ],
            },
        };
        assert_eq!(TlfDescriptor::from_bytes(&d.to_bytes()).unwrap(), d);
    }

    #[test]
    fn unbounded_volume_roundtrips() {
        let d = TlfDescriptor { volume: Volume::everywhere(), ..sphere_desc() };
        let parsed = TlfDescriptor::from_bytes(&d.to_bytes()).unwrap();
        assert!(parsed.volume.x().lo().is_infinite());
    }

    #[test]
    fn referenced_tracks_deduped_and_sorted() {
        let mut d = sphere_desc();
        if let TlfBody::Sphere360 { points } = &mut d.body {
            points.push(SpherePoint {
                position: Point3::ORIGIN,
                video_track: 2,
                depth_track: Some(1),
                right_eye_track: Some(2),
            });
        }
        assert_eq!(d.referenced_tracks(), vec![0, 1, 2]);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sphere_desc().to_bytes();
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(TlfDescriptor::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sphere_desc().to_bytes();
        bytes.push(0xff);
        assert!(TlfDescriptor::from_bytes(&bytes).is_err());
    }
}
