//! # lightdb-container
//!
//! An MP4-style media container for LightDB metadata files.
//!
//! A metadata file is a forest of *atoms* ("boxes"): self-contained,
//! length-delimited data units tagged with a four-character code.
//! LightDB uses a small set of standard atoms — `moov` (metadata
//! container), `trak` (stream metadata), `stsd` (codec), `stss` (GOP
//! index), `dref` (external media reference) — plus the `sv3d` atom
//! from the Spherical Video V2 RFC for projection metadata and a
//! custom `tlfd` atom that serialises the physical TLF description
//! (360° points, light-slab geometry, composites, partitions, and the
//! view subgraph of partially materialised continuous TLFs).
//!
//! Media data itself is stored externally (the `dref` pattern), so
//! metadata files stay small (the paper: "generally less than 20 kB")
//! and multiple TLF versions can share unchanged video tracks.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod atom;
pub mod checksum;
pub mod file;
pub mod tlfd;
pub mod track;

pub use atom::{Atom, AtomKind, FourCc};
pub use file::MetadataFile;
pub use tlfd::{SlabGeometry, SpherePoint, TlfBody, TlfDescriptor};
pub use track::{GopIndexEntry, Track, TrackRole};

/// Errors from container parsing and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    Malformed(&'static str),
    UnknownAtom([u8; 4]),
    MissingAtom(&'static str),
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::Malformed(m) => write!(f, "malformed container: {m}"),
            ContainerError::UnknownAtom(k) => {
                write!(f, "unknown atom kind: {:?}", String::from_utf8_lossy(k))
            }
            ContainerError::MissingAtom(k) => write!(f, "missing required atom: {k}"),
        }
    }
}

impl std::error::Error for ContainerError {}

pub type Result<T> = std::result::Result<T, ContainerError>;
