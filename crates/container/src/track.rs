//! Typed track metadata (`trak` atoms).

use crate::atom::{kinds, Atom};
use crate::{ContainerError, Result};
use lightdb_codec::bitio::{read_varint, write_varint};
use lightdb_codec::CodecKind;
use lightdb_geom::projection::ProjectionKind;

/// One entry of a GOP index (`stss` atom): where an independently
/// decodable group of pictures begins, in both time and bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GopIndexEntry {
    /// Time of the GOP's keyframe, in frames since stream start.
    pub start_frame: u64,
    /// Number of frames in the GOP.
    pub frame_count: u64,
    /// Byte offset of the GOP within the media file.
    pub byte_offset: u64,
    /// Byte length of the serialised GOP.
    pub byte_len: u64,
    /// CRC-32 of the serialised GOP bytes (see [`crate::checksum`]);
    /// `0` means no checksum was recorded for this entry.
    pub crc32: u32,
}

/// The role a track plays within a TLF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackRole {
    /// Visual data for a 360° sphere or a light slab.
    Video,
    /// A depth-map stream accompanying a sphere (stereoscopic
    /// rendering from depth).
    DepthMap,
}

/// Metadata for one media stream: codec, projection, a pointer to the
/// externally stored media file, and a GOP index.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    pub role: TrackRole,
    pub codec: CodecKind,
    pub projection: ProjectionKind,
    /// File name of the externally stored encoded stream, relative to
    /// the TLF directory (`dref` atom).
    pub media_path: String,
    /// GOP index (`stss` atom).
    pub gop_index: Vec<GopIndexEntry>,
}

impl Track {
    /// Total frames covered by the GOP index.
    pub fn frame_count(&self) -> u64 {
        self.gop_index.iter().map(|e| e.frame_count).sum()
    }

    /// Finds GOP-index entries overlapping the frame range
    /// `[first, last]` (inclusive) — the temporal point/range lookup
    /// the query processor performs for `SELECT` over `t`.
    pub fn gops_for_frames(&self, first: u64, last: u64) -> Vec<&GopIndexEntry> {
        self.gop_index
            .iter()
            .filter(|e| e.start_frame <= last && e.start_frame + e.frame_count > first)
            .collect()
    }

    /// Serialises into a `trak` container atom.
    pub fn to_atom(&self) -> Atom {
        let stsd = Atom::leaf(
            kinds::STSD,
            vec![
                match self.role {
                    TrackRole::Video => 0,
                    TrackRole::DepthMap => 1,
                },
                self.codec.to_byte(),
            ],
        );
        let sv3d = Atom::leaf(
            kinds::SV3D,
            vec![match self.projection {
                ProjectionKind::Equirectangular => 0,
                ProjectionKind::CubeMap => 1,
            }],
        );
        let dref = Atom::leaf(kinds::DREF, self.media_path.as_bytes().to_vec());
        let mut stss = Vec::new();
        write_varint(&mut stss, self.gop_index.len() as u64);
        for e in &self.gop_index {
            write_varint(&mut stss, e.start_frame);
            write_varint(&mut stss, e.frame_count);
            write_varint(&mut stss, e.byte_offset);
            write_varint(&mut stss, e.byte_len);
            write_varint(&mut stss, e.crc32 as u64);
        }
        Atom::container(
            kinds::TRAK,
            vec![stsd, sv3d, dref, Atom::leaf(kinds::STSS, stss)],
        )
    }

    /// Parses a `trak` atom.
    pub fn from_atom(atom: &Atom) -> Result<Track> {
        if atom.code != kinds::TRAK {
            return Err(ContainerError::Malformed("expected trak atom"));
        }
        let stsd = atom
            .find(kinds::STSD)
            .and_then(Atom::bytes)
            .ok_or(ContainerError::MissingAtom("stsd"))?;
        if stsd.len() < 2 {
            return Err(ContainerError::Malformed("stsd too short"));
        }
        let role = match stsd[0] {
            0 => TrackRole::Video,
            1 => TrackRole::DepthMap,
            _ => return Err(ContainerError::Malformed("unknown track role")),
        };
        let codec = CodecKind::from_byte(stsd[1])
            .map_err(|_| ContainerError::Malformed("unknown codec in stsd"))?;
        let sv3d = atom
            .find(kinds::SV3D)
            .and_then(Atom::bytes)
            .ok_or(ContainerError::MissingAtom("sv3d"))?;
        let projection = match sv3d.first() {
            Some(0) => ProjectionKind::Equirectangular,
            Some(1) => ProjectionKind::CubeMap,
            _ => return Err(ContainerError::Malformed("unknown projection in sv3d")),
        };
        let dref = atom
            .find(kinds::DREF)
            .and_then(Atom::bytes)
            .ok_or(ContainerError::MissingAtom("dref"))?;
        let media_path = String::from_utf8(dref.to_vec())
            .map_err(|_| ContainerError::Malformed("dref path is not UTF-8"))?;
        let stss = atom
            .find(kinds::STSS)
            .and_then(Atom::bytes)
            .ok_or(ContainerError::MissingAtom("stss"))?;
        let mut pos = 0;
        let n = read_varint(stss, &mut pos)
            .map_err(|_| ContainerError::Malformed("stss count"))? as usize;
        if n > 1 << 24 {
            return Err(ContainerError::Malformed("implausible stss count"));
        }
        let mut gop_index = Vec::with_capacity(n);
        for _ in 0..n {
            let mut next = || {
                read_varint(stss, &mut pos).map_err(|_| ContainerError::Malformed("stss entry"))
            };
            gop_index.push(GopIndexEntry {
                start_frame: next()?,
                frame_count: next()?,
                byte_offset: next()?,
                byte_len: next()?,
                crc32: next()? as u32,
            });
        }
        Ok(Track { role, codec, projection, media_path, gop_index })
    }

    /// Builds the GOP index for an encoded stream by pairing its GOP
    /// byte ranges with frame counts.
    pub fn index_stream(stream: &lightdb_codec::VideoStream) -> Vec<GopIndexEntry> {
        let ranges = stream.gop_byte_ranges();
        let mut start_frame = 0u64;
        let mut out = Vec::with_capacity(ranges.len());
        for (gop, (off, len)) in stream.gops.iter().zip(ranges) {
            let fc = gop.frame_count() as u64;
            out.push(GopIndexEntry {
                start_frame,
                frame_count: fc,
                byte_offset: off as u64,
                byte_len: len as u64,
                crc32: crate::checksum::checksum(&gop.to_bytes()),
            });
            start_frame += fc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_track() -> Track {
        Track {
            role: TrackRole::Video,
            codec: CodecKind::HevcSim,
            projection: ProjectionKind::Equirectangular,
            media_path: "stream0.lvc".into(),
            gop_index: vec![
                GopIndexEntry { start_frame: 0, frame_count: 30, byte_offset: 32, byte_len: 1000, crc32: 0x1234 },
                GopIndexEntry {
                    start_frame: 30,
                    frame_count: 30,
                    byte_offset: 1032,
                    byte_len: 900,
                    crc32: 0,
                },
                GopIndexEntry {
                    start_frame: 60,
                    frame_count: 15,
                    byte_offset: 1932,
                    byte_len: 500,
                    crc32: 0xDEAD_BEEF,
                },
            ],
        }
    }

    #[test]
    fn track_atom_roundtrip() {
        let t = sample_track();
        let atom = t.to_atom();
        assert_eq!(Track::from_atom(&atom).unwrap(), t);
    }

    #[test]
    fn depth_track_roundtrip() {
        let t = Track { role: TrackRole::DepthMap, ..sample_track() };
        assert_eq!(Track::from_atom(&t.to_atom()).unwrap().role, TrackRole::DepthMap);
    }

    #[test]
    fn frame_count_sums_gops() {
        assert_eq!(sample_track().frame_count(), 75);
    }

    #[test]
    fn gop_lookup_finds_overlaps() {
        let t = sample_track();
        // A range inside the second GOP.
        let hits = t.gops_for_frames(35, 40);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].start_frame, 30);
        // A range spanning the boundary between GOP 0 and 1.
        let hits = t.gops_for_frames(29, 31);
        assert_eq!(hits.len(), 2);
        // The entire stream.
        assert_eq!(t.gops_for_frames(0, 74).len(), 3);
        // Past the end.
        assert!(t.gops_for_frames(100, 200).is_empty());
    }

    #[test]
    fn missing_child_atoms_detected() {
        let bad = Atom::container(kinds::TRAK, vec![]);
        assert!(matches!(Track::from_atom(&bad), Err(ContainerError::MissingAtom("stsd"))));
    }

    #[test]
    fn wrong_atom_kind_rejected() {
        let not_trak = Atom::leaf(kinds::STSD, vec![]);
        assert!(Track::from_atom(&not_trak).is_err());
    }
}
