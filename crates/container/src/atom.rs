//! Generic atoms ("boxes") with MP4-style framing.
//!
//! Wire format, as in ISO BMFF: `size:u32be kind:[u8;4] payload`,
//! where `size` covers the 8-byte header. Container atoms nest child
//! atoms in their payload; leaf atoms carry opaque bytes.

use crate::{ContainerError, Result};

/// A four-character atom code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FourCc(pub [u8; 4]);

impl FourCc {
    pub const fn new(code: &[u8; 4]) -> Self {
        FourCc(*code)
    }
}

impl std::fmt::Display for FourCc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(&self.0))
    }
}

/// Well-known atom kinds used by LightDB metadata files.
pub mod kinds {
    use super::FourCc;
    /// File-type header.
    pub const FTYP: FourCc = FourCc::new(b"ftyp");
    /// Top-level metadata container.
    pub const MOOV: FourCc = FourCc::new(b"moov");
    /// One media stream's metadata.
    pub const TRAK: FourCc = FourCc::new(b"trak");
    /// Codec description.
    pub const STSD: FourCc = FourCc::new(b"stsd");
    /// GOP (sync-sample) index.
    pub const STSS: FourCc = FourCc::new(b"stss");
    /// External media data reference.
    pub const DREF: FourCc = FourCc::new(b"dref");
    /// Spherical Video V2 projection metadata.
    pub const SV3D: FourCc = FourCc::new(b"sv3d");
    /// LightDB's custom TLF descriptor.
    pub const TLFD: FourCc = FourCc::new(b"tlfd");
    /// Embedded media data (rarely used; LightDB prefers dref).
    pub const MDAT: FourCc = FourCc::new(b"mdat");
}

/// Whether an atom kind holds children or opaque bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomKind {
    Container,
    Leaf,
}

fn kind_of(code: FourCc) -> AtomKind {
    if code == kinds::MOOV || code == kinds::TRAK {
        AtomKind::Container
    } else {
        AtomKind::Leaf
    }
}

/// A parsed atom: either nested children or leaf bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    pub code: FourCc,
    pub body: AtomBody,
}

/// Atom payload.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomBody {
    Children(Vec<Atom>),
    Bytes(Vec<u8>),
}

impl Atom {
    /// Creates a container atom.
    pub fn container(code: FourCc, children: Vec<Atom>) -> Atom {
        debug_assert_eq!(kind_of(code), AtomKind::Container);
        Atom { code, body: AtomBody::Children(children) }
    }

    /// Creates a leaf atom.
    pub fn leaf(code: FourCc, bytes: Vec<u8>) -> Atom {
        Atom { code, body: AtomBody::Bytes(bytes) }
    }

    /// Child atoms, or an empty slice for leaves.
    pub fn children(&self) -> &[Atom] {
        match &self.body {
            AtomBody::Children(c) => c,
            AtomBody::Bytes(_) => &[],
        }
    }

    /// Leaf bytes, or `None` for containers.
    pub fn bytes(&self) -> Option<&[u8]> {
        match &self.body {
            AtomBody::Bytes(b) => Some(b),
            AtomBody::Children(_) => None,
        }
    }

    /// First child with the given code.
    pub fn find(&self, code: FourCc) -> Option<&Atom> {
        self.children().iter().find(|a| a.code == code)
    }

    /// All children with the given code.
    pub fn find_all(&self, code: FourCc) -> Vec<&Atom> {
        self.children().iter().filter(|a| a.code == code).collect()
    }

    /// Serialised size in bytes (header included).
    pub fn size(&self) -> usize {
        8 + match &self.body {
            AtomBody::Bytes(b) => b.len(),
            AtomBody::Children(c) => c.iter().map(Atom::size).sum(),
        }
    }

    /// Appends the atom's wire form to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        let size = self.size();
        out.extend_from_slice(&(size as u32).to_be_bytes());
        out.extend_from_slice(&self.code.0);
        match &self.body {
            AtomBody::Bytes(b) => out.extend_from_slice(b),
            AtomBody::Children(c) => {
                for child in c {
                    child.write(out);
                }
            }
        }
    }

    /// Serialises to a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size());
        self.write(&mut out);
        out
    }

    /// Parses one atom from `buf` at `*pos`, advancing `*pos`.
    pub fn read(buf: &[u8], pos: &mut usize) -> Result<Atom> {
        if buf.len() < *pos + 8 {
            return Err(ContainerError::Malformed("truncated atom header"));
        }
        let size = u32::from_be_bytes([buf[*pos], buf[*pos + 1], buf[*pos + 2], buf[*pos + 3]])
            as usize;
        let code = FourCc([buf[*pos + 4], buf[*pos + 5], buf[*pos + 6], buf[*pos + 7]]);
        if size < 8 || *pos + size > buf.len() {
            return Err(ContainerError::Malformed("atom size out of bounds"));
        }
        let body_start = *pos + 8;
        let body_end = *pos + size;
        *pos = body_end;
        let body = match kind_of(code) {
            AtomKind::Leaf => AtomBody::Bytes(buf[body_start..body_end].to_vec()),
            AtomKind::Container => {
                let mut children = Vec::new();
                let mut cpos = body_start;
                while cpos < body_end {
                    children.push(Atom::read(&buf[..body_end], &mut cpos)?);
                }
                AtomBody::Children(children)
            }
        };
        Ok(Atom { code, body })
    }

    /// Parses a forest of atoms covering the whole buffer.
    pub fn read_forest(buf: &[u8]) -> Result<Vec<Atom>> {
        let mut atoms = Vec::new();
        let mut pos = 0;
        while pos < buf.len() {
            atoms.push(Atom::read(buf, &mut pos)?);
        }
        Ok(atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::kinds::*;
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let a = Atom::leaf(STSD, vec![1, 2, 3]);
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), 11);
        assert_eq!(&bytes[..4], &11u32.to_be_bytes());
        assert_eq!(&bytes[4..8], b"stsd");
        let mut pos = 0;
        assert_eq!(Atom::read(&bytes, &mut pos).unwrap(), a);
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn nested_container_roundtrip() {
        let trak = Atom::container(
            TRAK,
            vec![Atom::leaf(STSD, vec![0]), Atom::leaf(DREF, b"stream0.lvc".to_vec())],
        );
        let moov = Atom::container(MOOV, vec![trak.clone(), Atom::leaf(TLFD, vec![9; 16])]);
        let bytes = moov.to_bytes();
        let mut pos = 0;
        let parsed = Atom::read(&bytes, &mut pos).unwrap();
        assert_eq!(parsed, moov);
        assert_eq!(parsed.find(TRAK), Some(&trak));
        assert!(parsed.find(SV3D).is_none());
    }

    #[test]
    fn find_all_returns_every_match() {
        let moov = Atom::container(
            MOOV,
            vec![
                Atom::container(TRAK, vec![]),
                Atom::container(TRAK, vec![]),
                Atom::leaf(TLFD, vec![]),
            ],
        );
        assert_eq!(moov.find_all(TRAK).len(), 2);
    }

    #[test]
    fn forest_parsing() {
        let mut buf = Vec::new();
        Atom::leaf(FTYP, b"ldb1".to_vec()).write(&mut buf);
        Atom::container(MOOV, vec![]).write(&mut buf);
        let forest = Atom::read_forest(&buf).unwrap();
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].code, FTYP);
        assert_eq!(forest[1].code, MOOV);
    }

    #[test]
    fn truncated_atom_rejected() {
        let a = Atom::leaf(STSD, vec![1, 2, 3, 4]);
        let bytes = a.to_bytes();
        assert!(Atom::read_forest(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn undersized_atom_rejected() {
        let mut bytes = Atom::leaf(STSD, vec![]).to_bytes();
        bytes[3] = 4; // size < 8
        assert!(Atom::read_forest(&bytes).is_err());
    }

    #[test]
    fn size_accounts_for_nesting() {
        let inner = Atom::leaf(STSS, vec![0; 10]);
        let outer = Atom::container(TRAK, vec![inner]);
        assert_eq!(outer.size(), 8 + 8 + 10);
    }
}
