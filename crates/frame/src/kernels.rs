//! Pixel kernels backing LightDB's built-in `MAP` / `UNION` functions.
//!
//! Every kernel comes in a whole-frame form and a row-range form
//! (`*_rows`) over `[row_lo, row_hi)` of the *luma* plane; chroma rows
//! are derived (half rate). The row-range forms let the simulated-GPU
//! backend split a kernel across worker threads without the kernels
//! knowing anything about devices.

use crate::color::Yuv;
use crate::frame::{Frame, PlaneKind};

/// Converts to grayscale by neutralising the chroma planes — the
/// paper's `GRAYSCALE` built-in "drops the chroma signal".
pub fn grayscale(src: &Frame) -> Frame {
    let mut dst = src.clone();
    grayscale_rows(src, &mut dst, 0, src.height());
    dst
}

/// Row-range form of [`grayscale`].
pub fn grayscale_rows(src: &Frame, dst: &mut Frame, row_lo: usize, row_hi: usize) {
    debug_assert_eq!(src.width(), dst.width());
    let w = src.width();
    let y_src = src.plane(PlaneKind::Luma);
    dst.plane_mut(PlaneKind::Luma)[row_lo * w..row_hi * w]
        .copy_from_slice(&y_src[row_lo * w..row_hi * w]);
    let cw = w / 2;
    let (clo, chi) = (row_lo / 2, row_hi / 2);
    for plane in [PlaneKind::Cb, PlaneKind::Cr] {
        dst.plane_mut(plane)[clo * cw..chi * cw].fill(128);
    }
}

/// 3×3 truncated-Gaussian blur (kernel `[1 2 1; 2 4 2; 1 2 1] / 16`),
/// the paper's `BLUR` built-in (a truncated Gaussian convolution).
pub fn blur(src: &Frame) -> Frame {
    let mut dst = src.clone();
    blur_rows(src, &mut dst, 0, src.height());
    dst
}

/// Row-range form of [`blur`].
pub fn blur_rows(src: &Frame, dst: &mut Frame, row_lo: usize, row_hi: usize) {
    convolve3x3_rows(
        src,
        dst,
        row_lo,
        row_hi,
        &[1, 2, 1, 2, 4, 2, 1, 2, 1],
        16,
        0,
    );
}

/// Unsharp-mask sharpen (kernel `[0 -1 0; -1 8 -1; 0 -1 0] / 4`),
/// the paper's `SHARPEN` built-in.
pub fn sharpen(src: &Frame) -> Frame {
    let mut dst = src.clone();
    sharpen_rows(src, &mut dst, 0, src.height());
    dst
}

/// Row-range form of [`sharpen`].
pub fn sharpen_rows(src: &Frame, dst: &mut Frame, row_lo: usize, row_hi: usize) {
    convolve3x3_rows(
        src,
        dst,
        row_lo,
        row_hi,
        &[0, -1, 0, -1, 8, -1, 0, -1, 0],
        4,
        0,
    );
}

/// Applies a 3×3 integer convolution with divisor and bias to the luma
/// plane rows `[row_lo, row_hi)`, clamping at the frame borders.
/// Chroma planes are copied through unchanged for the matching rows.
pub fn convolve3x3_rows(
    src: &Frame,
    dst: &mut Frame,
    row_lo: usize,
    row_hi: usize,
    kernel: &[i32; 9],
    divisor: i32,
    bias: i32,
) {
    debug_assert!(divisor != 0);
    let (w, h) = (src.width(), src.height());
    let y_src = src.plane(PlaneKind::Luma);
    {
        let y_dst = dst.plane_mut(PlaneKind::Luma);
        // lint: hot-loop — per-row convolution shared by blur/sharpen bands
        for row in row_lo..row_hi {
            // Border-replicated source rows as plain slices: all the
            // clamping happens once per row / edge column, leaving the
            // interior loop free of branches and index arithmetic.
            let above = if row == 0 { 0 } else { row - 1 };
            let below = (row + 1).min(h - 1);
            let r0 = &y_src[above * w..above * w + w];
            let r1 = &y_src[row * w..row * w + w];
            let r2 = &y_src[below * w..below * w + w];
            let out = &mut y_dst[row * w..row * w + w];
            let clamped = |r: &[u8], c: isize| r[c.clamp(0, w as isize - 1) as usize] as i32;
            for col in [0, w - 1] {
                let c = col as isize;
                let acc = kernel[0] * clamped(r0, c - 1)
                    + kernel[1] * clamped(r0, c)
                    + kernel[2] * clamped(r0, c + 1)
                    + kernel[3] * clamped(r1, c - 1)
                    + kernel[4] * clamped(r1, c)
                    + kernel[5] * clamped(r1, c + 1)
                    + kernel[6] * clamped(r2, c - 1)
                    + kernel[7] * clamped(r2, c)
                    + kernel[8] * clamped(r2, c + 1);
                out[col] = ((acc / divisor) + bias).clamp(0, 255) as u8;
            }
            for col in 1..w.max(1) - 1 {
                let acc = kernel[0] * r0[col - 1] as i32
                    + kernel[1] * r0[col] as i32
                    + kernel[2] * r0[col + 1] as i32
                    + kernel[3] * r1[col - 1] as i32
                    + kernel[4] * r1[col] as i32
                    + kernel[5] * r1[col + 1] as i32
                    + kernel[6] * r2[col - 1] as i32
                    + kernel[7] * r2[col] as i32
                    + kernel[8] * r2[col + 1] as i32;
                out[col] = ((acc / divisor) + bias).clamp(0, 255) as u8;
            }
        }
        // lint: end-hot-loop
    }
    let cw = w / 2;
    let (clo, chi) = (row_lo / 2, row_hi / 2);
    for plane in [PlaneKind::Cb, PlaneKind::Cr] {
        dst.plane_mut(plane)[clo * cw..chi * cw]
            .copy_from_slice(&src.plane(plane)[clo * cw..chi * cw]);
    }
}

/// Adjusts contrast around mid-grey: `y' = (y - 128) · gain + 128`.
pub fn contrast(src: &Frame, gain: f32) -> Frame {
    let mut dst = src.clone();
    contrast_rows(src, &mut dst, gain, 0, src.height());
    dst
}

/// Row-range form of [`contrast`].
pub fn contrast_rows(src: &Frame, dst: &mut Frame, gain: f32, row_lo: usize, row_hi: usize) {
    let w = src.width();
    let y_src = src.plane(PlaneKind::Luma);
    let y_dst = dst.plane_mut(PlaneKind::Luma);
    for i in row_lo * w..row_hi * w {
        y_dst[i] = ((y_src[i] as f32 - 128.0) * gain + 128.0).clamp(0.0, 255.0) as u8;
    }
    let cw = w / 2;
    let (clo, chi) = (row_lo / 2, row_hi / 2);
    for plane in [PlaneKind::Cb, PlaneKind::Cr] {
        dst.plane_mut(plane)[clo * cw..chi * cw]
            .copy_from_slice(&src.plane(plane)[clo * cw..chi * cw]);
    }
}

/// Alpha-blends `overlay` onto `base` at `(x0, y0)` with opacity
/// `alpha ∈ [0, 1]` — the watermark union in the running example.
pub fn overlay_blend(base: &mut Frame, overlay: &Frame, x0: usize, y0: usize, alpha: f32) {
    let a = alpha.clamp(0.0, 1.0);
    let w = overlay.width().min(base.width().saturating_sub(x0));
    let h = overlay.height().min(base.height().saturating_sub(y0));
    for row in 0..h {
        for col in 0..w {
            let s = overlay.get(col, row);
            let d = base.get(x0 + col, y0 + row);
            base.set(
                x0 + col,
                y0 + row,
                Yuv::new(mix(d.y, s.y, a), mix(d.u, s.u, a), mix(d.v, s.v, a)),
            );
        }
    }
}

#[inline]
fn mix(dst: u8, src: u8, a: f32) -> u8 {
    (dst as f32 * (1.0 - a) + src as f32 * a)
        .round()
        .clamp(0.0, 255.0) as u8
}

/// Draws an axis-aligned rectangle outline (thickness in pixels) —
/// used by the AR workload to highlight detections.
pub fn draw_rect(
    frame: &mut Frame,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    thickness: usize,
    color: Yuv,
) {
    let x1 = (x0 + w).min(frame.width());
    let y1 = (y0 + h).min(frame.height());
    for y in y0..y1 {
        for x in x0..x1 {
            let on_edge = x < x0 + thickness
                || x >= x1.saturating_sub(thickness)
                || y < y0 + thickness
                || y >= y1.saturating_sub(thickness);
            if on_edge {
                frame.set(x, y, color);
            }
        }
    }
}

/// Splits `height` luma rows into at most `workers` contiguous bands
/// `(row_lo, row_hi)` for the `*_rows` kernels. Bands are 2-aligned
/// (except possibly the last row of an odd-height frame) so the
/// half-rate chroma rows split cleanly, and they tile `[0, height)`
/// exactly — the contract the parallel backends rely on to stitch
/// results without overlap.
pub fn row_bands(height: usize, workers: usize) -> Vec<(usize, usize)> {
    if height == 0 {
        return Vec::new();
    }
    let workers = workers.max(1);
    if workers == 1 || height <= 2 {
        return vec![(0, height)];
    }
    let band = (height / workers + 1) & !1;
    let band = band.max(2);
    let mut bands = Vec::with_capacity(height / band + 1);
    let mut lo = 0;
    while lo < height {
        let hi = (lo + band).min(height);
        bands.push((lo, hi));
        lo = hi;
    }
    bands
}

/// Synthetic "focus" kernel for light-field rendering demos: blends
/// each pixel toward the blurred image weighted by luma gradient,
/// emulating refocusing. Deterministic and cheap.
pub fn focus(src: &Frame) -> Frame {
    let blurred = blur(src);
    let mut dst = src.clone();
    let w = src.width();
    for row in 0..src.height() {
        for col in 0..w {
            let orig = src.luma_at(col, row) as i32;
            let soft = blurred.luma_at(col, row) as i32;
            let gradient = (orig - soft).abs().min(32);
            // High-gradient (in-focus) pixels keep the original; flat
            // regions take the blurred value.
            let blend = 32 - gradient;
            let v = (orig * (32 - blend) + soft * blend) / 32;
            dst.plane_mut(PlaneKind::Luma)[row * w + col] = v.clamp(0, 255) as u8;
        }
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb;

    fn gradient_frame(w: usize, h: usize) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                f.set(
                    x,
                    y,
                    Yuv::new(
                        ((x * 7 + y * 13) % 256) as u8,
                        (x % 256) as u8,
                        (y % 256) as u8,
                    ),
                );
            }
        }
        f
    }

    #[test]
    fn grayscale_neutralises_chroma() {
        let f = gradient_frame(16, 16);
        let g = grayscale(&f);
        for y in 0..16 {
            for x in 0..16 {
                assert!(g.get(x, y).is_achromatic());
                assert_eq!(g.get(x, y).y, f.get(x, y).y);
            }
        }
    }

    #[test]
    fn blur_preserves_solid_frames() {
        let f = Frame::filled(16, 16, Yuv::new(77, 100, 150));
        let b = blur(&f);
        assert_eq!(b, f);
    }

    #[test]
    fn blur_smooths_an_impulse() {
        let mut f = Frame::filled(16, 16, Yuv::BLACK);
        f.set(8, 8, Yuv::WHITE);
        let b = blur(&f);
        assert!(b.luma_at(8, 8) < 255);
        assert!(b.luma_at(7, 8) > 0);
        assert!(b.luma_at(9, 9) > 0);
    }

    #[test]
    fn sharpen_amplifies_an_edge() {
        let mut f = Frame::filled(16, 16, Yuv::new(100, 128, 128));
        for y in 0..16 {
            for x in 8..16 {
                f.set(x, y, Yuv::new(160, 128, 128));
            }
        }
        let s = sharpen(&f);
        // Just past the edge the luma overshoots the source values.
        assert!(s.luma_at(8, 8) > 160);
        assert!(s.luma_at(7, 8) < 100);
    }

    /// The sliced interior/edge fast path must match the original
    /// fully-clamped per-tap formulation exactly, for every pixel.
    #[test]
    fn convolve_matches_clamped_reference() {
        fn reference(src: &Frame, kernel: &[i32; 9], divisor: i32, bias: i32) -> Vec<u8> {
            let (w, h) = (src.width(), src.height());
            let y = src.plane(PlaneKind::Luma);
            let mut out = vec![0u8; w * h];
            for row in 0..h {
                for col in 0..w {
                    let mut acc = 0i32;
                    for (ki, (dy, dx)) in [
                        (-1i32, -1i32),
                        (-1, 0),
                        (-1, 1),
                        (0, -1),
                        (0, 0),
                        (0, 1),
                        (1, -1),
                        (1, 0),
                        (1, 1),
                    ]
                    .iter()
                    .enumerate()
                    {
                        let sy = (row as i32 + dy).clamp(0, h as i32 - 1) as usize;
                        let sx = (col as i32 + dx).clamp(0, w as i32 - 1) as usize;
                        acc += kernel[ki] * y[sy * w + sx] as i32;
                    }
                    out[row * w + col] = ((acc / divisor) + bias).clamp(0, 255) as u8;
                }
            }
            out
        }
        let kernels: [(&[i32; 9], i32, i32); 3] = [
            (&[1, 2, 1, 2, 4, 2, 1, 2, 1], 16, 0),
            (&[0, -1, 0, -1, 8, -1, 0, -1, 0], 4, 0),
            (&[-3, 5, 0, 5, -7, 2, 1, 0, -2], 3, 7),
        ];
        for (w, h) in [(2, 2), (4, 8), (16, 16), (32, 6)] {
            let f = gradient_frame(w, h);
            for (k, div, bias) in kernels {
                let mut dst = f.clone();
                convolve3x3_rows(&f, &mut dst, 0, h, k, div, bias);
                assert_eq!(
                    dst.plane(PlaneKind::Luma),
                    &reference(&f, k, div, bias)[..],
                    "{w}x{h} kernel {k:?}"
                );
            }
        }
    }

    #[test]
    fn row_range_forms_compose_to_whole_frame() {
        let f = gradient_frame(16, 16);
        let whole = blur(&f);
        let mut pieced = f.clone();
        blur_rows(&f, &mut pieced, 0, 8);
        blur_rows(&f, &mut pieced, 8, 16);
        assert_eq!(whole, pieced);
    }

    #[test]
    fn contrast_unity_gain_is_identity() {
        let f = gradient_frame(8, 8);
        assert_eq!(contrast(&f, 1.0), f);
    }

    #[test]
    fn contrast_zero_gain_flattens() {
        let f = gradient_frame(8, 8);
        let c = contrast(&f, 0.0);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(c.luma_at(x, y), 128);
            }
        }
    }

    #[test]
    fn overlay_full_alpha_replaces() {
        let mut base = Frame::filled(8, 8, Yuv::BLACK);
        let mark = Frame::filled(4, 4, Yuv::WHITE);
        overlay_blend(&mut base, &mark, 2, 2, 1.0);
        assert_eq!(base.get(3, 3), Yuv::WHITE);
        assert_eq!(base.get(0, 0), Yuv::BLACK);
    }

    #[test]
    fn overlay_half_alpha_mixes() {
        let mut base = Frame::filled(8, 8, Yuv::new(0, 128, 128));
        let mark = Frame::filled(4, 4, Yuv::new(200, 128, 128));
        overlay_blend(&mut base, &mark, 0, 0, 0.5);
        assert_eq!(base.luma_at(0, 0), 100);
    }

    #[test]
    fn draw_rect_outline_only() {
        let mut f = Frame::filled(16, 16, Yuv::BLACK);
        let red = Rgb::RED.to_yuv();
        draw_rect(&mut f, 4, 4, 8, 8, 1, red);
        assert_eq!(f.get(4, 4), red); // corner
        assert_eq!(f.get(11, 4), red); // top edge
        assert_eq!(f.luma_at(8, 8), Yuv::BLACK.y); // interior untouched
    }

    #[test]
    fn focus_is_deterministic_and_bounded() {
        let f = gradient_frame(16, 16);
        assert_eq!(focus(&f), focus(&f));
    }

    #[test]
    fn row_bands_tile_exactly_and_align() {
        for height in [0usize, 1, 2, 3, 16, 17, 64, 720, 1080] {
            for workers in [1usize, 2, 3, 4, 8, 16] {
                let bands = row_bands(height, workers);
                if height == 0 {
                    assert!(bands.is_empty());
                    continue;
                }
                // Bands tile [0, height) exactly, in order.
                assert_eq!(bands[0].0, 0);
                assert_eq!(bands[bands.len() - 1].1, height);
                for w in bands.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "gap/overlap at {w:?}");
                }
                // Interior boundaries are 2-aligned for chroma.
                for &(lo, hi) in &bands {
                    assert!(lo % 2 == 0, "band start {lo} not chroma-aligned");
                    assert!(hi % 2 == 0 || hi == height);
                    assert!(lo < hi);
                }
                // An odd final row can add one short band.
                assert!(bands.len() <= workers.max(1) + 1);
            }
        }
    }

    #[test]
    fn row_bands_single_worker_is_whole_frame() {
        assert_eq!(row_bands(64, 1), vec![(0, 64)]);
    }
}
