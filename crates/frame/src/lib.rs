//! # lightdb-frame
//!
//! Raster-frame substrate for LightDB: YUV 4:2:0 frames, colour-space
//! conversion, and the pixel kernels (grayscale, blur, sharpen,
//! overlay, …) that back LightDB's built-in `MAP` functions.
//!
//! Kernels are exposed in two forms:
//!
//! * whole-frame convenience functions (`kernels::grayscale`, …);
//! * row-range forms (`*_rows`) that process `[row_lo, row_hi)` only,
//!   which the simulated-GPU execution backend uses to parallelise a
//!   kernel across worker threads.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod color;
pub mod frame;
pub mod kernels;
pub mod stats;

pub use color::{Rgb, Yuv};
pub use frame::{Frame, PlaneKind};
