//! Colour representations and conversions.
//!
//! LightDB models TLF values as points in a user-specified colour
//! space. The physical layer works in YUV (BT.601 full-range), the
//! colour space video codecs consume; RGB is provided for UDFs and
//! dataset generation.


/// A full-range BT.601 YUV colour sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Yuv {
    pub y: u8,
    pub u: u8,
    pub v: u8,
}

impl Yuv {
    pub const BLACK: Yuv = Yuv { y: 0, u: 128, v: 128 };
    pub const WHITE: Yuv = Yuv { y: 255, u: 128, v: 128 };
    /// Mid-grey, used as the canvas for freshly created TLFs.
    pub const GREY: Yuv = Yuv { y: 128, u: 128, v: 128 };

    #[inline]
    pub const fn new(y: u8, u: u8, v: u8) -> Self {
        Yuv { y, u, v }
    }

    /// True when the chroma channels are neutral (a grayscale sample).
    #[inline]
    pub fn is_achromatic(&self) -> bool {
        self.u == 128 && self.v == 128
    }

    /// Converts to RGB (full-range BT.601).
    pub fn to_rgb(self) -> Rgb {
        let y = self.y as f32;
        let u = self.u as f32 - 128.0;
        let v = self.v as f32 - 128.0;
        let r = y + 1.402 * v;
        let g = y - 0.344_136 * u - 0.714_136 * v;
        let b = y + 1.772 * u;
        Rgb { r: clamp_u8(r), g: clamp_u8(g), b: clamp_u8(b) }
    }
}

/// An 8-bit RGB colour sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb {
    pub r: u8,
    pub g: u8,
    pub b: u8,
}

impl Rgb {
    pub const BLACK: Rgb = Rgb { r: 0, g: 0, b: 0 };
    pub const WHITE: Rgb = Rgb { r: 255, g: 255, b: 255 };
    pub const RED: Rgb = Rgb { r: 255, g: 0, b: 0 };
    pub const GREEN: Rgb = Rgb { r: 0, g: 255, b: 0 };
    pub const BLUE: Rgb = Rgb { r: 0, g: 0, b: 255 };

    #[inline]
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Converts to full-range BT.601 YUV.
    pub fn to_yuv(self) -> Yuv {
        let r = self.r as f32;
        let g = self.g as f32;
        let b = self.b as f32;
        let y = 0.299 * r + 0.587 * g + 0.114 * b;
        let u = -0.168_736 * r - 0.331_264 * g + 0.5 * b + 128.0;
        let v = 0.5 * r - 0.418_688 * g - 0.081_312 * b + 128.0;
        Yuv { y: clamp_u8(y), u: clamp_u8(u), v: clamp_u8(v) }
    }

    /// Perceptual luma of this colour, `0..=255`.
    pub fn luma(self) -> u8 {
        self.to_yuv().y
    }
}

#[inline]
fn clamp_u8(v: f32) -> u8 {
    v.round().clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primaries_roundtrip_closely() {
        for c in [Rgb::BLACK, Rgb::WHITE, Rgb::RED, Rgb::GREEN, Rgb::BLUE] {
            let back = c.to_yuv().to_rgb();
            assert!((c.r as i32 - back.r as i32).abs() <= 2, "{c:?} -> {back:?}");
            assert!((c.g as i32 - back.g as i32).abs() <= 2, "{c:?} -> {back:?}");
            assert!((c.b as i32 - back.b as i32).abs() <= 2, "{c:?} -> {back:?}");
        }
    }

    #[test]
    fn grey_is_achromatic() {
        assert!(Yuv::GREY.is_achromatic());
        assert!(Rgb::new(77, 77, 77).to_yuv().is_achromatic());
        assert!(!Rgb::RED.to_yuv().is_achromatic());
    }

    #[test]
    fn black_and_white_luma() {
        assert_eq!(Rgb::BLACK.luma(), 0);
        assert_eq!(Rgb::WHITE.luma(), 255);
    }

    proptest! {
        #[test]
        fn yuv_rgb_roundtrip_is_close(r in 0u8..=255, g in 0u8..=255, b in 0u8..=255) {
            let c = Rgb::new(r, g, b);
            let back = c.to_yuv().to_rgb();
            // 4:4:4 roundtrip error from 8-bit quantisation is small.
            prop_assert!((c.r as i32 - back.r as i32).abs() <= 3);
            prop_assert!((c.g as i32 - back.g as i32).abs() <= 3);
            prop_assert!((c.b as i32 - back.b as i32).abs() <= 3);
        }

        #[test]
        fn luma_is_monotone_in_brightness(v in 0u8..=254) {
            let darker = Rgb::new(v, v, v);
            let lighter = Rgb::new(v + 1, v + 1, v + 1);
            prop_assert!(darker.luma() <= lighter.luma());
        }
    }
}
