//! Frame-quality statistics used by tests and the benchmark harness.

use crate::frame::{Frame, PlaneKind};

/// Mean squared error between the luma planes of two frames.
pub fn luma_mse(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(a.width(), b.width());
    assert_eq!(a.height(), b.height());
    let pa = a.plane(PlaneKind::Luma);
    let pb = b.plane(PlaneKind::Luma);
    let sum: u64 = pa
        .iter()
        .zip(pb.iter())
        .map(|(&x, &y)| {
            let d = x as i64 - y as i64;
            (d * d) as u64
        })
        .sum();
    sum as f64 / pa.len() as f64
}

/// Peak signal-to-noise ratio (dB) between the luma planes. Returns
/// `f64::INFINITY` for identical planes.
pub fn luma_psnr(a: &Frame, b: &Frame) -> f64 {
    let mse = luma_mse(a, b);
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

/// Mean luma of a frame, `0.0..=255.0`.
pub fn mean_luma(f: &Frame) -> f64 {
    let p = f.plane(PlaneKind::Luma);
    p.iter().map(|&v| v as u64).sum::<u64>() as f64 / p.len() as f64
}

/// Sample variance of the luma plane — a cheap activity measure used
/// by the tiling workload's importance predictor.
pub fn luma_variance(f: &Frame) -> f64 {
    let mean = mean_luma(f);
    let p = f.plane(PlaneKind::Luma);
    p.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / p.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Yuv;

    #[test]
    fn identical_frames_have_zero_mse() {
        let f = Frame::filled(8, 8, Yuv::new(100, 110, 120));
        assert_eq!(luma_mse(&f, &f), 0.0);
        assert!(luma_psnr(&f, &f).is_infinite());
    }

    #[test]
    fn mse_matches_hand_computation() {
        let a = Frame::filled(8, 8, Yuv::new(100, 128, 128));
        let b = Frame::filled(8, 8, Yuv::new(110, 128, 128));
        assert_eq!(luma_mse(&a, &b), 100.0);
        let psnr = luma_psnr(&a, &b);
        assert!((psnr - 28.13).abs() < 0.01, "psnr={psnr}");
    }

    #[test]
    fn mean_and_variance() {
        let mut f = Frame::filled(2, 2, Yuv::new(0, 128, 128));
        f.set(0, 0, Yuv::new(200, 128, 128));
        f.set(1, 0, Yuv::new(200, 128, 128));
        assert_eq!(mean_luma(&f), 100.0);
        assert_eq!(luma_variance(&f), 10_000.0);
    }
}
