//! Planar YUV 4:2:0 frames.

use crate::color::Yuv;

/// Identifies one of the three planes of a 4:2:0 frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneKind {
    Luma,
    Cb,
    Cr,
}

/// A planar YUV 4:2:0 video frame.
///
/// The luma plane is `width × height`; each chroma plane is
/// `(width/2) × (height/2)`. Width and height must be even — the
/// codec's block structure and chroma subsampling both require it.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    width: usize,
    height: usize,
    y: Vec<u8>,
    u: Vec<u8>,
    v: Vec<u8>,
}

impl Frame {
    /// Creates a frame filled with mid-grey.
    pub fn new(width: usize, height: usize) -> Self {
        Frame::filled(width, height, Yuv::GREY)
    }

    /// A zero-sized placeholder that owns no heap memory. Used for
    /// scratch slots that are [`Frame::reshape`]d before first use;
    /// most other methods would panic or misbehave on it.
    pub fn empty() -> Self {
        Frame {
            width: 0,
            height: 0,
            y: Vec::new(),
            u: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Resizes this frame in place to `width × height`, reusing the
    /// plane allocations. Sample values are unspecified afterwards
    /// (mid-grey where planes grow, stale data elsewhere): callers are
    /// expected to overwrite every sample before reading any. Once the
    /// frame has reached its steady-state dimensions this performs no
    /// heap allocation.
    pub fn reshape(&mut self, width: usize, height: usize) {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "frame dimensions must be even (4:2:0)"
        );
        self.width = width;
        self.height = height;
        self.y.resize(width * height, Yuv::GREY.y);
        self.u.resize((width / 2) * (height / 2), Yuv::GREY.u);
        self.v.resize((width / 2) * (height / 2), Yuv::GREY.v);
    }

    /// Creates a frame filled with a solid colour.
    pub fn filled(width: usize, height: usize, color: Yuv) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "frame dimensions must be even (4:2:0)"
        );
        Frame {
            width,
            height,
            y: vec![color.y; width * height],
            u: vec![color.u; (width / 2) * (height / 2)],
            v: vec![color.v; (width / 2) * (height / 2)],
        }
    }

    /// Reassembles a frame from raw planes (sizes are validated).
    pub fn from_planes(width: usize, height: usize, y: Vec<u8>, u: Vec<u8>, v: Vec<u8>) -> Self {
        assert_eq!(y.len(), width * height, "luma plane size mismatch");
        assert_eq!(
            u.len(),
            (width / 2) * (height / 2),
            "Cb plane size mismatch"
        );
        assert_eq!(
            v.len(),
            (width / 2) * (height / 2),
            "Cr plane size mismatch"
        );
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "frame dimensions must be even (4:2:0)"
        );
        Frame {
            width,
            height,
            y,
            u,
            v,
        }
    }

    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total sample count across the three planes.
    #[inline]
    pub fn sample_count(&self) -> usize {
        self.y.len() + self.u.len() + self.v.len()
    }

    #[inline]
    pub fn plane(&self, kind: PlaneKind) -> &[u8] {
        match kind {
            PlaneKind::Luma => &self.y,
            PlaneKind::Cb => &self.u,
            PlaneKind::Cr => &self.v,
        }
    }

    #[inline]
    pub fn plane_mut(&mut self, kind: PlaneKind) -> &mut [u8] {
        match kind {
            PlaneKind::Luma => &mut self.y,
            PlaneKind::Cb => &mut self.u,
            PlaneKind::Cr => &mut self.v,
        }
    }

    /// Plane dimensions for `kind` (chroma planes are half-size).
    pub fn plane_dims(&self, kind: PlaneKind) -> (usize, usize) {
        match kind {
            PlaneKind::Luma => (self.width, self.height),
            PlaneKind::Cb | PlaneKind::Cr => (self.width / 2, self.height / 2),
        }
    }

    /// Reads the full colour at pixel `(x, y)` (chroma is subsampled).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Yuv {
        debug_assert!(x < self.width && y < self.height);
        let ci = (y / 2) * (self.width / 2) + x / 2;
        Yuv {
            y: self.y[y * self.width + x],
            u: self.u[ci],
            v: self.v[ci],
        }
    }

    /// Writes a colour at pixel `(x, y)`. The chroma sample shared by
    /// the 2×2 neighbourhood is overwritten.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: Yuv) {
        debug_assert!(x < self.width && y < self.height);
        self.y[y * self.width + x] = c.y;
        let ci = (y / 2) * (self.width / 2) + x / 2;
        self.u[ci] = c.u;
        self.v[ci] = c.v;
    }

    /// Luma value at `(x, y)` without touching chroma.
    #[inline]
    pub fn luma_at(&self, x: usize, y: usize) -> u8 {
        self.y[y * self.width + x]
    }

    /// Copies `src` into this frame with its top-left corner at
    /// `(dst_x, dst_y)`, clipping at the borders.
    pub fn blit(&mut self, src: &Frame, dst_x: usize, dst_y: usize) {
        let w = src.width.min(self.width.saturating_sub(dst_x));
        let h = src.height.min(self.height.saturating_sub(dst_y));
        for row in 0..h {
            let s = row * src.width;
            let d = (dst_y + row) * self.width + dst_x;
            self.y[d..d + w].copy_from_slice(&src.y[s..s + w]);
        }
        let (cw, ch) = (w / 2, h / 2);
        let (scw, dcw) = (src.width / 2, self.width / 2);
        for row in 0..ch {
            let s = row * scw;
            let d = (dst_y / 2 + row) * dcw + dst_x / 2;
            self.u[d..d + cw].copy_from_slice(&src.u[s..s + cw]);
            self.v[d..d + cw].copy_from_slice(&src.v[s..s + cw]);
        }
    }

    /// Extracts the `w × h` sub-frame whose top-left corner is at
    /// `(x0, y0)`. All four values must be even and in bounds.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Frame {
        let mut out = Frame::empty();
        self.crop_into(x0, y0, w, h, &mut out);
        out
    }

    /// Allocation-reusing form of [`Frame::crop`]: writes the sub-frame
    /// into `out`, reshaping it as needed. Every sample of `out` is
    /// overwritten.
    pub fn crop_into(&self, x0: usize, y0: usize, w: usize, h: usize, out: &mut Frame) {
        assert!(
            x0.is_multiple_of(2)
                && y0.is_multiple_of(2)
                && w.is_multiple_of(2)
                && h.is_multiple_of(2),
            "crop must be 2-aligned"
        );
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop out of bounds"
        );
        out.reshape(w, h);
        for row in 0..h {
            let s = (y0 + row) * self.width + x0;
            let d = row * w;
            out.y[d..d + w].copy_from_slice(&self.y[s..s + w]);
        }
        let (cw, ch) = (w / 2, h / 2);
        let scw = self.width / 2;
        for row in 0..ch {
            let s = (y0 / 2 + row) * scw + x0 / 2;
            let d = row * cw;
            out.u[d..d + cw].copy_from_slice(&self.u[s..s + cw]);
            out.v[d..d + cw].copy_from_slice(&self.v[s..s + cw]);
        }
    }

    /// Nearest-neighbour rescale to `new_w × new_h` (both even).
    ///
    /// Used by `DISCRETIZE` when resampling a TLF's angular resolution
    /// (e.g. down to the 480×480 input of a detector UDF).
    pub fn resize(&self, new_w: usize, new_h: usize) -> Frame {
        assert!(
            new_w.is_multiple_of(2) && new_h.is_multiple_of(2),
            "resize target must be even"
        );
        let mut out = Frame::new(new_w, new_h);
        for oy in 0..new_h {
            let sy = oy * self.height / new_h;
            for ox in 0..new_w {
                let sx = ox * self.width / new_w;
                out.y[oy * new_w + ox] = self.y[sy * self.width + sx];
            }
        }
        let (ncw, nch) = (new_w / 2, new_h / 2);
        let (scw, sch) = (self.width / 2, self.height / 2);
        for oy in 0..nch {
            let sy = oy * sch / nch;
            for ox in 0..ncw {
                let sx = ox * scw / ncw;
                out.u[oy * ncw + ox] = self.u[sy * scw + sx];
                out.v[oy * ncw + ox] = self.v[sy * scw + sx];
            }
        }
        out
    }

    /// Serialises the three planes into one contiguous I420 buffer.
    pub fn to_i420_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.sample_count());
        out.extend_from_slice(&self.y);
        out.extend_from_slice(&self.u);
        out.extend_from_slice(&self.v);
        out
    }

    /// Inverse of [`Frame::to_i420_bytes`].
    pub fn from_i420_bytes(width: usize, height: usize, bytes: &[u8]) -> Frame {
        let ysz = width * height;
        let csz = (width / 2) * (height / 2);
        assert_eq!(bytes.len(), ysz + 2 * csz, "I420 buffer size mismatch");
        Frame::from_planes(
            width,
            height,
            bytes[..ysz].to_vec(),
            bytes[ysz..ysz + csz].to_vec(),
            bytes[ysz + csz..].to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb;

    #[test]
    fn new_frame_is_grey() {
        let f = Frame::new(16, 8);
        assert_eq!(f.get(0, 0), Yuv::GREY);
        assert_eq!(f.get(15, 7), Yuv::GREY);
        assert_eq!(f.sample_count(), 16 * 8 + 2 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_dimensions_rejected() {
        Frame::new(15, 8);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut f = Frame::new(8, 8);
        let red = Rgb::RED.to_yuv();
        f.set(3, 5, red);
        assert_eq!(f.get(3, 5), red);
        // Chroma is shared within the 2×2 block.
        assert_eq!(f.get(2, 4).u, red.u);
    }

    #[test]
    fn blit_copies_region() {
        let mut dst = Frame::filled(16, 16, Yuv::BLACK);
        let src = Frame::filled(4, 4, Yuv::WHITE);
        dst.blit(&src, 8, 8);
        assert_eq!(dst.get(8, 8), Yuv::WHITE);
        assert_eq!(dst.get(11, 11), Yuv::WHITE);
        assert_eq!(dst.get(7, 7), Yuv::BLACK);
        assert_eq!(dst.get(12, 12), Yuv::BLACK);
    }

    #[test]
    fn blit_clips_at_border() {
        let mut dst = Frame::filled(8, 8, Yuv::BLACK);
        let src = Frame::filled(8, 8, Yuv::WHITE);
        dst.blit(&src, 6, 6);
        assert_eq!(dst.get(7, 7), Yuv::WHITE);
        assert_eq!(dst.get(5, 5), Yuv::BLACK);
    }

    #[test]
    fn crop_then_blit_roundtrips() {
        let mut f = Frame::new(16, 16);
        f.set(5, 5, Yuv::WHITE);
        let c = f.crop(4, 4, 8, 8);
        assert_eq!(c.get(1, 1), Yuv::WHITE);
        let mut g = Frame::new(16, 16);
        g.blit(&c, 4, 4);
        assert_eq!(g.get(5, 5), Yuv::WHITE);
    }

    #[test]
    fn resize_preserves_solid_color() {
        let f = Frame::filled(32, 16, Yuv::new(200, 90, 30));
        let r = f.resize(8, 4);
        assert_eq!(r.width(), 8);
        assert_eq!(r.get(3, 2), Yuv::new(200, 90, 30));
    }

    #[test]
    fn i420_roundtrip() {
        let mut f = Frame::new(8, 8);
        f.set(1, 1, Yuv::new(10, 20, 30));
        let bytes = f.to_i420_bytes();
        let g = Frame::from_i420_bytes(8, 8, &bytes);
        assert_eq!(f, g);
    }

    #[test]
    fn crop_out_of_bounds_panics() {
        let f = Frame::new(8, 8);
        assert!(std::panic::catch_unwind(|| f.crop(4, 4, 8, 8)).is_err());
    }

    #[test]
    fn crop_into_matches_crop_across_reuse() {
        let mut f = Frame::new(32, 16);
        for y in 0..16 {
            for x in 0..32 {
                f.set(x, y, Yuv::new((x * 7 + y * 3) as u8, x as u8, y as u8));
            }
        }
        let mut scratch = Frame::empty();
        // Reuse the same scratch across differently-sized crops; each
        // must equal the allocating path exactly.
        for (x0, y0, w, h) in [(0, 0, 8, 8), (4, 2, 16, 12), (2, 0, 4, 4), (0, 0, 32, 16)] {
            f.crop_into(x0, y0, w, h, &mut scratch);
            assert_eq!(scratch, f.crop(x0, y0, w, h), "crop {x0},{y0} {w}x{h}");
        }
    }

    #[test]
    fn reshape_reuses_capacity() {
        let mut f = Frame::new(64, 32);
        let cap = f.y.capacity();
        f.reshape(16, 8);
        assert_eq!((f.width(), f.height()), (16, 8));
        assert_eq!(f.y.len(), 16 * 8);
        f.reshape(64, 32);
        assert_eq!(
            f.y.capacity(),
            cap,
            "reshape back to max size must not reallocate"
        );
    }
}
