//! Dense uniform-bin indexes over one dimension.
//!
//! LightDB represents temporal and angular indexes as dense arrays:
//! the indexed extent is divided into uniform bins and each bin lists
//! the entries overlapping it. Lookups are O(bins touched + hits).


/// A dense index over `[lo, hi)` with `bins` uniform buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseIndex<T> {
    lo: f64,
    hi: f64,
    bins: Vec<Vec<T>>,
}

impl<T: Clone + PartialEq> DenseIndex<T> {
    /// Creates an empty index over `[lo, hi)` with `bins` buckets.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "index extent must be non-empty");
        assert!(bins > 0, "index must have at least one bin");
        DenseIndex { lo, hi, bins: vec![Vec::new(); bins] }
    }

    /// Bucket count.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    fn bin_of(&self, v: f64) -> usize {
        let frac = (v - self.lo) / (self.hi - self.lo);
        ((frac * self.bins.len() as f64) as isize).clamp(0, self.bins.len() as isize - 1) as usize
    }

    /// Registers an entry covering `[from, to]` (clamped to the
    /// indexed extent).
    pub fn insert(&mut self, from: f64, to: f64, value: T) {
        assert!(from <= to, "range reversed");
        if to < self.lo || from >= self.hi {
            return;
        }
        let b0 = self.bin_of(from.max(self.lo));
        let b1 = self.bin_of(to.min(self.hi - f64::EPSILON));
        for b in b0..=b1 {
            self.bins[b].push(value.clone());
        }
    }

    /// Distinct entries overlapping `[from, to]`, in insertion order.
    pub fn query(&self, from: f64, to: f64) -> Vec<&T> {
        if to < self.lo || from >= self.hi || from > to {
            return Vec::new();
        }
        let b0 = self.bin_of(from.max(self.lo));
        let b1 = self.bin_of(to.min(self.hi - f64::EPSILON));
        let mut out: Vec<&T> = Vec::new();
        for b in b0..=b1 {
            for v in &self.bins[b] {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Entries overlapping a single point.
    pub fn query_point(&self, at: f64) -> Vec<&T> {
        self.query(at, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_range_lookup() {
        let mut idx = DenseIndex::new(0.0, 90.0, 90);
        idx.insert(0.0, 29.9, "gop0");
        idx.insert(30.0, 59.9, "gop1");
        idx.insert(60.0, 89.9, "gop2");
        assert_eq!(idx.query(35.0, 40.0), vec![&"gop1"]);
        assert_eq!(idx.query(29.0, 31.0), vec![&"gop0", &"gop1"]);
        assert_eq!(idx.query(0.0, 89.9).len(), 3);
    }

    #[test]
    fn out_of_extent_queries_are_empty() {
        let mut idx = DenseIndex::new(0.0, 10.0, 10);
        idx.insert(0.0, 10.0, 1u32);
        assert!(idx.query(-5.0, -1.0).is_empty());
        assert!(idx.query(10.5, 12.0).is_empty());
        assert!(idx.query(5.0, 4.0).is_empty());
    }

    #[test]
    fn duplicates_within_result_removed() {
        let mut idx = DenseIndex::new(0.0, 10.0, 10);
        idx.insert(0.0, 9.9, 7u32); // touches every bin
        assert_eq!(idx.query(0.0, 9.9), vec![&7u32]);
    }

    #[test]
    fn point_query_at_boundary() {
        let mut idx = DenseIndex::new(0.0, 10.0, 5);
        idx.insert(2.0, 4.0, "a");
        assert_eq!(idx.query_point(2.0), vec![&"a"]);
        assert_eq!(idx.query_point(4.0), vec![&"a"]);
        assert!(idx.query_point(6.1).is_empty());
    }

    proptest! {
        #[test]
        fn query_superset_of_exact_overlaps(
            ranges in proptest::collection::vec((0.0f64..100.0, 0.0f64..10.0), 1..40),
            q in (0.0f64..100.0, 0.0f64..10.0),
        ) {
            let mut idx = DenseIndex::new(0.0, 100.0, 64);
            for (i, &(lo, len)) in ranges.iter().enumerate() {
                idx.insert(lo, (lo + len).min(100.0), i);
            }
            let (qlo, qlen) = q;
            let qhi = (qlo + qlen).min(100.0);
            let got: Vec<usize> = idx.query(qlo, qhi).into_iter().copied().collect();
            // Dense bins may over-approximate, never under-approximate:
            // every truly overlapping range must be in the result.
            for (i, &(lo, len)) in ranges.iter().enumerate() {
                let hi = (lo + len).min(100.0);
                if lo <= qhi && qlo <= hi {
                    prop_assert!(got.contains(&i), "missing overlap {i}");
                }
            }
        }
    }
}
