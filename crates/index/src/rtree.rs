//! A from-scratch R-tree (Guttman, 1984) over 3-D axis-aligned boxes.
//!
//! Supports bulk and incremental insertion with quadratic split,
//! rectangle-intersection queries, and point queries. Entries carry an
//! arbitrary payload (LightDB stores the identifier of the encoded
//! video file covering that spatial region).

use lightdb_geom::{Point3, Volume};

/// Maximum entries per node before splitting.
const MAX_ENTRIES: usize = 8;
/// Minimum entries per node after a split.
const MIN_ENTRIES: usize = 3;

/// An axis-aligned box in (x, y, z).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect3 {
    pub min: Point3,
    pub max: Point3,
}

impl Rect3 {
    pub fn new(min: Point3, max: Point3) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "rect min must not exceed max"
        );
        Rect3 { min, max }
    }

    /// A degenerate rectangle at a single point.
    pub fn point(p: Point3) -> Self {
        Rect3 { min: p, max: p }
    }

    /// The spatial footprint of a TLF volume (unbounded extents are
    /// clamped to a large finite box so area arithmetic stays finite).
    pub fn from_volume(v: &Volume) -> Self {
        const BIG: f64 = 1e12;
        let clamp = |f: f64| f.clamp(-BIG, BIG);
        Rect3 {
            min: Point3::new(clamp(v.x().lo()), clamp(v.y().lo()), clamp(v.z().lo())),
            max: Point3::new(clamp(v.x().hi()), clamp(v.y().hi()), clamp(v.z().hi())),
        }
    }

    /// True when the two boxes overlap (closed bounds).
    pub fn intersects(&self, other: &Rect3) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
            && self.min.z <= other.max.z
            && other.min.z <= self.max.z
    }

    /// True when `p` lies inside (closed bounds).
    pub fn contains_point(&self, p: &Point3) -> bool {
        (self.min.x..=self.max.x).contains(&p.x)
            && (self.min.y..=self.max.y).contains(&p.y)
            && (self.min.z..=self.max.z).contains(&p.z)
    }

    /// Smallest box containing both.
    pub fn union(&self, other: &Rect3) -> Rect3 {
        Rect3 {
            min: Point3::new(
                self.min.x.min(other.min.x),
                self.min.y.min(other.min.y),
                self.min.z.min(other.min.z),
            ),
            max: Point3::new(
                self.max.x.max(other.max.x),
                self.max.y.max(other.max.y),
                self.max.z.max(other.max.z),
            ),
        }
    }

    /// Surrogate for volume used by the split/choose heuristics: the
    /// product of extents with a small floor per axis so degenerate
    /// boxes still order sensibly.
    fn measure(&self) -> f64 {
        let e = 1e-9;
        ((self.max.x - self.min.x) + e)
            * ((self.max.y - self.min.y) + e)
            * ((self.max.z - self.min.z) + e)
    }

    fn enlargement(&self, other: &Rect3) -> f64 {
        self.union(other).measure() - self.measure()
    }
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<(Rect3, T)>),
    Inner(Vec<(Rect3, Box<Node<T>>)>),
}

impl<T> Node<T> {
    fn bbox(&self) -> Option<Rect3> {
        match self {
            Node::Leaf(entries) => {
                entries.iter().map(|(r, _)| *r).reduce(|a, b| a.union(&b))
            }
            Node::Inner(children) => {
                children.iter().map(|(r, _)| *r).reduce(|a, b| a.union(&b))
            }
        }
    }

    #[allow(dead_code)]
    fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Inner(c) => c.len(),
        }
    }
}

/// The R-tree.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        RTree { root: Node::Leaf(Vec::new()), len: 0 }
    }
}

impl<T: Clone> RTree<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry.
    pub fn insert(&mut self, rect: Rect3, value: T) {
        self.len += 1;
        if let Some((r1, n1, r2, n2)) = insert_rec(&mut self.root, rect, value) {
            // Root split: grow the tree.
            self.root = Node::Inner(vec![(r1, Box::new(n1)), (r2, Box::new(n2))]);
        }
    }

    /// All values whose rectangles intersect `query`.
    pub fn search(&self, query: &Rect3) -> Vec<&T> {
        let mut out = Vec::new();
        search_rec(&self.root, query, &mut out);
        out
    }

    /// All values whose rectangles contain the point.
    pub fn search_point(&self, p: &Point3) -> Vec<&T> {
        self.search(&Rect3::point(*p))
    }

    /// Tree height (1 for a leaf-only tree) — exposed for tests.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Inner(children) = node {
            h += 1;
            node = &children[0].1;
        }
        h
    }
}

fn search_rec<'a, T>(node: &'a Node<T>, query: &Rect3, out: &mut Vec<&'a T>) {
    match node {
        Node::Leaf(entries) => {
            for (r, v) in entries {
                if r.intersects(query) {
                    out.push(v);
                }
            }
        }
        Node::Inner(children) => {
            for (r, child) in children {
                if r.intersects(query) {
                    search_rec(child, query, out);
                }
            }
        }
    }
}

/// Recursive insert; returns the two halves when the node split.
fn insert_rec<T: Clone>(
    node: &mut Node<T>,
    rect: Rect3,
    value: T,
) -> Option<(Rect3, Node<T>, Rect3, Node<T>)> {
    match node {
        Node::Leaf(entries) => {
            entries.push((rect, value));
            if entries.len() <= MAX_ENTRIES {
                return None;
            }
            let (a, b) = quadratic_split(std::mem::take(entries));
            let (ra, rb) = (bbox_of(&a), bbox_of(&b));
            Some((ra, Node::Leaf(a), rb, Node::Leaf(b)))
        }
        Node::Inner(children) => {
            // Choose the child whose bbox needs least enlargement.
            let mut best = 0;
            let mut best_enl = f64::INFINITY;
            let mut best_measure = f64::INFINITY;
            for (i, (r, _)) in children.iter().enumerate() {
                let enl = r.enlargement(&rect);
                let m = r.measure();
                if enl < best_enl || (enl == best_enl && m < best_measure) {
                    best = i;
                    best_enl = enl;
                    best_measure = m;
                }
            }
            match insert_rec(&mut children[best].1, rect, value) {
                None => {
                    // lint: allow(R1): inner-node children are non-empty by construction
                    #[allow(clippy::expect_used)]
                    let tightened = children[best].1.bbox().expect("non-empty child");
                    children[best].0 = tightened;
                }
                Some((r1, n1, r2, n2)) => {
                    children[best] = (r1, Box::new(n1));
                    children.push((r2, Box::new(n2)));
                    if children.len() > MAX_ENTRIES {
                        let (a, b) = quadratic_split(std::mem::take(children));
                        let (ra, rb) = (bbox_of(&a), bbox_of(&b));
                        return Some((ra, Node::Inner(a), rb, Node::Inner(b)));
                    }
                }
            }
            None
        }
    }
}

#[allow(clippy::expect_used)]
fn bbox_of<E>(entries: &[(Rect3, E)]) -> Rect3 {
    // lint: allow(R1): only called on split halves, which are non-empty by construction
    entries.iter().map(|(r, _)| *r).reduce(|a, b| a.union(&b)).expect("non-empty")
}

/// A pair of entry lists produced by a node split.
type SplitHalves<E> = (Vec<(Rect3, E)>, Vec<(Rect3, E)>);

/// Guttman's quadratic split.
fn quadratic_split<E>(mut entries: Vec<(Rect3, E)>) -> SplitHalves<E> {
    // Pick the pair wasting the most area as seeds.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let waste = entries[i].0.union(&entries[j].0).measure()
                - entries[i].0.measure()
                - entries[j].0.measure();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Remove the higher index first so the lower stays valid.
    let e2 = entries.remove(s2);
    let e1 = entries.remove(s1);
    let mut ra = e1.0;
    let mut rb = e2.0;
    let mut a = vec![e1];
    let mut b = vec![e2];
    while let Some(e) = entries.pop() {
        // Honour minimum fill.
        let remaining = entries.len() + 1;
        if a.len() + remaining <= MIN_ENTRIES {
            ra = ra.union(&e.0);
            a.push(e);
            continue;
        }
        if b.len() + remaining <= MIN_ENTRIES {
            rb = rb.union(&e.0);
            b.push(e);
            continue;
        }
        if ra.enlargement(&e.0) <= rb.enlargement(&e.0) {
            ra = ra.union(&e.0);
            a.push(e);
        } else {
            rb = rb.union(&e.0);
            b.push(e);
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pt(x: f64, y: f64, z: f64) -> Point3 {
        Point3::new(x, y, z)
    }

    #[test]
    fn empty_tree_finds_nothing() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert!(t.search_point(&pt(0.0, 0.0, 0.0)).is_empty());
    }

    #[test]
    fn single_entry_point_query() {
        let mut t = RTree::new();
        t.insert(Rect3::point(pt(1.0, 2.0, 3.0)), "a");
        assert_eq!(t.search_point(&pt(1.0, 2.0, 3.0)), vec![&"a"]);
        assert!(t.search_point(&pt(0.0, 0.0, 0.0)).is_empty());
    }

    #[test]
    fn range_query_finds_all_overlaps() {
        let mut t = RTree::new();
        for i in 0..20 {
            let x = i as f64;
            t.insert(Rect3::new(pt(x, 0.0, 0.0), pt(x + 0.5, 1.0, 1.0)), i);
        }
        let hits = t.search(&Rect3::new(pt(4.9, 0.0, 0.0), pt(7.1, 1.0, 1.0)));
        let mut ids: Vec<u32> = hits.into_iter().copied().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![5, 6, 7]);
    }

    #[test]
    fn tree_grows_in_height() {
        let mut t = RTree::new();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..500u32 {
            let p = pt(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0), 0.0);
            t.insert(Rect3::point(p), i);
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 3, "height {} too small for 500 entries", t.height());
        // Everything is findable via a full-extent query.
        let all = t.search(&Rect3::new(pt(-1.0, -1.0, -1.0), pt(101.0, 101.0, 1.0)));
        assert_eq!(all.len(), 500);
    }

    #[test]
    fn from_volume_clamps_unbounded() {
        let r = Rect3::from_volume(&Volume::everywhere());
        assert!(r.min.x.is_finite() && r.max.x.is_finite());
    }

    #[test]
    fn duplicate_points_all_returned() {
        let mut t = RTree::new();
        for i in 0..10 {
            t.insert(Rect3::point(pt(5.0, 5.0, 5.0)), i);
        }
        assert_eq!(t.search_point(&pt(5.0, 5.0, 5.0)).len(), 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn rtree_matches_linear_scan(
            points in proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0, 0.0f64..50.0), 1..200),
            q in (0.0f64..50.0, 0.0f64..50.0, 0.0f64..50.0, 0.0f64..20.0),
        ) {
            let mut t = RTree::new();
            for (i, &(x, y, z)) in points.iter().enumerate() {
                t.insert(Rect3::point(pt(x, y, z)), i);
            }
            let (qx, qy, qz, ext) = q;
            let query = Rect3::new(pt(qx, qy, qz), pt(qx + ext, qy + ext, qz + ext));
            let mut got: Vec<usize> = t.search(&query).into_iter().copied().collect();
            got.sort_unstable();
            let mut expect: Vec<usize> = points
                .iter()
                .enumerate()
                .filter(|(_, &(x, y, z))| query.contains_point(&pt(x, y, z)))
                .map(|(i, _)| i)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }
}
