//! # lightdb-index
//!
//! External index structures for LightDB:
//!
//! * [`RTree`] — a from-scratch R-tree over axis-aligned rectangles in
//!   up to three spatial dimensions, used by `CREATEINDEX` for spatial
//!   selections over TLFs built from unions of many videos (the
//!   "concert / museum / tourist location" case);
//! * [`DenseIndex`] — a uniform-bin dense index over one dimension,
//!   the representation LightDB uses for temporal and angular indexes.
//!
//! The GOP index and tile index are *embedded* indexes (they live in
//! the `stss` atom and the frame headers respectively); this crate
//! holds the external ones, plus the [`IndexKey`] naming scheme used
//! to store them alongside TLF metadata (`index1.xz` etc.).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod dense;
pub mod persist;
pub mod rtree;

pub use dense::DenseIndex;
pub use rtree::{Rect3, RTree};

use lightdb_geom::Dimension;

/// The identity of an external index: the TLF version it covers and
/// the dimensions it indexes, e.g. `index1.xz`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexKey {
    pub version: u64,
    pub dims: Vec<Dimension>,
}

impl IndexKey {
    pub fn new(version: u64, mut dims: Vec<Dimension>) -> Self {
        dims.sort_unstable();
        dims.dedup();
        IndexKey { version, dims }
    }

    /// The file name the storage layer uses for this index.
    pub fn file_name(&self) -> String {
        let suffix: String = self.dims.iter().map(|d| d.name()).collect::<Vec<_>>().join("");
        format!("index{}.{suffix}", self.version)
    }

    /// How many of `selected` dimensions this index covers — the
    /// optimizer picks the covering index with the highest score.
    pub fn coverage(&self, selected: &[Dimension]) -> usize {
        self.dims.iter().filter(|d| selected.contains(d)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_match_paper_convention() {
        let k = IndexKey::new(1, vec![Dimension::X, Dimension::Z]);
        assert_eq!(k.file_name(), "index1.xz");
        let k = IndexKey::new(3, vec![Dimension::Y, Dimension::T]);
        assert_eq!(k.file_name(), "index3.yt");
    }

    #[test]
    fn dims_are_canonicalised() {
        let a = IndexKey::new(1, vec![Dimension::Z, Dimension::X, Dimension::X]);
        let b = IndexKey::new(1, vec![Dimension::X, Dimension::Z]);
        assert_eq!(a, b);
    }

    #[test]
    fn coverage_counts_overlap() {
        let k = IndexKey::new(1, vec![Dimension::X, Dimension::Z]);
        assert_eq!(k.coverage(&[Dimension::X, Dimension::Y]), 1);
        assert_eq!(k.coverage(&[Dimension::X, Dimension::Z, Dimension::T]), 2);
        assert_eq!(k.coverage(&[Dimension::T]), 0);
    }
}
