//! On-disk form of spatial indexes.
//!
//! A spatial index file stores `(Rect3, entry-id)` pairs; the R-tree
//! is rebuilt at load time (bulk insertion is cheap relative to the
//! media it indexes, and the file format stays trivial to validate).

use crate::rtree::{RTree, Rect3};
use lightdb_geom::Point3;

/// Magic prefix of index files.
pub const INDEX_MAGIC: [u8; 4] = *b"LIX1";

/// Serialises index entries.
pub fn serialize_entries(entries: &[(Rect3, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 8 + entries.len() * 56);
    out.extend_from_slice(&INDEX_MAGIC);
    out.extend_from_slice(&(entries.len() as u64).to_be_bytes());
    for (r, id) in entries {
        for v in [r.min.x, r.min.y, r.min.z, r.max.x, r.max.y, r.max.z] {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out.extend_from_slice(&id.to_be_bytes());
    }
    out
}

/// Parses index entries; `None` on any structural problem (callers
/// fall back to a full scan).
pub fn deserialize_entries(bytes: &[u8]) -> Option<Vec<(Rect3, u64)>> {
    if bytes.len() < 12 || bytes[..4] != INDEX_MAGIC {
        return None;
    }
    let n = u64::from_be_bytes(bytes[4..12].try_into().ok()?) as usize;
    if bytes.len() != 12 + n * 56 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    let mut pos = 12;
    let f = |pos: &mut usize| -> Option<f64> {
        let v = f64::from_be_bytes(bytes[*pos..*pos + 8].try_into().ok()?);
        *pos += 8;
        Some(v)
    };
    for _ in 0..n {
        let (ax, ay, az) = (f(&mut pos)?, f(&mut pos)?, f(&mut pos)?);
        let (bx, by, bz) = (f(&mut pos)?, f(&mut pos)?, f(&mut pos)?);
        if !(ax <= bx && ay <= by && az <= bz)
            || [ax, ay, az, bx, by, bz].iter().any(|v| v.is_nan())
        {
            return None;
        }
        let id = u64::from_be_bytes(bytes[pos..pos + 8].try_into().ok()?);
        pos += 8;
        out.push((Rect3::new(Point3::new(ax, ay, az), Point3::new(bx, by, bz)), id));
    }
    Some(out)
}

/// Rebuilds an R-tree from serialised bytes.
pub fn load_rtree(bytes: &[u8]) -> Option<RTree<u64>> {
    let entries = deserialize_entries(bytes)?;
    let mut tree = RTree::new();
    for (r, id) in entries {
        tree.insert(r, id);
    }
    Some(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64, z: f64) -> Point3 {
        Point3::new(x, y, z)
    }

    #[test]
    fn entries_roundtrip() {
        let entries = vec![
            (Rect3::point(pt(0.0, 1.0, 2.0)), 7u64),
            (Rect3::new(pt(-1.0, -2.0, -3.0), pt(4.0, 5.0, 6.0)), 9),
        ];
        let bytes = serialize_entries(&entries);
        assert_eq!(deserialize_entries(&bytes).unwrap(), entries);
    }

    #[test]
    fn empty_index_roundtrips() {
        let bytes = serialize_entries(&[]);
        assert_eq!(deserialize_entries(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let entries = vec![(Rect3::point(pt(0.0, 0.0, 0.0)), 1u64)];
        let mut bytes = serialize_entries(&entries);
        assert!(deserialize_entries(&bytes[..bytes.len() - 1]).is_none());
        bytes[0] = b'X';
        assert!(deserialize_entries(&bytes).is_none());
    }

    #[test]
    fn loaded_tree_answers_queries() {
        let entries: Vec<(Rect3, u64)> =
            (0..50).map(|i| (Rect3::point(pt(i as f64, 0.0, 0.0)), i)).collect();
        let tree = load_rtree(&serialize_entries(&entries)).unwrap();
        let hits = tree.search(&Rect3::new(pt(10.0, 0.0, 0.0), pt(12.0, 0.0, 0.0)));
        assert_eq!(hits.len(), 3);
    }
}
