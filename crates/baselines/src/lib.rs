//! # lightdb-baselines
//!
//! Architectural simulations of the four systems the paper compares
//! against. All four share LightDB's codec substrate — deliberately:
//! the paper's performance differences come from *system
//! architecture* (what gets decoded, what is materialised, what can
//! be copied without re-encoding), not from codec quality, and
//! sharing one codec isolates exactly those differences.
//!
//! | module | stands in for | architectural signature |
//! |---|---|---|
//! | [`ffmpeg`] | FFmpeg (C API / CLI) | streaming decode→filter→encode; full codec-settings control; byte-level `concat`; no angular/tile awareness, no GOP index |
//! | [`opencv`] | OpenCV `VideoCapture`/`VideoWriter` | frame-at-a-time with per-frame buffer copies; writer has fixed, non-configurable encoder settings (no NVENC on Linux) |
//! | [`scanner`] | Scanner (SIGGRAPH '18) | pins **all** decoded frames in memory before processing (hard cap → OOM on long inputs), parallel maps, OpenCV-based encode |
//! | [`scidb`] | SciDB | chunked multidimensional arrays of decoded pixels on disk; video enters/leaves only via an external export/import round-trip |

pub mod ffmpeg;
pub mod opencv;
pub mod scanner;
pub mod scidb;

/// Errors from baseline pipelines.
#[derive(Debug)]
pub enum BaselineError {
    Codec(lightdb_codec::CodecError),
    Io(std::io::Error),
    /// Scanner exhausted its frame-pinning memory budget.
    OutOfMemory { needed: usize, budget: usize },
    Other(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Codec(e) => write!(f, "codec: {e}"),
            BaselineError::Io(e) => write!(f, "io: {e}"),
            BaselineError::OutOfMemory { needed, budget } => write!(
                f,
                "out of memory: pipeline needs {needed} bytes of pinned frames, budget {budget}"
            ),
            BaselineError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<lightdb_codec::CodecError> for BaselineError {
    fn from(e: lightdb_codec::CodecError) -> Self {
        BaselineError::Codec(e)
    }
}

impl From<std::io::Error> for BaselineError {
    fn from(e: std::io::Error) -> Self {
        BaselineError::Io(e)
    }
}

pub type Result<T> = std::result::Result<T, BaselineError>;
