//! FFmpeg-sim: a streaming decode → filter → encode library.
//!
//! FFmpeg is the strongest baseline: it streams (no whole-video
//! materialisation), exposes full codec settings, and its *concat
//! protocol* stitches compatible streams at the byte level (matching
//! LightDB's `GOPUNION` in Figure 15). What it lacks is everything
//! angular: no tile awareness (cropping or stitching tiles always
//! pays a decode/encode cycle) and no GOP index over stored TLFs
//! (temporal trims decode from the start of the stream).

use crate::Result;
use lightdb_codec::encoder::encode_tile_opts;
use lightdb_codec::gop::{EncodedFrame, EncodedGop, FrameType};
use lightdb_codec::{CodecKind, Decoder, SequenceHeader, TileGrid, VideoStream};
use lightdb_frame::Frame;

/// Streaming decoder: yields frames GOP-at-a-time without pinning the
/// whole video.
#[derive(Debug)]
pub struct FfmpegDecoder<'a> {
    stream: &'a VideoStream,
    gop: usize,
    buffered: Vec<Frame>,
    next: usize,
}

impl<'a> FfmpegDecoder<'a> {
    pub fn new(stream: &'a VideoStream) -> Self {
        FfmpegDecoder { stream, gop: 0, buffered: Vec::new(), next: 0 }
    }
}

impl Iterator for FfmpegDecoder<'_> {
    type Item = Result<Frame>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.buffered.len() {
            if self.gop >= self.stream.gops.len() {
                return None;
            }
            let gop = &self.stream.gops[self.gop];
            self.gop += 1;
            match Decoder::new().decode_gop(&self.stream.header, gop) {
                Ok(frames) => {
                    self.buffered = frames;
                    self.next = 0;
                }
                Err(e) => return Some(Err(e.into())),
            }
        }
        let f = self.buffered[self.next].clone();
        self.next += 1;
        Some(Ok(f))
    }
}

/// Encoder settings — FFmpeg exposes the full surface.
#[derive(Debug, Clone, Copy)]
pub struct FfmpegEncoderSettings {
    pub codec: CodecKind,
    pub qp: u8,
    pub fps: u32,
    pub gop_length: usize,
}

impl Default for FfmpegEncoderSettings {
    fn default() -> Self {
        FfmpegEncoderSettings { codec: CodecKind::HevcSim, qp: 22, fps: 30, gop_length: 30 }
    }
}

/// Streaming encoder: push frames, take the stream at the end.
#[derive(Debug)]
pub struct FfmpegEncoder {
    settings: FfmpegEncoderSettings,
    pending: Vec<Frame>,
    reference: Option<Frame>,
    gop_frames: Vec<EncodedFrame>,
    gops: Vec<EncodedGop>,
    dims: Option<(usize, usize)>,
}

impl FfmpegEncoder {
    pub fn new(settings: FfmpegEncoderSettings) -> Self {
        FfmpegEncoder {
            settings,
            pending: Vec::new(),
            reference: None,
            gop_frames: Vec::new(),
            gops: Vec::new(),
            dims: None,
        }
    }

    /// Pushes one frame through the encoder.
    pub fn push(&mut self, frame: &Frame) -> Result<()> {
        let dims = (frame.width(), frame.height());
        match self.dims {
            None => self.dims = Some(dims),
            Some(d) if d != dims => {
                return Err(crate::BaselineError::Other("frame size changed mid-stream".into()))
            }
            _ => {}
        }
        let is_key = self.gop_frames.len().is_multiple_of(self.settings.gop_length);
        let reference = if is_key { None } else { self.reference.as_ref() };
        let (payload, recon) = encode_tile_opts(
            frame,
            reference,
            self.settings.qp,
            self.settings.codec,
            self.settings.codec.search_range(),
        );
        self.reference = Some(recon);
        self.gop_frames.push(EncodedFrame {
            frame_type: if is_key { FrameType::Key } else { FrameType::Predicted },
            tiles: vec![payload],
        });
        if self.gop_frames.len() == self.settings.gop_length {
            self.gops.push(EncodedGop { frames: std::mem::take(&mut self.gop_frames) });
        }
        self.pending.clear();
        Ok(())
    }

    /// Flushes and returns the encoded stream.
    pub fn finish(mut self) -> Result<VideoStream> {
        if !self.gop_frames.is_empty() {
            self.gops.push(EncodedGop { frames: std::mem::take(&mut self.gop_frames) });
        }
        let (w, h) =
            self.dims.ok_or_else(|| crate::BaselineError::Other("no frames pushed".into()))?;
        Ok(VideoStream {
            header: SequenceHeader {
                codec: self.settings.codec,
                width: w,
                height: h,
                fps: self.settings.fps,
                gop_length: self.settings.gop_length,
                grid: TileGrid::SINGLE,
            },
            gops: self.gops,
        })
    }
}

/// The concat protocol: byte-level GOP concatenation of compatible
/// streams (FFmpeg's one homomorphic trick).
pub fn concat(streams: &[&VideoStream]) -> Result<VideoStream> {
    Ok(VideoStream::concat(streams)?)
}

/// A full transcode (decode + re-encode), streaming.
pub fn transcode(input: &VideoStream, settings: FfmpegEncoderSettings) -> Result<VideoStream> {
    let mut enc = FfmpegEncoder::new(settings);
    for f in FfmpegDecoder::new(input) {
        enc.push(&f?)?;
    }
    enc.finish()
}

/// Temporal trim: FFmpeg has no index over our stored TLFs, so it
/// decodes every frame and keeps `[from, to)` seconds, re-encoding.
pub fn trim(input: &VideoStream, from: f64, to: f64, settings: FfmpegEncoderSettings) -> Result<VideoStream> {
    let fps = input.header.fps as f64;
    let lo = (from * fps).round() as usize;
    let hi = (to * fps).round() as usize;
    let mut enc = FfmpegEncoder::new(settings);
    for (i, f) in FfmpegDecoder::new(input).enumerate() {
        let f = f?;
        if i >= lo && i < hi {
            enc.push(&f)?;
        }
    }
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_codec::{Encoder, EncoderConfig};
    use lightdb_frame::stats::luma_psnr;
    use lightdb_frame::Yuv;

    fn source(n: usize) -> (Vec<Frame>, VideoStream) {
        let frames: Vec<Frame> = (0..n)
            .map(|i| {
                let mut f = Frame::new(64, 32);
                for y in 0..32 {
                    for x in 0..64 {
                        f.set(x, y, Yuv::new(((x + y * 2 + i * 4) % 256) as u8, 128, 128));
                    }
                }
                f
            })
            .collect();
        let s = Encoder::new(EncoderConfig { gop_length: 4, fps: 4, qp: 14, ..Default::default() })
            .unwrap()
            .encode(&frames)
            .unwrap();
        (frames, s)
    }

    #[test]
    fn streaming_decode_matches_batch_decode() {
        let (_, s) = source(8);
        let streamed: Vec<Frame> =
            FfmpegDecoder::new(&s).map(|f| f.unwrap()).collect();
        let batch = Decoder::new().decode(&s).unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn encode_roundtrip_quality() {
        let (frames, _) = source(6);
        let mut enc = FfmpegEncoder::new(FfmpegEncoderSettings {
            qp: 10,
            gop_length: 3,
            fps: 4,
            ..Default::default()
        });
        for f in &frames {
            enc.push(f).unwrap();
        }
        let stream = enc.finish().unwrap();
        assert_eq!(stream.gops.len(), 2);
        let dec = Decoder::new().decode(&stream).unwrap();
        for (a, b) in frames.iter().zip(dec.iter()) {
            assert!(luma_psnr(a, b) > 30.0);
        }
    }

    #[test]
    fn concat_is_byte_level() {
        let (_, a) = source(4);
        let (_, b) = source(4);
        let c = concat(&[&a, &b]).unwrap();
        assert_eq!(c.gops.len(), 2);
        assert_eq!(c.gops[0], a.gops[0]);
        assert_eq!(c.gops[1], b.gops[0]);
    }

    #[test]
    fn trim_keeps_the_right_seconds() {
        let (_, s) = source(8); // 2 seconds at 4 fps
        let t = trim(&s, 1.0, 2.0, FfmpegEncoderSettings { fps: 4, gop_length: 4, ..Default::default() })
            .unwrap();
        assert_eq!(t.frame_count(), 4);
    }

    #[test]
    fn transcode_changes_codec() {
        let (_, s) = source(4);
        let t = transcode(
            &s,
            FfmpegEncoderSettings { codec: CodecKind::H264Sim, fps: 4, gop_length: 4, ..Default::default() },
        )
        .unwrap();
        assert_eq!(t.header.codec, CodecKind::H264Sim);
        assert_eq!(t.frame_count(), 4);
    }
}
