//! Scanner-sim: table-of-frames pipelines.
//!
//! Scanner (Poms et al., SIGGRAPH 2018) ingests a video into a table
//! of decoded frames, runs kernels over the table in parallel, and
//! writes results back. Its architectural signature in the paper's
//! experiments: it **pins all uncompressed frames in memory** and
//! performs per-tile, per-frame allocations, so 4K inputs beyond
//! ~20 seconds exhaust memory; and its encode path goes through
//! OpenCV (fixed settings).

use crate::opencv::{Mat, VideoWriter};
use crate::{BaselineError, Result};
use lightdb_codec::{Decoder, VideoStream};
use lightdb_frame::Frame;

/// Default pinned-frame memory budget (bytes). Overridable with
/// `LIGHTDB_SCANNER_BUDGET` for experiments; the paper observed the
/// real system exhausting GPU/host memory at ~20 s of 4K.
pub const DEFAULT_BUDGET: usize = 1 << 30;

fn budget() -> usize {
    lightdb_core::envknob::read_usize("LIGHTDB_SCANNER_BUDGET").unwrap_or(DEFAULT_BUDGET)
}

/// A Scanner pipeline over one ingested video.
#[derive(Debug)]
pub struct ScannerPipeline {
    /// Every decoded frame, pinned for the lifetime of the pipeline.
    table: Vec<Frame>,
    fps: u32,
}

impl ScannerPipeline {
    /// Ingests a video: decodes **everything** up front. Fails with
    /// [`BaselineError::OutOfMemory`] when the uncompressed size
    /// exceeds the budget.
    pub fn ingest(stream: &VideoStream) -> Result<ScannerPipeline> {
        let frame_bytes = stream.header.width * stream.header.height * 3 / 2;
        let needed = frame_bytes * stream.frame_count();
        let budget = budget();
        if needed > budget {
            return Err(BaselineError::OutOfMemory { needed, budget });
        }
        let table = Decoder::new().decode(stream)?;
        Ok(ScannerPipeline { table, fps: stream.header.fps })
    }

    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    pub fn fps(&self) -> u32 {
        self.fps
    }

    pub fn frames(&self) -> &[Frame] {
        &self.table
    }

    /// Runs a kernel over the whole table in parallel (Scanner's
    /// strength), producing a new pinned table.
    pub fn map(&self, kernel: impl Fn(&Frame) -> Frame + Sync) -> ScannerPipeline {
        let outputs = parallel_map(&self.table, |f| kernel(f));
        ScannerPipeline { table: outputs, fps: self.fps }
    }

    /// Slices frames `[lo, hi)` — the table copy is part of the
    /// architecture (every op allocates a new table).
    pub fn slice(&self, lo: usize, hi: usize) -> ScannerPipeline {
        ScannerPipeline {
            table: self.table[lo.min(self.table.len())..hi.min(self.table.len())].to_vec(),
            fps: self.fps,
        }
    }

    /// Splits each frame into a tile grid, producing one pipeline per
    /// tile. The per-tile, per-frame allocation is what exhausted the
    /// real system's memory.
    pub fn tile(&self, cols: usize, rows: usize) -> Result<Vec<ScannerPipeline>> {
        let (w, h) = match self.table.first() {
            None => return Ok(vec![]),
            Some(f) => (f.width(), f.height()),
        };
        let frame_bytes = w * h * 3 / 2;
        // Tiling doubles the pinned footprint (original + tiles).
        let needed = frame_bytes * self.table.len() * 2;
        let b = budget();
        if needed > b {
            return Err(BaselineError::OutOfMemory { needed, budget: b });
        }
        let (tw, th) = (w / cols, h / rows);
        let mut out = Vec::with_capacity(cols * rows);
        for tile in 0..cols * rows {
            let (c, r) = (tile % cols, tile / cols);
            let table: Vec<Frame> =
                self.table.iter().map(|f| f.crop(c * tw, r * th, tw, th)).collect();
            out.push(ScannerPipeline { table, fps: self.fps });
        }
        Ok(out)
    }

    /// Writes the table out through the OpenCV-based encoder.
    pub fn write(&self, requested_qp: u8) -> Result<VideoStream> {
        let mut w = VideoWriter::open(self.fps, requested_qp);
        for f in &self.table {
            // Scanner converts frames to an OpenCV-compatible format
            // first (an extra copy per frame).
            let m = Mat::from_frame(f);
            w.write(&m)?;
        }
        w.release()
    }
}

/// Order-preserving parallel map over a slice.
fn parallel_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let counter = std::sync::atomic::AtomicUsize::new(0);
    let results = parking_lot::Mutex::new(Vec::<(usize, U)>::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..workers.min(items.len()) {
            s.spawn(|| loop {
                let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                results.lock().push((i, out));
            });
        }
    });
    let mut results = results.into_inner();
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_codec::{Encoder, EncoderConfig};
    use lightdb_frame::Yuv;

    fn source(n: usize) -> VideoStream {
        let frames: Vec<Frame> = (0..n)
            .map(|i| {
                let mut f = Frame::new(64, 32);
                for y in 0..32 {
                    for x in 0..64 {
                        f.set(x, y, Yuv::new(((x + y + i * 7) % 256) as u8, 128, 128));
                    }
                }
                f
            })
            .collect();
        Encoder::new(EncoderConfig { gop_length: 4, fps: 4, qp: 18, ..Default::default() })
            .unwrap()
            .encode(&frames)
            .unwrap()
    }

    #[test]
    fn ingest_materializes_everything() {
        let s = source(8);
        let p = ScannerPipeline::ingest(&s).unwrap();
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn budget_enforced() {
        let s = source(8);
        std::env::set_var("LIGHTDB_SCANNER_BUDGET", "1000");
        let r = ScannerPipeline::ingest(&s);
        std::env::remove_var("LIGHTDB_SCANNER_BUDGET");
        assert!(matches!(r, Err(BaselineError::OutOfMemory { .. })));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let s = source(6);
        let p = ScannerPipeline::ingest(&s).unwrap();
        let g = p.map(lightdb_frame::kernels::grayscale);
        assert_eq!(g.len(), 6);
        for (a, b) in p.frames().iter().zip(g.frames().iter()) {
            assert_eq!(lightdb_frame::kernels::grayscale(a), *b);
        }
    }

    #[test]
    fn tiling_splits_frames() {
        let s = source(4);
        let p = ScannerPipeline::ingest(&s).unwrap();
        let tiles = p.tile(2, 2).unwrap();
        assert_eq!(tiles.len(), 4);
        assert_eq!(tiles[0].frames()[0].width(), 32);
        assert_eq!(tiles[0].frames()[0].height(), 16);
    }

    #[test]
    fn write_uses_fixed_settings() {
        let s = source(4);
        let p = ScannerPipeline::ingest(&s).unwrap();
        let hi = p.write(6).unwrap();
        let lo = p.write(45).unwrap();
        assert_eq!(hi.payload_bytes(), lo.payload_bytes());
    }
}
