//! OpenCV-sim: `VideoCapture` / `VideoWriter` / `Mat`-style API.
//!
//! OpenCV's architectural signature in the paper's experiments:
//! frame-at-a-time processing with a fresh buffer ("Mat") per frame,
//! and a `VideoWriter` whose encoder settings are essentially fixed —
//! on Linux it has no NVENC and offers no robust rate/QP control, so
//! quality-adaptive workloads can't actually vary quality (which is
//! why the baselines only reach ~20 % size reduction in Table 3).

use crate::Result;
use lightdb_codec::encoder::encode_tile_opts;
use lightdb_codec::gop::{EncodedFrame, EncodedGop, FrameType};
use lightdb_codec::{CodecKind, Decoder, SequenceHeader, TileGrid, VideoStream};
use lightdb_frame::Frame;

/// The writer's fixed quantisation: requests for other qualities are
/// ignored, as with OpenCV's limited codec-settings surface.
pub const WRITER_QP: u8 = 28;

/// The writer's software encoder uses an exhaustive wide motion
/// search (no hardware encoder available).
pub const WRITER_SEARCH_RANGE: i32 = 16;

/// A `Mat`: an owned frame buffer. Every pipeline stage clones into a
/// fresh `Mat`, as OpenCV pipelines typically do.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    pub frame: Frame,
}

impl Mat {
    pub fn from_frame(frame: &Frame) -> Mat {
        Mat { frame: frame.clone() } // the copy is the point
    }

    /// `cv::cvtColor(..., COLOR_*2GRAY)`.
    pub fn to_gray(&self) -> Mat {
        Mat { frame: lightdb_frame::kernels::grayscale(&self.frame) }
    }

    /// `cv::GaussianBlur`.
    pub fn blur(&self) -> Mat {
        Mat { frame: lightdb_frame::kernels::blur(&self.frame) }
    }

    /// `cv::filter2D` sharpen.
    pub fn sharpen(&self) -> Mat {
        Mat { frame: lightdb_frame::kernels::sharpen(&self.frame) }
    }

    /// `cv::Rect` ROI crop (copies).
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Mat {
        Mat { frame: self.frame.crop(x, y, w, h) }
    }

    /// `cv::resize` (nearest).
    pub fn resize(&self, w: usize, h: usize) -> Mat {
        Mat { frame: self.frame.resize(w, h) }
    }

    /// Paste a region (`mat.copyTo(roi)`).
    pub fn paste(&mut self, src: &Mat, x: usize, y: usize) {
        self.frame.blit(&src.frame, x, y);
    }
}

/// `cv::VideoCapture`: sequential frame reads.
#[derive(Debug)]
pub struct VideoCapture<'a> {
    stream: &'a VideoStream,
    gop: usize,
    buffered: Vec<Frame>,
    next: usize,
}

impl<'a> VideoCapture<'a> {
    pub fn open(stream: &'a VideoStream) -> Self {
        VideoCapture { stream, gop: 0, buffered: Vec::new(), next: 0 }
    }

    /// Reads the next frame into a fresh `Mat`, or `None` at EOF.
    pub fn read(&mut self) -> Option<Result<Mat>> {
        if self.next >= self.buffered.len() {
            if self.gop >= self.stream.gops.len() {
                return None;
            }
            let gop = &self.stream.gops[self.gop];
            self.gop += 1;
            match Decoder::new().decode_gop(&self.stream.header, gop) {
                Ok(frames) => {
                    self.buffered = frames;
                    self.next = 0;
                }
                Err(e) => return Some(Err(e.into())),
            }
        }
        let m = Mat::from_frame(&self.buffered[self.next]);
        self.next += 1;
        Some(Ok(m))
    }

    pub fn fps(&self) -> u32 {
        self.stream.header.fps
    }
}

/// `cv::VideoWriter`: fixed-settings software encoder.
#[derive(Debug)]
pub struct VideoWriter {
    fps: u32,
    gop_length: usize,
    reference: Option<Frame>,
    frames_in_gop: Vec<EncodedFrame>,
    gops: Vec<EncodedGop>,
    dims: Option<(usize, usize)>,
}

impl VideoWriter {
    /// `requested_qp` is accepted but ignored (fixed settings).
    pub fn open(fps: u32, _requested_qp: u8) -> VideoWriter {
        VideoWriter {
            fps,
            gop_length: fps as usize,
            reference: None,
            frames_in_gop: Vec::new(),
            gops: Vec::new(),
            dims: None,
        }
    }

    pub fn write(&mut self, mat: &Mat) -> Result<()> {
        let dims = (mat.frame.width(), mat.frame.height());
        match self.dims {
            None => self.dims = Some(dims),
            Some(d) if d != dims => {
                return Err(crate::BaselineError::Other("frame size changed".into()))
            }
            _ => {}
        }
        let is_key = self.frames_in_gop.len().is_multiple_of(self.gop_length);
        let reference = if is_key { None } else { self.reference.as_ref() };
        let (payload, recon) = encode_tile_opts(
            &mat.frame,
            reference,
            WRITER_QP,
            CodecKind::HevcSim,
            WRITER_SEARCH_RANGE,
        );
        self.reference = Some(recon);
        self.frames_in_gop.push(EncodedFrame {
            frame_type: if is_key { FrameType::Key } else { FrameType::Predicted },
            tiles: vec![payload],
        });
        if self.frames_in_gop.len() == self.gop_length {
            self.gops.push(EncodedGop { frames: std::mem::take(&mut self.frames_in_gop) });
        }
        Ok(())
    }

    pub fn release(mut self) -> Result<VideoStream> {
        if !self.frames_in_gop.is_empty() {
            self.gops.push(EncodedGop { frames: std::mem::take(&mut self.frames_in_gop) });
        }
        let (w, h) =
            self.dims.ok_or_else(|| crate::BaselineError::Other("no frames written".into()))?;
        Ok(VideoStream {
            header: SequenceHeader {
                codec: CodecKind::HevcSim,
                width: w,
                height: h,
                fps: self.fps,
                gop_length: self.gop_length,
                grid: TileGrid::SINGLE,
            },
            gops: self.gops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_codec::{Encoder, EncoderConfig};
    use lightdb_frame::Yuv;

    fn source(n: usize) -> VideoStream {
        let frames: Vec<Frame> = (0..n)
            .map(|i| {
                let mut f = Frame::new(64, 32);
                for y in 0..32 {
                    for x in 0..64 {
                        f.set(x, y, Yuv::new(((x * 3 + y + i * 5) % 256) as u8, 128, 128));
                    }
                }
                f
            })
            .collect();
        Encoder::new(EncoderConfig { gop_length: 4, fps: 4, qp: 16, ..Default::default() })
            .unwrap()
            .encode(&frames)
            .unwrap()
    }

    #[test]
    fn capture_reads_every_frame() {
        let s = source(8);
        let mut cap = VideoCapture::open(&s);
        let mut n = 0;
        while let Some(m) = cap.read() {
            m.unwrap();
            n += 1;
        }
        assert_eq!(n, 8);
    }

    #[test]
    fn writer_ignores_requested_qp() {
        let s = source(4);
        let write_with = |qp: u8| {
            let mut cap = VideoCapture::open(&s);
            let mut w = VideoWriter::open(4, qp);
            while let Some(m) = cap.read() {
                w.write(&m.unwrap()).unwrap();
            }
            w.release().unwrap().payload_bytes()
        };
        // "High quality" and "low quality" produce identical sizes:
        // the settings surface is fixed.
        assert_eq!(write_with(6), write_with(45));
    }

    #[test]
    fn mat_ops_compose() {
        let s = source(1);
        let mut cap = VideoCapture::open(&s);
        let m = cap.read().unwrap().unwrap();
        let g = m.to_gray().blur().crop(0, 0, 32, 16).resize(64, 32);
        assert_eq!(g.frame.width(), 64);
        assert!(g.frame.get(5, 5).is_achromatic());
    }

    #[test]
    fn roundtrip_through_writer() {
        let s = source(4);
        let mut cap = VideoCapture::open(&s);
        let mut w = VideoWriter::open(4, 20);
        while let Some(m) = cap.read() {
            w.write(&m.unwrap()).unwrap();
        }
        let out = w.release().unwrap();
        assert_eq!(out.frame_count(), 4);
        assert_eq!(out.header.codec, CodecKind::HevcSim);
    }
}
