//! SciDB-sim: a chunked multidimensional array store.
//!
//! SciDB represents a 360° video as a decoded three-dimensional array
//! `(x, y, t)` (and light fields as six-dimensional arrays), chunked
//! on disk. It has **no native video support**: video enters and
//! leaves only through an external export/import cycle (decode to raw
//! before `LOAD`; dump raw and encode with an external tool after a
//! query). Array operations themselves are efficient — chunk-pruned
//! subarray reads, parallel apply — but each query's raw-pixel disk
//! traffic and external (re-)encode dominate, which is why SciDB
//! lands two orders of magnitude behind on the paper's workloads.

use crate::opencv::{Mat, VideoWriter};
use crate::Result;
use lightdb_codec::{Decoder, VideoStream};
use lightdb_frame::Frame;
use std::fs;
use std::path::PathBuf;

/// Frames per array chunk.
pub const CHUNK_FRAMES: usize = 8;

/// A SciDB-style array store rooted at a directory.
#[derive(Debug)]
pub struct SciDb {
    root: PathBuf,
}

/// Metadata for one stored array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayMeta {
    pub name: String,
    pub width: usize,
    pub height: usize,
    pub frames: usize,
    pub fps: u32,
}

impl SciDb {
    pub fn open(root: impl Into<PathBuf>) -> Result<SciDb> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(SciDb { root })
    }

    fn meta_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.meta"))
    }

    fn chunk_path(&self, name: &str, chunk: usize) -> PathBuf {
        self.root.join(format!("{name}.chunk{chunk}"))
    }

    /// `LOAD`: imports a video through the external decode cycle —
    /// every frame is decoded and written to disk as raw pixels.
    pub fn import_video(&self, name: &str, stream: &VideoStream) -> Result<ArrayMeta> {
        let frames = Decoder::new().decode(stream)?;
        let meta = ArrayMeta {
            name: name.to_string(),
            width: stream.header.width,
            height: stream.header.height,
            frames: frames.len(),
            fps: stream.header.fps,
        };
        for (ci, chunk) in frames.chunks(CHUNK_FRAMES).enumerate() {
            let mut buf = Vec::with_capacity(chunk.len() * chunk[0].sample_count());
            for f in chunk {
                buf.extend_from_slice(&f.to_i420_bytes());
            }
            fs::write(self.chunk_path(name, ci), &buf)?;
        }
        fs::write(
            self.meta_path(name),
            format!("{} {} {} {}", meta.width, meta.height, meta.frames, meta.fps),
        )?;
        Ok(meta)
    }

    /// Stores raw frames directly as an array (used by queries that
    /// create intermediate arrays).
    pub fn store_frames(&self, name: &str, frames: &[Frame], fps: u32) -> Result<ArrayMeta> {
        let (w, h) = match frames.first() {
            None => return Err(crate::BaselineError::Other("empty array".into())),
            Some(f) => (f.width(), f.height()),
        };
        for (ci, chunk) in frames.chunks(CHUNK_FRAMES).enumerate() {
            let mut buf = Vec::with_capacity(chunk.len() * chunk[0].sample_count());
            for f in chunk {
                buf.extend_from_slice(&f.to_i420_bytes());
            }
            fs::write(self.chunk_path(name, ci), &buf)?;
        }
        let meta =
            ArrayMeta { name: name.to_string(), width: w, height: h, frames: frames.len(), fps };
        fs::write(
            self.meta_path(name),
            format!("{} {} {} {}", meta.width, meta.height, meta.frames, meta.fps),
        )?;
        Ok(meta)
    }

    /// Reads array metadata.
    pub fn meta(&self, name: &str) -> Result<ArrayMeta> {
        let text = fs::read_to_string(self.meta_path(name))?;
        let mut it = text.split_whitespace().map(|v| v.parse::<usize>().unwrap_or(0));
        Ok(ArrayMeta {
            name: name.to_string(),
            width: it.next().unwrap_or(0),
            height: it.next().unwrap_or(0),
            frames: it.next().unwrap_or(0),
            fps: it.next().unwrap_or(30) as u32,
        })
    }

    /// `subarray`: reads frames `[lo, hi)` — chunk-pruned, so only
    /// the overlapping chunks hit the disk.
    pub fn subarray(&self, name: &str, lo: usize, hi: usize) -> Result<Vec<Frame>> {
        let meta = self.meta(name)?;
        let hi = hi.min(meta.frames);
        if lo >= hi {
            return Ok(vec![]);
        }
        let frame_bytes = meta.width * meta.height * 3 / 2;
        let mut out = Vec::with_capacity(hi - lo);
        let c0 = lo / CHUNK_FRAMES;
        let c1 = (hi - 1) / CHUNK_FRAMES;
        for ci in c0..=c1 {
            let bytes = fs::read(self.chunk_path(name, ci))?;
            let base = ci * CHUNK_FRAMES;
            let in_chunk = bytes.len() / frame_bytes;
            for fi in 0..in_chunk {
                let abs = base + fi;
                if abs >= lo && abs < hi {
                    out.push(Frame::from_i420_bytes(
                        meta.width,
                        meta.height,
                        &bytes[fi * frame_bytes..(fi + 1) * frame_bytes],
                    ));
                }
            }
        }
        Ok(out)
    }

    /// `apply`: maps a kernel over every cell (frame), writing a new
    /// array — full read + full write of raw pixels.
    pub fn apply(
        &self,
        src: &str,
        dst: &str,
        kernel: impl Fn(&Frame) -> Frame,
    ) -> Result<ArrayMeta> {
        let meta = self.meta(src)?;
        let chunks = meta.frames.div_ceil(CHUNK_FRAMES);
        let mut written = 0usize;
        for ci in 0..chunks {
            let frames =
                self.subarray(src, ci * CHUNK_FRAMES, (ci + 1) * CHUNK_FRAMES)?;
            let mut buf = Vec::new();
            for f in &frames {
                buf.extend_from_slice(&kernel(f).to_i420_bytes());
                written += 1;
            }
            fs::write(self.chunk_path(dst, ci), &buf)?;
        }
        let out = ArrayMeta { name: dst.to_string(), frames: written, ..meta };
        fs::write(
            self.meta_path(dst),
            format!("{} {} {} {}", out.width, out.height, out.frames, out.fps),
        )?;
        Ok(out)
    }

    /// Export: dumps an array range and encodes it with the external
    /// (OpenCV-backed) encoder — the mandatory exit cycle.
    pub fn export_video(&self, name: &str, lo: usize, hi: usize, requested_qp: u8) -> Result<VideoStream> {
        let meta = self.meta(name)?;
        let frames = self.subarray(name, lo, hi)?;
        let mut w = VideoWriter::open(meta.fps, requested_qp);
        for f in &frames {
            w.write(&Mat::from_frame(f))?;
        }
        w.release()
    }

    /// Removes an array.
    pub fn remove(&self, name: &str) -> Result<()> {
        let meta = self.meta(name)?;
        let chunks = meta.frames.div_ceil(CHUNK_FRAMES);
        for ci in 0..chunks {
            let _ = fs::remove_file(self.chunk_path(name, ci));
        }
        fs::remove_file(self.meta_path(name))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightdb_codec::{Encoder, EncoderConfig};
    use lightdb_frame::Yuv;

    fn temp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lightdb-scidb-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn source(n: usize) -> VideoStream {
        let frames: Vec<Frame> = (0..n)
            .map(|i| {
                let mut f = Frame::new(32, 32);
                for y in 0..32 {
                    for x in 0..32 {
                        f.set(x, y, Yuv::new(((x * 5 + y + i * 11) % 256) as u8, 128, 128));
                    }
                }
                f
            })
            .collect();
        Encoder::new(EncoderConfig { gop_length: 5, fps: 5, qp: 12, ..Default::default() })
            .unwrap()
            .encode(&frames)
            .unwrap()
    }

    #[test]
    fn import_subarray_roundtrip() {
        let db = SciDb::open(temp_root("roundtrip")).unwrap();
        let s = source(20);
        let meta = db.import_video("v", &s).unwrap();
        assert_eq!(meta.frames, 20);
        let decoded = Decoder::new().decode(&s).unwrap();
        let cells = db.subarray("v", 3, 7).unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0], decoded[3]);
        fs::remove_dir_all(&db.root).unwrap();
    }

    #[test]
    fn subarray_prunes_chunks() {
        let db = SciDb::open(temp_root("prune")).unwrap();
        let s = source(24); // 3 chunks of 8
        db.import_video("v", &s).unwrap();
        // Remove an unrelated chunk: reads within chunk 0 still work.
        fs::remove_file(db.chunk_path("v", 2)).unwrap();
        assert_eq!(db.subarray("v", 0, 8).unwrap().len(), 8);
        assert!(db.subarray("v", 16, 24).is_err());
        fs::remove_dir_all(&db.root).unwrap();
    }

    #[test]
    fn apply_writes_new_array() {
        let db = SciDb::open(temp_root("apply")).unwrap();
        db.import_video("v", &source(10)).unwrap();
        let meta = db.apply("v", "gray", lightdb_frame::kernels::grayscale).unwrap();
        assert_eq!(meta.frames, 10);
        let g = db.subarray("gray", 0, 1).unwrap();
        assert!(g[0].get(4, 4).is_achromatic());
        fs::remove_dir_all(&db.root).unwrap();
    }

    #[test]
    fn export_encodes_fixed_settings() {
        let db = SciDb::open(temp_root("export")).unwrap();
        db.import_video("v", &source(10)).unwrap();
        let a = db.export_video("v", 0, 10, 6).unwrap();
        let b = db.export_video("v", 0, 10, 45).unwrap();
        assert_eq!(a.payload_bytes(), b.payload_bytes());
        assert_eq!(a.frame_count(), 10);
        fs::remove_dir_all(&db.root).unwrap();
    }

    #[test]
    fn remove_cleans_up() {
        let db = SciDb::open(temp_root("remove")).unwrap();
        db.import_video("v", &source(9)).unwrap();
        db.remove("v").unwrap();
        assert!(db.meta("v").is_err());
        fs::remove_dir_all(&db.root).unwrap();
    }
}
