//! Criterion bench for Figure 16: index performance.

use criterion::{criterion_group, criterion_main, Criterion};
use lightdb_bench::{fig16, setup};

fn bench(c: &mut Criterion) {
    let spec = setup::criterion_spec();
    let db = setup::bench_db(&spec);
    let mut g = c.benchmark_group("fig16_indexes");
    g.sample_size(10);
    g.bench_function("gop_index", |b| b.iter(|| fig16::gop_index(&db)));
    g.bench_function("tile_index", |b| b.iter(|| fig16::tile_index(&db, &spec)));
    g.bench_function("spatial_index", |b| b.iter(|| fig16::spatial_index(&db)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
