//! Criterion bench for Table 3: size-reduction measurement (LightDB).

use criterion::{criterion_group, criterion_main, Criterion};
use lightdb_apps::workloads::System;
use lightdb_bench::{fig11, setup};

fn bench(c: &mut Criterion) {
    let spec = setup::criterion_spec();
    let db = setup::bench_db(&spec);
    let mut g = c.benchmark_group("table3_reduction");
    g.sample_size(10);
    g.bench_function("lightdb_tiling_reduction", |b| {
        b.iter(|| {
            let m = fig11::run_tiling(
                System::LightDb,
                &db,
                lightdb_datasets::Dataset::Timelapse,
                2,
                2,
                &spec,
            )
            .expect("tiling");
            assert!(m.reduction > 0.0);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
