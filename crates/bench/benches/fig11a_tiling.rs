//! Criterion bench for Figure 11(a): predictive tiling per system.

use criterion::{criterion_group, criterion_main, Criterion};
use lightdb_apps::workloads::System;
use lightdb_bench::{fig11, setup};

fn bench(c: &mut Criterion) {
    let spec = setup::criterion_spec();
    let db = setup::bench_db(&spec);
    let mut g = c.benchmark_group("fig11a_tiling");
    g.sample_size(10);
    for system in System::ALL {
        g.bench_function(system.name(), |b| {
            b.iter(|| {
                fig11::run_tiling(system, &db, lightdb_datasets::Dataset::Timelapse, 2, 2, &spec)
                    .expect("tiling run")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
