//! Criterion bench for Figure 13: operator micro-benchmarks.
//! (LightDB vs FFmpeg — the closest competitor — per operator; the
//! expt_fig13_operators binary covers all five systems.)

use criterion::{criterion_group, criterion_main, Criterion};
use lightdb_apps::workloads::System;
use lightdb_bench::fig13::{run_baseline, run_lightdb, MicroOp};
use lightdb_bench::setup;

fn bench(c: &mut Criterion) {
    let spec = setup::criterion_spec();
    let db = setup::bench_db(&spec);
    let mut g = c.benchmark_group("fig13_operators");
    g.sample_size(10);
    for op in [MicroOp::SelectT, MicroOp::MapGray, MicroOp::UnionWatermark, MicroOp::PartitionT] {
        g.bench_function(format!("lightdb/{}", op.name()), |b| {
            b.iter(|| run_lightdb(&db, op).expect("lightdb op"))
        });
        g.bench_function(format!("ffmpeg/{}", op.name()), |b| {
            b.iter(|| run_baseline(&db, System::Ffmpeg, op).expect("ffmpeg op"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
