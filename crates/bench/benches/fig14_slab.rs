//! Criterion bench for Figure 14: SlabTLF operations.

use criterion::{criterion_group, criterion_main, Criterion};
use lightdb_bench::fig14::{run, SlabOp};
use lightdb_bench::setup;

fn bench(c: &mut Criterion) {
    let spec = setup::criterion_spec();
    let db = setup::bench_db(&spec);
    let mut g = c.benchmark_group("fig14_slab");
    g.sample_size(10);
    for op in SlabOp::ALL {
        g.bench_function(op.name(), |b| b.iter(|| run(&db, op).expect("slab op")));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
