//! Codec-substrate microbenchmarks: encode/decode throughput per
//! profile and QP, and the homomorphic byte-level primitives. Not a
//! paper figure, but the costs every figure is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use lightdb::codec::{CodecKind, Decoder, Encoder, EncoderConfig, TileGrid};
use lightdb_datasets::{frame, Dataset, DatasetSpec};

fn bench(c: &mut Criterion) {
    let spec = DatasetSpec { width: 256, height: 128, fps: 8, seconds: 1, qp: 22 };
    let frames: Vec<_> = (0..8).map(|i| frame(Dataset::Venice, &spec, i)).collect();
    let mut g = c.benchmark_group("codec_core");
    g.sample_size(10);
    for (label, codec, qp) in [
        ("encode_h264_qp22", CodecKind::H264Sim, 22u8),
        ("encode_hevc_qp22", CodecKind::HevcSim, 22),
        ("encode_hevc_qp45", CodecKind::HevcSim, 45),
    ] {
        g.bench_function(label, |b| {
            let enc = Encoder::new(EncoderConfig {
                codec,
                qp,
                gop_length: 8,
                fps: 8,
                ..Default::default()
            })
            .unwrap();
            b.iter(|| enc.encode(&frames).unwrap())
        });
    }
    let stream = Encoder::new(EncoderConfig {
        codec: CodecKind::HevcSim,
        qp: 22,
        gop_length: 8,
        fps: 8,
        grid: TileGrid::new(2, 2),
    })
    .unwrap()
    .encode(&frames)
    .unwrap();
    g.bench_function("decode_full", |b| {
        b.iter(|| Decoder::new().decode(&stream).unwrap())
    });
    g.bench_function("decode_one_tile", |b| {
        b.iter(|| Decoder::new().decode_gop_tile(&stream.header, &stream.gops[0], 0).unwrap())
    });
    g.bench_function("hop_extract_tile_bytes", |b| {
        b.iter(|| stream.gops[0].extract_tile(0).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
