//! Criterion bench for Figure 11(b): augmented reality per system.

use criterion::{criterion_group, criterion_main, Criterion};
use lightdb_apps::workloads::System;
use lightdb_bench::{fig11, setup};

fn bench(c: &mut Criterion) {
    let spec = setup::criterion_spec();
    let db = setup::bench_db(&spec);
    let mut g = c.benchmark_group("fig11b_ar");
    g.sample_size(10);
    for system in System::ALL {
        g.bench_function(system.name(), |b| {
            b.iter(|| {
                fig11::run_ar(system, &db, lightdb_datasets::Dataset::Venice, &spec)
                    .expect("ar run")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
