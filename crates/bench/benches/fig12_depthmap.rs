//! Criterion bench for Figure 12: depth-map variants.

use criterion::{criterion_group, criterion_main, Criterion};
use lightdb_apps::depth::{depth_map, install_stereo, DepthVariant};
use lightdb_bench::setup;
use lightdb_datasets::Dataset;

fn bench(c: &mut Criterion) {
    let spec = setup::criterion_spec();
    let mut db = setup::bench_db(&spec);
    let stereo = install_stereo(&db, Dataset::Timelapse, &spec).expect("stereo");
    let mut g = c.benchmark_group("fig12_depthmap");
    g.sample_size(10);
    for variant in DepthVariant::ALL {
        g.bench_function(variant.name(), |b| {
            b.iter(|| {
                let out = format!("bench_depth_{}", variant.name());
                let _ = db.execute(&lightdb::prelude::drop_tlf(&out));
                depth_map(&mut db, &stereo, &out, variant).expect("depth run")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
