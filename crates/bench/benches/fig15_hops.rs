//! Criterion bench for Figure 15: homomorphic operators, LightDB vs
//! FFmpeg (the strongest baseline).

use criterion::{criterion_group, criterion_main, Criterion};
use lightdb_apps::workloads::System;
use lightdb_bench::fig15::{prepare, run_baseline, run_lightdb, HopOp};
use lightdb_bench::setup;

fn bench(c: &mut Criterion) {
    let spec = setup::criterion_spec();
    let db = setup::bench_db(&spec);
    let tiled = prepare(&db, &spec);
    let mut g = c.benchmark_group("fig15_hops");
    g.sample_size(10);
    for op in HopOp::ALL {
        g.bench_function(format!("lightdb/{}", op.name()), |b| {
            b.iter(|| run_lightdb(&db, op, &tiled).expect("lightdb hop"))
        });
        g.bench_function(format!("ffmpeg/{}", op.name()), |b| {
            b.iter(|| run_baseline(&db, System::Ffmpeg, op, &tiled).expect("ffmpeg hop"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
