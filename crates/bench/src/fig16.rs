//! Figure 16: index performance — GOP index, tile index, and the
//! spatial R-tree, each with the index enabled vs disabled.

use crate::setup;
use crate::timed;
use lightdb::prelude::*;
use lightdb_datasets::{Dataset, DatasetSpec};
use std::f64::consts::PI;

/// How many sphere points the spatial-index TLF simulates (the paper
/// used five million simulated pointers; `LIGHTDB_FULL_SCALE=1`
/// raises ours).
pub fn spatial_points() -> usize {
    if std::env::var("LIGHTDB_FULL_SCALE").as_deref() == Ok("1") {
        5_000_000
    } else {
        20_000
    }
}

fn with_indexes(db: &LightDb, on: bool) -> LightDb {
    let mut options = db.options();
    options.use_indexes = on;
    options.use_hops = on;
    let mut clone = LightDb::open(db.catalog().root()).expect("reopen");
    clone.set_options(options);
    clone
}

/// Like [`with_indexes`] but CPU-only, isolating the index effect
/// from the GPU's parallel tile decode.
fn with_indexes_cpu(db: &LightDb, on: bool) -> LightDb {
    let mut d = with_indexes(db, on);
    let mut options = d.options();
    options.use_gpu = false;
    d.set_options(options);
    d
}

/// GOP-index experiment: last-second vs whole-extent temporal select.
pub fn gop_index(db: &LightDb) -> Vec<(String, f64, f64)> {
    let seconds = db
        .catalog()
        .read("timelapse", None)
        .expect("timelapse")
        .metadata
        .tlf
        .volume
        .t()
        .hi();
    // Ranges are deliberately misaligned with GOP boundaries so the
    // decode path runs in both configurations; only the GOP-index
    // pushdown (which GOPs are read and decoded) differs.
    let run = |indexed: bool, lo: f64, hi: f64| {
        let d = with_indexes(db, indexed);
        let q = scan("timelapse") >> Select::along(Dimension::T, lo, hi);
        let (secs, r) = timed(|| d.execute(&q));
        r.expect("select");
        secs
    };
    vec![
        (
            format!("t=[{:.1}, {seconds}]", seconds - 0.9),
            run(true, seconds - 0.9, seconds),
            run(false, seconds - 0.9, seconds),
        ),
        (
            format!("t=[0.1, {seconds}]"),
            run(true, 0.1, seconds),
            run(false, 0.1, seconds),
        ),
    ]
}

/// Tile-index experiment on a tiled copy of Timelapse: half-sphere vs
/// full-sphere angular select.
pub fn tile_index(db: &LightDb, spec: &DatasetSpec) -> Vec<(String, f64, f64)> {
    let tiled = setup::install_tiled(db, Dataset::Timelapse, spec, 2, 2);
    // A MAP stage forces decoding, so the configurations differ only
    // in *which tiles* the tile index lets them decode.
    let run = |indexed: bool, hi: f64| {
        let d = with_indexes_cpu(db, indexed);
        let q = scan(&tiled)
            >> Select::along(Dimension::Theta, 0.0, hi)
            >> Map::builtin(BuiltinMap::Grayscale);
        let (secs, r) = timed(|| d.execute(&q));
        r.expect("select");
        secs
    };
    vec![
        ("θ=[0, π-0.2]".to_string(), run(true, PI - 0.2), run(false, PI - 0.2)),
        ("θ=[0, 2π]".to_string(), run(true, 2.0 * PI), run(false, 2.0 * PI)),
    ]
}

/// Spatial-index experiment: a TLF simulating many 360° videos at
/// random points (sharing one media file, as the paper's simulated
/// five-million-pointer TLF did), selected at a point vs everywhere.
pub fn spatial_index(db: &LightDb) -> Vec<(String, f64, f64)> {
    let name = "tourist_site";
    build_many_point_tlf(db, name, spatial_points());
    // Build the R-tree.
    db.execute(&create_index(name, vec![Dimension::X, Dimension::Y, Dimension::Z]))
        .expect("create index");
    let run_point = |indexed: bool| {
        let d = with_indexes(db, indexed);
        let q = scan(name) >> Select::at_point(0.0, 0.0, 0.0);
        // Warm the R-tree cache (loading the index file is a one-time
        // cost shared across queries, as in any warm DBMS).
        d.execute(&q).expect("warmup");
        let (secs, r) = timed(|| d.execute(&q));
        r.expect("point select");
        secs
    };
    let run_all = |indexed: bool| {
        let d = with_indexes(db, indexed);
        // Full-extent spatial select: the index cannot prune.
        let q = scan(name) >> Select::along(Dimension::X, -1e12, 1e12);
        let (secs, r) = timed(|| d.execute(&q));
        r.expect("full select");
        secs
    };
    vec![
        ("point (0,0,0)".to_string(), run_point(true), run_point(false)),
        ("[-∞, +∞]".to_string(), run_all(true), run_all(false)),
    ]
}

/// Creates a TLF whose descriptor holds `n` sphere points at seeded
/// pseudo-random positions in the unit cube (plus one at the origin),
/// all sharing a single small media track.
pub fn build_many_point_tlf(db: &LightDb, name: &str, n: usize) {
    if db.catalog().exists(name) {
        return;
    }
    use lightdb::container::{SpherePoint, TlfBody, TlfDescriptor, TrackRole};
    use lightdb::storage::catalog::TrackWrite;
    let spec = DatasetSpec { width: 64, height: 32, fps: 2, seconds: 1, qp: 40 };
    let stream = lightdb_datasets::encode_dataset(Dataset::Timelapse, &spec);
    // Version 1: one track.
    db.catalog()
        .store(
            name,
            vec![TrackWrite::New {
                role: TrackRole::Video,
                projection: lightdb::geom::projection::ProjectionKind::Equirectangular,
                stream,
            }],
            TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, 1.0), 0),
        )
        .expect("store base");
    // Version 2: n points sharing track 0 (no media duplication —
    // the no-overwrite design at work).
    let stored = db.catalog().read(name, Some(1)).expect("v1");
    let track = stored.metadata.tracks[0].clone();
    let mut hash = 0x9e3779b97f4a7c15u64;
    let mut points = Vec::with_capacity(n);
    points.push(SpherePoint {
        position: Point3::ORIGIN,
        video_track: 0,
        depth_track: None,
        right_eye_track: None,
    });
    for _ in 1..n {
        hash = hash.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let fx = ((hash >> 11) & 0xfffff) as f64 / (1 << 20) as f64;
        let fy = ((hash >> 31) & 0xfffff) as f64 / (1 << 20) as f64;
        let fz = ((hash >> 43) & 0xfffff) as f64 / (1 << 20) as f64;
        points.push(SpherePoint {
            // Offset away from the origin so the point query matches
            // exactly one sphere.
            position: Point3::new(0.05 + fx, 0.05 + fy, 0.05 + fz),
            video_track: 0,
            depth_track: None,
            right_eye_track: None,
        });
    }
    let tlf = TlfDescriptor {
        volume: lightdb::geom::Volume::everywhere(),
        streaming: false,
        partition_spec: vec![],
        view_subgraph: None,
        body: TlfBody::Sphere360 { points },
    };
    db.catalog().store(name, vec![TrackWrite::Existing(track)], tlf).expect("store points");
}

/// Prints the Figure 16 tables.
pub fn print(db: &LightDb, spec: &DatasetSpec) {
    println!("\nFigure 16: index performance, seconds (with index vs without)");
    println!("\n(a) GOP index");
    crate::row("selection", &["indexed".into(), "no index".into()]);
    for (label, with, without) in gop_index(db) {
        crate::row(&label, &[format!("{with:.3}s"), format!("{without:.3}s")]);
    }
    println!("\n(b) tile index");
    crate::row("selection", &["indexed".into(), "no index".into()]);
    for (label, with, without) in tile_index(db, spec) {
        crate::row(&label, &[format!("{with:.3}s"), format!("{without:.3}s")]);
    }
    println!("\n(c) spatial R-tree ({} simulated videos)", spatial_points());
    crate::row("selection", &["indexed".into(), "no index".into()]);
    for (label, with, without) in spatial_index(db) {
        crate::row(&label, &[format!("{with:.3}s"), format!("{without:.3}s")]);
    }
}
