//! Coordinator/worker scale-out: distributed full-scan+encode latency
//! across worker-fleet sizes versus the single-node baseline, plus
//! the cost of a mid-fleet failover.
//!
//! Each configuration ingests the same GOP-aligned stream fragmented
//! round-robin over N in-process workers (replication 2 where the
//! fleet allows it), then replays the scan→encode template through a
//! [`Coordinator`] and records wall-clock per query. Every run is
//! audited byte-identical against the single-node result — the
//! `GOPUNION` reassembly contract — and fleets of two or more workers
//! also measure the first query after a worker kill (replica failover
//! on the critical path). Results land in `BENCH_cluster.json`.
//!
//! [`Coordinator`]: lightdb_cluster::Coordinator

use lightdb::prelude::*;
use lightdb_cluster::{fixture, worker, Coordinator, CoordinatorConfig};
use lightdb_core::algebra::{LogicalOp, LogicalPlan};
use lightdb_core::envknob;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Worker-fleet sizes swept.
pub const FLEETS: [usize; 3] = [1, 2, 4];

/// Frames in the benchmark stream (must stay a multiple of the
/// fixture GOP length times the fragment count).
pub const FRAMES: usize = 192;

/// Fragments the stream is split into (each worker holds a share).
pub const FRAGMENTS: usize = 8;

/// One fleet-size measurement.
#[derive(Debug)]
pub struct Measurement {
    pub workers: usize,
    pub queries: usize,
    pub latencies: Vec<Duration>,
    /// First-query latency after killing one worker (None for a
    /// single-worker fleet — nothing to fail over to).
    pub failover: Option<Duration>,
    pub identical: bool,
}

impl Measurement {
    pub fn percentile(&self, p: f64) -> Duration {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    pub fn mean(&self) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        self.latencies.iter().sum::<Duration>() / self.latencies.len() as u32
    }
}

fn template() -> LogicalPlan {
    LogicalPlan::unary(
        LogicalOp::Encode {
            codec: CodecKind::H264Sim,
            quality: None,
        },
        LogicalPlan::leaf(LogicalOp::Scan {
            name: "vid".to_string(),
            version: None,
        }),
    )
}

fn bench_root() -> PathBuf {
    let root = std::env::temp_dir().join(format!("lightdb-bench-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn single_node_baseline(dir: &PathBuf, queries: usize) -> (Vec<u8>, Vec<Duration>) {
    fixture::ingest_baseline(dir, "vid", FRAMES).expect("baseline ingest");
    let db = LightDb::open(dir).expect("baseline open");
    let plan = template();
    let mut bytes = Vec::new();
    let mut latencies = Vec::with_capacity(queries);
    for _ in 0..queries {
        let started = Instant::now();
        let out = db
            .execute_plan_with_ctx(&plan, QueryCtx::unbounded())
            .expect("baseline query");
        latencies.push(started.elapsed());
        if let QueryOutput::Encoded(streams) = out {
            bytes = streams[0].to_bytes();
        }
    }
    (bytes, latencies)
}

/// Runs one fleet size: spawn, measure steady-state queries, audit
/// bytes, then (fleets of two or more) kill a worker and time the
/// failover query.
pub fn run_fleet(root: &Path, workers: usize, queries: usize, baseline: &[u8]) -> Measurement {
    let dirs: Vec<PathBuf> = (0..workers)
        .map(|i| root.join(format!("fleet{workers}-w{i}")))
        .collect();
    let replication = workers.min(2);
    let fragments = fixture::ingest_cluster(&dirs, "vid", FRAMES, FRAGMENTS, replication)
        .expect("cluster ingest");
    let mut handles: Vec<worker::WorkerHandle> = dirs
        .iter()
        .map(|d| worker::spawn(d).expect("worker spawn"))
        .collect();
    let addrs = handles.iter().map(|h| h.addr()).collect();
    let coord = Coordinator::new(addrs, fragments, CoordinatorConfig::from_env());
    let plan = template();
    let ctx = QueryCtx::unbounded();

    let mut latencies = Vec::with_capacity(queries);
    let mut identical = true;
    for _ in 0..queries {
        let started = Instant::now();
        let out = coord
            .execute(&plan, ReadPolicy::Fail, &ctx)
            .expect("distributed query");
        latencies.push(started.elapsed());
        if let QueryOutput::Encoded(streams) = out {
            identical &= streams[0].to_bytes() == baseline;
        } else {
            identical = false;
        }
    }

    let failover = (workers >= 2).then(|| {
        handles[0].kill();
        let started = Instant::now();
        let out = coord
            .execute(&plan, ReadPolicy::Fail, &ctx)
            .expect("failover query");
        let elapsed = started.elapsed();
        if let QueryOutput::Encoded(streams) = out {
            identical &= streams[0].to_bytes() == baseline;
        }
        elapsed
    });
    drop(coord);
    drop(handles);
    Measurement {
        workers,
        queries,
        latencies,
        failover,
        identical,
    }
}

fn json_entry(m: &Measurement, base_mean: Duration) -> String {
    let speedup = if m.mean().as_secs_f64() > 0.0 {
        base_mean.as_secs_f64() / m.mean().as_secs_f64()
    } else {
        0.0
    };
    format!(
        concat!(
            "{{\"workers\":{},\"queries\":{},",
            "\"p50_us\":{:.1},\"p99_us\":{:.1},\"mean_us\":{:.1},",
            "\"failover_us\":{},\"vs_single_node\":{:.2},\"identical\":{}}}"
        ),
        m.workers,
        m.queries,
        m.percentile(50.0).as_secs_f64() * 1e6,
        m.percentile(99.0).as_secs_f64() * 1e6,
        m.mean().as_secs_f64() * 1e6,
        m.failover
            .map_or("null".to_string(), |d| format!("{:.1}", d.as_secs_f64() * 1e6)),
        speedup,
        m.identical
    )
}

/// Runs the sweep, prints the table, and writes `BENCH_cluster.json`.
pub fn print() {
    let queries = envknob::read_usize("LIGHTDB_BENCH_QUERIES").unwrap_or(20).clamp(3, 500);
    let root = bench_root();
    let (baseline, base_lat) = single_node_baseline(&root.join("baseline"), queries);
    let base_mean = base_lat.iter().sum::<Duration>() / base_lat.len() as u32;
    println!(
        "cluster scale-out ({FRAMES} frames, {FRAGMENTS} fragments, {queries} queries/fleet, \
         single-node mean {:.0}us)",
        base_mean.as_secs_f64() * 1e6
    );
    crate::row(
        "workers",
        &[
            "p50".into(),
            "p99".into(),
            "mean".into(),
            "failover".into(),
            "vs 1-node".into(),
            "identical".into(),
        ],
    );
    let mut entries = Vec::new();
    for workers in FLEETS {
        let m = run_fleet(&root, workers, queries, &baseline);
        assert!(m.identical, "{workers}-worker fleet diverged from the single-node bytes");
        let speedup = base_mean.as_secs_f64() / m.mean().as_secs_f64();
        crate::row(
            &workers.to_string(),
            &[
                format!("{:.0}us", m.percentile(50.0).as_secs_f64() * 1e6),
                format!("{:.0}us", m.percentile(99.0).as_secs_f64() * 1e6),
                format!("{:.0}us", m.mean().as_secs_f64() * 1e6),
                m.failover
                    .map_or("-".to_string(), |d| format!("{:.0}us", d.as_secs_f64() * 1e6)),
                format!("{speedup:.2}x"),
                "yes".into(),
            ],
        );
        entries.push(json_entry(&m, base_mean));
    }
    let _ = std::fs::remove_dir_all(&root);
    let json = format!(
        "{{\"frames\":{FRAMES},\"fragments\":{FRAGMENTS},\"queries\":{queries},\
         \"single_node_mean_us\":{:.1},\"fleets\":[{}]}}\n",
        base_mean.as_secs_f64() * 1e6,
        entries.join(",")
    );
    std::fs::write("BENCH_cluster.json", json).expect("write BENCH_cluster.json");
    println!("wrote BENCH_cluster.json");
}
