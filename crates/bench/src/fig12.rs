//! Figure 12: depth-map generation on CPU / FPGA / hybrid plans.

use crate::timed;
use lightdb::prelude::*;
use lightdb_apps::depth::{depth_map, install_stereo, DepthVariant};
use lightdb_datasets::{Dataset, DatasetSpec};

/// Seconds taken per variant, on a stereo 360° TLF and on the Cats
/// light slab (selected at two uv points).
#[derive(Debug, Clone)]
pub struct DepthResult {
    pub variant: DepthVariant,
    pub sphere_secs: f64,
    pub slab_secs: f64,
}

/// Runs all three variants on both inputs.
pub fn run(db: &mut LightDb, spec: &DatasetSpec) -> Vec<DepthResult> {
    let stereo = install_stereo(db, Dataset::Timelapse, spec).expect("stereo install");
    let mut out = Vec::new();
    for variant in DepthVariant::ALL {
        // 360° stereo pair.
        let name = format!("depth_sphere_{}", variant.name());
        let _ = db.execute(&drop_tlf(&name));
        db.metrics().reset();
        let (sphere_secs, r) = timed(|| depth_map(db, &stereo, &name, variant));
        r.expect("sphere depth");
        if std::env::var("LIGHTDB_BENCH_VERBOSE").is_ok() {
            print!("  [{}] ", variant.name());
            for (op, dur, n) in db.metrics().report() {
                print!("{op}={:.3}s(x{n}) ", dur.as_secs_f64());
            }
            let bytes = lightdb_apps::workloads::lightdb_q::stored_bytes(db, &name).unwrap_or(0);
            println!("out_bytes={bytes}");
        }
        // Light slab sampled at two uv points.
        let slab_name = format!("depth_slab_{}", variant.name());
        let _ = db.execute(&drop_tlf(&slab_name));
        let (slab_secs, r) = timed(|| slab_depth(db, &slab_name, variant));
        r.expect("slab depth");
        out.push(DepthResult { variant, sphere_secs, slab_secs });
    }
    out
}

fn slab_depth(db: &mut LightDb, output: &str, variant: DepthVariant) -> lightdb::Result<()> {
    use lightdb::exec::fpga::{DepthMapCpu, DepthMapFpga};
    use std::sync::Arc;
    let mut options = db.options();
    options.use_gpu = matches!(variant, DepthVariant::Hybrid);
    options.use_fpga = !matches!(variant, DepthVariant::Cpu);
    db.set_options(options);
    let udf: Arc<dyn InterpUdf> = match variant {
        DepthVariant::Cpu => Arc::new(DepthMapCpu),
        _ => Arc::new(DepthMapFpga),
    };
    let ipd = lightdb_apps::depth::IPD;
    let stereo = union(
        vec![
            scan("cats") >> Select::at(Dimension::X, 0.5 - ipd / 2.0).and(Dimension::Y, 0.5, 0.5),
            scan("cats") >> Select::at(Dimension::X, 0.5 + ipd / 2.0).and(Dimension::Y, 0.5, 0.5),
        ],
        MergeFunction::Last,
    );
    db.execute(&(stereo >> Interpolate::udf(udf) >> Store::named(output)))?;
    Ok(())
}

/// Prints the Figure 12 table.
pub fn print(db: &mut LightDb, spec: &DatasetSpec) {
    println!("\nFigure 12: depth-map generation, total seconds (lower is better)");
    crate::row("variant", &["timelapse (stereo)".into(), "cats (light field)".into()]);
    for r in run(db, spec) {
        crate::row(
            r.variant.name(),
            &[format!("{:.2}s", r.sphere_secs), format!("{:.2}s", r.slab_secs)],
        );
    }
}
