//! Codec hot-kernel microbenchmarks (see DESIGN.md, "Codec kernels &
//! numeric contracts").
//!
//! Measures the overhauled kernels against the scalar/f64 `reference`
//! modules they replaced — those modules *are* the pre-overhaul
//! implementations, retained verbatim as differential oracles — plus
//! end-to-end encode/decode throughput of the full codec:
//!
//! * entropy coding: Exp-Golomb encode/decode, Mbit/s;
//! * transform: 8×8 forward/inverse DCT, blocks/s;
//! * motion estimation: 16×16 SAD, macroblocks/s;
//! * end-to-end: whole-stream encode and decode, frames/s.
//!
//! `--smoke` shrinks every measurement window so the binary finishes
//! in well under a second while still executing every kernel pair and
//! asserting fast == reference on each workload; CI runs it in release
//! mode as a cheap "kernels still work when optimised" gate.

use lightdb_codec::bitio::reference::{RefBitReader, RefBitWriter};
use lightdb_codec::bitio::{BitReader, BitWriter};
use lightdb_codec::{golomb, predict, transform, Decoder, Encoder, EncoderConfig, TileGrid};
use lightdb_frame::{Frame, Yuv};
use std::hint::black_box;
use std::time::Instant;

/// Measures two competing passes by strictly alternating them inside
/// one window until `target_secs` elapse; each call returns the
/// number of work units it performed. Interleaving means scheduler
/// noise (this often runs on a shared single-core box) hits both
/// sides equally instead of skewing whichever ran second. Returns
/// `(units_a/sec, units_b/sec)`.
fn rate2(target_secs: f64, mut a: impl FnMut() -> u64, mut b: impl FnMut() -> u64) -> (f64, f64) {
    let (mut ua, mut ub) = (0u64, 0u64);
    let (mut ta, mut tb) = (0f64, 0f64);
    loop {
        let t = Instant::now();
        ua += a();
        ta += t.elapsed().as_secs_f64();
        let t = Instant::now();
        ub += b();
        tb += t.elapsed().as_secs_f64();
        if ta + tb >= target_secs {
            return (ua as f64 / ta, ub as f64 / tb);
        }
    }
}

fn fmt_rate(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

fn print_row(label: &str, fast: f64, reference: f64) {
    crate::row(
        label,
        &[
            fmt_rate(fast),
            fmt_rate(reference),
            format!("{:.2}x", fast / reference),
        ],
    );
}

/// Deterministic xorshift; no external RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Symbol stream shaped like real residual data: mostly small values
/// (short codewords) with an occasional large outlier.
fn symbols(n: usize) -> Vec<u32> {
    let mut rng = Rng(0x5eed_cafe_f00d_d00d);
    (0..n)
        .map(|_| {
            let r = rng.next();
            if r.is_multiple_of(31) {
                (r >> 8) as u32 % 100_000
            } else {
                (r >> 8) as u32 % 48
            }
        })
        .collect()
}

fn entropy(target: f64, n: usize) {
    let syms = symbols(n);

    // Correctness cross-check before timing anything.
    let mut fast_w = BitWriter::new();
    let mut ref_w = RefBitWriter::new();
    for &s in &syms {
        golomb::write_ue(&mut fast_w, s);
        golomb::reference::write_ue(&mut ref_w, s);
    }
    let bytes = fast_w.into_bytes();
    assert_eq!(
        bytes,
        ref_w.into_bytes(),
        "fast and reference entropy encodings diverge"
    );
    let bits = (bytes.len() * 8) as u64;

    let mut w = BitWriter::new();
    let (enc_fast, enc_ref) = rate2(
        target,
        || {
            w.clear();
            for &s in &syms {
                golomb::write_ue(&mut w, s);
            }
            black_box(w.aligned_bytes());
            bits
        },
        || {
            let mut w = RefBitWriter::new();
            for &s in &syms {
                golomb::reference::write_ue(&mut w, s);
            }
            black_box(w.into_bytes());
            bits
        },
    );
    print_row("entropy enc (Mbit/s)", enc_fast / 1e6, enc_ref / 1e6);

    let (dec_fast, dec_ref) = rate2(
        target,
        || {
            let mut r = BitReader::new(&bytes);
            let mut acc = 0u64;
            for _ in 0..syms.len() {
                acc ^= golomb::read_ue(&mut r).expect("valid stream") as u64;
            }
            black_box(acc);
            bits
        },
        || {
            let mut r = RefBitReader::new(&bytes);
            let mut acc = 0u64;
            for _ in 0..syms.len() {
                acc ^= golomb::reference::read_ue(&mut r).expect("valid stream") as u64;
            }
            black_box(acc);
            bits
        },
    );
    print_row("entropy dec (Mbit/s)", dec_fast / 1e6, dec_ref / 1e6);
}

/// Blocks drawn from the same synthetic scene corpus the end-to-end
/// benchmark encodes: alternating 8×8 luma tiles (what intra coding
/// transforms) and frame-difference tiles (what inter residuals look
/// like), so the transform benchmark sees the coefficient
/// distributions the codec actually processes rather than an
/// arbitrary synthetic population.
fn residual_blocks(n: usize) -> Vec<[i32; 64]> {
    let frames = scene(64, 64, 4);
    let tiles_per_row = 64 / 8;
    let tiles_per_frame = tiles_per_row * tiles_per_row;
    (0..n)
        .map(|i| {
            let t = i / 2 % tiles_per_frame;
            let (tx, ty) = (t % tiles_per_row * 8, t / tiles_per_row * 8);
            let f = &frames[i / 2 / tiles_per_frame % (frames.len() - 1)];
            let g = &frames[i / 2 / tiles_per_frame % (frames.len() - 1) + 1];
            let mut b = [0i32; 64];
            for y in 0..8 {
                for x in 0..8 {
                    b[y * 8 + x] = if i % 2 == 0 {
                        f.luma_at(tx + x, ty + y) as i32 - 128
                    } else {
                        g.luma_at(tx + x, ty + y) as i32 - f.luma_at(tx + x, ty + y) as i32
                    };
                }
            }
            b
        })
        .collect()
}

fn dct(target: f64, n: usize) {
    let pixel_blocks = residual_blocks(n);
    // The decode-side inverse only ever sees dequantised levels;
    // benchmark it on exactly that population (qp matches the
    // end-to-end scene encode below).
    let coeff_blocks: Vec<[i32; 64]> = pixel_blocks
        .iter()
        .map(|b| {
            let mut c = transform::forward(b);
            lightdb_codec::quant::quantize(&mut c, 20, true);
            lightdb_codec::quant::dequantize(&mut c, 20);
            c
        })
        .collect();
    for (p, c) in pixel_blocks.iter().zip(coeff_blocks.iter()) {
        assert_eq!(
            transform::reference::forward(p),
            transform::forward(p),
            "fast and reference forward DCT diverge"
        );
        assert_eq!(
            transform::reference::inverse(c),
            transform::inverse(c),
            "fast and reference inverse DCT diverge"
        );
    }

    let units = n as u64;
    let (fwd_fast, fwd_ref) = rate2(
        target,
        || {
            for b in &pixel_blocks {
                black_box(transform::forward(black_box(b)));
            }
            units
        },
        || {
            for b in &pixel_blocks {
                black_box(transform::reference::forward(black_box(b)));
            }
            units
        },
    );
    print_row("DCT fwd (kblocks/s)", fwd_fast / 1e3, fwd_ref / 1e3);

    let (inv_fast, inv_ref) = rate2(
        target,
        || {
            for c in &coeff_blocks {
                black_box(transform::inverse(black_box(c)));
            }
            units
        },
        || {
            for c in &coeff_blocks {
                black_box(transform::reference::inverse(black_box(c)));
            }
            units
        },
    );
    print_row("DCT inv (kblocks/s)", inv_fast / 1e3, inv_ref / 1e3);
}

fn sad(target: f64, dim: usize) {
    let mut rng = Rng(0x5ad_5ad_5ad);
    let a: Vec<u8> = (0..dim * dim).map(|_| (rng.next() % 256) as u8).collect();
    // Correlated with `a` so early exit fires realistically often.
    let b: Vec<u8> = a
        .iter()
        .map(|&v| v.wrapping_add((rng.next() % 9) as u8).wrapping_sub(4))
        .collect();

    let positions: Vec<(usize, usize)> = (0..dim - 16)
        .step_by(4)
        .flat_map(|y| (0..dim - 16).step_by(4).map(move |x| (x, y)))
        .collect();

    for &(x, y) in &positions {
        assert_eq!(
            predict::sad_mb(&a, dim, x, y, &b, dim, x, y, u32::MAX),
            predict::reference::sad_mb(&a, dim, x, y, &b, dim, x, y, u32::MAX),
            "fast and reference SAD diverge"
        );
    }

    let units = positions.len() as u64;
    // A motion search compares every candidate against the running
    // best; 600 is a realistic mid-search bound for 16×16 blocks.
    for (label, bound) in [
        ("SAD full (kMB/s)", u32::MAX),
        ("SAD early-exit (kMB/s)", 600),
    ] {
        let (fast, refr) = rate2(
            target,
            || {
                for &(x, y) in &positions {
                    black_box(predict::sad_mb(&a, dim, x, y, &b, dim, 0, 0, bound));
                }
                units
            },
            || {
                for &(x, y) in &positions {
                    black_box(predict::reference::sad_mb(
                        &a, dim, x, y, &b, dim, 0, 0, bound,
                    ));
                }
                units
            },
        );
        print_row(label, fast / 1e3, refr / 1e3);
    }
}

/// The same deterministic moving scene the codec tests use.
pub fn scene(w: usize, h: usize, n: usize) -> Vec<Frame> {
    (0..n)
        .map(|i| {
            let mut f = Frame::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    let v = (((x + 3 * i) as f64 / 9.0).sin() * 60.0
                        + (y as f64 / 7.0).cos() * 50.0
                        + 128.0) as u8;
                    f.set(x, y, Yuv::new(v, (x % 256) as u8, (y % 256) as u8));
                }
            }
            f
        })
        .collect()
}

fn end_to_end(target: f64, w: usize, h: usize, n: usize) {
    let frames = scene(w, h, n);
    let enc = Encoder::new(EncoderConfig {
        qp: 20,
        gop_length: 6,
        grid: TileGrid::new(2, 2),
        ..Default::default()
    })
    .expect("valid config");
    let stream = enc.encode(&frames).expect("encode");
    let dec = Decoder::new();
    assert_eq!(
        dec.decode(&stream).expect("decode").len(),
        n,
        "roundtrip frame count"
    );

    let units = n as u64;
    let (enc_rate, dec_rate) = rate2(
        target.max(0.01),
        || {
            black_box(enc.encode(black_box(&frames)).expect("encode"));
            units
        },
        || {
            black_box(dec.decode(black_box(&stream)).expect("decode"));
            units
        },
    );
    crate::row(
        "e2e (frames/s)",
        &[
            fmt_rate(enc_rate),
            fmt_rate(dec_rate),
            format!("{}x{} enc/dec", w, h),
        ],
    );
}

/// Runs every kernel benchmark and prints one table. `smoke` shrinks
/// the workloads and measurement windows to CI scale.
pub fn print(smoke: bool) {
    let target = if smoke { 0.02 } else { 0.5 };
    println!(
        "Codec kernel throughput, single thread{} — fast vs. retained reference kernels",
        if smoke { " (smoke scale)" } else { "" }
    );
    crate::row(
        "kernel",
        &["fast".into(), "reference".into(), "speedup".into()],
    );
    entropy(target, if smoke { 1 << 12 } else { 1 << 16 });
    dct(target, if smoke { 64 } else { 512 });
    sad(target, if smoke { 64 } else { 192 });
    if smoke {
        end_to_end(0.0, 64, 32, 4);
    } else {
        end_to_end(1.0, 256, 128, 12);
    }
    println!("ok: all fast/reference cross-checks passed");
}

#[cfg(test)]
mod tests {
    /// The smoke configuration must run, cross-check every kernel
    /// pair, and not panic — this is what CI executes in release mode.
    #[test]
    fn smoke_runs_and_cross_checks() {
        super::print(true);
    }
}
