//! Tables 2 and 3.

use crate::fig11;
use crate::setup;
use lightdb::prelude::*;
use lightdb_apps::loc::{detector_udf_loc, workload_loc};
use lightdb_apps::workloads::System;
use lightdb_datasets::{Dataset, DatasetSpec};

/// Prints Table 2: lines of code per system per workload. UDF lines
/// are shown in parentheses, as in the paper.
pub fn print_table2() {
    println!("\nTable 2: lines of code (measured from this repository's implementations)");
    crate::row("system", &["360 tiling".into(), "AR (UDF)".into()]);
    let udf = detector_udf_loc();
    for system in System::ALL {
        let tiling = workload_loc(system, "tiling").map(|n| n.to_string()).unwrap_or("—".into());
        let ar = workload_loc(system, "ar")
            .map(|n| format!("{n} ({udf})"))
            .unwrap_or("—".into());
        crate::row(system.name(), &[tiling, ar]);
    }
    println!("(the AR detector UDF is shared; its {udf} lines are the parenthesised figure)");
}

/// Prints Table 3: percent size reduction from predictive tiling.
pub fn print_table3(db: &LightDb, spec: &DatasetSpec, cols: usize, rows: usize) {
    println!("\nTable 3: % size reduction from predictive {cols}×{rows} tiling");
    crate::row(
        "system",
        &Dataset::ALL.iter().map(|d| d.name().to_string()).collect::<Vec<_>>(),
    );
    for system in System::ALL {
        let cells: Vec<String> = Dataset::ALL
            .iter()
            .map(|&d| match fig11::run_tiling(system, db, d, cols, rows, spec) {
                Ok(m) => format!("{:.0}%", m.reduction * 100.0),
                Err(e) => format!("err:{}", &e[..e.len().min(8)]),
            })
            .collect();
        crate::row(system.name(), &cells);
    }
    let _ = setup::bench_seconds();
}
