//! Figure 15: homomorphic and optimizer-degeneracy operators, across
//! systems (the paper plots these on a log scale — LightDB's
//! encoded-domain operators win by orders of magnitude).

use crate::setup;
use crate::timed;
use lightdb::exec::{Executor, PhysicalPlan};
use lightdb::prelude::*;
use lightdb_apps::workloads::System;
use lightdb_baselines::ffmpeg::{concat, FfmpegDecoder, FfmpegEncoder, FfmpegEncoderSettings};
use lightdb_baselines::opencv::{Mat, VideoCapture, VideoWriter};
use lightdb_baselines::scanner::ScannerPipeline;
use lightdb_codec::VideoStream;
use lightdb_datasets::Dataset;
use lightdb_frame::Frame;
use std::f64::consts::PI;

/// The Figure 15 operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopOp {
    /// Whole-tile angular selection on a tiled stream.
    TileSelect,
    /// GOP-aligned temporal selection.
    GopSelect,
    /// The degenerate `SELECT(L, [-∞, +∞])`.
    IdentitySelect,
    /// Stitch four single-tile streams into one tiled stream.
    TileUnion,
    /// Concatenate two streams in time.
    GopUnion,
    /// The degenerate `UNION(L, L)`.
    SelfUnion,
}

impl HopOp {
    pub const ALL: [HopOp; 6] = [
        HopOp::TileSelect,
        HopOp::GopSelect,
        HopOp::IdentitySelect,
        HopOp::TileUnion,
        HopOp::GopUnion,
        HopOp::SelfUnion,
    ];

    pub fn name(self) -> &'static str {
        match self {
            HopOp::TileSelect => "TILESELECT",
            HopOp::GopSelect => "GOPSELECT",
            HopOp::IdentitySelect => "IDENTITY SELECT",
            HopOp::TileUnion => "TILEUNION",
            HopOp::GopUnion => "GOPUNION",
            HopOp::SelfUnion => "SELF UNION",
        }
    }
}

/// Prepares the tiled dataset and the four per-tile TLFs used by the
/// tile experiments (setup, not measured). Returns the tiled name.
pub fn prepare(db: &LightDb, spec: &lightdb_datasets::DatasetSpec) -> String {
    let tiled = setup::install_tiled(db, Dataset::Timelapse, spec, 2, 2);
    // Materialise each tile as its own TLF (TILESELECT at setup).
    for t in 0..4 {
        let name = format!("{tiled}_t{t}");
        if !db.catalog().exists(&name) {
            let exec = Executor::new(db.catalog().clone(), db.pool().clone());
            let plan = PhysicalPlan::Store {
                name: name.clone(),
                view_subgraph: None,
                input: Box::new(PhysicalPlan::TileSelect {
                    input: Box::new(PhysicalPlan::ScanTlf {
                        name: tiled.clone(),
                        version: None,
                        t_frames: None,
                        spatial: None,
                    }),
                    tiles: vec![t],
                }),
            };
            exec.run(&plan).expect("materialise tile");
        }
    }
    tiled
}

/// Runs one Figure 15 operation on LightDB; `(seconds, frames)`.
pub fn run_lightdb(db: &LightDb, op: HopOp, tiled: &str) -> Result<(f64, usize), String> {
    let frames = lightdb_apps::workloads::lightdb_q::stored_frames(db, "timelapse")
        .map_err(|e| e.to_string())?;
    match op {
        HopOp::TileSelect => {
            let out = "hop_tilesel_out";
            let _ = db.execute(&drop_tlf(out));
            let q = scan(tiled)
                >> Select::along(Dimension::Theta, 0.0, PI)
                >> Store::named(out);
            let (secs, r) = timed(|| db.execute(&q));
            r.map_err(|e| e.to_string())?;
            Ok((secs, frames))
        }
        HopOp::GopSelect => {
            let out = "hop_gopsel_out";
            let _ = db.execute(&drop_tlf(out));
            let q = scan("timelapse")
                >> Select::along(Dimension::T, 1.0, 3.0)
                >> Store::named(out);
            let (secs, r) = timed(|| db.execute(&q));
            r.map_err(|e| e.to_string())?;
            Ok((secs, frames))
        }
        HopOp::IdentitySelect => {
            let out = "hop_idsel_out";
            let _ = db.execute(&drop_tlf(out));
            let q = scan("timelapse")
                >> Select::along(Dimension::T, f64::NEG_INFINITY, f64::INFINITY)
                >> Store::named(out);
            let (secs, r) = timed(|| db.execute(&q));
            r.map_err(|e| e.to_string())?;
            Ok((secs, frames))
        }
        HopOp::TileUnion => {
            // Stitch the four pre-materialised tiles homomorphically.
            let out = "hop_tileunion_out";
            let _ = db.execute(&drop_tlf(out));
            let exec = Executor::new(db.catalog().clone(), db.pool().clone());
            let scan_tile = |t: usize| PhysicalPlan::ScanTlf {
                name: format!("{tiled}_t{t}"),
                version: None,
                t_frames: None,
                spatial: None,
            };
            let plan = PhysicalPlan::Store {
                name: out.into(),
                view_subgraph: None,
                input: Box::new(PhysicalPlan::TileUnion {
                    inputs: (0..4).map(scan_tile).collect(),
                    cols: 2,
                    rows: 2,
                }),
            };
            let (secs, r) = timed(|| exec.run(&plan));
            r.map_err(|e| e.to_string())?;
            Ok((secs, frames))
        }
        HopOp::GopUnion => {
            let out = "hop_gopunion_out";
            let _ = db.execute(&drop_tlf(out));
            let secs_total = db
                .catalog()
                .read("timelapse", None)
                .map_err(|e| e.to_string())?
                .metadata
                .tlf
                .volume
                .t()
                .hi();
            let q = union(
                vec![scan("timelapse"), scan("timelapse") >> Translate::time(secs_total)],
                MergeFunction::Last,
            ) >> Store::named(out);
            let (secs, r) = timed(|| db.execute(&q));
            r.map_err(|e| e.to_string())?;
            Ok((secs, frames * 2))
        }
        HopOp::SelfUnion => {
            let out = "hop_selfunion_out";
            let _ = db.execute(&drop_tlf(out));
            let q = union(vec![scan("timelapse"), scan("timelapse")], MergeFunction::Last)
                >> Store::named(out);
            let (secs, r) = timed(|| db.execute(&q));
            r.map_err(|e| e.to_string())?;
            Ok((secs, frames))
        }
    }
}

/// Runs one Figure 15 operation on a baseline; `(seconds, frames)`.
pub fn run_baseline(
    db: &LightDb,
    system: System,
    op: HopOp,
    tiled: &str,
) -> Result<(f64, usize), String> {
    let input = setup::dataset_stream(db, Dataset::Timelapse);
    let frames = input.frame_count();
    let fps_v = input.header.fps;
    // Tile streams for TILEUNION (read from the pre-materialised TLFs).
    let tile_streams: Vec<VideoStream> = if op == HopOp::TileUnion {
        (0..4)
            .map(|t| {
                let stored = db.catalog().read(&format!("{tiled}_t{t}"), None).unwrap();
                stored.media().read_stream(&stored.metadata.tracks[0].media_path).unwrap()
            })
            .collect()
    } else {
        Vec::new()
    };
    // FFmpeg's concat protocol matches GOPUNION (the one baseline
    // parity case the paper calls out).
    if system == System::Ffmpeg && op == HopOp::GopUnion {
        let (secs, r) = timed(|| concat(&[&input, &input]).map(|s| s.to_bytes().len()));
        r.map_err(|e| e.to_string())?;
        return Ok((secs, frames * 2));
    }
    let transform: Box<dyn Fn(Vec<Frame>) -> Vec<Frame>> = match op {
        HopOp::TileSelect => {
            let w = input.header.width;
            let h = input.header.height;
            Box::new(move |fs| fs.into_iter().map(|f| f.crop(0, 0, w / 2, h)).collect())
        }
        HopOp::GopSelect => {
            let (lo, hi) = ((fps_v as usize), (fps_v as usize) * 3);
            Box::new(move |fs| {
                fs.into_iter()
                    .enumerate()
                    .filter(|(i, _)| *i >= lo && *i < hi)
                    .map(|(_, f)| f)
                    .collect()
            })
        }
        HopOp::IdentitySelect | HopOp::SelfUnion => Box::new(|fs| fs),
        HopOp::GopUnion => Box::new(|fs| {
            let mut out = fs.clone();
            out.extend(fs);
            out
        }),
        HopOp::TileUnion => {
            let (w, h) = (input.header.width, input.header.height);
            let tiles: Vec<Vec<Frame>> = tile_streams
                .iter()
                .map(|s| lightdb::codec::Decoder::new().decode(s).unwrap())
                .collect();
            Box::new(move |fs| {
                fs.iter()
                    .enumerate()
                    .map(|(i, _)| {
                        let mut canvas = Frame::new(w, h);
                        for (t, tf) in tiles.iter().enumerate() {
                            let (c, r) = (t % 2, t / 2);
                            canvas.blit(&tf[i], c * w / 2, r * h / 2);
                        }
                        canvas
                    })
                    .collect()
            })
        }
    };
    let (secs, r) = timed(|| -> Result<(), String> {
        match system {
            System::LightDb => unreachable!(),
            System::Ffmpeg => {
                let decoded: Vec<Frame> = FfmpegDecoder::new(&input)
                    .collect::<lightdb_baselines::Result<Vec<_>>>()
                    .map_err(|e| e.to_string())?;
                let out = transform(decoded);
                let mut enc = FfmpegEncoder::new(FfmpegEncoderSettings {
                    fps: fps_v,
                    gop_length: fps_v as usize,
                    ..Default::default()
                });
                for f in &out {
                    enc.push(f).map_err(|e| e.to_string())?;
                }
                enc.finish().map_err(|e| e.to_string())?;
                Ok(())
            }
            System::OpenCv => {
                let mut cap = VideoCapture::open(&input);
                let mut decoded = Vec::new();
                while let Some(m) = cap.read() {
                    decoded.push(m.map_err(|e| e.to_string())?.frame);
                }
                let out = transform(decoded);
                let mut w = VideoWriter::open(fps_v, 20);
                for f in &out {
                    w.write(&Mat::from_frame(f)).map_err(|e| e.to_string())?;
                }
                w.release().map_err(|e| e.to_string())?;
                Ok(())
            }
            System::Scanner => {
                let table = ScannerPipeline::ingest(&input).map_err(|e| e.to_string())?;
                let out = transform(table.frames().to_vec());
                let mut w = VideoWriter::open(fps_v, 20);
                for f in &out {
                    w.write(&Mat::from_frame(f)).map_err(|e| e.to_string())?;
                }
                w.release().map_err(|e| e.to_string())?;
                Ok(())
            }
            System::SciDb => {
                let store = setup::bench_scidb(db, &setup::bench_spec());
                let name = Dataset::Timelapse.name();
                let meta = store.meta(name).map_err(|e| e.to_string())?;
                let decoded = store.subarray(name, 0, meta.frames).map_err(|e| e.to_string())?;
                let out = transform(decoded);
                let tmp = format!("hop_{op:?}");
                store.store_frames(&tmp, &out, fps_v).map_err(|e| e.to_string())?;
                store.export_video(&tmp, 0, out.len(), 20).map_err(|e| e.to_string())?;
                let _ = store.remove(&tmp);
                Ok(())
            }
        }
    });
    r?;
    let produced = if op == HopOp::GopUnion { frames * 2 } else { frames };
    Ok((secs, produced))
}

/// Prints the Figure 15 table.
pub fn print(db: &LightDb, spec: &lightdb_datasets::DatasetSpec) {
    let tiled = prepare(db, spec);
    println!("\nFigure 15: homomorphic & optimized operators, frames per second (log-scale in the paper)");
    crate::row(
        "operator",
        &System::ALL.iter().map(|s| s.name().to_string()).collect::<Vec<_>>(),
    );
    for op in HopOp::ALL {
        let mut cells = Vec::new();
        for system in System::ALL {
            let r = if system == System::LightDb {
                run_lightdb(db, op, &tiled)
            } else {
                run_baseline(db, system, op, &tiled)
            };
            cells.push(match r {
                Ok((secs, frames)) => crate::fmt_fps(crate::fps(frames, secs)),
                Err(e) => format!("err:{}", &e[..e.len().min(8)]),
            });
        }
        crate::row(op.name(), &cells);
    }
}
