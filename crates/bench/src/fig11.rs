//! Figure 11: application performance (predictive tiling & AR)
//! across the five systems, plus LightDB operator breakdowns.

use crate::setup;
use crate::{fmt_fps, fps, timed};
use lightdb::prelude::*;
use lightdb_apps::detect::detect_input_size;
use lightdb_apps::workloads::{ffmpeg_q, lightdb_q, opencv_q, scanner_q, scidb_q, System};
use lightdb_datasets::{Dataset, DatasetSpec};

/// One measurement: frames per second plus the bytes produced.
#[derive(Debug, Clone, Copy)]
pub struct Measure {
    pub fps: f64,
    pub reduction: f64,
}

/// Runs the predictive-tiling workload on one system over one
/// dataset. Errors (e.g. Scanner OOM) surface as `Err`.
pub fn run_tiling(
    system: System,
    db: &LightDb,
    dataset: Dataset,
    cols: usize,
    rows: usize,
    spec: &DatasetSpec,
) -> Result<Measure, String> {
    let to_measure = |secs: f64, stats: &lightdb_apps::RunStats| Measure {
        fps: fps(stats.frames, secs),
        reduction: stats.reduction(),
    };
    match system {
        System::LightDb => {
            let out = format!("{}_tiled_out", dataset.name());
            let _ = db.execute(&drop_tlf(&out));
            let (secs, stats) =
                timed(|| lightdb_q::tiling(db, dataset.name(), &out, cols, rows));
            let stats = stats.map_err(|e| e.to_string())?;
            Ok(to_measure(secs, &stats))
        }
        System::Ffmpeg => {
            let input = setup::dataset_stream(db, dataset);
            let (secs, r) = timed(|| ffmpeg_q::tiling(&input, cols, rows));
            let (_, stats) = r.map_err(|e| e.to_string())?;
            Ok(to_measure(secs, &stats))
        }
        System::OpenCv => {
            let input = setup::dataset_stream(db, dataset);
            let (secs, r) = timed(|| opencv_q::tiling(&input, cols, rows));
            let (_, stats) = r.map_err(|e| e.to_string())?;
            Ok(to_measure(secs, &stats))
        }
        System::Scanner => {
            let input = setup::dataset_stream(db, dataset);
            let (secs, r) = timed(|| scanner_q::tiling(&input, cols, rows));
            let (_, stats) = r.map_err(|e| e.to_string())?;
            Ok(to_measure(secs, &stats))
        }
        System::SciDb => {
            let store = setup::bench_scidb(db, spec);
            let input_bytes = setup::dataset_stream(db, dataset).to_bytes().len();
            let (secs, r) =
                timed(|| scidb_q::tiling(&store, dataset.name(), cols, rows, input_bytes));
            let (_, stats) = r.map_err(|e| e.to_string())?;
            Ok(to_measure(secs, &stats))
        }
    }
}

/// Runs the AR workload on one system over one dataset.
pub fn run_ar(
    system: System,
    db: &LightDb,
    dataset: Dataset,
    spec: &DatasetSpec,
) -> Result<Measure, String> {
    let size = detect_input_size();
    let to_measure = |secs: f64, stats: &lightdb_apps::RunStats| Measure {
        fps: fps(stats.frames, secs),
        reduction: stats.reduction(),
    };
    match system {
        System::LightDb => {
            let out = format!("{}_ar_out", dataset.name());
            let _ = db.execute(&drop_tlf(&out));
            let (secs, stats) = timed(|| lightdb_q::ar(db, dataset.name(), &out, size));
            let stats = stats.map_err(|e| e.to_string())?;
            Ok(to_measure(secs, &stats))
        }
        System::Ffmpeg => {
            let input = setup::dataset_stream(db, dataset);
            let (secs, r) = timed(|| ffmpeg_q::ar(&input, size));
            let (_, stats) = r.map_err(|e| e.to_string())?;
            Ok(to_measure(secs, &stats))
        }
        System::OpenCv => {
            let input = setup::dataset_stream(db, dataset);
            let (secs, r) = timed(|| opencv_q::ar(&input, size));
            let (_, stats) = r.map_err(|e| e.to_string())?;
            Ok(to_measure(secs, &stats))
        }
        System::Scanner => {
            let input = setup::dataset_stream(db, dataset);
            let (secs, r) = timed(|| scanner_q::ar(&input, size));
            let (_, stats) = r.map_err(|e| e.to_string())?;
            Ok(to_measure(secs, &stats))
        }
        System::SciDb => {
            let store = setup::bench_scidb(db, spec);
            let input_bytes = setup::dataset_stream(db, dataset).to_bytes().len();
            let (secs, r) = timed(|| scidb_q::ar(&store, dataset.name(), size, input_bytes));
            let (_, stats) = r.map_err(|e| e.to_string())?;
            Ok(to_measure(secs, &stats))
        }
    }
}

/// Prints the Figure 11(a) FPS table and returns the LightDB/FFmpeg
/// speedup observed (for EXPERIMENTS.md comparisons).
pub fn print_tiling_table(db: &LightDb, spec: &DatasetSpec, cols: usize, rows: usize) {
    println!("\nFigure 11(a): predictive {cols}×{rows} tiling, frames per second");
    crate::row(
        "system",
        &Dataset::ALL.iter().map(|d| d.name().to_string()).collect::<Vec<_>>(),
    );
    for system in System::ALL {
        let cells: Vec<String> = Dataset::ALL
            .iter()
            .map(|&d| match run_tiling(system, db, d, cols, rows, spec) {
                Ok(m) => fmt_fps(m.fps),
                Err(e) => format!("err:{}", &e[..e.len().min(8)]),
            })
            .collect();
        crate::row(system.name(), &cells);
    }
}

/// Prints the LightDB per-operator time breakdown across tile grids
/// (the right plot of Figure 11(a)).
pub fn print_tiling_breakdown(db: &LightDb, spec: &DatasetSpec) {
    println!("\nFigure 11(a) right: LightDB operator breakdown (Timelapse), total seconds");
    for (cols, rows) in [(2, 2), (4, 4), (8, 8)] {
        db.metrics().reset();
        let out = format!("timelapse_tiled_bd{cols}");
        let _ = db.execute(&drop_tlf(&out));
        let _ = lightdb_q::tiling(db, "timelapse", &out, cols, rows);
        let _ = spec;
        let mut cells = Vec::new();
        for op in ["DECODE", "PARTITION", "ENCODE", "TILEUNION", "STORE"] {
            cells.push(format!("{}={:.2}s", op, db.metrics().total(op).as_secs_f64()));
        }
        crate::row(&format!("{cols}x{rows} tiling"), &cells);
    }
}

/// Prints the Figure 11(b) AR FPS table.
pub fn print_ar_table(db: &LightDb, spec: &DatasetSpec) {
    println!("\nFigure 11(b): augmented reality (simulated YOLO), frames per second");
    crate::row(
        "system",
        &Dataset::ALL.iter().map(|d| d.name().to_string()).collect::<Vec<_>>(),
    );
    // SciDB is run once per dataset too; Cats (light field) is
    // LightDB-only, shown separately.
    for system in System::ALL {
        let cells: Vec<String> = Dataset::ALL
            .iter()
            .map(|&d| match run_ar(system, db, d, spec) {
                Ok(m) => fmt_fps(m.fps),
                Err(e) => format!("err:{}", &e[..e.len().min(8)]),
            })
            .collect();
        crate::row(system.name(), &cells);
    }
    // Light-field AR (LightDB only, as in the paper).
    let (secs, r) = timed(|| {
        let q = scan("cats")
            >> Select::at(Dimension::X, 0.5).and(Dimension::Y, 0.5, 0.5)
            >> Map::udf(std::sync::Arc::new(lightdb_apps::DetectUdf))
            >> Store::named("cats_ar");
        let _ = db.execute(&drop_tlf("cats_ar"));
        db.execute(&q)
    });
    if let Ok(out) = r {
        let _ = out;
        let frames = lightdb_q::stored_frames(db, "cats_ar").unwrap_or(0);
        println!("LightDB on Cats (light field): {} FPS", fmt_fps(fps(frames, secs)));
    }
    // Operator breakdown for the AR query.
    db.metrics().reset();
    let _ = db.execute(&drop_tlf("timelapse_ar_out"));
    let _ = lightdb_q::ar(db, "timelapse", "timelapse_ar_out", detect_input_size());
    print!("breakdown (timelapse): ");
    for (op, dur, _) in db.metrics().report() {
        print!("{op}={:.2}s ", dur.as_secs_f64());
    }
    println!();
}
