//! Serial vs. parallel executor comparison: a multi-GOP,
//! decode-heavy query (SCAN → DECODE → MAP(BLUR) → ENCODE) run with
//! one worker thread and with `LIGHTDB_THREADS`-many (default 8).
//!
//! Besides wall-clock speedup, the harness asserts the parallel
//! output is byte-identical to the serial output — the ordering
//! guarantee of `exec::parallel` — and reports per-operator busy vs.
//! wall time so overlap is visible (busy/wall ≈ effective
//! parallelism).

use lightdb::prelude::*;
use std::path::PathBuf;

/// One measured configuration.
#[derive(Debug)]
pub struct Measurement {
    pub threads: usize,
    pub secs: f64,
    /// Serialized output streams, for byte-comparison across runs.
    pub bytes: Vec<Vec<u8>>,
    pub frames: usize,
}

fn dataset_root() -> PathBuf {
    std::env::temp_dir().join(format!("lightdb-pscale-{}", std::process::id()))
}

/// Builds a fresh database holding a multi-GOP dataset sized for the
/// scaling run: `gops` GOPs of `gop_length` frames at `w`×`h`.
pub fn build_db(gops: usize, gop_length: usize, w: usize, h: usize) -> LightDb {
    let root = dataset_root();
    let _ = std::fs::remove_dir_all(&root);
    let db = LightDb::open(&root).expect("open scaling db");
    let frames: Vec<Frame> = (0..gops * gop_length)
        .map(|i| {
            let mut f = Frame::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    f.set(
                        x,
                        y,
                        Yuv::new(
                            ((x * 3 + y * 5 + i * 7) % 256) as u8,
                            ((x + i) % 256) as u8,
                            ((y + 2 * i) % 256) as u8,
                        ),
                    );
                }
            }
            f
        })
        .collect();
    lightdb::ingest::store_frames(
        &db,
        "pscale",
        &frames,
        &lightdb::ingest::IngestConfig {
            fps: gop_length as u32,
            gop_length,
            ..Default::default()
        },
    )
    .expect("ingest scaling dataset");
    db
}

/// Runs the decode-heavy query at the given thread count.
pub fn run(db: &mut LightDb, threads: usize) -> Measurement {
    db.set_parallelism(Parallelism::new(threads));
    let q = scan("pscale")
        >> Map::builtin(BuiltinMap::Blur)
        >> Encode::with(CodecKind::H264Sim);
    let (secs, out) = crate::timed(|| db.execute(&q).expect("scaling query"));
    let frames = out.frame_count();
    let QueryOutput::Encoded(streams) = out else { panic!("expected encoded output") };
    Measurement { threads, secs, bytes: streams.iter().map(|s| s.to_bytes()).collect(), frames }
}

/// Regenerates the serial-vs-parallel scaling table.
pub fn print() {
    let threads = lightdb_core::envknob::read_usize("LIGHTDB_THREADS")
        .filter(|&n| n > 1)
        .unwrap_or(8);
    // Decode-heavy: many GOPs, modest frames — DECODE+MAP+ENCODE all
    // scale per chunk.
    let (gops, gop_length, w, h) = (24, 8, 256, 128);
    let mut db = build_db(gops, gop_length, w, h);
    // Warm the buffer pool so both timed runs read from cache.
    let _ = run(&mut db, 1);

    let serial = run(&mut db, 1);
    let parallel = run(&mut db, threads);
    let identical = serial.bytes == parallel.bytes;
    let speedup = serial.secs / parallel.secs.max(1e-9);

    println!(
        "\nParallel scaling — SCAN>DECODE>MAP(BLUR)>ENCODE, {gops} GOPs × {gop_length} frames @ {w}x{h}\n"
    );
    crate::row("config", &["secs".into(), "fps".into(), "speedup".into()]);
    crate::row(
        "serial (1 thread)",
        &[
            format!("{:.3}", serial.secs),
            crate::fmt_fps(crate::fps(serial.frames, serial.secs)),
            "1.00x".into(),
        ],
    );
    crate::row(
        &format!("parallel ({threads} threads)"),
        &[
            format!("{:.3}", parallel.secs),
            crate::fmt_fps(crate::fps(parallel.frames, parallel.secs)),
            format!("{speedup:.2}x"),
        ],
    );
    println!(
        "\noutput byte-identical to serial: {}",
        if identical { "yes" } else { "NO (BUG)" }
    );
    let m = db.metrics();
    println!("\nper-operator busy vs wall (busy/wall ~ effective parallelism):");
    for (op, busy, wall, count) in m.report_wall() {
        if count == 0 || busy.as_secs_f64() < 1e-4 {
            continue;
        }
        println!(
            "  {op:<12} busy {:>8.3}s  wall {:>8.3}s  x{:.2}  ({count} calls)",
            busy.as_secs_f64(),
            wall.as_secs_f64(),
            busy.as_secs_f64() / wall.as_secs_f64().max(1e-9),
        );
    }
    assert!(identical, "parallel output must be byte-identical to serial");
    let _ = std::fs::remove_dir_all(dataset_root());
    if speedup < 2.0 {
        println!("\nWARNING: speedup {speedup:.2}x below the 2x target (machine may lack cores)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-scale smoke: parallel output matches serial bytes.
    #[test]
    fn parallel_output_matches_serial() {
        let mut db = build_db(4, 2, 64, 32);
        let serial = run(&mut db, 1);
        let parallel = run(&mut db, 4);
        assert_eq!(serial.bytes, parallel.bytes);
        assert_eq!(serial.frames, 8);
        let _ = std::fs::remove_dir_all(dataset_root());
    }
}
