//! Figure 14: SlabTLF (light-field) operator performance —
//! LightDB only, since none of the baselines accept light fields.

use crate::timed;
use lightdb::prelude::*;
use lightdb_apps::depth::IPD;

/// The Figure 14 operations over the Cats slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlabOp {
    /// Monoscopic selection: one uv viewpoint.
    SelectMono,
    /// Stereoscopic selection: two uv viewpoints.
    SelectStereo,
    /// Temporal range selection `t ∈ [1, 2]`.
    SelectTime,
    /// Angular selection over the st-images.
    SelectAngles,
    /// Light-field refocus map.
    MapFocus,
    /// Grayscale map over every uv sample.
    MapGray,
}

impl SlabOp {
    pub const ALL: [SlabOp; 6] = [
        SlabOp::SelectMono,
        SlabOp::SelectStereo,
        SlabOp::SelectTime,
        SlabOp::SelectAngles,
        SlabOp::MapFocus,
        SlabOp::MapGray,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SlabOp::SelectMono => "select x=0.5 (mono)",
            SlabOp::SelectStereo => "select x=±i/2 (stereo)",
            SlabOp::SelectTime => "select t=[1,2]",
            SlabOp::SelectAngles => "select θ,φ range",
            SlabOp::MapFocus => "map focus",
            SlabOp::MapGray => "map grayscale",
        }
    }
}

/// Runs one slab operation; returns `(seconds, frames processed)`.
pub fn run(db: &LightDb, op: SlabOp) -> Result<(f64, usize), String> {
    use std::f64::consts::PI;
    let frames = lightdb_apps::workloads::lightdb_q::stored_frames(db, "cats")
        .map_err(|e| e.to_string())?;
    let q = match op {
        SlabOp::SelectMono => {
            scan("cats") >> Select::at(Dimension::X, 0.5).and(Dimension::Y, 0.5, 0.5)
        }
        SlabOp::SelectStereo => union(
            vec![
                scan("cats")
                    >> Select::at(Dimension::X, 0.5 - IPD / 2.0).and(Dimension::Y, 0.5, 0.5),
                scan("cats")
                    >> Select::at(Dimension::X, 0.5 + IPD / 2.0).and(Dimension::Y, 0.5, 0.5),
            ],
            MergeFunction::Last,
        ),
        SlabOp::SelectTime => scan("cats") >> Select::along(Dimension::T, 1.0, 2.0),
        SlabOp::SelectAngles => {
            scan("cats")
                >> Select::along(Dimension::Theta, PI / 2.0, 3.0 * PI / 2.0).and(
                    Dimension::Phi,
                    PI / 4.0,
                    3.0 * PI / 4.0,
                )
        }
        SlabOp::MapFocus => scan("cats") >> Map::builtin(BuiltinMap::Focus),
        SlabOp::MapGray => scan("cats") >> Map::builtin(BuiltinMap::Grayscale),
    };
    let (secs, r) = timed(|| db.execute(&q));
    r.map_err(|e| e.to_string())?;
    Ok((secs, frames))
}

/// Prints the Figure 14 table.
pub fn print(db: &LightDb) {
    println!("\nFigure 14: SlabTLF operator performance (Cats), frames per second");
    println!("(baselines cannot accept light-field input — LightDB only, as in the paper)");
    for op in SlabOp::ALL {
        let cell = match run(db, op) {
            Ok((secs, frames)) => crate::fmt_fps(crate::fps(frames, secs)),
            Err(e) => format!("err:{e}"),
        };
        crate::row(op.name(), &[cell]);
    }
}
