//! # lightdb-bench
//!
//! Shared harness for the evaluation experiments. Each `expt_*`
//! binary regenerates one table or figure of the paper (see
//! DESIGN.md's experiment index); the Criterion benches in
//! `benches/` provide statistically sampled versions of the same
//! measurements at a reduced scale.
//!
//! Scale knobs:
//!
//! * `LIGHTDB_BENCH_SECONDS` — dataset duration (default 6);
//! * `LIGHTDB_FULL_SCALE=1` — paper-scale 3840×2048 resolution;
//! * `LIGHTDB_BENCH_CACHE` — dataset cache directory (datasets are
//!   generated and encoded once, then reused across runs).

pub mod cluster_scaleout;
pub mod codec_kernels;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fleet_serving;
pub mod parallel_scaling;
pub mod setup;
pub mod tables;
pub mod wal_commit;

use std::time::Instant;

/// Times a closure, returning `(seconds, output)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Frames-per-second for `frames` processed in `seconds`.
pub fn fps(frames: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    frames as f64 / seconds
}

/// Prints one aligned row of a results table.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<22}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

/// Formats an FPS value compactly.
pub fn fmt_fps(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fps_math() {
        assert_eq!(fps(30, 1.0), 30.0);
        assert_eq!(fps(0, 0.0), 0.0);
        let (secs, v) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn fps_formatting() {
        assert_eq!(fmt_fps(1234.6), "1235");
        assert_eq!(fmt_fps(45.67), "45.7");
        assert_eq!(fmt_fps(0.314), "0.31");
    }
}
