//! Experiment setup: cached datasets, databases, and baseline stores.

use lightdb::prelude::*;
use lightdb_baselines::scidb::SciDb;
use lightdb_codec::{TileGrid, VideoStream};
use lightdb_datasets::{encode_frames, frame, install, install_cats, Dataset, DatasetSpec};
use std::path::PathBuf;

/// Duration of the benchmark datasets in seconds.
pub fn bench_seconds() -> usize {
    lightdb_core::envknob::read_usize("LIGHTDB_BENCH_SECONDS").unwrap_or(6)
}

/// The shared benchmark dataset spec.
pub fn bench_spec() -> DatasetSpec {
    DatasetSpec::mini(bench_seconds())
}

/// A smaller spec for Criterion's statistically sampled runs.
pub fn criterion_spec() -> DatasetSpec {
    DatasetSpec { width: 128, height: 64, fps: 8, seconds: 2, qp: 24 }
}

/// The cache directory datasets and databases live in, keyed by the
/// active spec so scale changes regenerate.
pub fn cache_dir(tag: &str, spec: &DatasetSpec) -> PathBuf {
    let base = std::env::var("LIGHTDB_BENCH_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("lightdb-bench-cache"));
    base.join(format!("{tag}-{}x{}-{}s-fps{}", spec.width, spec.height, spec.seconds, spec.fps))
}

/// Opens (or builds) the shared benchmark database with all three
/// 360° datasets, the watermark, and the Cats slab installed.
pub fn bench_db(spec: &DatasetSpec) -> LightDb {
    let db = LightDb::open(cache_dir("db", spec)).expect("open bench db");
    for d in Dataset::ALL {
        install(&db, d, spec).expect("install dataset");
    }
    lightdb_datasets::install_watermark(&db, spec).expect("install watermark");
    let st = (spec.width / 4).clamp(64, 512) & !15;
    install_cats(&db, st, 8, 8, spec.seconds.min(3)).expect("install cats");
    db
}

/// Installs a tiled copy of a dataset (`<name>_tiled`, `cols×rows`
/// motion-constrained tiles) for the TILESELECT experiments.
pub fn install_tiled(db: &LightDb, dataset: Dataset, spec: &DatasetSpec, cols: usize, rows: usize) -> String {
    let name = format!("{}_tiled{cols}x{rows}", dataset.name());
    if db.catalog().exists(&name) {
        return name;
    }
    let stream = encode_frames(
        (0..spec.frame_count()).map(|i| frame(dataset, spec, i)),
        spec,
        TileGrid::new(cols, rows),
    );
    lightdb::ingest::store_stream(
        db,
        &name,
        stream,
        Point3::ORIGIN,
        lightdb::geom::projection::ProjectionKind::Equirectangular,
    )
    .expect("store tiled dataset");
    name
}

/// The encoded stream of a dataset (for baseline pipelines), read
/// back out of the benchmark database so every system starts from
/// byte-identical input.
pub fn dataset_stream(db: &LightDb, dataset: Dataset) -> VideoStream {
    let stored = db.catalog().read(dataset.name(), None).expect("dataset installed");
    stored
        .media()
        .read_stream(&stored.metadata.tracks[0].media_path)
        .expect("readable media")
}

/// Opens (or builds) the SciDB array store with every dataset
/// imported (import cost is setup, not measured — the paper's arrays
/// were pre-loaded too).
pub fn bench_scidb(db: &LightDb, spec: &DatasetSpec) -> SciDb {
    let store = SciDb::open(cache_dir("scidb", spec)).expect("open scidb");
    for d in Dataset::ALL {
        if store.meta(d.name()).is_err() {
            let stream = dataset_stream(db, d);
            store.import_video(d.name(), &stream).expect("scidb import");
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_dirs_are_spec_keyed() {
        let a = cache_dir("db", &DatasetSpec { width: 64, height: 32, fps: 4, seconds: 1, qp: 30 });
        let b = cache_dir("db", &DatasetSpec { width: 128, height: 64, fps: 4, seconds: 1, qp: 30 });
        assert_ne!(a, b);
    }

    #[test]
    fn bench_db_installs_everything() {
        let spec = DatasetSpec { width: 64, height: 32, fps: 2, seconds: 1, qp: 30 };
        let dir = cache_dir("db", &spec);
        let _ = std::fs::remove_dir_all(&dir);
        let db = bench_db(&spec);
        for name in ["timelapse", "venice", "coaster", "watermark", "cats"] {
            assert!(db.catalog().exists(name), "{name} missing");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
