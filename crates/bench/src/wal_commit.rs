//! Catalog publish throughput: per-publish fsync/rename vs. the
//! write-ahead log with group commit.
//!
//! Four committer threads publish metadata-only TLF versions as fast
//! as the catalog acknowledges them, once in `Durability::PerPublish`
//! mode (every publish pays a file fsync, a rename, and a directory
//! fsync) and once in `Durability::Wal` mode with a small group
//! window (committers share one log fsync per batch). Both runs end
//! with a read-back audit — the two modes must expose identical
//! version lists and identical descriptors — and the result is
//! emitted to `BENCH_wal.json` for cross-PR tracking.

use lightdb::container::{TlfBody, TlfDescriptor};
use lightdb::geom::{Interval, Point3};
use lightdb::storage::{Catalog, CatalogOptions, Durability};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Committer threads per mode.
pub const THREADS: usize = 4;
/// Publishes per thread (the burst finishes in well under a second on
/// an NVMe disk and in a few seconds on spinning rust).
pub const PER_THREAD: usize = 250;

/// One mode's measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    pub secs: f64,
    pub publishes: usize,
}

impl Measurement {
    pub fn per_s(&self) -> f64 {
        if self.secs <= 0.0 {
            return 0.0;
        }
        self.publishes as f64 / self.secs
    }
}

/// Descriptor for metadata-only versions (references no tracks).
fn empty_tlfd() -> TlfDescriptor {
    TlfDescriptor {
        body: TlfBody::Sphere360 { points: vec![] },
        ..TlfDescriptor::single_sphere(Point3::ORIGIN, Interval::new(0.0, 2.0), 0)
    }
}

fn bench_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lightdb-walbench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Runs the publish burst against a catalog opened with `opts`,
/// returning the measurement and the root (left on disk for the
/// read-back audit).
fn burst(tag: &str, opts: CatalogOptions) -> (Measurement, PathBuf) {
    let root = bench_root(tag);
    let cat = Arc::new(Catalog::open_with(&root, opts).expect("open bench catalog"));
    let (secs, ()) = crate::timed(|| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cat = Arc::clone(&cat);
                std::thread::spawn(move || {
                    let name = format!("walbench-{t}");
                    for _ in 0..PER_THREAD {
                        cat.store(&name, Vec::new(), empty_tlfd()).expect("publish");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("committer thread");
        }
    });
    // Durability epilogue outside the timed region: the per-publish
    // mode has already paid it inline, the WAL mode's checkpoint here
    // keeps the read-back audit comparing materialised state.
    cat.checkpoint().expect("checkpoint");
    (Measurement { secs, publishes: THREADS * PER_THREAD }, root)
}

/// Read-back audit: both roots must expose identical names, version
/// lists, and per-version descriptors.
fn audit_equal(a: &PathBuf, b: &PathBuf) {
    let ca = Catalog::open(a).expect("reopen per-publish root");
    let cb = Catalog::open(b).expect("reopen wal root");
    let mut names_a = ca.names();
    let mut names_b = cb.names();
    names_a.sort();
    names_b.sort();
    assert_eq!(names_a, names_b, "modes diverged on TLF names");
    for name in &names_a {
        let va = ca.all_versions(name).expect("versions");
        let vb = cb.all_versions(name).expect("versions");
        assert_eq!(va, vb, "modes diverged on versions of {name}");
        for &v in &va {
            let ra = ca.read(name, Some(v)).expect("read per-publish");
            let rb = cb.read(name, Some(v)).expect("read wal");
            assert_eq!(ra.metadata.version, rb.metadata.version, "{name} v{v}");
            assert_eq!(
                ra.metadata.tlf, rb.metadata.tlf,
                "modes diverged on descriptor of {name} v{v}"
            );
        }
    }
}

/// Runs both modes, audits read equivalence, writes `BENCH_wal.json`,
/// and prints the comparison table.
pub fn print() {
    let (per_publish, root_pp) = burst(
        "perpublish",
        CatalogOptions { durability: Durability::PerPublish },
    );
    let (wal, root_wal) = burst(
        "group",
        CatalogOptions {
            durability: match Durability::wal_defaults() {
                Durability::Wal { segment_bytes, checkpoint_bytes, .. } => Durability::Wal {
                    group_window: Duration::ZERO,
                    segment_bytes,
                    checkpoint_bytes,
                },
                other => other,
            },
        },
    );
    audit_equal(&root_pp, &root_wal);
    let _ = std::fs::remove_dir_all(&root_pp);
    let _ = std::fs::remove_dir_all(&root_wal);

    let speedup = if per_publish.per_s() > 0.0 { wal.per_s() / per_publish.per_s() } else { 0.0 };
    println!(
        "catalog publish throughput ({} threads x {} publishes, metadata-only)",
        THREADS, PER_THREAD
    );
    crate::row(
        "per-publish fsync",
        &[format!("{:.1}/s", per_publish.per_s()), format!("{:.2}s", per_publish.secs)],
    );
    crate::row(
        "wal group commit",
        &[format!("{:.1}/s", wal.per_s()), format!("{:.2}s", wal.secs)],
    );
    crate::row("speedup", &[format!("{speedup:.1}x"), String::new()]);
    println!("read-back audit: both modes expose identical catalogs");

    let json = format!(
        "{{\"threads\":{},\"publishes\":{},\"per_publish_per_s\":{:.1},\"wal_per_s\":{:.1},\"speedup\":{:.2}}}\n",
        THREADS,
        THREADS * PER_THREAD,
        per_publish.per_s(),
        wal.per_s(),
        speedup
    );
    std::fs::write("BENCH_wal.json", json).expect("write BENCH_wal.json");
    println!("wrote BENCH_wal.json");
}
