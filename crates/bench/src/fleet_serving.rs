//! Headset-fleet tile-serving latency: cross-user tile cache on vs.
//! off across fleet sizes.
//!
//! A hot-spot viewer population (the realistic "everyone watches the
//! action" trace) replays against one [`TileServer`] per
//! configuration: fleet sizes 1 / 64 / 512 / 4096, each with the
//! engine-wide encoded-tile cache enabled and disabled. For every run
//! we report p50/p99/p999 serve latency, the cache hit rate, the
//! single-flight coalescing rate, and decode-ops-avoided (requests
//! answered without running `extract_tile`). Runs end with a
//! byte-identity audit — served tiles must equal a direct zero-decode
//! `EncodedGop::extract_tile(..).to_bytes()` of the stored stream —
//! and the results land in `BENCH_fleet.json` for cross-PR tracking.
//!
//! [`TileServer`]: lightdb::tileserver::TileServer

use lightdb::codec::{EncodedGop, TileGrid};
use lightdb::container::TrackRole;
use lightdb::core::envknob;
use lightdb::core::Histogram;
use lightdb::tileserver::{Orientation, TileServerConfig};
use lightdb::LightDb;
use lightdb_apps::fleet::{install_tiled_pair, run_fleet, FleetConfig, FleetReport, TraceKind};
use std::path::PathBuf;

/// Fleet sizes swept (concurrent viewers).
pub const FLEET_SIZES: [usize; 4] = [1, 64, 512, 4096];

/// One (fleet size, cache mode) measurement.
#[derive(Debug)]
pub struct Measurement {
    pub viewers: usize,
    pub use_cache: bool,
    pub report: FleetReport,
    /// Tile-cache counters for the run (all zero with the cache off).
    pub hits: u64,
    pub misses: u64,
    pub coalesced: u64,
    pub evictions: u64,
}

impl Measurement {
    /// Requests answered without running `extract_tile`.
    pub fn avoided(&self) -> u64 {
        self.hits + self.coalesced
    }

    fn lookups(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            return 0.0;
        }
        self.avoided() as f64 / self.lookups() as f64
    }

    pub fn coalesce_rate(&self) -> f64 {
        if self.lookups() == 0 {
            return 0.0;
        }
        self.coalesced as f64 / self.lookups() as f64
    }
}

fn micros(h: &Histogram, p: f64) -> f64 {
    h.percentile(p).as_secs_f64() * 1e6
}

fn mean_micros(h: &Histogram) -> f64 {
    h.mean().as_secs_f64() * 1e6
}

fn bench_root() -> PathBuf {
    let d = std::env::temp_dir().join(format!("lightdb-fleetbench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Replays one hot-spot fleet of `viewers` against a fresh engine
/// over `root` (fresh buffer pool and tile cache, so runs are
/// independent).
fn run_one(root: &PathBuf, viewers: usize, seconds: u64, use_cache: bool) -> Measurement {
    let db = LightDb::open(root).expect("reopen bench root");
    let session = db.session();
    let server = session
        .tile_server(
            "fleet",
            Some("fleet_lq"),
            TileServerConfig {
                use_cache,
                ..TileServerConfig::default()
            },
        )
        .expect("open tile server");
    let workers = envknob::read_u64("LIGHTDB_THREADS")
        .unwrap_or(8)
        .clamp(1, 64) as usize;
    let cfg = FleetConfig {
        viewers,
        seconds,
        kind: TraceKind::HotSpot,
        workers,
        prefetch: use_cache,
        ..FleetConfig::default()
    };
    let report = run_fleet(&server, &cfg);
    assert_eq!(report.errors, 0, "fleet errors: {:?}", report.error_classes);
    assert_eq!(report.invariant_violations, 0, "serving contract violated");
    let stats = db.tile_cache().map(|c| c.stats()).unwrap_or_default();
    Measurement {
        viewers,
        use_cache,
        report,
        hits: if use_cache { stats.hits } else { 0 },
        misses: if use_cache { stats.misses } else { 0 },
        coalesced: if use_cache { stats.coalesced } else { 0 },
        evictions: if use_cache { stats.evictions } else { 0 },
    }
}

/// Byte-identity audit: for a sample of (second, tile) pairs, the
/// bytes a `TileServer` serves must equal a direct
/// `EncodedGop::extract_tile(..).to_bytes()` of the stored stream —
/// the cache must never change what a headset receives.
fn audit_byte_identity(root: &PathBuf, grid: TileGrid) {
    let db = LightDb::open(root).expect("reopen for audit");
    let session = db.session();
    let server = session
        .tile_server("fleet", Some("fleet_lq"), TileServerConfig::default())
        .expect("open audit server");
    for (name, want_primary) in [("fleet", true), ("fleet_lq", false)] {
        let stored = db.catalog().read(name, None).expect("read stored tlf");
        let media = stored.media();
        let track = stored
            .metadata
            .tracks
            .iter()
            .find(|t| t.role == TrackRole::Video)
            .expect("video track");
        for (second, entry) in track.gop_index.iter().enumerate() {
            let gop_bytes = media
                .read_gop_bytes(&track.media_path, entry)
                .expect("read gop");
            let gop = EncodedGop::from_bytes(&gop_bytes).expect("parse gop");
            for tile in 0..grid.tile_count() {
                let direct = gop.extract_tile(tile).expect("extract").to_bytes();
                let view = server
                    .serve(9_999, second as u64, Orientation::tile_center(tile, grid))
                    .expect("serve");
                if want_primary {
                    assert_eq!(view.focus, tile, "focus tile drifted");
                    assert_eq!(
                        *view.primary.bytes, direct,
                        "served HQ tile {tile} second {second} is not byte-identical"
                    );
                } else if let Some(n) = view.neighbors.iter().find(|n| n.tile == tile) {
                    assert_eq!(
                        *n.bytes, direct,
                        "served LQ tile {tile} second {second} is not byte-identical"
                    );
                }
            }
        }
    }
    println!("byte-identity audit: served tiles == direct extract_tile (HQ + LQ)");
}

fn json_entry(on: &Measurement, off: &Measurement) -> String {
    let h_on = &on.report.latency;
    let h_off = &off.report.latency;
    let speedup = if mean_micros(h_on) > 0.0 {
        mean_micros(h_off) / mean_micros(h_on)
    } else {
        0.0
    };
    format!(
        concat!(
            "{{\"viewers\":{},\"serves\":{},\"tiles\":{},",
            "\"on\":{{\"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},\"mean_us\":{:.1},",
            "\"hit_rate\":{:.4},\"coalesce_rate\":{:.4},\"hits\":{},\"misses\":{},\"coalesced\":{},\"evictions\":{},\"decode_ops_avoided\":{}}},",
            "\"off\":{{\"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},\"mean_us\":{:.1}}},",
            "\"mean_speedup\":{:.2}}}"
        ),
        on.viewers,
        on.report.serves,
        on.report.tiles_served,
        micros(h_on, 50.0),
        micros(h_on, 99.0),
        micros(h_on, 99.9),
        mean_micros(h_on),
        on.hit_rate(),
        on.coalesce_rate(),
        on.hits,
        on.misses,
        on.coalesced,
        on.evictions,
        on.avoided(),
        micros(h_off, 50.0),
        micros(h_off, 99.0),
        micros(h_off, 99.9),
        mean_micros(h_off),
        speedup
    )
}

/// Runs the sweep, audits byte identity, prints the table, and writes
/// `BENCH_fleet.json`.
pub fn print() {
    let seconds = envknob::read_u64("LIGHTDB_BENCH_SECONDS")
        .unwrap_or(6)
        .clamp(1, 600);
    let grid = TileGrid { cols: 4, rows: 4 };
    let root = bench_root();
    {
        let db = LightDb::open(&root).expect("open bench root");
        install_tiled_pair(&db, "fleet", seconds as usize, grid).expect("ingest fleet pair");
    }
    println!("fleet tile serving (hot-spot trace, {seconds}s, 4x4 grid, HQ focus + LQ ring)");
    crate::row(
        "viewers",
        &[
            "p50 on".into(),
            "p99 on".into(),
            "p50 off".into(),
            "p99 off".into(),
            "hit rate".into(),
            "coalesced".into(),
            "avoided".into(),
            "speedup".into(),
        ],
    );
    let mut entries = Vec::new();
    let mut last_speedup = 0.0;
    for viewers in FLEET_SIZES {
        let on = run_one(&root, viewers, seconds, true);
        let off = run_one(&root, viewers, seconds, false);
        let speedup = if mean_micros(&on.report.latency) > 0.0 {
            mean_micros(&off.report.latency) / mean_micros(&on.report.latency)
        } else {
            0.0
        };
        crate::row(
            &viewers.to_string(),
            &[
                format!("{:.0}us", micros(&on.report.latency, 50.0)),
                format!("{:.0}us", micros(&on.report.latency, 99.0)),
                format!("{:.0}us", micros(&off.report.latency, 50.0)),
                format!("{:.0}us", micros(&off.report.latency, 99.0)),
                format!("{:.1}%", on.hit_rate() * 100.0),
                format!("{}", on.coalesced),
                format!("{}", on.avoided()),
                format!("{speedup:.1}x"),
            ],
        );
        entries.push(json_entry(&on, &off));
        last_speedup = speedup;
    }
    audit_byte_identity(&root, grid);
    let _ = std::fs::remove_dir_all(&root);
    let json = format!(
        "{{\"seconds\":{seconds},\"grid\":\"4x4\",\"trace\":\"hotspot\",\"fleets\":[{}]}}\n",
        entries.join(",")
    );
    std::fs::write("BENCH_fleet.json", json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json (largest-fleet mean speedup {last_speedup:.1}x)");
}
