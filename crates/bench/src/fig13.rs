//! Figure 13: 360TLF operator micro-benchmarks across the five
//! systems — SELECT (temporal / angular), MAP (blur / grayscale),
//! UNION (second video / watermark / rotated self), and PARTITION
//! (temporal / angular). Each system executes a minimal
//! `input → operator → output` pipeline.

use crate::setup;
use crate::timed;
use lightdb::prelude::*;
use lightdb_apps::workloads::System;
use lightdb_baselines::ffmpeg::{FfmpegDecoder, FfmpegEncoder, FfmpegEncoderSettings};
use lightdb_baselines::opencv::{Mat, VideoCapture, VideoWriter};
use lightdb_baselines::scanner::ScannerPipeline;
use lightdb_codec::VideoStream;
use lightdb_datasets::Dataset;
use lightdb_frame::{kernels, Frame};
use std::f64::consts::PI;

/// The micro-operators of Figure 13 (and the SlabTLF subset reused by
/// Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// `SELECT(t ∈ [1.5, 3.5])` — misaligned, exercises the GOP index.
    SelectT,
    /// `SELECT(θ ∈ [π/2, π])`.
    SelectTheta,
    /// `SELECT(θ ∈ [π/2, π], φ ∈ [π/4, π/2])`.
    SelectThetaPhi,
    MapBlur,
    MapGray,
    /// `UNION` with the Venice dataset.
    UnionVenice,
    /// `UNION` with the (mostly-null) watermark TLF.
    UnionWatermark,
    /// `UNION` with a 90°-rotated copy of the input.
    UnionRotated,
    /// `PARTITION(Δt = 1.5)`.
    PartitionT,
    /// `PARTITION(Δθ = π/2)`.
    PartitionTheta,
    /// `PARTITION(Δφ = π/4)`.
    PartitionPhi,
}

impl MicroOp {
    pub const ALL: [MicroOp; 11] = [
        MicroOp::SelectT,
        MicroOp::SelectTheta,
        MicroOp::SelectThetaPhi,
        MicroOp::MapBlur,
        MicroOp::MapGray,
        MicroOp::UnionVenice,
        MicroOp::UnionWatermark,
        MicroOp::UnionRotated,
        MicroOp::PartitionT,
        MicroOp::PartitionTheta,
        MicroOp::PartitionPhi,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MicroOp::SelectT => "select t=[1.5,3.5]",
            MicroOp::SelectTheta => "select θ=[π/2,π]",
            MicroOp::SelectThetaPhi => "select θ,φ",
            MicroOp::MapBlur => "map blur",
            MicroOp::MapGray => "map grayscale",
            MicroOp::UnionVenice => "union venice",
            MicroOp::UnionWatermark => "union watermark",
            MicroOp::UnionRotated => "union rotated",
            MicroOp::PartitionT => "partition Δt=1.5",
            MicroOp::PartitionTheta => "partition Δθ=π/2",
            MicroOp::PartitionPhi => "partition Δφ=π/4",
        }
    }
}

/// Runs a micro-op on LightDB (Timelapse input), returning
/// `(seconds, source frames)`.
pub fn run_lightdb(db: &LightDb, op: MicroOp) -> Result<(f64, usize), String> {
    let out = format!("micro_out_{op:?}");
    let _ = db.execute(&drop_tlf(&out));
    let input = || scan("timelapse");
    let q = match op {
        MicroOp::SelectT => input() >> Select::along(Dimension::T, 1.5, 3.5),
        MicroOp::SelectTheta => input() >> Select::along(Dimension::Theta, PI / 2.0, PI),
        MicroOp::SelectThetaPhi => {
            input()
                >> Select::along(Dimension::Theta, PI / 2.0, PI).and(
                    Dimension::Phi,
                    PI / 4.0,
                    PI / 2.0,
                )
        }
        MicroOp::MapBlur => input() >> Map::builtin(BuiltinMap::Blur),
        MicroOp::MapGray => input() >> Map::builtin(BuiltinMap::Grayscale),
        MicroOp::UnionVenice => union(vec![input(), scan("venice")], MergeFunction::Last),
        MicroOp::UnionWatermark => union(vec![input(), scan("watermark")], MergeFunction::Last),
        MicroOp::UnionRotated => union(
            vec![input(), input() >> Rotate::new(PI / 2.0, 0.0)],
            MergeFunction::Last,
        ),
        MicroOp::PartitionT => input() >> Partition::along(Dimension::T, 1.5),
        MicroOp::PartitionTheta => input() >> Partition::along(Dimension::Theta, PI / 2.0),
        MicroOp::PartitionPhi => input() >> Partition::along(Dimension::Phi, PI / 4.0),
    };
    let frames = lightdb_apps::workloads::lightdb_q::stored_frames(db, "timelapse")
        .map_err(|e| e.to_string())?;
    let (secs, r) = timed(|| db.execute(&(q >> Store::named(&out))));
    r.map_err(|e| e.to_string())?;
    Ok((secs, frames))
}

/// Per-frame realisations of the micro-ops for the baselines (they
/// all work on decoded 2-D frames).
fn frame_op(op: MicroOp, w: usize, h: usize) -> impl Fn(&Frame) -> Frame {
    move |f: &Frame| match op {
        MicroOp::SelectTheta => f.crop(w / 4, 0, w / 4 * 2, h),
        MicroOp::SelectThetaPhi => f.crop(w / 4, h / 4, w / 4 * 2, (h / 4) & !1),
        MicroOp::MapBlur => kernels::blur(f),
        MicroOp::MapGray => kernels::grayscale(f),
        _ => f.clone(),
    }
}

fn union_source(db: &LightDb, op: MicroOp) -> Option<VideoStream> {
    match op {
        MicroOp::UnionVenice => Some(setup::dataset_stream(db, Dataset::Venice)),
        MicroOp::UnionWatermark => {
            let stored = db.catalog().read("watermark", None).ok()?;
            stored.media().read_stream(&stored.metadata.tracks[0].media_path).ok()
        }
        MicroOp::UnionRotated => Some(setup::dataset_stream(db, Dataset::Timelapse)),
        _ => None,
    }
}

fn overlay(base: &mut Frame, other: &Frame, op: MicroOp) {
    match op {
        MicroOp::UnionRotated => {
            // Rotate the other input by 90° then take it (LAST).
            let w = other.width();
            for y in 0..other.height() {
                for x in 0..w {
                    base.set(x, y, other.get((x + w * 3 / 4) % w, y));
                }
            }
        }
        MicroOp::UnionWatermark => {
            // Composite non-null watermark pixels (scaled to a corner).
            let scaled = other.resize(base.width() / 4, (base.height() / 4) & !1);
            for y in 0..scaled.height() {
                for x in 0..scaled.width() {
                    let c = scaled.get(x, y);
                    if !lightdb::exec::chunk::is_omega(c) {
                        base.set(x, y, c);
                    }
                }
            }
        }
        _ => {
            // LAST over full overlap: the other input wins.
            base.blit(other, 0, 0);
        }
    }
}

/// The temporal range of `SELECT t=[1.5, 3.5]` in frames.
fn t_range(fps: u32) -> (usize, usize) {
    ((1.5 * fps as f64) as usize, (3.5 * fps as f64) as usize)
}

/// Runs a micro-op on a baseline, returning `(seconds, source frames)`.
pub fn run_baseline(db: &LightDb, system: System, op: MicroOp) -> Result<(f64, usize), String> {
    let input = setup::dataset_stream(db, Dataset::Timelapse);
    let frames_total = input.frame_count();
    let (w, h) = (input.header.width, input.header.height);
    let fps_v = input.header.fps;
    let fop = frame_op(op, w, h);
    let other = union_source(db, op);
    let is_union = other.is_some();
    let (secs, r) = timed(|| -> Result<(), String> {
        match system {
            System::LightDb => unreachable!("use run_lightdb"),
            System::Ffmpeg => {
                let settings = FfmpegEncoderSettings {
                    fps: fps_v,
                    gop_length: fps_v as usize,
                    ..Default::default()
                };
                let mut enc: Option<FfmpegEncoder> = None;
                let mut others = other.as_ref().map(FfmpegDecoder::new);
                let (lo, hi) = t_range(fps_v);
                let mut partitions: Vec<FfmpegEncoder> = Vec::new();
                for (i, f) in FfmpegDecoder::new(&input).enumerate() {
                    let mut f = f.map_err(|e| e.to_string())?;
                    if op == MicroOp::SelectT && (i < lo || i >= hi) {
                        continue;
                    }
                    if is_union {
                        if let Some(Some(Ok(o))) = others.as_mut().map(|d| d.next()) {
                            overlay(&mut f, &o, op);
                        }
                    }
                    let f = fop(&f);
                    match op {
                        MicroOp::PartitionT => {
                            // New encoder per 1.5 s segment.
                            let seg = (i as f64 / (1.5 * fps_v as f64)) as usize;
                            while partitions.len() <= seg {
                                partitions.push(FfmpegEncoder::new(settings));
                            }
                            partitions[seg].push(&f).map_err(|e| e.to_string())?;
                        }
                        MicroOp::PartitionTheta | MicroOp::PartitionPhi => {
                            let (cols, rows) =
                                if op == MicroOp::PartitionTheta { (4, 1) } else { (1, 4) };
                            while partitions.len() < cols * rows {
                                partitions.push(FfmpegEncoder::new(settings));
                            }
                            #[allow(clippy::needless_range_loop)]
                            for t in 0..cols * rows {
                                let (c, r) = (t % cols, t / cols);
                                partitions[t]
                                    .push(&f.crop(
                                        c * (w / cols),
                                        r * (h / rows),
                                        w / cols,
                                        h / rows,
                                    ))
                                    .map_err(|e| e.to_string())?;
                            }
                        }
                        _ => {
                            enc.get_or_insert_with(|| FfmpegEncoder::new(settings))
                                .push(&f)
                                .map_err(|e| e.to_string())?;
                        }
                    }
                }
                if let Some(e) = enc {
                    e.finish().map_err(|e| e.to_string())?;
                }
                for p in partitions {
                    p.finish().map_err(|e| e.to_string())?;
                }
                Ok(())
            }
            System::OpenCv => {
                let mut cap = VideoCapture::open(&input);
                let mut writer = VideoWriter::open(fps_v, 20);
                let mut others = other.as_ref().map(VideoCapture::open);
                let (lo, hi) = t_range(fps_v);
                let mut i = 0usize;
                while let Some(m) = cap.read() {
                    let mut m = m.map_err(|e| e.to_string())?;
                    let keep = op != MicroOp::SelectT || (i >= lo && i < hi);
                    i += 1;
                    if !keep {
                        continue;
                    }
                    if let Some(o) = others.as_mut() {
                        if let Some(Ok(om)) = o.read() {
                            overlay(&mut m.frame, &om.frame, op);
                        }
                    }
                    let outf = fop(&m.frame);
                    writer.write(&Mat::from_frame(&outf)).map_err(|e| e.to_string())?;
                }
                writer.release().map_err(|e| e.to_string())?;
                Ok(())
            }
            System::Scanner => {
                let table = ScannerPipeline::ingest(&input).map_err(|e| e.to_string())?;
                let table = if op == MicroOp::SelectT {
                    let (lo, hi) = t_range(fps_v);
                    table.slice(lo, hi)
                } else {
                    table
                };
                let table = if let Some(o) = &other {
                    let olist =
                        ScannerPipeline::ingest(o).map_err(|e| e.to_string())?;
                    let merged: Vec<Frame> = table
                        .frames()
                        .iter()
                        .enumerate()
                        .map(|(i, f)| {
                            let mut f = f.clone();
                            if i < olist.len() {
                                overlay(&mut f, &olist.frames()[i], op);
                            }
                            fop(&f)
                        })
                        .collect();
                    // Re-wrap by writing and re-ingesting (Scanner
                    // tables always originate from videos).
                    let mut wtr = VideoWriter::open(fps_v, 20);
                    for f in &merged {
                        wtr.write(&Mat::from_frame(f)).map_err(|e| e.to_string())?;
                    }
                    let s = wtr.release().map_err(|e| e.to_string())?;
                    ScannerPipeline::ingest(&s).map_err(|e| e.to_string())?
                } else {
                    table.map(&fop)
                };
                table.write(20).map_err(|e| e.to_string())?;
                Ok(())
            }
            System::SciDb => {
                let store = setup::bench_scidb(db, &setup::bench_spec());
                let name = Dataset::Timelapse.name();
                match op {
                    MicroOp::SelectT => {
                        let (lo, hi) = t_range(fps_v);
                        store.export_video(name, lo, hi, 20).map_err(|e| e.to_string())?;
                    }
                    _ => {
                        let tmp = format!("micro_{op:?}");
                        let other_frames = other
                            .as_ref()
                            .map(|o| {
                                lightdb::codec::Decoder::new()
                                    .decode(o)
                                    .map_err(|e| e.to_string())
                            })
                            .transpose()?;
                        let idx = std::sync::atomic::AtomicUsize::new(0);
                        store
                            .apply(name, &tmp, |f| {
                                let i = idx.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let mut f = f.clone();
                                if let Some(of) = &other_frames {
                                    if i < of.len() {
                                        overlay(&mut f, &of[i], op);
                                    }
                                }
                                fop(&f)
                            })
                            .map_err(|e| e.to_string())?;
                        let meta = store.meta(&tmp).map_err(|e| e.to_string())?;
                        store
                            .export_video(&tmp, 0, meta.frames, 20)
                            .map_err(|e| e.to_string())?;
                        let _ = store.remove(&tmp);
                    }
                }
                Ok(())
            }
        }
    });
    r?;
    Ok((secs, frames_total))
}

/// Prints the Figure 13 table.
pub fn print(db: &LightDb) {
    println!("\nFigure 13: 360TLF operator performance (Timelapse), frames per second");
    crate::row(
        "operator",
        &System::ALL.iter().map(|s| s.name().to_string()).collect::<Vec<_>>(),
    );
    for op in MicroOp::ALL {
        let mut cells = Vec::new();
        for system in System::ALL {
            let r = if system == System::LightDb {
                run_lightdb(db, op)
            } else {
                run_baseline(db, system, op)
            };
            cells.push(match r {
                Ok((secs, frames)) => crate::fmt_fps(crate::fps(frames, secs)),
                Err(e) => format!("err:{}", &e[..e.len().min(8)]),
            });
        }
        crate::row(op.name(), &cells);
    }
}
