//! Coordinator/worker scale-out latency across fleet sizes with a
//! byte-identity audit and mid-fleet failover timing (see DESIGN.md
//! "Distributed execution & failure model"). Emits
//! `BENCH_cluster.json`.
fn main() {
    lightdb_bench::cluster_scaleout::print();
}
