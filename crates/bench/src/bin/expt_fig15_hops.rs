//! Regenerates Figure 15: homomorphic & optimized operators.
fn main() {
    let spec = lightdb_bench::setup::bench_spec();
    let db = lightdb_bench::setup::bench_db(&spec);
    lightdb_bench::fig15::print(&db, &spec);
}
