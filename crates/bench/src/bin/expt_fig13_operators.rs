//! Regenerates Figure 13: 360TLF operator micro-benchmarks.
fn main() {
    let spec = lightdb_bench::setup::bench_spec();
    let db = lightdb_bench::setup::bench_db(&spec);
    lightdb_bench::fig13::print(&db);
}
