//! Regenerates Figure 11(a): predictive-tiling throughput and the
//! LightDB operator breakdown across tile grids.
fn main() {
    let spec = lightdb_bench::setup::bench_spec();
    let db = lightdb_bench::setup::bench_db(&spec);
    lightdb_bench::fig11::print_tiling_table(&db, &spec, 4, 4);
    lightdb_bench::fig11::print_tiling_breakdown(&db, &spec);
}
