//! Regenerates Table 2 (lines of code / programmability).
fn main() {
    lightdb_bench::tables::print_table2();
}
