//! Hot-kernel microbenchmarks for the codec overhaul (word-level bit
//! I/O, fixed-point DCT, SWAR SAD, allocation-free loops); see
//! EXPERIMENTS.md "Codec kernel throughput". `--smoke` runs a
//! sub-second correctness-only pass for CI.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    lightdb_bench::codec_kernels::print(smoke);
}
