//! Runs every experiment in sequence — the full evaluation.
fn main() {
    let spec = lightdb_bench::setup::bench_spec();
    println!(
        "LightDB evaluation @ {}x{}, {} s, {} fps (set LIGHTDB_BENCH_SECONDS / LIGHTDB_FULL_SCALE to rescale)",
        spec.width, spec.height, spec.seconds, spec.fps
    );
    let mut db = lightdb_bench::setup::bench_db(&spec);
    lightdb_bench::tables::print_table2();
    lightdb_bench::tables::print_table3(&db, &spec, 4, 4);
    lightdb_bench::fig11::print_tiling_table(&db, &spec, 4, 4);
    lightdb_bench::fig11::print_tiling_breakdown(&db, &spec);
    lightdb_bench::fig11::print_ar_table(&db, &spec);
    lightdb_bench::fig12::print(&mut db, &spec);
    lightdb_bench::fig13::print(&db);
    lightdb_bench::fig14::print(&db);
    lightdb_bench::fig15::print(&db, &spec);
    lightdb_bench::fig16::print(&db, &spec);
}
