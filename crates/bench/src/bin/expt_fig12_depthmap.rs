//! Regenerates Figure 12: depth-map generation across physical
//! variants (CPU / FPGA / hybrid).
fn main() {
    let spec = lightdb_bench::setup::bench_spec();
    let mut db = lightdb_bench::setup::bench_db(&spec);
    lightdb_bench::fig12::print(&mut db, &spec);
}
