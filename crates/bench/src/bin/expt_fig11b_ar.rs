//! Regenerates Figure 11(b): augmented-reality throughput.
fn main() {
    let spec = lightdb_bench::setup::bench_spec();
    let db = lightdb_bench::setup::bench_db(&spec);
    lightdb_bench::fig11::print_ar_table(&db, &spec);
}
