//! Headset-fleet tile-serving latency: cross-user tile cache on vs.
//! off across fleet sizes (see DESIGN.md "Predictive tile serving &
//! fleet simulation"). Emits `BENCH_fleet.json`.
fn main() {
    lightdb_bench::fleet_serving::print();
}
