//! Catalog publish throughput: WAL group commit vs. per-publish
//! fsync/rename (see DESIGN.md "Write-ahead log & crash points").
//! Emits `BENCH_wal.json`.
fn main() {
    lightdb_bench::wal_commit::print();
}
