//! Regenerates Figure 14: SlabTLF (light-field) operator performance.
fn main() {
    let spec = lightdb_bench::setup::bench_spec();
    let db = lightdb_bench::setup::bench_db(&spec);
    lightdb_bench::fig14::print(&db);
}
