//! Serial vs. parallel chunk-pipeline scaling (see the tentpole
//! "parallel execution layer" in DESIGN.md).
fn main() {
    lightdb_bench::parallel_scaling::print();
}
