//! Ablation study: each optimizer family (homomorphic operators,
//! index pushdown, GPU placement, logical rewrites) toggled off
//! individually, measured on the queries it accelerates.

use lightdb::prelude::*;
use lightdb_apps::workloads::lightdb_q;
use lightdb_bench::{fmt_fps, fps, setup, timed};

fn reopen(db: &LightDb, options: PlannerOptions) -> LightDb {
    let mut d = LightDb::open(db.catalog().root()).expect("reopen");
    d.set_options(options);
    d
}

fn main() {
    let spec = setup::bench_spec();
    let db = setup::bench_db(&spec);
    let frames = spec.frame_count();

    let configs: Vec<(&str, PlannerOptions)> = vec![
        ("full optimizer", PlannerOptions::default()),
        ("no homomorphic ops", PlannerOptions { use_hops: false, ..Default::default() }),
        ("no index pushdown", PlannerOptions { use_indexes: false, ..Default::default() }),
        ("no GPU placement", PlannerOptions { use_gpu: false, ..Default::default() }),
        ("no logical rewrites", PlannerOptions { logical_rewrites: false, ..Default::default() }),
        ("naive (all off)", PlannerOptions::naive()),
    ];

    println!("Ablations @ {}x{}, {} s (FPS; higher is better)", spec.width, spec.height, spec.seconds);
    lightdb_bench::row(
        "configuration",
        &["tiling 4×4".into(), "select t(1s)".into(), "map blur".into(), "self-union".into()],
    );
    for (label, options) in configs {
        let d = reopen(&db, options);
        // Predictive tiling (exercises TILEUNION + GPU encode).
        let _ = d.execute(&drop_tlf("abl_tiled"));
        let (t_tiling, r) = timed(|| lightdb_q::tiling(&d, "venice", "abl_tiled", 4, 4));
        r.expect("tiling");
        // GOP-aligned one-second select (exercises GOPSELECT + GOP index).
        let (t_select, r) = timed(|| {
            d.execute(&(scan("venice") >> Select::along(Dimension::T, 1.0, 2.0)))
        });
        r.expect("select");
        // A map (exercises GPU placement).
        let (t_map, r) = timed(|| d.execute(&(scan("venice") >> Map::builtin(BuiltinMap::Blur))));
        r.expect("map");
        // Self-union (exercises the degeneracy rewrite).
        let (t_union, r) = timed(|| {
            d.execute(&union(vec![scan("venice"), scan("venice")], MergeFunction::Last))
        });
        r.expect("union");
        lightdb_bench::row(
            label,
            &[
                fmt_fps(fps(frames, t_tiling)),
                fmt_fps(fps(frames, t_select)),
                fmt_fps(fps(frames, t_map)),
                fmt_fps(fps(frames, t_union)),
            ],
        );
    }
}
