//! Regenerates Figure 16: GOP / tile / spatial index performance.
fn main() {
    let spec = lightdb_bench::setup::bench_spec();
    let db = lightdb_bench::setup::bench_db(&spec);
    lightdb_bench::fig16::print(&db, &spec);
}
