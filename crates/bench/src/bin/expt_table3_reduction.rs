//! Regenerates Table 3 (% size reduction from predictive tiling).
fn main() {
    let spec = lightdb_bench::setup::bench_spec();
    let db = lightdb_bench::setup::bench_db(&spec);
    lightdb_bench::tables::print_table3(&db, &spec, 4, 4);
}
