//! Periodic angular domains.
//!
//! The TLF data model gives the azimuthal angle `θ` the right-open
//! periodic domain `[0, 2π)` and the polar angle `φ` the right-open
//! domain `[0, π)`. Ranging `φ` over `[0, 2π)` would be ambiguous — the
//! paper's example: `(π/2, π)` and `(3π/2, 0)` would identify the same
//! point on the sphere — so `φ` is *not* periodic; instead, crossing a
//! pole reflects `φ` and flips `θ` by half a turn (see
//! [`normalize_direction`]).

use std::f64::consts::PI;

/// The period of the azimuthal dimension: `2π`.
pub const THETA_PERIOD: f64 = 2.0 * PI;

/// The exclusive upper bound of the polar dimension: `π`.
pub const PHI_MAX: f64 = PI;

/// An azimuthal angle, always normalised into `[0, 2π)`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Theta(f64);

impl Theta {
    /// Creates a `Theta`, wrapping the argument into `[0, 2π)`.
    #[inline]
    pub fn new(radians: f64) -> Self {
        Theta(wrap_theta(radians))
    }

    /// The normalised value in `[0, 2π)`.
    #[inline]
    pub fn radians(self) -> f64 {
        self.0
    }

    /// Rotates by `delta` radians, re-normalising.
    #[inline]
    pub fn rotate(self, delta: f64) -> Self {
        Theta::new(self.0 + delta)
    }

    /// The shortest angular distance to `other`, in `[0, π]`.
    pub fn distance(self, other: Theta) -> f64 {
        let d = (self.0 - other.0).abs();
        d.min(THETA_PERIOD - d)
    }
}

/// A polar angle, clamped into `[0, π)`.
///
/// Construction via [`Phi::new`] panics (in debug builds) when given a
/// value outside `[0, π)` after pole reflection is expected to have
/// been applied by the caller; use [`normalize_direction`] to normalise
/// a raw `(θ, φ)` pair that may have crossed a pole.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Phi(f64);

impl Phi {
    /// Creates a `Phi` from a value already in `[0, π)`.
    ///
    /// Values equal to `π` (within tolerance) are snapped just below
    /// the bound so that the right-open invariant holds.
    #[inline]
    pub fn new(radians: f64) -> Self {
        debug_assert!(
            (-crate::EPSILON..=PHI_MAX + crate::EPSILON).contains(&radians),
            "phi {radians} outside [0, π)"
        );
        let clamped = radians.clamp(0.0, PHI_MAX - f64::EPSILON * 4.0);
        Phi(clamped)
    }

    /// The value in `[0, π)`.
    #[inline]
    pub fn radians(self) -> f64 {
        self.0
    }
}

/// Wraps an arbitrary azimuth into `[0, 2π)`.
#[inline]
pub fn wrap_theta(radians: f64) -> f64 {
    let r = radians.rem_euclid(THETA_PERIOD);
    // rem_euclid can return the period itself when the input is a tiny
    // negative number; fold that case back to zero.
    if r >= THETA_PERIOD {
        0.0
    } else {
        r
    }
}

/// Normalises a raw direction `(θ, φ)` where `φ` may lie outside
/// `[0, π)` (for example after a rotation crossed a pole).
///
/// Crossing a pole reflects `φ` back into range and rotates `θ` by
/// `π`, which is the geometrically correct continuation of the ray.
pub fn normalize_direction(theta: f64, phi: f64) -> (Theta, Phi) {
    // Fold phi into [0, 2π) first, then reflect the upper half.
    let mut p = phi.rem_euclid(THETA_PERIOD);
    let mut t = theta;
    if p >= PHI_MAX {
        p = THETA_PERIOD - p;
        t += PHI_MAX; // rotate azimuth by π when reflecting over a pole
    }
    (Theta::new(t), Phi::new(p.min(PHI_MAX - f64::EPSILON * 4.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn theta_wraps_positive() {
        assert!(crate::approx_eq(Theta::new(THETA_PERIOD + 1.0).radians(), 1.0));
    }

    #[test]
    fn theta_wraps_negative() {
        assert!(crate::approx_eq(Theta::new(-1.0).radians(), THETA_PERIOD - 1.0));
    }

    #[test]
    fn theta_zero_is_zero() {
        assert_eq!(Theta::new(0.0).radians(), 0.0);
        assert_eq!(Theta::new(THETA_PERIOD).radians(), 0.0);
    }

    #[test]
    fn theta_distance_is_shortest_path() {
        let a = Theta::new(0.1);
        let b = Theta::new(THETA_PERIOD - 0.1);
        assert!(crate::approx_eq(a.distance(b), 0.2));
    }

    #[test]
    fn phi_is_right_open() {
        let p = Phi::new(PHI_MAX);
        assert!(p.radians() < PHI_MAX);
    }

    #[test]
    fn pole_crossing_reflects() {
        // phi slightly beyond the south pole reflects back and flips theta.
        let (t, p) = normalize_direction(0.0, PHI_MAX + 0.25);
        assert!(crate::approx_eq(p.radians(), PHI_MAX - 0.25));
        assert!(crate::approx_eq(t.radians(), PHI_MAX));
    }

    #[test]
    fn identical_sphere_points_normalise_identically() {
        // (π/2, π) and (3π/2, 0) identify the same point on the sphere;
        // after normalisation, (θ=π/2, φ=π) reflects to (θ=3π/2, φ→π⁻).
        let (t1, p1) = normalize_direction(PI / 2.0, PI);
        assert!(crate::approx_eq(t1.radians(), 3.0 * PI / 2.0));
        assert!(p1.radians() >= PHI_MAX - 1e-12);
    }

    proptest! {
        #[test]
        fn theta_always_in_domain(raw in -1e6f64..1e6) {
            let t = Theta::new(raw);
            prop_assert!(t.radians() >= 0.0);
            prop_assert!(t.radians() < THETA_PERIOD);
        }

        #[test]
        fn rotation_composes(raw in 0.0f64..THETA_PERIOD, d1 in -10.0f64..10.0, d2 in -10.0f64..10.0) {
            let once = Theta::new(raw).rotate(d1).rotate(d2);
            let combined = Theta::new(raw).rotate(d1 + d2);
            prop_assert!(once.distance(combined) < 1e-6);
        }

        #[test]
        fn normalized_direction_in_domain(t in -20.0f64..20.0, p in -20.0f64..20.0) {
            let (theta, phi) = normalize_direction(t, p);
            prop_assert!((0.0..THETA_PERIOD).contains(&theta.radians()));
            prop_assert!((0.0..PHI_MAX).contains(&phi.radians()));
        }
    }
}
