//! 1-D intervals and azimuthal ranges.

use crate::angle::{wrap_theta, THETA_PERIOD};
use crate::EPSILON;
use std::fmt;

/// A closed interval `[lo, hi]` over one TLF dimension.
///
/// Endpoints may be infinite (`Interval::unbounded()` covers the whole
/// real line); TLF volumes are "possibly infinite" in the paper's
/// definition. A degenerate interval with `lo == hi` represents a
/// single point, which is how point selections (e.g. a monoscopic
/// spatial selection) are expressed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`. Panics if `lo > hi` or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval bounds must not be NaN");
        assert!(lo <= hi, "interval lower bound {lo} exceeds upper bound {hi}");
        Interval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    #[inline]
    pub fn point(v: f64) -> Self {
        Interval::new(v, v)
    }

    /// The whole real line `(-∞, +∞)`.
    #[inline]
    pub fn unbounded() -> Self {
        Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY }
    }

    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Length `hi - lo` (may be `+∞`, and is `0` for points).
    #[inline]
    pub fn length(&self) -> f64 {
        self.hi - self.lo
    }

    /// True when the interval is a single point.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// True when both bounds are finite.
    #[inline]
    pub fn is_bounded(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// True when `v ∈ [lo, hi]` (within [`EPSILON`] tolerance).
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo - EPSILON && v <= self.hi + EPSILON
    }

    /// True when `other ⊆ self` (within tolerance).
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo - EPSILON <= other.lo && other.hi <= self.hi + EPSILON
    }

    /// The intersection `self ∩ other`, or `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval::new(lo, hi))
        } else {
            None
        }
    }

    /// The smallest interval containing both inputs (bounding hull).
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Shifts both endpoints by `delta`.
    pub fn translate(&self, delta: f64) -> Interval {
        Interval::new(self.lo + delta, self.hi + delta)
    }

    /// Splits the interval into equal-sized, non-overlapping blocks of
    /// width `delta`, as required by the `PARTITION` operator.
    ///
    /// The final block is truncated at `hi` when `length` is not an
    /// exact multiple of `delta`. Panics when called on an unbounded
    /// interval or with a non-positive `delta`.
    pub fn partition(&self, delta: f64) -> Vec<Interval> {
        assert!(delta > 0.0, "partition width must be positive, got {delta}");
        assert!(self.is_bounded(), "cannot partition an unbounded interval");
        if self.is_point() {
            return vec![*self];
        }
        let mut out = Vec::with_capacity(((self.length() / delta).ceil() as usize).max(1));
        let mut lo = self.lo;
        let mut i: u64 = 1;
        while lo < self.hi - EPSILON {
            // Compute the boundary multiplicatively to avoid accumulating
            // floating-point error over many blocks.
            let hi = (self.lo + delta * i as f64).min(self.hi);
            out.push(Interval::new(lo, hi));
            lo = hi;
            i += 1;
        }
        out
    }

    /// Sample positions `lo, lo+step, lo+2·step, …` up to `hi`
    /// (inclusive within tolerance), as used by `DISCRETIZE`.
    pub fn samples(&self, step: f64) -> Vec<f64> {
        assert!(step > 0.0, "sample step must be positive");
        assert!(self.is_bounded(), "cannot sample an unbounded interval");
        let n = ((self.length() / step) + EPSILON).floor() as usize;
        (0..=n).map(|i| self.lo + step * i as f64).collect()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_point() {
            write!(f, "{{{}}}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// An azimuthal range over `θ` that may wrap around the `2π` boundary.
///
/// A [`Volume`](crate::Volume) stores its θ extent as an ordinary
/// [`Interval`] (selection predicates are written `[θ, θ']` with
/// `θ ≤ θ'`), but *queries* against angular content — e.g. "which tiles
/// does `θ ∈ [3π/2, π/2]` touch?" — need wraparound semantics, which
/// this type provides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AngularRange {
    /// Normalised start angle in `[0, 2π)`.
    start: f64,
    /// Extent in radians, in `[0, 2π]`. An extent of exactly `2π`
    /// covers the full circle.
    extent: f64,
}

impl AngularRange {
    /// Range beginning at `start` (wrapped) and extending `extent`
    /// radians counter-clockwise. Extents ≥ 2π cover the full circle.
    pub fn new(start: f64, extent: f64) -> Self {
        assert!(extent >= 0.0, "angular extent must be non-negative");
        AngularRange { start: wrap_theta(start), extent: extent.min(THETA_PERIOD) }
    }

    /// Builds a range from an endpoint pair `[lo, hi]`; if `hi < lo`
    /// the range is interpreted as wrapping through `2π`.
    pub fn from_endpoints(lo: f64, hi: f64) -> Self {
        let start = wrap_theta(lo);
        let end = wrap_theta(hi);
        let extent = if (hi - lo).abs() >= THETA_PERIOD - EPSILON {
            THETA_PERIOD
        } else if end >= start {
            end - start
        } else {
            THETA_PERIOD - start + end
        };
        AngularRange { start, extent }
    }

    /// The full circle `[0, 2π)`.
    pub fn full() -> Self {
        AngularRange { start: 0.0, extent: THETA_PERIOD }
    }

    #[inline]
    pub fn start(&self) -> f64 {
        self.start
    }

    #[inline]
    pub fn extent(&self) -> f64 {
        self.extent
    }

    /// True when the range covers the entire circle.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.extent >= THETA_PERIOD - EPSILON
    }

    /// True when the wrapped angle `theta` lies inside the range.
    pub fn contains(&self, theta: f64) -> bool {
        if self.is_full() {
            return true;
        }
        let t = wrap_theta(theta);
        let offset = wrap_theta(t - self.start);
        offset <= self.extent + EPSILON
    }

    /// True when the two ranges overlap anywhere on the circle.
    pub fn overlaps(&self, other: &AngularRange) -> bool {
        if self.is_full() || other.is_full() {
            return true;
        }
        self.contains(other.start)
            || other.contains(self.start)
            || self.contains(other.start + other.extent)
            || other.contains(self.start + self.extent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn intersect_overlapping() {
        let a = Interval::new(0.0, 5.0);
        let b = Interval::new(3.0, 8.0);
        assert_eq!(a.intersect(&b), Some(Interval::new(3.0, 5.0)));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        assert_eq!(a.intersect(&b), None);
    }

    #[test]
    fn intersect_touching_is_point() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.0, 2.0);
        assert_eq!(a.intersect(&b), Some(Interval::point(1.0)));
    }

    #[test]
    fn unbounded_contains_everything() {
        let u = Interval::unbounded();
        assert!(u.contains(1e300));
        assert!(u.contains(-1e300));
        assert!(u.contains_interval(&Interval::new(-5.0, 5.0)));
    }

    #[test]
    fn partition_exact_multiple() {
        let parts = Interval::new(0.0, 10.0).partition(1.0);
        assert_eq!(parts.len(), 10);
        assert_eq!(parts[0], Interval::new(0.0, 1.0));
        assert_eq!(parts[9], Interval::new(9.0, 10.0));
    }

    #[test]
    fn partition_truncates_final_block() {
        let parts = Interval::new(0.0, 2.5).partition(1.0);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[2], Interval::new(2.0, 2.5));
    }

    #[test]
    fn partition_point_is_identity() {
        let p = Interval::point(4.0);
        assert_eq!(p.partition(1.0), vec![p]);
    }

    #[test]
    fn samples_include_both_ends_on_exact_multiple() {
        let s = Interval::new(0.0, 1.0).samples(0.25);
        assert_eq!(s, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn reversed_interval_panics() {
        Interval::new(2.0, 1.0);
    }

    #[test]
    fn angular_range_wraps() {
        // [3π/2, π/2] passes through 0.
        let r = AngularRange::from_endpoints(3.0 * PI / 2.0, PI / 2.0);
        assert!(r.contains(0.0));
        assert!(r.contains(7.0 * PI / 4.0));
        assert!(r.contains(PI / 4.0));
        assert!(!r.contains(PI));
    }

    #[test]
    fn angular_full_circle() {
        let r = AngularRange::from_endpoints(0.0, THETA_PERIOD);
        assert!(r.is_full());
        assert!(r.contains(1.234));
    }

    #[test]
    fn angular_overlap_detection() {
        let a = AngularRange::from_endpoints(0.0, PI / 2.0);
        let b = AngularRange::from_endpoints(PI / 4.0, PI);
        let c = AngularRange::from_endpoints(PI + 0.2, 3.0 * PI / 2.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    proptest! {
        #[test]
        fn intersection_is_commutative(
            a_lo in -100.0f64..100.0, a_len in 0.0f64..50.0,
            b_lo in -100.0f64..100.0, b_len in 0.0f64..50.0,
        ) {
            let a = Interval::new(a_lo, a_lo + a_len);
            let b = Interval::new(b_lo, b_lo + b_len);
            prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        }

        #[test]
        fn intersection_contained_in_both(
            a_lo in -100.0f64..100.0, a_len in 0.0f64..50.0,
            b_lo in -100.0f64..100.0, b_len in 0.0f64..50.0,
        ) {
            let a = Interval::new(a_lo, a_lo + a_len);
            let b = Interval::new(b_lo, b_lo + b_len);
            if let Some(i) = a.intersect(&b) {
                prop_assert!(a.contains_interval(&i));
                prop_assert!(b.contains_interval(&i));
            }
        }

        #[test]
        fn partitions_tile_the_interval(lo in -50.0f64..50.0, len in 0.1f64..40.0, delta in 0.1f64..10.0) {
            let iv = Interval::new(lo, lo + len);
            let parts = iv.partition(delta);
            // Blocks are contiguous and cover exactly the interval.
            prop_assert!(crate::approx_eq(parts[0].lo(), iv.lo()));
            prop_assert!(crate::approx_eq(parts.last().unwrap().hi(), iv.hi()));
            for w in parts.windows(2) {
                prop_assert!(crate::approx_eq(w[0].hi(), w[1].lo()));
            }
            // All but the last have width delta.
            for p in &parts[..parts.len().saturating_sub(1)] {
                prop_assert!((p.length() - delta).abs() < 1e-6);
            }
        }

        #[test]
        fn hull_contains_both(
            a_lo in -100.0f64..100.0, a_len in 0.0f64..50.0,
            b_lo in -100.0f64..100.0, b_len in 0.0f64..50.0,
        ) {
            let a = Interval::new(a_lo, a_lo + a_len);
            let b = Interval::new(b_lo, b_lo + b_len);
            let h = a.hull(&b);
            prop_assert!(h.contains_interval(&a));
            prop_assert!(h.contains_interval(&b));
        }

        #[test]
        fn angular_contains_respects_wrap(start in 0.0f64..THETA_PERIOD, extent in 0.0f64..THETA_PERIOD) {
            let r = AngularRange::new(start, extent);
            // The midpoint of the range is always contained.
            prop_assert!(r.contains(start + extent / 2.0));
            // The start and end are contained.
            prop_assert!(r.contains(start));
            prop_assert!(r.contains(start + extent));
        }
    }
}
