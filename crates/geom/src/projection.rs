//! Sphere ↔ plane projections.
//!
//! Every encoded 360° video is associated with a projection function
//! that defines how the sphere is flattened onto a 2-D frame before
//! 2-D video compression is applied. LightDB supports the two most
//! common projections: equirectangular (ER) and the cube map.

use crate::angle::{normalize_direction, PHI_MAX, THETA_PERIOD};

/// A mapping between viewing directions `(θ, φ)` and normalised frame
/// coordinates `(u, v) ∈ [0, 1)²`.
///
/// Implementations must be mutually inverse up to angular
/// normalisation: `unproject(project(θ, φ)) ≈ (θ, φ)`.
pub trait Projection {
    /// Maps a direction to normalised frame coordinates.
    fn project(&self, theta: f64, phi: f64) -> (f64, f64);

    /// Maps normalised frame coordinates back to a direction.
    fn unproject(&self, u: f64, v: f64) -> (f64, f64);

    /// Maps a direction to integer pixel coordinates in a `w × h`
    /// frame, clamping at the borders.
    fn to_pixel(&self, theta: f64, phi: f64, w: usize, h: usize) -> (usize, usize) {
        let (u, v) = self.project(theta, phi);
        let px = ((u * w as f64) as usize).min(w.saturating_sub(1));
        let py = ((v * h as f64) as usize).min(h.saturating_sub(1));
        (px, py)
    }

    /// Direction at the centre of pixel `(px, py)` in a `w × h` frame.
    #[allow(clippy::wrong_self_convention)]
    fn from_pixel(&self, px: usize, py: usize, w: usize, h: usize) -> (f64, f64) {
        let u = (px as f64 + 0.5) / w as f64;
        let v = (py as f64 + 0.5) / h as f64;
        self.unproject(u, v)
    }

    /// Stable identifier stored in container metadata (`sv3d` atom).
    fn kind(&self) -> ProjectionKind;
}

/// Projection identifiers serialisable into container metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProjectionKind {
    Equirectangular,
    CubeMap,
}

/// The equirectangular projection: `u = θ / 2π`, `v = φ / π`.
///
/// Longitude maps linearly to the horizontal axis and colatitude to
/// the vertical axis, so the poles are maximally stretched — the
/// classic "world map" layout used by most 360° pipelines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EquirectangularProjection;

impl Projection for EquirectangularProjection {
    fn project(&self, theta: f64, phi: f64) -> (f64, f64) {
        let (t, p) = normalize_direction(theta, phi);
        (t.radians() / THETA_PERIOD, p.radians() / PHI_MAX)
    }

    fn unproject(&self, u: f64, v: f64) -> (f64, f64) {
        (u.rem_euclid(1.0) * THETA_PERIOD, v.clamp(0.0, 1.0 - f64::EPSILON) * PHI_MAX)
    }

    fn kind(&self) -> ProjectionKind {
        ProjectionKind::Equirectangular
    }
}

/// The six faces of a cube map in the layout order LightDB uses: a
/// 3×2 grid of `front, right, back | left, up, down`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CubeFace {
    Front,
    Right,
    Back,
    Left,
    Up,
    Down,
}

impl CubeFace {
    /// Grid cell `(col, row)` of the face in the 3×2 layout.
    pub fn cell(self) -> (usize, usize) {
        match self {
            CubeFace::Front => (0, 0),
            CubeFace::Right => (1, 0),
            CubeFace::Back => (2, 0),
            CubeFace::Left => (0, 1),
            CubeFace::Up => (1, 1),
            CubeFace::Down => (2, 1),
        }
    }
}

/// A cube-map projection with the 3×2 face layout.
///
/// Directions are converted to a unit vector, the dominant axis picks
/// the face, and the remaining two components index within the face.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CubeMapProjection;

impl CubeMapProjection {
    /// Direction → (face, intra-face coordinates in [0,1)²).
    pub fn face_coords(&self, theta: f64, phi: f64) -> (CubeFace, f64, f64) {
        let (t, p) = normalize_direction(theta, phi);
        let (theta, phi) = (t.radians(), p.radians());
        // Unit vector: x forward (θ=0), y left, z up; φ is colatitude.
        let sx = phi.sin() * theta.cos();
        let sy = phi.sin() * theta.sin();
        let sz = phi.cos();
        let ax = sx.abs();
        let ay = sy.abs();
        let az = sz.abs();
        let (face, a, b, m) = if ax >= ay && ax >= az {
            if sx > 0.0 {
                (CubeFace::Front, -sy, -sz, ax)
            } else {
                (CubeFace::Back, sy, -sz, ax)
            }
        } else if ay >= ax && ay >= az {
            if sy > 0.0 {
                (CubeFace::Left, sx, -sz, ay)
            } else {
                (CubeFace::Right, -sx, -sz, ay)
            }
        } else if sz > 0.0 {
            (CubeFace::Up, -sy, sx, az)
        } else {
            (CubeFace::Down, -sy, -sx, az)
        };
        let m = if m == 0.0 { 1.0 } else { m };
        // Map [-1, 1] face coordinates to [0, 1).
        let u = ((a / m) + 1.0) / 2.0;
        let v = ((b / m) + 1.0) / 2.0;
        (face, u.clamp(0.0, 1.0 - f64::EPSILON), v.clamp(0.0, 1.0 - f64::EPSILON))
    }

    fn face_to_vector(face: CubeFace, u: f64, v: f64) -> (f64, f64, f64) {
        let a = u * 2.0 - 1.0;
        let b = v * 2.0 - 1.0;
        match face {
            CubeFace::Front => (1.0, -a, -b),
            CubeFace::Back => (-1.0, a, -b),
            CubeFace::Left => (a, 1.0, -b),
            CubeFace::Right => (-a, -1.0, -b),
            CubeFace::Up => (b, -a, 1.0),
            CubeFace::Down => (-b, -a, -1.0),
        }
    }
}

impl Projection for CubeMapProjection {
    fn project(&self, theta: f64, phi: f64) -> (f64, f64) {
        let (face, u, v) = self.face_coords(theta, phi);
        let (col, row) = face.cell();
        (((col as f64) + u) / 3.0, ((row as f64) + v) / 2.0)
    }

    fn unproject(&self, u: f64, v: f64) -> (f64, f64) {
        let u = u.rem_euclid(1.0);
        let v = v.clamp(0.0, 1.0 - f64::EPSILON);
        let col = ((u * 3.0) as usize).min(2);
        let row = ((v * 2.0) as usize).min(1);
        let fu = u * 3.0 - col as f64;
        let fv = v * 2.0 - row as f64;
        let face = match (col, row) {
            (0, 0) => CubeFace::Front,
            (1, 0) => CubeFace::Right,
            (2, 0) => CubeFace::Back,
            (0, 1) => CubeFace::Left,
            (1, 1) => CubeFace::Up,
            _ => CubeFace::Down,
        };
        let (x, y, z) = Self::face_to_vector(face, fu, fv);
        let norm = (x * x + y * y + z * z).sqrt();
        let (x, y, z) = (x / norm, y / norm, z / norm);
        let phi = z.clamp(-1.0, 1.0).acos();
        let theta = y.atan2(x);
        let (t, p) = normalize_direction(theta, phi);
        (t.radians(), p.radians())
    }

    fn kind(&self) -> ProjectionKind {
        ProjectionKind::CubeMap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn equirect_maps_corners() {
        let p = EquirectangularProjection;
        let (u, v) = p.project(0.0, 0.0);
        assert!(crate::approx_eq(u, 0.0) && crate::approx_eq(v, 0.0));
        let (u, v) = p.project(PI, PI / 2.0);
        assert!(crate::approx_eq(u, 0.5) && crate::approx_eq(v, 0.5));
    }

    #[test]
    fn equirect_roundtrip() {
        let p = EquirectangularProjection;
        for &(t, ph) in &[(0.1, 0.2), (PI, PI / 2.0), (5.0, 3.0)] {
            let (u, v) = p.project(t, ph);
            let (t2, p2) = p.unproject(u, v);
            let (nt, np) = normalize_direction(t, ph);
            assert!((t2 - nt.radians()).abs() < 1e-9, "theta {t}");
            assert!((p2 - np.radians()).abs() < 1e-9, "phi {ph}");
        }
    }

    #[test]
    fn equirect_pixel_mapping_is_monotonic_in_phi() {
        let p = EquirectangularProjection;
        let (_, y1) = p.to_pixel(0.0, 0.3, 192, 96);
        let (_, y2) = p.to_pixel(0.0, 2.8, 192, 96);
        assert!(y1 < y2);
    }

    #[test]
    fn cubemap_forward_is_front_center() {
        let c = CubeMapProjection;
        let (face, u, v) = c.face_coords(0.0, PI / 2.0);
        assert_eq!(face, CubeFace::Front);
        assert!((u - 0.5).abs() < 1e-9);
        assert!((v - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cubemap_poles_hit_up_down() {
        let c = CubeMapProjection;
        let (up, _, _) = c.face_coords(1.0, 0.01);
        let (down, _, _) = c.face_coords(1.0, PI - 0.01);
        assert_eq!(up, CubeFace::Up);
        assert_eq!(down, CubeFace::Down);
    }

    proptest! {
        #[test]
        fn cubemap_roundtrip(theta in 0.0f64..(THETA_PERIOD - 0.001), phi in 0.05f64..(PI - 0.05)) {
            let c = CubeMapProjection;
            let (u, v) = c.project(theta, phi);
            prop_assert!((0.0..1.0).contains(&u) && (0.0..1.0).contains(&v));
            let (t2, p2) = c.unproject(u, v);
            // Compare unit vectors to avoid pole/seam coordinate ambiguity.
            let to_vec = |t: f64, p: f64| (p.sin() * t.cos(), p.sin() * t.sin(), p.cos());
            let (x1, y1, z1) = to_vec(theta, phi);
            let (x2, y2, z2) = to_vec(t2, p2);
            let dot = x1 * x2 + y1 * y2 + z1 * z2;
            prop_assert!(dot > 1.0 - 1e-6, "directions diverged: dot={dot}");
        }

        #[test]
        fn equirect_project_in_unit_square(theta in -10.0f64..10.0, phi in 0.0f64..PI) {
            let p = EquirectangularProjection;
            let (u, v) = p.project(theta, phi);
            prop_assert!((0.0..1.0).contains(&u));
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }
}
