//! Ray-direction rotations for the `ROTATE` operator.

use crate::angle::{normalize_direction, Phi, Theta};
use crate::interval::Interval;
use crate::volume::Volume;
use crate::{Dimension, EPSILON, PHI_MAX, THETA_PERIOD};

/// A rotation of viewing directions by `(Δθ, Δφ)`.
///
/// The `ROTATE` operator rotates the rays at every point of a TLF;
/// geometrically this shifts the azimuth modulo `2π` and the polar
/// angle with pole reflection.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rotation {
    pub delta_theta: f64,
    pub delta_phi: f64,
}

impl Rotation {
    pub fn new(delta_theta: f64, delta_phi: f64) -> Self {
        Rotation { delta_theta, delta_phi }
    }

    /// The identity rotation.
    pub fn identity() -> Self {
        Rotation::default()
    }

    /// True when this rotation leaves every direction unchanged.
    pub fn is_identity(&self) -> bool {
        self.delta_theta.abs() < EPSILON && self.delta_phi.abs() < EPSILON
    }

    /// Applies the rotation to a single direction.
    pub fn apply(&self, theta: f64, phi: f64) -> (Theta, Phi) {
        normalize_direction(theta + self.delta_theta, phi + self.delta_phi)
    }

    /// The inverse rotation.
    pub fn inverse(&self) -> Rotation {
        Rotation::new(-self.delta_theta, -self.delta_phi)
    }

    /// Composition: apply `self`, then `other`.
    pub fn then(&self, other: &Rotation) -> Rotation {
        Rotation::new(self.delta_theta + other.delta_theta, self.delta_phi + other.delta_phi)
    }

    /// Rotates a volume's angular extent.
    ///
    /// When the rotated θ extent crosses the `2π` seam or the rotated
    /// φ extent crosses a pole, the result is no longer a single
    /// hyperrectangle in the canonical coordinates; LightDB then
    /// widens to the full angular domain (a safe over-approximation
    /// used only for metadata bookkeeping — pixel-level rotation is
    /// exact).
    pub fn rotate_volume(&self, v: &Volume) -> Volume {
        let th = v.theta();
        let ph = v.phi();
        let new_lo_t = th.lo() + self.delta_theta;
        let theta_iv = if th.length() >= THETA_PERIOD - EPSILON {
            Interval::new(0.0, THETA_PERIOD)
        } else {
            let lo = new_lo_t.rem_euclid(THETA_PERIOD);
            let hi = lo + th.length();
            if hi <= THETA_PERIOD + EPSILON {
                Interval::new(lo, hi.min(THETA_PERIOD))
            } else {
                Interval::new(0.0, THETA_PERIOD) // crosses the seam
            }
        };
        let new_lo_p = ph.lo() + self.delta_phi;
        let new_hi_p = ph.hi() + self.delta_phi;
        let phi_iv = if new_lo_p >= -EPSILON && new_hi_p <= PHI_MAX + EPSILON {
            Interval::new(new_lo_p.max(0.0), new_hi_p.min(PHI_MAX))
        } else {
            Interval::new(0.0, PHI_MAX) // crosses a pole
        };
        v.with(Dimension::Theta, theta_iv).with(Dimension::Phi, phi_iv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn identity_rotation() {
        let r = Rotation::identity();
        assert!(r.is_identity());
        let (t, p) = r.apply(1.0, 1.0);
        assert!(crate::approx_eq(t.radians(), 1.0));
        assert!(crate::approx_eq(p.radians(), 1.0));
    }

    #[test]
    fn quarter_turn() {
        let r = Rotation::new(PI / 2.0, 0.0);
        let (t, _) = r.apply(0.0, 1.0);
        assert!(crate::approx_eq(t.radians(), PI / 2.0));
    }

    #[test]
    fn inverse_undoes_azimuth() {
        let r = Rotation::new(1.3, 0.0);
        let (t, p) = r.apply(0.5, 1.0);
        let (t2, p2) = r.inverse().apply(t.radians(), p.radians());
        assert!(crate::approx_eq(t2.radians(), 0.5));
        assert!(crate::approx_eq(p2.radians(), 1.0));
    }

    #[test]
    fn rotate_volume_shifts_theta() {
        let v = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 1.0))
            .with(Dimension::Theta, Interval::new(0.0, PI / 2.0));
        let r = Rotation::new(PI / 2.0, 0.0);
        let rv = r.rotate_volume(&v);
        assert!(crate::approx_eq(rv.theta().lo(), PI / 2.0));
        assert!(crate::approx_eq(rv.theta().hi(), PI));
    }

    #[test]
    fn rotate_volume_seam_cross_widens() {
        let v = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 1.0))
            .with(Dimension::Theta, Interval::new(3.0 * PI / 2.0, THETA_PERIOD));
        let r = Rotation::new(PI, 0.0);
        let rv = r.rotate_volume(&v);
        assert!(crate::approx_eq(rv.theta().lo(), PI / 2.0));
        assert!(crate::approx_eq(rv.theta().hi(), PI));
    }

    #[test]
    fn full_sphere_rotation_stays_full() {
        let v = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 1.0));
        let rv = Rotation::new(1.234, 0.0).rotate_volume(&v);
        assert!(rv.has_full_angular_extent());
    }

    proptest! {
        #[test]
        fn inverse_roundtrip_no_pole_cross(
            theta in 0.0f64..THETA_PERIOD,
            phi in 0.3f64..(PI - 0.3),
            dt in -1.0f64..1.0,
            dp in -0.25f64..0.25,
        ) {
            let r = Rotation::new(dt, dp);
            let (t, p) = r.apply(theta, phi);
            let (t2, p2) = r.inverse().apply(t.radians(), p.radians());
            prop_assert!(Theta::new(theta).distance(t2) < 1e-9);
            prop_assert!((p2.radians() - phi).abs() < 1e-9);
        }

        #[test]
        fn composition_matches_sequential(
            theta in 0.0f64..THETA_PERIOD,
            dt1 in -2.0f64..2.0,
            dt2 in -2.0f64..2.0,
        ) {
            let phi = 1.0;
            let r1 = Rotation::new(dt1, 0.0);
            let r2 = Rotation::new(dt2, 0.0);
            let (ta, _) = r2.apply(r1.apply(theta, phi).0.radians(), phi);
            let (tb, _) = r1.then(&r2).apply(theta, phi);
            prop_assert!(ta.distance(tb) < 1e-9);
        }
    }
}
