//! # lightdb-geom
//!
//! Geometric foundation for the temporal-light-field (TLF) data model.
//!
//! A TLF is a function `L(x, y, z, t, θ, φ) → color` defined over a
//! hyperrectangular volume of the six-dimensional space
//! `R⁴ × Dθ × Dφ`, where the spatiotemporal dimensions `x, y, z, t`
//! range over the reals, the azimuthal angle `θ` ranges over the
//! right-open periodic domain `[0, 2π)`, and the polar angle `φ`
//! ranges over `[0, π)`.
//!
//! This crate provides:
//!
//! * [`Theta`] / [`Phi`] — normalising newtypes for the angular domains;
//! * [`Interval`] — closed 1-D intervals (possibly unbounded) with the
//!   intersection/containment algebra selections need;
//! * [`AngularRange`] — azimuthal ranges that may wrap around `2π`;
//! * [`Point6`] / [`Point3`] — points in TLF space;
//! * [`Volume`] — 6-D hyperrectangles with intersection, partitioning,
//!   translation, and bounding-hull operations;
//! * [`Dimension`] — a reflective enum naming the six dimensions;
//! * [`projection`] — sphere ↔ plane maps (equirectangular, cube map)
//!   used by the physical 360° representations;
//! * [`rotation`] — ray-direction rotations used by the `ROTATE` operator.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod angle;
pub mod dimension;
pub mod interval;
pub mod point;
pub mod projection;
pub mod rotation;
pub mod volume;

pub use angle::{Phi, Theta, PHI_MAX, THETA_PERIOD};
pub use dimension::Dimension;
pub use interval::{AngularRange, Interval};
pub use point::{Point3, Point6};
pub use projection::{CubeFace, CubeMapProjection, EquirectangularProjection, Projection};
pub use rotation::Rotation;
pub use volume::Volume;

/// Tolerance used by approximate floating-point comparisons throughout
/// the geometry layer (interval endpoints, angle normalisation, …).
pub const EPSILON: f64 = 1e-9;

/// Returns true when `a` and `b` are within [`EPSILON`] of each other.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}
