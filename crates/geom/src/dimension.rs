//! Reflective names for the six TLF dimensions.

use std::fmt;

/// One of the six dimensions of TLF space.
///
/// `X`, `Y`, `Z` are spatial, `T` is temporal, and `Theta`/`Phi` are
/// the angular (viewing-direction) dimensions. Operators such as
/// `DISCRETIZE`, `PARTITION`, and `CREATEINDEX` are parameterised by
/// dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dimension {
    X,
    Y,
    Z,
    T,
    Theta,
    Phi,
}

impl Dimension {
    /// All six dimensions in canonical order `(x, y, z, t, θ, φ)`.
    pub const ALL: [Dimension; 6] = [
        Dimension::X,
        Dimension::Y,
        Dimension::Z,
        Dimension::T,
        Dimension::Theta,
        Dimension::Phi,
    ];

    /// The three spatial dimensions.
    pub const SPATIAL: [Dimension; 3] = [Dimension::X, Dimension::Y, Dimension::Z];

    /// The two angular dimensions.
    pub const ANGULAR: [Dimension; 2] = [Dimension::Theta, Dimension::Phi];

    /// Canonical index of this dimension in `(x, y, z, t, θ, φ)` order.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Dimension::X => 0,
            Dimension::Y => 1,
            Dimension::Z => 2,
            Dimension::T => 3,
            Dimension::Theta => 4,
            Dimension::Phi => 5,
        }
    }

    /// Inverse of [`Dimension::index`].
    #[inline]
    pub fn from_index(index: usize) -> Option<Dimension> {
        Dimension::ALL.get(index).copied()
    }

    /// True for `X`, `Y`, and `Z`.
    #[inline]
    pub fn is_spatial(self) -> bool {
        matches!(self, Dimension::X | Dimension::Y | Dimension::Z)
    }

    /// True for `Theta` and `Phi`.
    #[inline]
    pub fn is_angular(self) -> bool {
        matches!(self, Dimension::Theta | Dimension::Phi)
    }

    /// True only for `T`.
    #[inline]
    pub fn is_temporal(self) -> bool {
        matches!(self, Dimension::T)
    }

    /// Short lowercase name used in file names and plans (`x`…`phi`).
    pub fn name(self) -> &'static str {
        match self {
            Dimension::X => "x",
            Dimension::Y => "y",
            Dimension::Z => "z",
            Dimension::T => "t",
            Dimension::Theta => "theta",
            Dimension::Phi => "phi",
        }
    }
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrips() {
        for d in Dimension::ALL {
            assert_eq!(Dimension::from_index(d.index()), Some(d));
        }
        assert_eq!(Dimension::from_index(6), None);
    }

    #[test]
    fn classification_is_exhaustive_and_disjoint() {
        for d in Dimension::ALL {
            let classes =
                [d.is_spatial(), d.is_temporal(), d.is_angular()].iter().filter(|b| **b).count();
            assert_eq!(classes, 1, "{d} must belong to exactly one class");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Dimension::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
