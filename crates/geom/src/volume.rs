//! Hyperrectangular 6-D volumes.

use crate::angle::{PHI_MAX, THETA_PERIOD};
use crate::dimension::Dimension;
use crate::interval::{AngularRange, Interval};
use crate::point::Point6;
use std::fmt;

/// A hyperrectangular volume in TLF space — the product of six closed
/// intervals, one per dimension.
///
/// LightDB requires TLF volumes and partitions to be hyperrectangles.
/// Spatiotemporal extents may be unbounded; angular extents are always
/// within the angular domains (`θ ∈ [0, 2π]`, `φ ∈ [0, π]` as interval
/// endpoints; the right-open domain semantics are applied when testing
/// point membership).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Volume {
    dims: [Interval; 6],
}

impl Volume {
    /// Builds a volume from six intervals in canonical `(x, y, z, t,
    /// θ, φ)` order. Angular intervals are validated against their
    /// domains.
    pub fn new(
        x: Interval,
        y: Interval,
        z: Interval,
        t: Interval,
        theta: Interval,
        phi: Interval,
    ) -> Self {
        assert!(
            theta.lo() >= -crate::EPSILON && theta.hi() <= THETA_PERIOD + crate::EPSILON,
            "theta interval {theta} outside [0, 2π]"
        );
        assert!(
            phi.lo() >= -crate::EPSILON && phi.hi() <= PHI_MAX + crate::EPSILON,
            "phi interval {phi} outside [0, π]"
        );
        Volume { dims: [x, y, z, t, theta, phi] }
    }

    /// The volume with unbounded spatiotemporal extent and full
    /// angular extent — the domain of the distinguished TLF `Ω`.
    pub fn everywhere() -> Self {
        Volume {
            dims: [
                Interval::unbounded(),
                Interval::unbounded(),
                Interval::unbounded(),
                Interval::unbounded(),
                Interval::new(0.0, THETA_PERIOD),
                Interval::new(0.0, PHI_MAX),
            ],
        }
    }

    /// A spherical panorama at a fixed spatial point: all angles, the
    /// given time extent, position pinned to `(x, y, z)`.
    pub fn sphere_at(x: f64, y: f64, z: f64, t: Interval) -> Self {
        Volume::new(
            Interval::point(x),
            Interval::point(y),
            Interval::point(z),
            t,
            Interval::new(0.0, THETA_PERIOD),
            Interval::new(0.0, PHI_MAX),
        )
    }

    /// The extent along `dim`.
    #[inline]
    pub fn get(&self, dim: Dimension) -> Interval {
        self.dims[dim.index()]
    }

    /// Returns a copy with the extent along `dim` replaced.
    pub fn with(&self, dim: Dimension, iv: Interval) -> Volume {
        let mut v = *self;
        v.dims[dim.index()] = iv;
        v
    }

    /// Convenience accessors.
    #[inline]
    pub fn x(&self) -> Interval {
        self.dims[0]
    }
    #[inline]
    pub fn y(&self) -> Interval {
        self.dims[1]
    }
    #[inline]
    pub fn z(&self) -> Interval {
        self.dims[2]
    }
    #[inline]
    pub fn t(&self) -> Interval {
        self.dims[3]
    }
    #[inline]
    pub fn theta(&self) -> Interval {
        self.dims[4]
    }
    #[inline]
    pub fn phi(&self) -> Interval {
        self.dims[5]
    }

    /// The θ extent as a wraparound-aware angular range.
    pub fn theta_range(&self) -> AngularRange {
        AngularRange::from_endpoints(self.theta().lo(), self.theta().hi())
    }

    /// True when the spatial extent is a single point.
    pub fn is_spatial_point(&self) -> bool {
        self.x().is_point() && self.y().is_point() && self.z().is_point()
    }

    /// True when the volume covers the full angular domain.
    pub fn has_full_angular_extent(&self) -> bool {
        crate::approx_eq(self.theta().lo(), 0.0)
            && crate::approx_eq(self.theta().hi(), THETA_PERIOD)
            && crate::approx_eq(self.phi().lo(), 0.0)
            && crate::approx_eq(self.phi().hi(), PHI_MAX)
    }

    /// Point membership (tolerant at boundaries).
    pub fn contains(&self, p: &Point6) -> bool {
        Dimension::ALL.iter().all(|&d| self.get(d).contains(p.coordinate(d)))
    }

    /// True when `other ⊆ self`.
    pub fn contains_volume(&self, other: &Volume) -> bool {
        Dimension::ALL.iter().all(|&d| self.get(d).contains_interval(&other.get(d)))
    }

    /// The intersection, or `None` when the volumes are disjoint in
    /// any dimension.
    pub fn intersect(&self, other: &Volume) -> Option<Volume> {
        let mut dims = [Interval::point(0.0); 6];
        for d in Dimension::ALL {
            dims[d.index()] = self.get(d).intersect(&other.get(d))?;
        }
        Some(Volume { dims })
    }

    /// The smallest hyperrectangle containing both volumes.
    pub fn hull(&self, other: &Volume) -> Volume {
        let mut dims = [Interval::point(0.0); 6];
        for d in Dimension::ALL {
            dims[d.index()] = self.get(d).hull(&other.get(d));
        }
        Volume { dims }
    }

    /// Translates the spatiotemporal extent by `(dx, dy, dz, dt)` —
    /// the semantics of the `TRANSLATE` operator. Angular extents are
    /// unchanged.
    pub fn translate(&self, dx: f64, dy: f64, dz: f64, dt: f64) -> Volume {
        let mut v = *self;
        v.dims[0] = v.dims[0].translate(dx);
        v.dims[1] = v.dims[1].translate(dy);
        v.dims[2] = v.dims[2].translate(dz);
        v.dims[3] = v.dims[3].translate(dt);
        v
    }

    /// Cuts the volume into equal-sized non-overlapping blocks of
    /// width `delta` along `dim` — the `PARTITION` operator. The
    /// resulting blocks are returned in ascending order along `dim`.
    pub fn partition(&self, dim: Dimension, delta: f64) -> Vec<Volume> {
        self.get(dim).partition(delta).into_iter().map(|iv| self.with(dim, iv)).collect()
    }

    /// Partitions along several dimensions at once, producing the
    /// cross product of the per-dimension blocks (row-major in the
    /// order given).
    pub fn partition_multi(&self, specs: &[(Dimension, f64)]) -> Vec<Volume> {
        let mut acc = vec![*self];
        for &(dim, delta) in specs {
            let mut next = Vec::with_capacity(acc.len() * 2);
            for v in &acc {
                next.extend(v.partition(dim, delta));
            }
            acc = next;
        }
        acc
    }

    /// The product of the *bounded* extents' lengths — used as a
    /// heuristic measure; unbounded or degenerate dims are skipped.
    pub fn measure(&self) -> f64 {
        self.dims
            .iter()
            .filter(|iv| iv.is_bounded() && !iv.is_point())
            .map(|iv| iv.length())
            .product()
    }

    /// True when any extent is degenerate *and* the volume has no
    /// angular coverage — such a volume can hold no visible light and
    /// physical representations drop it.
    pub fn is_visually_empty(&self) -> bool {
        self.theta().is_point() || self.phi().is_point() || self.t().length() < 0.0
    }
}

impl fmt::Display for Volume {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "V(x={}, y={}, z={}, t={}, θ={}, φ={})",
            self.x(),
            self.y(),
            self.z(),
            self.t(),
            self.theta(),
            self.phi()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    fn unit_sphere_volume() -> Volume {
        Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 10.0))
    }

    #[test]
    fn sphere_volume_shape() {
        let v = unit_sphere_volume();
        assert!(v.is_spatial_point());
        assert!(v.has_full_angular_extent());
        assert_eq!(v.t(), Interval::new(0.0, 10.0));
    }

    #[test]
    fn contains_point() {
        let v = unit_sphere_volume();
        let inside = Point6::new(0.0, 0.0, 0.0, 5.0, PI, PI / 2.0);
        let outside_time = Point6::new(0.0, 0.0, 0.0, 11.0, PI, PI / 2.0);
        let outside_space = Point6::new(1.0, 0.0, 0.0, 5.0, PI, PI / 2.0);
        assert!(v.contains(&inside));
        assert!(!v.contains(&outside_time));
        assert!(!v.contains(&outside_space));
    }

    #[test]
    fn everywhere_contains_all() {
        let v = Volume::everywhere();
        assert!(v.contains(&Point6::new(1e9, -1e9, 0.0, 1e12, 1.0, 1.0)));
    }

    #[test]
    fn intersect_disjoint_times() {
        let a = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 1.0));
        let b = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(2.0, 3.0));
        assert_eq!(a.intersect(&b), None);
    }

    #[test]
    fn translate_moves_time_only_dims_requested() {
        let v = unit_sphere_volume().translate(1.0, 0.0, 0.0, 5.0);
        assert_eq!(v.x(), Interval::point(1.0));
        assert_eq!(v.t(), Interval::new(5.0, 15.0));
        assert!(v.has_full_angular_extent());
    }

    #[test]
    fn partition_time_into_seconds() {
        // A ten-second TLF partitioned into ten one-second partitions
        // (paper's PARTITION example).
        let parts = unit_sphere_volume().partition(Dimension::T, 1.0);
        assert_eq!(parts.len(), 10);
        for (i, p) in parts.iter().enumerate() {
            assert!(crate::approx_eq(p.t().lo(), i as f64));
            assert!(crate::approx_eq(p.t().length(), 1.0));
        }
    }

    #[test]
    fn partition_multi_is_cross_product() {
        // The predictive-tiling partitioning: Δt=1, Δθ=π/2, Δφ=π/4
        // cuts a one-second sphere into 4×4 = 16 tiles.
        let v = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 1.0));
        let tiles = v.partition_multi(&[
            (Dimension::T, 1.0),
            (Dimension::Theta, PI / 2.0),
            (Dimension::Phi, PI / 4.0),
        ]);
        assert_eq!(tiles.len(), 16);
        // Tiles are pairwise angularly disjoint (interiors).
        for (i, a) in tiles.iter().enumerate() {
            for b in &tiles[i + 1..] {
                if let Some(ix) = a.intersect(b) {
                    assert!(ix.theta().is_point() || ix.phi().is_point());
                }
            }
        }
    }

    #[test]
    fn hull_contains_inputs() {
        let a = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, 1.0));
        let b = Volume::sphere_at(2.0, 0.0, 0.0, Interval::new(5.0, 6.0));
        let h = a.hull(&b);
        assert!(h.contains_volume(&a));
        assert!(h.contains_volume(&b));
    }

    #[test]
    #[should_panic(expected = "theta interval")]
    fn oversized_theta_rejected() {
        Volume::new(
            Interval::point(0.0),
            Interval::point(0.0),
            Interval::point(0.0),
            Interval::new(0.0, 1.0),
            Interval::new(0.0, 7.0),
            Interval::new(0.0, 1.0),
        );
    }

    proptest! {
        #[test]
        fn intersection_contained_in_both(
            t1 in 0.0f64..50.0, l1 in 0.0f64..20.0,
            t2 in 0.0f64..50.0, l2 in 0.0f64..20.0,
            th1 in 0.0f64..3.0, thl in 0.0f64..3.0,
        ) {
            let a = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(t1, t1 + l1))
                .with(Dimension::Theta, Interval::new(th1, (th1 + thl).min(THETA_PERIOD)));
            let b = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(t2, t2 + l2));
            if let Some(i) = a.intersect(&b) {
                prop_assert!(a.contains_volume(&i));
                prop_assert!(b.contains_volume(&i));
            }
        }

        #[test]
        fn partition_blocks_tile_volume(len in 0.5f64..30.0, delta in 0.1f64..5.0) {
            let v = Volume::sphere_at(0.0, 0.0, 0.0, Interval::new(0.0, len));
            let parts = v.partition(Dimension::T, delta);
            // Every block is contained in the parent and they abut.
            for p in &parts {
                prop_assert!(v.contains_volume(p));
            }
            prop_assert!(crate::approx_eq(parts.last().unwrap().t().hi(), len));
        }
    }
}
