//! Points in TLF space.

use crate::angle::{Phi, Theta};
use crate::dimension::Dimension;
use std::fmt;

/// A point in three-dimensional (viewer position) space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Point3 {
    pub const ORIGIN: Point3 = Point3 { x: 0.0, y: 0.0, z: 0.0 };

    #[inline]
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Component-wise translation.
    pub fn translate(&self, dx: f64, dy: f64, dz: f64) -> Point3 {
        Point3::new(self.x + dx, self.y + dy, self.z + dz)
    }

    /// Offsets along `x` only — used by the depth-map workload to place
    /// the two eyes `p ± i/2` apart (interpupillary distance `i`).
    pub fn offset_x(&self, delta: f64) -> Point3 {
        Point3::new(self.x + delta, self.y, self.z)
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// A full six-dimensional point `(x, y, z, t, θ, φ)` — a viewer
/// position, an instant, and a viewing direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point6 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
    pub t: f64,
    pub theta: Theta,
    pub phi: Phi,
}

impl Point6 {
    pub fn new(x: f64, y: f64, z: f64, t: f64, theta: f64, phi: f64) -> Self {
        Point6 { x, y, z, t, theta: Theta::new(theta), phi: Phi::new(phi) }
    }

    /// The spatial component.
    #[inline]
    pub fn position(&self) -> Point3 {
        Point3::new(self.x, self.y, self.z)
    }

    /// The coordinate along `dim` (angles in radians).
    pub fn coordinate(&self, dim: Dimension) -> f64 {
        match dim {
            Dimension::X => self.x,
            Dimension::Y => self.y,
            Dimension::Z => self.z,
            Dimension::T => self.t,
            Dimension::Theta => self.theta.radians(),
            Dimension::Phi => self.phi.radians(),
        }
    }

    /// Returns a copy with the coordinate along `dim` replaced.
    pub fn with_coordinate(&self, dim: Dimension, v: f64) -> Point6 {
        let mut p = *self;
        match dim {
            Dimension::X => p.x = v,
            Dimension::Y => p.y = v,
            Dimension::Z => p.z = v,
            Dimension::T => p.t = v,
            Dimension::Theta => p.theta = Theta::new(v),
            Dimension::Phi => p.phi = Phi::new(v),
        }
        p
    }
}

impl fmt::Display for Point6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {}, t={}, θ={:.4}, φ={:.4})",
            self.x,
            self.y,
            self.z,
            self.t,
            self.theta.radians(),
            self.phi.radians()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn distance_is_euclidean() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(3.0, 4.0, 0.0);
        assert!(crate::approx_eq(a.distance(&b), 5.0));
    }

    #[test]
    fn eye_offsets_are_symmetric() {
        let p = Point3::new(1.0, 2.0, 3.0);
        let ipd = 0.064;
        let left = p.offset_x(-ipd / 2.0);
        let right = p.offset_x(ipd / 2.0);
        assert!(crate::approx_eq(left.distance(&right), ipd));
    }

    #[test]
    fn coordinate_access_roundtrips() {
        let p = Point6::new(1.0, 2.0, 3.0, 4.0, PI, PI / 2.0);
        for d in Dimension::ALL {
            let v = p.coordinate(d);
            let q = p.with_coordinate(d, v);
            assert!(crate::approx_eq(q.coordinate(d), v), "dim {d}");
        }
    }

    #[test]
    fn with_coordinate_normalises_angles() {
        let p = Point6::new(0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        let q = p.with_coordinate(Dimension::Theta, 2.0 * PI + 1.0);
        assert!(crate::approx_eq(q.theta.radians(), 1.0));
    }
}
