//! The cluster wire protocol: length-prefixed, CRC-framed messages
//! over localhost TCP.
//!
//! Framing follows the same discipline as `storage::wal` — a fixed
//! header carrying a magic, a payload length, and a CRC over
//! everything after the CRC field — so the same torn/corrupt-frame
//! reasoning (and the same test patterns) apply to bytes in flight:
//!
//! ```text
//! MAGIC "RPC1" (4) | payload_len u32 LE (4) | crc32 u32 LE (4) |
//! request_id u64 LE (8) | payload
//! ```
//!
//! The CRC covers `request_id ‖ payload`. A frame whose magic or CRC
//! does not check out, or whose declared payload exceeds
//! [`MAX_PAYLOAD`], is *invalid* — the connection is poisoned and the
//! error classifies as `Corrupt`. A peer that disappears mid-frame
//! surfaces as a connection-shaped error (`Unavailable`), because the
//! missing bytes are a dead peer, not damaged data.
//!
//! This module is the **only** place in the workspace that constructs
//! raw sockets (`TcpStream`/`TcpListener`); lint rule R8 enforces
//! that. Everything above it speaks [`Conn`].
//!
//! Fault injection: every connect/send/recv threads a
//! [`faults::fail_point`] tagged with the peer's label
//! (`cluster.connect.w0`, `cluster.rpc.send.w0`, …), so the chaos
//! harness can drop, delay, or partition individual links via the
//! `LIGHTDB_FAULTS` grammar.

use lightdb_container::checksum;
use lightdb_storage::faults;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Frame magic: "RPC1".
pub const MAGIC: [u8; 4] = *b"RPC1";
/// Fixed frame-header size: magic + payload_len + crc + request_id.
pub const FRAME_HEADER: usize = 20;
/// Ceiling on a single frame's payload. Matches the WAL's ceiling —
/// large enough for any encoded fragment result, small enough that a
/// corrupt length field cannot drive a multi-gigabyte allocation.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Outcome of parsing a frame out of a byte buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameParse {
    /// A whole, CRC-verified frame.
    Complete {
        id: u64,
        payload: Vec<u8>,
        frame_len: usize,
    },
    /// The buffer holds a valid prefix of a frame; read more bytes.
    Incomplete,
    /// The bytes cannot be (a prefix of) a valid frame.
    Invalid,
}

/// Builds one wire frame around `payload`.
pub fn encode_frame(id: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]); // crc placeholder
    frame.extend_from_slice(&id.to_le_bytes());
    frame.extend_from_slice(payload);
    let crc = checksum::checksum(&frame[12..]);
    frame[8..12].copy_from_slice(&crc.to_le_bytes());
    frame
}

/// Parses the frame at the start of `buf` (mirrors the WAL's
/// `decode_record` contract).
pub fn decode_frame(buf: &[u8]) -> FrameParse {
    if buf.len() < FRAME_HEADER {
        // A short buffer is only "keep reading" if what we do have
        // could still become a valid frame.
        let n = buf.len().min(4);
        if buf[..n] == MAGIC[..n] {
            return FrameParse::Incomplete;
        }
        return FrameParse::Invalid;
    }
    if buf[0..4] != MAGIC {
        return FrameParse::Invalid;
    }
    let payload_len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if payload_len > MAX_PAYLOAD {
        return FrameParse::Invalid;
    }
    let frame_len = FRAME_HEADER + payload_len;
    if buf.len() < frame_len {
        return FrameParse::Incomplete;
    }
    let crc = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if !checksum::verify(&buf[12..frame_len], crc) {
        return FrameParse::Invalid;
    }
    let id = u64::from_le_bytes([
        buf[12], buf[13], buf[14], buf[15], buf[16], buf[17], buf[18], buf[19],
    ]);
    FrameParse::Complete {
        id,
        payload: buf[FRAME_HEADER..frame_len].to_vec(),
        frame_len,
    }
}

/// One framed connection to a peer. `label` tags the peer's fault
/// sites (`cluster.rpc.send.<label>` / `cluster.rpc.recv.<label>`).
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    label: String,
    /// Bytes received but not yet consumed as a whole frame. Keeping
    /// partial frames here makes [`Conn::recv`] resumable: a read
    /// timeout mid-frame leaves the prefix buffered, and the next
    /// `recv` picks up where it left off instead of desyncing.
    rbuf: Vec<u8>,
}

impl Conn {
    /// Connects to `addr` with `timeout` applied to the connect and
    /// to every subsequent read/write.
    pub fn connect(addr: SocketAddr, label: &str, timeout: Duration) -> io::Result<Conn> {
        faults::fail_point(&format!("{}.{label}", faults::sites::CLUSTER_CONNECT))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Conn {
            stream,
            label: label.to_string(),
            rbuf: Vec::new(),
        })
    }

    fn from_stream(stream: TcpStream, label: String, timeout: Duration) -> io::Result<Conn> {
        // Accepted sockets must block regardless of the listener's
        // polling mode.
        stream.set_nonblocking(false)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Conn {
            stream,
            label,
            rbuf: Vec::new(),
        })
    }

    /// Replaces the per-operation timeout on an open connection.
    pub fn set_timeout(&self, timeout: Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))
    }

    /// Sends one frame.
    pub fn send(&mut self, id: u64, payload: &[u8]) -> io::Result<()> {
        faults::fail_point(&format!("{}.{}", faults::sites::CLUSTER_SEND, self.label))?;
        if payload.len() > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame payload {} exceeds {MAX_PAYLOAD}", payload.len()),
            ));
        }
        self.stream.write_all(&encode_frame(id, payload))?;
        self.stream.flush()
    }

    /// Receives one whole frame, verifying its CRC.
    ///
    /// Error shapes matter to the caller's retry/failover logic:
    /// a peer that closes the socket (cleanly or mid-frame) is
    /// `ConnectionAborted` (→ `Unavailable`) — the missing bytes
    /// still exist on a replica; a frame that fails structural
    /// checks is `InvalidData` (→ `Corrupt`); a read that exceeds
    /// the connection timeout is `WouldBlock`/`TimedOut`
    /// (→ `Transient`), and the partially received frame stays
    /// buffered so a subsequent `recv` resumes it — callers may poll
    /// with short timeouts (e.g. to watch a cancel token) without
    /// losing bytes.
    pub fn recv(&mut self) -> io::Result<(u64, Vec<u8>)> {
        faults::fail_point(&format!("{}.{}", faults::sites::CLUSTER_RECV, self.label))?;
        loop {
            match decode_frame(&self.rbuf) {
                FrameParse::Complete {
                    id,
                    payload,
                    frame_len,
                } => {
                    self.rbuf.drain(..frame_len);
                    return Ok((id, payload));
                }
                FrameParse::Invalid => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "frame failed CRC/structure checks",
                    ))
                }
                FrameParse::Incomplete => {}
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                let when = if self.rbuf.is_empty() {
                    "between frames"
                } else {
                    "mid-frame"
                };
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    format!("peer {} closed the connection {when}", self.label),
                ));
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Shuts both directions down, forcing any blocked peer read to
    /// fail — how an in-process worker "kills" its live connections.
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// An independently owned handle to the same socket, used to
    /// register a connection for forced shutdown. The clone starts
    /// with an empty receive buffer — it is for [`Conn::shutdown`],
    /// not for interleaved reads.
    pub fn try_clone(&self) -> io::Result<Conn> {
        Ok(Conn {
            stream: self.stream.try_clone()?,
            label: self.label.clone(),
            rbuf: Vec::new(),
        })
    }
}

/// A listening socket handing out framed [`Conn`]s.
#[derive(Debug)]
pub struct Listener {
    inner: TcpListener,
}

impl Listener {
    /// Binds an OS-assigned port on localhost.
    pub fn bind_localhost() -> io::Result<(Listener, SocketAddr)> {
        let inner = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = inner.local_addr()?;
        Ok((Listener { inner }, addr))
    }

    /// Binds a specific localhost port (worker binary deployments).
    pub fn bind_port(port: u16) -> io::Result<(Listener, SocketAddr)> {
        let inner = TcpListener::bind(("127.0.0.1", port))?;
        let addr = inner.local_addr()?;
        Ok((Listener { inner }, addr))
    }

    /// Accepts one connection. `label` tags the accepting side's
    /// fault sites; `timeout` bounds each read/write on the accepted
    /// connection (accept itself blocks indefinitely unless
    /// [`set_nonblocking`](Listener::set_nonblocking) is on).
    pub fn accept(&self, label: &str, timeout: Duration) -> io::Result<Conn> {
        let (stream, _) = self.inner.accept()?;
        Conn::from_stream(stream, label.to_string(), timeout)
    }

    /// Switches the listener between blocking accepts and polling
    /// (`accept` returns `WouldBlock` when nothing is pending) — the
    /// worker's serve loop polls so a shutdown flag can interrupt it.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.inner.set_nonblocking(nonblocking)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let frame = encode_frame(42, b"hello");
        match decode_frame(&frame) {
            FrameParse::Complete {
                id,
                payload,
                frame_len,
            } => {
                assert_eq!(id, 42);
                assert_eq!(payload, b"hello");
                assert_eq!(frame_len, frame.len());
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn short_magic_prefix_is_incomplete_garbage_is_invalid() {
        assert_eq!(decode_frame(b"RP"), FrameParse::Incomplete);
        assert_eq!(decode_frame(b"XX"), FrameParse::Invalid);
        let frame = encode_frame(1, b"payload");
        assert_eq!(decode_frame(&frame[..frame.len() - 1]), FrameParse::Incomplete);
    }

    #[test]
    fn oversized_length_is_invalid() {
        let mut frame = encode_frame(1, b"x");
        frame[4..8].copy_from_slice(&((MAX_PAYLOAD as u32) + 1).to_le_bytes());
        assert_eq!(decode_frame(&frame), FrameParse::Invalid);
    }

    #[test]
    fn crc_damage_is_invalid() {
        let mut frame = encode_frame(7, b"payload bytes");
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        assert_eq!(decode_frame(&frame), FrameParse::Invalid);
    }

    #[test]
    fn conn_roundtrips_frames_over_localhost() {
        let (listener, addr) = Listener::bind_localhost().unwrap();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept("client", Duration::from_secs(5)).unwrap();
            let (id, payload) = conn.recv().unwrap();
            conn.send(id, &payload).unwrap();
        });
        let mut conn = Conn::connect(addr, "server", Duration::from_secs(5)).unwrap();
        conn.send(9, b"ping me back").unwrap();
        let (id, payload) = conn.recv().unwrap();
        assert_eq!((id, payload.as_slice()), (9, b"ping me back".as_slice()));
        server.join().unwrap();
    }

    #[test]
    fn peer_death_mid_frame_is_connection_shaped() {
        let (listener, addr) = Listener::bind_localhost().unwrap();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept("client", Duration::from_secs(5)).unwrap();
            // Send a torn frame: a valid header promising more bytes
            // than will ever arrive, then vanish.
            let frame = encode_frame(1, &[0u8; 1024]);
            let Conn { stream, .. } = &mut conn;
            stream.write_all(&frame[..FRAME_HEADER + 10]).unwrap();
            drop(conn);
        });
        let mut conn = Conn::connect(addr, "server", Duration::from_secs(5)).unwrap();
        let err = conn.recv().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        assert_eq!(
            lightdb_core::ErrorClass::of_io_kind(err.kind()),
            lightdb_core::ErrorClass::Unavailable
        );
        server.join().unwrap();
    }
}
