//! The worker side of the cluster: an engine over a subset of TLF
//! fragments, serving subplan executions to a coordinator.
//!
//! A worker hosts a full [`LightDb`] over its own data directory (its
//! fragment subset ingested as ordinary local TLFs) behind a framed
//! [`net::Listener`]. Each accepted connection gets a handler thread
//! and its own engine [`Session`](lightdb::session::Session), so
//! requests on one connection execute serially (matching the
//! coordinator's one-connection-per-dispatch model) while separate
//! connections run concurrently.
//!
//! Robustness contract, worker side:
//!
//! * every `Execute` runs under the deadline the coordinator shipped
//!   and registers its cancel token in an in-flight table, so an
//!   out-of-band `Cancel` aborts it at the next chunk boundary;
//! * failures are answered as [`proto::Response::Failed`] with the
//!   failure's [`ErrorClass`](lightdb_core::ErrorClass) preserved,
//!   never as a torn connection;
//! * the `Stats` request reports outstanding admission bytes and any
//!   spans a finished request left open — the no-leak numbers the
//!   chaos harness asserts are zero on every surviving worker;
//! * the serve loop threads `cluster.worker.serve` through the fault
//!   registry, so `LIGHTDB_FAULTS=cluster.worker.serve=crash` models
//!   a fail-stop worker death (the worker binary exits; see
//!   `exit_on_crash`).

use crate::net::{Conn, Listener};
use crate::proto::{Request, Response};
use lightdb::prelude::*;
use lightdb_core::subgraph::UdfRegistry;
use lightdb_exec::metrics::counters;
use lightdb_exec::{CancelToken, QueryCtx};
use lightdb_storage::faults;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often the accept loop polls for shutdown between connections.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Per-read timeout on worker-side connections. Generous: the
/// coordinator owns deadline enforcement; this only reclaims handler
/// threads whose peer silently vanished.
const SERVE_TIMEOUT: Duration = Duration::from_secs(30);

struct WorkerShared {
    db: LightDb,
    /// In-flight `Execute`s by request id, for out-of-band `Cancel`.
    inflight: Mutex<HashMap<u64, CancelToken>>,
    /// Spans left open by *finished* requests — a leak detector that
    /// survives the per-request sessions being dropped.
    leaked_spans: AtomicU64,
    shutdown: AtomicBool,
    /// Clones of live connections (by connection id) so `kill` can
    /// sever them mid-query; handlers deregister on exit so a
    /// long-lived worker does not accumulate dead sockets.
    conns: Mutex<HashMap<u64, Conn>>,
    next_conn: AtomicU64,
    /// Worker-binary mode: a `crash` fault at the serve site exits
    /// the process (fail-stop) instead of poisoning the test process.
    exit_on_crash: bool,
}

/// A running worker bound to a localhost port.
///
/// Dropping the handle does **not** stop the worker; call
/// [`WorkerHandle::kill`] (abrupt, models a crashed process as seen
/// from the coordinator) or send [`Request::Shutdown`] (graceful).
#[derive(Debug)]
pub struct WorkerHandle {
    addr: SocketAddr,
    shared: Arc<WorkerShared>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerShared").finish_non_exhaustive()
    }
}

impl WorkerHandle {
    /// The address the worker serves on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Abruptly kills the worker as the *coordinator* would see a
    /// dead process: the listener stops accepting and every live
    /// connection is severed mid-whatever-it-was-doing. In-flight
    /// queries are cancelled so their resources drain promptly (a
    /// real process death would reclaim them via the OS).
    pub fn kill(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for (_, token) in self
            .shared
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain()
        {
            token.cancel();
        }
        for (_, conn) in self
            .shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain()
        {
            conn.shutdown();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// True once the serve loop has exited (shutdown or kill).
    pub fn is_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Spawns an in-process worker over `data_dir`, returning its handle.
/// The engine opens with default options; fragments are whatever TLFs
/// the directory already holds (plus any stored later through another
/// handle — workers share nothing, so there isn't one).
pub fn spawn(data_dir: &Path) -> io::Result<WorkerHandle> {
    spawn_inner(data_dir, false)
}

/// [`spawn`] for the standalone worker binary: a `crash` fault at the
/// serve site exits the process with status 42 (fail-stop) rather
/// than marking the shared registry crashed.
pub fn spawn_exiting_on_crash(data_dir: &Path) -> io::Result<WorkerHandle> {
    spawn_inner(data_dir, true)
}

fn spawn_inner(data_dir: &Path, exit_on_crash: bool) -> io::Result<WorkerHandle> {
    let db = LightDb::open(data_dir).map_err(|e| io::Error::other(e.to_string()))?;
    let (listener, addr) = Listener::bind_localhost()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(WorkerShared {
        db,
        inflight: Mutex::new(HashMap::new()),
        leaked_spans: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
        next_conn: AtomicU64::new(0),
        exit_on_crash,
    });
    let accept_shared = shared.clone();
    let accept = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
    Ok(WorkerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(listener: &Listener, shared: &Arc<WorkerShared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept("coordinator", SERVE_TIMEOUT) {
            Ok(conn) => {
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = conn.try_clone() {
                    shared
                        .conns
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(conn_id, clone);
                }
                let conn_shared = shared.clone();
                // Handler threads are detached: they exit when their
                // connection closes (peer drop, kill, or shutdown),
                // dropping their kill-registry entry on the way out.
                std::thread::spawn(move || {
                    serve_conn(conn, &conn_shared);
                    conn_shared
                        .conns
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&conn_id);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
}

fn serve_conn(mut conn: Conn, shared: &Arc<WorkerShared>) {
    // One engine session per connection: requests on a connection are
    // serial, so the session's mutable config is uncontended.
    let mut session = shared.db.session();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let (id, payload) = match conn.recv() {
            Ok(frame) => frame,
            // Peer gone or bytes unusable: nothing sane to answer on
            // this connection.
            Err(_) => return,
        };
        let response = match Request::from_bytes(&payload) {
            Ok(req) => serve_request(shared, &mut session, id, req),
            Err(e) => Some(Response::Failed {
                class: lightdb_core::ErrorClass::Corrupt,
                message: format!("bad request payload: {e}"),
            }),
        };
        match response {
            Some(resp) => {
                if conn.send(id, &resp.to_bytes()).is_err() {
                    return;
                }
            }
            // Graceful shutdown: ack, then let the connection close.
            None => {
                let _ = conn.send(id, &Response::Ack.to_bytes());
                return;
            }
        }
    }
}

/// Handles one request; `None` means the worker should ack and then
/// wind down.
fn serve_request(
    shared: &Arc<WorkerShared>,
    session: &mut lightdb::session::Session,
    id: u64,
    req: Request,
) -> Option<Response> {
    // The serve-site failpoint models worker-side faults: errors are
    // answered in-band; a crash fault fail-stops the worker binary.
    if let Err(e) = faults::fail_point(faults::sites::CLUSTER_WORKER_SERVE) {
        if faults::crashed() && shared.exit_on_crash {
            std::process::exit(42);
        }
        return Some(Response::Failed {
            class: lightdb_core::ErrorClass::of_io_kind(e.kind()),
            message: e.to_string(),
        });
    }
    match req {
        Request::Ping => Some(Response::Pong),
        Request::Execute {
            deadline_ms,
            read_policy,
            plan,
        } => Some(execute(shared, session, id, deadline_ms, read_policy, plan)),
        Request::Cancel { request } => {
            if let Some(token) = shared
                .inflight
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&request)
            {
                token.cancel();
            }
            Some(Response::Ack)
        }
        Request::Stats => Some(Response::Stats {
            admitted: shared.db.pool().admitted() as u64,
            open_spans: shared.leaked_spans.load(Ordering::Acquire),
        }),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            None
        }
    }
}

fn execute(
    shared: &Arc<WorkerShared>,
    session: &mut lightdb::session::Session,
    id: u64,
    deadline_ms: Option<u64>,
    read_policy: lightdb_exec::ReadPolicy,
    plan_bytes: Vec<u8>,
) -> Response {
    let plan = match lightdb_core::subgraph::deserialize(&plan_bytes, &UdfRegistry::new()) {
        Ok(p) => p,
        Err(e) => {
            return Response::Failed {
                class: lightdb_core::ErrorClass::Corrupt,
                message: format!("undeserialisable subplan: {e}"),
            }
        }
    };
    let ctx = match deadline_ms {
        Some(ms) => QueryCtx::unbounded().with_deadline(Duration::from_millis(ms)),
        None => QueryCtx::unbounded(),
    };
    session.set_read_policy(read_policy);
    // Register for out-of-band cancellation before execution starts.
    shared
        .inflight
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id, ctx.cancel_token());
    let skipped_before = session.metrics().counter(counters::SKIPPED_GOPS);
    let degraded_before = session.metrics().counter(counters::DEGRADED_GOPS);
    let result = session.execute_plan_with_ctx(&plan, ctx);
    shared
        .inflight
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&id);
    // Anything still open now outlives its request: a leak, recorded
    // durably so `Stats` sees it after the session is gone.
    shared
        .leaked_spans
        .fetch_add(session.metrics().open_spans(), Ordering::AcqRel);
    match result {
        Ok(QueryOutput::Encoded(streams)) => Response::Executed {
            streams: streams.iter().map(|s| s.to_bytes()).collect(),
            skipped: session.metrics().counter(counters::SKIPPED_GOPS) - skipped_before,
            degraded: session.metrics().counter(counters::DEGRADED_GOPS) - degraded_before,
        },
        Ok(other) => Response::Failed {
            class: lightdb_core::ErrorClass::Fatal,
            message: format!(
                "distributed subplans must end in ENCODE; got {} output",
                match other {
                    QueryOutput::Stored { .. } => "stored",
                    QueryOutput::Frames(_) => "frame",
                    QueryOutput::Unit => "unit",
                    QueryOutput::Encoded(_) => "encoded",
                }
            ),
        },
        Err(e) => Response::Failed {
            class: classify_engine_error(&e),
            message: e.to_string(),
        },
    }
}

/// Maps an engine error to the taxonomy for the wire. Mirrors how
/// the local chaos harness classifies: storage and exec errors carry
/// their own class, codec damage is corruption, plan errors are
/// programming mistakes.
pub fn classify_engine_error(e: &lightdb::Error) -> lightdb_core::ErrorClass {
    match e {
        lightdb::Error::Storage(s) => s.classify(),
        lightdb::Error::Exec(x) => x.classify(),
        lightdb::Error::Codec(_) => lightdb_core::ErrorClass::Corrupt,
        lightdb::Error::Plan(_) => lightdb_core::ErrorClass::Fatal,
    }
}
