//! Standalone cluster worker: hosts an engine over one data
//! directory and serves coordinator RPCs until told to stop.
//!
//! ```text
//! lightdb-worker <data-dir>
//! ```
//!
//! Prints `listening <addr>` on stdout once ready (the smoke harness
//! parses this to build its cluster map), then serves until a
//! `Shutdown` request arrives or the process is killed. With
//! `LIGHTDB_FAULTS=cluster.worker.serve=crash` in the environment the
//! worker fail-stops (exit 42) when the armed fault fires — the
//! process-level crash the cluster smoke test recovers from.

use std::io::Write;

fn main() {
    let mut args = std::env::args().skip(1);
    let data_dir = match args.next() {
        Some(d) => d,
        None => {
            eprintln!("usage: lightdb-worker <data-dir>");
            std::process::exit(2);
        }
    };
    let handle = match lightdb_cluster::worker::spawn_exiting_on_crash(std::path::Path::new(
        &data_dir,
    )) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("lightdb-worker: failed to start over {data_dir}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening {}", handle.addr());
    // The parent may be reading this line through a pipe; make sure
    // it is not stuck in the stdout buffer.
    let _ = std::io::stdout().flush();
    while !handle.is_down() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}
