//! Cluster smoke test over real processes: one coordinator, three
//! `lightdb-worker` children, a worker killed between queries, and a
//! byte-identical check against the single-node baseline both before
//! and after the failover. Exercises the whole stack — process
//! boundaries, the wire protocol, placement, heartbeats, failover —
//! in a few seconds; the deep seeded soak lives in `tests/cluster.rs`.
//!
//! Honours `LIGHTDB_WORKERS` (default 3, min 2) for the fleet size.

use lightdb::prelude::*;
use lightdb_cluster::{fixture, Coordinator, CoordinatorConfig};
use lightdb_core::algebra::{LogicalOp, LogicalPlan};
use lightdb_exec::metrics::counters;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

const FRAMES: usize = 48;
const FRAGMENTS: usize = 6;

fn main() {
    let workers = lightdb_core::envknob::read_usize("LIGHTDB_WORKERS")
        .unwrap_or(3)
        .max(2);
    match run(workers) {
        Ok(()) => println!("cluster smoke: PASS ({workers} workers, {FRAGMENTS} fragments)"),
        Err(e) => {
            eprintln!("cluster smoke: FAIL: {e}");
            std::process::exit(1);
        }
    }
}

fn run(workers: usize) -> Result<(), String> {
    let root = std::env::temp_dir().join(format!("lightdb-cluster-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let worker_dirs: Vec<PathBuf> = (0..workers).map(|i| root.join(format!("w{i}"))).collect();
    let baseline_dir = root.join("baseline");

    // Fragments replicated on two workers each, plus the whole
    // stream on a single node for the byte-identical reference.
    let fragments = fixture::ingest_cluster(&worker_dirs, "vid", FRAMES, FRAGMENTS, 2)
        .map_err(|e| format!("ingest: {e}"))?;
    fixture::ingest_baseline(&baseline_dir, "vid", FRAMES).map_err(|e| format!("ingest: {e}"))?;

    let template = LogicalPlan::unary(
        LogicalOp::Encode {
            codec: CodecKind::H264Sim,
            quality: None,
        },
        LogicalPlan::leaf(LogicalOp::Scan {
            name: "vid".to_string(),
            version: None,
        }),
    );
    let baseline = run_baseline(&baseline_dir, &template)?;

    let mut children = Vec::with_capacity(workers);
    let mut addrs = Vec::with_capacity(workers);
    for dir in &worker_dirs {
        let (child, addr) = spawn_worker(dir)?;
        children.push(child);
        addrs.push(addr);
    }
    let mut result = drive(&addrs, fragments, &template, &baseline, &mut children);
    if result.is_ok() {
        result = crash_fault_fail_stops_worker(&worker_dirs[0]);
    }
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&root);
    result
}

/// A worker armed with `cluster.worker.serve=crash` must fail-stop
/// (exit 42) on its first request — the process-level crash model
/// the coordinator's failover is built against.
fn crash_fault_fail_stops_worker(dir: &PathBuf) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let worker_bin = exe
        .parent()
        .ok_or("current_exe has no parent dir")?
        .join("lightdb-worker");
    let mut child = Command::new(&worker_bin)
        .arg(dir)
        .stdout(Stdio::piped())
        .env("LIGHTDB_FAULTS", "cluster.worker.serve=crash")
        .spawn()
        .map_err(|e| format!("spawn crashing worker: {e}"))?;
    let stdout = child.stdout.take().ok_or("worker stdout not captured")?;
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("worker banner: {e}"))?;
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .ok_or_else(|| format!("unexpected worker banner: {line:?}"))?
        .parse::<SocketAddr>()
        .map_err(|e| format!("worker addr: {e}"))?;
    // The first request trips the armed crash; the reply never comes.
    let rpc = || -> std::io::Result<()> {
        let timeout = std::time::Duration::from_secs(5);
        let mut conn = lightdb_cluster::net::Conn::connect(addr, "crashing", timeout)?;
        conn.send(1, &lightdb_cluster::proto::Request::Ping.to_bytes())?;
        let _ = conn.recv()?;
        Ok(())
    };
    if rpc().is_ok() {
        let _ = child.kill();
        return Err("crash-armed worker answered instead of fail-stopping".to_string());
    }
    let status = child.wait().map_err(|e| format!("wait: {e}"))?;
    if status.code() != Some(42) {
        return Err(format!("crash-armed worker exited {status:?}, expected 42"));
    }
    println!("cluster smoke: crash fault fail-stopped the worker (exit 42)");
    Ok(())
}

fn drive(
    addrs: &[SocketAddr],
    fragments: Vec<lightdb_cluster::Fragment>,
    template: &LogicalPlan,
    baseline: &[u8],
    children: &mut [Child],
) -> Result<(), String> {
    let coord = Coordinator::new(addrs.to_vec(), fragments, CoordinatorConfig::from_env());
    let ctx = QueryCtx::unbounded();

    // Healthy cluster: distributed must equal single-node bytes.
    let healthy = execute_bytes(&coord, template, &ctx)?;
    if healthy != baseline {
        return Err("healthy-cluster result differs from single-node baseline".to_string());
    }
    println!("cluster smoke: healthy run byte-identical ({} bytes)", baseline.len());

    // Kill worker 0's process; every fragment it held has a replica,
    // so the same query must fail over and still match bytes.
    children[0].kill().map_err(|e| format!("kill: {e}"))?;
    let _ = children[0].wait();
    let failed_over = execute_bytes(&coord, template, &ctx)?;
    if failed_over != baseline {
        return Err("post-kill result differs from single-node baseline".to_string());
    }
    let failovers = coord.metrics().counter(counters::CLUSTER_FAILOVERS);
    if failovers == 0 {
        return Err("worker killed but no failover was recorded".to_string());
    }
    println!("cluster smoke: failover run byte-identical ({failovers} failovers)");

    // Survivors must be leak-free: no admitted bytes, no open spans.
    for worker in 1..coord.worker_count() {
        let (admitted, open_spans) = coord
            .worker_stats(worker)
            .map_err(|e| format!("stats from worker {worker}: {e}"))?;
        if admitted != 0 || open_spans != 0 {
            return Err(format!(
                "worker {worker} leaked: {admitted} admitted bytes, {open_spans} open spans"
            ));
        }
    }
    Ok(())
}

fn run_baseline(dir: &PathBuf, template: &LogicalPlan) -> Result<Vec<u8>, String> {
    let db = LightDb::open(dir).map_err(|e| format!("baseline open: {e}"))?;
    match db
        .execute_plan_with_ctx(template, QueryCtx::unbounded())
        .map_err(|e| format!("baseline query: {e}"))?
    {
        QueryOutput::Encoded(streams) if streams.len() == 1 => Ok(streams[0].to_bytes()),
        other => Err(format!("baseline produced unexpected output: {other:?}")),
    }
}

fn execute_bytes(
    coord: &Coordinator,
    template: &LogicalPlan,
    ctx: &QueryCtx,
) -> Result<Vec<u8>, String> {
    match coord
        .execute(template, ReadPolicy::Fail, ctx)
        .map_err(|e| format!("distributed query: {e}"))?
    {
        QueryOutput::Encoded(streams) if streams.len() == 1 => Ok(streams[0].to_bytes()),
        other => Err(format!("distributed query produced unexpected output: {other:?}")),
    }
}

/// Launches a `lightdb-worker` child over `dir` and parses the
/// `listening <addr>` line it prints when ready.
fn spawn_worker(dir: &PathBuf) -> Result<(Child, SocketAddr), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let worker_bin = exe
        .parent()
        .ok_or("current_exe has no parent dir")?
        .join("lightdb-worker");
    let mut child = Command::new(&worker_bin)
        .arg(dir)
        .stdout(Stdio::piped())
        // Workers must not inherit the harness's fault schedule.
        .env_remove("LIGHTDB_FAULTS")
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", worker_bin.display()))?;
    let stdout = child.stdout.take().ok_or("worker stdout not captured")?;
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("worker banner: {e}"))?;
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .ok_or_else(|| format!("unexpected worker banner: {line:?}"))?
        .parse::<SocketAddr>()
        .map_err(|e| format!("worker addr: {e}"))?;
    Ok((child, addr))
}
