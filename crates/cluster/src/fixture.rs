//! Deterministic cluster fixtures shared by the smoke binary, the
//! scale-out bench, and the test suite: synthetic frames, fragment
//! naming, and time-partitioned per-worker ingest.
//!
//! The byte-identical half of the tri-state contract leans on one
//! alignment rule encoded here: **every fragment's frame count is a
//! multiple of the GOP length**. With closed GOPs (each starts at a
//! keyframe) a fragment's encode is then exactly the corresponding
//! run of GOPs from the whole-stream encode, so `GOPUNION` of the
//! fragment results reproduces the single-node answer byte for byte.

use crate::coordinator::Fragment;
use lightdb::ingest::{store_frames, IngestConfig};
use lightdb::prelude::*;
use std::io;
use std::path::PathBuf;

/// GOP length used by all cluster fixtures.
pub const GOP_LENGTH: usize = 4;
/// Frame rate used by all cluster fixtures.
pub const FPS: u32 = 2;

/// `total` deterministic frames with per-index colour so any
/// misplaced or reordered GOP changes the output bytes.
pub fn frames(total: usize) -> Vec<Frame> {
    (0..total)
        .map(|i| {
            Frame::filled(
                32,
                32,
                Yuv::new(
                    ((i * 7) % 251) as u8,
                    ((i * 13) % 251) as u8,
                    ((i * 29) % 251) as u8,
                ),
            )
        })
        .collect()
}

/// Ingest parameters all fixture stores share; any divergence
/// between workers would make sequence headers unequal and break
/// `GOPUNION` compatibility.
pub fn ingest_config() -> IngestConfig {
    IngestConfig {
        fps: FPS,
        gop_length: GOP_LENGTH,
        ..Default::default()
    }
}

/// The worker-local TLF name of fragment `idx` of `base`.
pub fn fragment_name(base: &str, idx: usize) -> String {
    format!("{base}.f{idx}")
}

/// Splits `total` frames of `base` into `fragments` equal time
/// slices and stores each on `replication` workers (fragment `i`
/// lands on workers `i % n`, `i+1 % n`, … — primary first), opening
/// and closing an engine per worker directory. Returns the fragment
/// table for [`Coordinator::new`](crate::coordinator::Coordinator).
///
/// `total` must divide evenly into GOP-aligned fragments; uneven
/// requests are rejected rather than silently misaligned.
pub fn ingest_cluster(
    worker_dirs: &[PathBuf],
    base: &str,
    total: usize,
    fragments: usize,
    replication: usize,
) -> io::Result<Vec<Fragment>> {
    if fragments == 0 || worker_dirs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "need at least one fragment and one worker",
        ));
    }
    let per = total / fragments;
    if per * fragments != total || !per.is_multiple_of(GOP_LENGTH) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "{total} frames do not split into {fragments} GOP-aligned fragments \
                 (gop length {GOP_LENGTH})"
            ),
        ));
    }
    let replication = replication.clamp(1, worker_dirs.len());
    let all = frames(total);
    let config = ingest_config();
    let mut table = Vec::with_capacity(fragments);
    for idx in 0..fragments {
        let slice = &all[idx * per..(idx + 1) * per];
        let name = fragment_name(base, idx);
        let holders: Vec<usize> = (0..replication)
            .map(|r| (idx + r) % worker_dirs.len())
            .collect();
        for &holder in &holders {
            let db = LightDb::open(&worker_dirs[holder])
                .map_err(|e| io::Error::other(e.to_string()))?;
            store_frames(&db, &name, slice, &config)
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        table.push(Fragment { name, holders });
    }
    Ok(table)
}

/// Stores the same `total` frames whole under `base` in `dir` — the
/// single-node baseline the distributed answer must match byte for
/// byte.
pub fn ingest_baseline(dir: &PathBuf, base: &str, total: usize) -> io::Result<()> {
    let db = LightDb::open(dir).map_err(|e| io::Error::other(e.to_string()))?;
    store_frames(&db, base, &frames(total), &ingest_config())
        .map_err(|e| io::Error::other(e.to_string()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misaligned_fragmentation_is_rejected() {
        let dirs = vec![std::env::temp_dir().join("never-created")];
        // 10 frames over 3 fragments: not even; 12 over 2: per = 6,
        // not a GOP multiple (gop length 4).
        assert!(ingest_cluster(&dirs, "v", 10, 3, 1).is_err());
        assert!(ingest_cluster(&dirs, "v", 12, 2, 1).is_err());
        assert!(ingest_cluster(&dirs, "v", 0, 0, 1).is_err());
    }

    #[test]
    fn fragment_names_and_holders_are_deterministic() {
        assert_eq!(fragment_name("vid", 2), "vid.f2");
        let frames = frames(8);
        assert_eq!(frames.len(), 8);
        assert_ne!(frames[0], frames[1], "frames must differ per index");
    }
}
